//! Vendored stand-in for the `rand` crate (offline build).
//!
//! The workspace deliberately implements every generator and sampler from
//! scratch (see the `ldp_rand` crate); the only thing it borrows from the
//! `rand` ecosystem is the pair of core traits below, so that the local
//! generators compose with code written against `rand`. This crate provides
//! exactly that trait surface — nothing else — and matches the `rand 0.8`
//! shapes the workspace was written against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![no_std]

/// The core of a random number generator: a source of random bits.
///
/// Mirrors `rand::RngCore`. Implementors supply `next_u32`, `next_u64` and
/// `fill_bytes`; the workspace's generators implement all three explicitly.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` entirely with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
///
/// Mirrors `rand::SeedableRng` (the `from_seed`/`seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from the given seed. Must be a pure function.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit integer into a full seed via SplitMix64, matching
    /// the upstream `rand` convention, and seeds the generator with it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter(0);
        let r = &mut c;
        assert_eq!(RngCore::next_u64(&mut &mut *r), 1);
        assert_eq!(r.next_u64(), 2);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_nontrivial() {
        let a = Counter::seed_from_u64(42).0;
        let b = Counter::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(43).0);
    }
}
