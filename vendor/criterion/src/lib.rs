//! Vendored stand-in for the `criterion` crate (offline build).
//!
//! Provides the group / `bench_function` / `iter` / `iter_batched` surface
//! the workspace's benches are written against, backed by a simple
//! wall-clock median-of-samples measurement. No statistics engine, plots or
//! baselines — just honest per-iteration timings on stderr, so
//! `cargo bench` produces comparable numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many iterations together.
    SmallInput,
    /// Large inputs: fewer iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver, created by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("  {name}"), samples, f);
        self
    }

    /// Ends the group. (No-op: kept for API compatibility.)
    pub fn finish(self) {}
}

fn run_one<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: samples.max(1),
        per_iter: Vec::new(),
    };
    f(&mut bencher);
    let mut times = bencher.per_iter;
    if times.is_empty() {
        eprintln!("{label}: no measurement");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    eprintln!(
        "{label}: median {median:?}/iter over {} samples",
        times.len()
    );
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.per_iter.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.per_iter.push(start.elapsed());
            drop(out);
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs() {
        benches();
    }
}
