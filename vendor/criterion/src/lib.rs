//! Vendored stand-in for the `criterion` crate (offline build).
//!
//! Provides the group / `bench_function` / `iter` / `iter_batched` surface
//! the workspace's benches are written against, backed by a simple
//! wall-clock measurement. No statistics engine, plots or baselines — just
//! honest per-iteration order statistics ([`SampleStats`]: min / median /
//! mean / p90 and the iteration count) on stderr, so `cargo bench`
//! produces comparable numbers offline. The same statistics are available
//! programmatically through [`measure`], which is what the experiment
//! harness (`ldp_harness`) records into `BENCH_*.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many iterations together.
    SmallInput,
    /// Large inputs: fewer iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver, created by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("  {name}"), samples, f);
        self
    }

    /// Ends the group. (No-op: kept for API compatibility.)
    pub fn finish(self) {}
}

/// Order statistics over one benchmark's per-iteration wall-clock
/// timings. Every recorded quantile is an actual sample (nearest-rank on
/// the sorted timings), so the numbers are honest even at tiny sample
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Number of timed iterations the statistics summarize.
    pub iters: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration (upper median for even counts).
    pub median: Duration,
    /// Arithmetic mean over all iterations.
    pub mean: Duration,
    /// 90th-percentile iteration (nearest rank).
    pub p90: Duration,
}

impl SampleStats {
    /// Computes the statistics from raw per-iteration timings; `None`
    /// when nothing was measured.
    pub fn from_times(mut times: Vec<Duration>) -> Option<Self> {
        if times.is_empty() {
            return None;
        }
        times.sort_unstable();
        let iters = times.len();
        let total: Duration = times.iter().sum();
        Some(Self {
            iters,
            min: times[0],
            median: times[iters / 2],
            mean: total / u32::try_from(iters).unwrap_or(u32::MAX).max(1),
            p90: times[(iters * 9 / 10).min(iters - 1)],
        })
    }
}

/// Times `routine` for `samples` iterations and returns the order
/// statistics without printing anything. This is the programmatic
/// surface consumers (the `ldp_harness` experiment runner) record from;
/// the bench binaries go through [`Criterion`] instead.
pub fn measure<O, R>(samples: usize, routine: R) -> Option<SampleStats>
where
    R: FnMut() -> O,
{
    measure_warmup(samples, 0, routine)
}

/// [`measure`] preceded by `warmup` untimed iterations of the same
/// routine. First iterations routinely run far off steady state — cold
/// caches, lazy allocation, memoization still filling — and with
/// nearest-rank statistics over small sample counts that skew lands
/// squarely in `mean`/`p90`. Discarding a warmup prefix makes the
/// recorded statistics describe the steady-state regime; record the
/// warmup count alongside them (the `BENCH_*.json` files carry it as
/// `warmup_iters`) so readers know what was discarded.
pub fn measure_warmup<O, R>(samples: usize, warmup: usize, mut routine: R) -> Option<SampleStats>
where
    R: FnMut() -> O,
{
    for _ in 0..warmup {
        let out = routine();
        drop(out);
    }
    let mut bencher = Bencher {
        samples: samples.max(1),
        per_iter: Vec::new(),
    };
    bencher.iter(routine);
    SampleStats::from_times(bencher.per_iter)
}

fn run_one<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: samples.max(1),
        per_iter: Vec::new(),
    };
    f(&mut bencher);
    match SampleStats::from_times(bencher.per_iter) {
        None => eprintln!("{label}: no measurement"),
        Some(s) => eprintln!(
            "{label}: median {:?}/iter (min {:?}, mean {:?}, p90 {:?}) over {} samples",
            s.median, s.min, s.mean, s.p90, s.iters
        ),
    }
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.per_iter.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.per_iter.push(start.elapsed());
            drop(out);
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn sample_stats_are_nearest_rank_order_statistics() {
        let times: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let s = SampleStats::from_times(times).unwrap();
        assert_eq!(s.iters, 10);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.median, Duration::from_millis(6));
        assert_eq!(s.mean, Duration::from_micros(5_500));
        assert_eq!(s.p90, Duration::from_millis(10));
    }

    #[test]
    fn sample_stats_handle_degenerate_inputs() {
        assert!(SampleStats::from_times(Vec::new()).is_none());
        let s = SampleStats::from_times(vec![Duration::from_nanos(7)]).unwrap();
        assert_eq!(s.iters, 1);
        assert_eq!(s.min, s.median);
        assert_eq!(s.median, s.p90);
        assert_eq!(s.mean, Duration::from_nanos(7));
    }

    #[test]
    fn measure_warmup_discards_the_untimed_prefix() {
        let mut calls = 0usize;
        let s = measure_warmup(3, 2, || {
            calls += 1;
            std::hint::black_box(calls)
        })
        .unwrap();
        // 2 warmup + 3 timed invocations, but only 3 recorded samples.
        assert_eq!(calls, 5);
        assert_eq!(s.iters, 3);
    }

    #[test]
    fn measure_runs_the_requested_samples() {
        let mut calls = 0usize;
        let s = measure(4, || {
            calls += 1;
            std::hint::black_box(calls)
        })
        .unwrap();
        assert_eq!(calls, 4);
        assert_eq!(s.iters, 4);
        assert!(s.min <= s.median && s.median <= s.p90);
    }
}
