//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// An inclusive length interval for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy: each element from `element`, length within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
