//! Vendored stand-in for the `proptest` crate (offline build).
//!
//! A small, fully deterministic property-testing harness that covers exactly
//! the surface this workspace's test suites use:
//!
//! * [`proptest!`] — the test-definition macro (with optional
//!   `#![proptest_config(...)]` header).
//! * [`prop_compose!`] and [`prop_oneof!`] — strategy composition.
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] — in-case assertions and rejection.
//! * [`Strategy`] for integer/float ranges, [`any`], [`Just`],
//!   [`collection::vec`], unions and closures.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports the
//! exact generated inputs (which are reproducible — the RNG stream is a pure
//! function of test name and case index) and panics.

#![forbid(unsafe_code)]

use std::fmt::Debug;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy, Union};

/// Why a single generated test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by [`prop_assume!`]; it does not count as a run.
    Reject(String),
    /// An assertion failed; the test fails with this message.
    Fail(String),
}

/// The result type every generated test case body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, selected with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; this suite leans on closed-form
        // checks rather than rare-event search, so a smaller default keeps
        // tier-1 fast while still exercising wide input ranges. (Heavier
        // statistical checks live in the tier-2 `--ignored` suite.)
        Self { cases: 160 }
    }
}

/// Deterministic per-case random source (SplitMix64 core).
///
/// The stream is a pure function of `(test identifier, case index)`, so a
/// reported failure is reproducible by rerunning the same test binary.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one case of one property.
    pub fn for_case(file: &str, test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(test_name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // One warm-up step decorrelates nearby case indices.
        rng.next_u64();
        rng
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection-free multiply-shift (Lemire); bias is < 2^-64 per draw,
        // far below anything a test at this scale can observe.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Executes one property: generates cases until `config.cases` of them run
/// (rejections via [`prop_assume!`] are retried), panicking on the first
/// failure with the generated inputs.
///
/// This is the engine behind the [`proptest!`] macro; tests never call it
/// directly.
pub fn run_property<F>(config: &ProptestConfig, file: &str, test_name: &str, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> (String, TestCaseResult),
{
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = (config.cases as u64) * 64 + 1024;
    while passed < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "proptest stub: too many rejected cases in `{test_name}` \
                 ({passed}/{} passed after {max_attempts} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(file, test_name, attempt);
        let (inputs, outcome) = one_case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed: {msg}\n  test: {test_name} (case #{attempt})\n  inputs: {inputs}"
                );
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, ProptestConfig, TestCaseError, TestCaseResult,
    };

    /// The `prop` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each item looks like a `#[test]` function whose
/// arguments are `pattern in strategy` pairs; the body may use the
/// `prop_assert*`/`prop_assume!` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal item-by-item expander for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_property(&__config, file!(), stringify!($name), |__rng| {
                let mut __inputs = String::new();
                $(
                    let __value = $crate::Strategy::sample(&($strat), __rng);
                    if !__inputs.is_empty() {
                        __inputs.push_str(", ");
                    }
                    __inputs.push_str(concat!(stringify!($pat), " = "));
                    __inputs.push_str(&format!("{:?}", &__value));
                    let $pat = __value;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    }),
                );
                match __outcome {
                    Ok(result) => (__inputs, result),
                    Err(payload) => {
                        eprintln!(
                            "proptest case panicked\n  test: {}\n  inputs: {}",
                            stringify!($name),
                            __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Defines a named strategy-returning function from inner strategies plus a
/// mapping body: `prop_compose! { fn f()(x in 0..10u64) -> u64 { x * 2 } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ($($pat:pat_param in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |__rng: &mut $crate::TestRng| -> $ret {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// A strategy drawing uniformly from one of several alternative strategies
/// that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property body, failing the case (with the
/// generated inputs reported) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// [`prop_assert!`] for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n  right: {:?}",
                        stringify!($left), stringify!($right), file!(), line!(), __l, __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n  right: {:?}",
                        stringify!($left), stringify!($right), file!(), line!(),
                        format!($($fmt)+), __l, __r
                    )));
                }
            }
        }
    };
}

/// [`prop_assert!`] for inequality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                        stringify!($left), stringify!($right), file!(), line!(), __l
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}` at {}:{}: {}\n  both: {:?}",
                        stringify!($left), stringify!($right), file!(), line!(),
                        format!($($fmt)+), __l
                    )));
                }
            }
        }
    };
}

/// Vetoes the current case: it is discarded (not failed) and regenerated.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Coin {
        Heads,
        Tails,
    }

    fn arb_coin() -> impl Strategy<Value = Coin> {
        prop_oneof![Just(Coin::Heads), Just(Coin::Tails)]
    }

    prop_compose! {
        fn arb_pair()(a in 1u64..10, b in 1u64..10) -> (u64, u64) { (a, b) }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_honored(x in 3u64..17, f in -1.5f64..2.5, g in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!((0.0..=1.0).contains(&g));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_compose(c in arb_coin(), (a, b) in arb_pair()) {
            prop_assert!(c == Coin::Heads || c == Coin::Tails);
            prop_assert!(a >= 1 && b >= 1);
        }

        #[test]
        fn assume_rejects_but_never_fails(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::for_case("f", "t", 7);
        let mut b = crate::TestRng::for_case("f", "t", 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        // No #[test] on the inner property: it is invoked by hand so the
        // panic can be observed by the enclosing #[should_panic] test.
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
