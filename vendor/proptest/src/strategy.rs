//! Strategies: composable recipes for generating random test inputs.

use crate::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of one type.
///
/// Mirrors the subset of `proptest::strategy::Strategy` this workspace uses:
/// generation only, no shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy for storage in heterogeneous collections ([`Union`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between alternative strategies over one value type.
/// Built by the [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<T: Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// A union over the given non-empty set of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// A strategy computed by a closure over the RNG. Backs
/// [`prop_compose!`](crate::prop_compose) and ad-hoc generators.
pub struct FnStrategy<F, T> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

/// Wraps a sampling closure as a [`Strategy`].
pub fn from_fn<T, F>(f: F) -> FnStrategy<F, T>
where
    T: Debug,
    F: Fn(&mut TestRng) -> T,
{
    FnStrategy {
        f,
        _marker: PhantomData,
    }
}

impl<T, F> Strategy for FnStrategy<F, T>
where
    T: Debug,
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value, biased toward boundary cases.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

/// A strategy over every value of `T`, edge-case biased.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // One case in eight is a boundary value; the rest are uniform.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 5] = [0, 1, 2, <$t>::MAX, <$t>::MAX - 1];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                if rng.below(8) == 0 {
                    const EDGES: [$t; 6] = [0, 1, -1, <$t>::MAX, <$t>::MIN, <$t>::MIN + 1];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )+};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.below(8) == 0 {
            const EDGES: [f64; 6] = [0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN_POSITIVE];
            EDGES[rng.below(EDGES.len() as u64) as usize]
        } else {
            // A wide but finite spread: sign * unit * 2^[-64, 64].
            let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
            let exp = rng.below(129) as i32 - 64;
            sign * rng.unit_f64() * (2.0f64).powi(exp)
        }
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_sint {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )+};
}

range_strategy_sint!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against round-up at the top of the interval.
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Hit the exact endpoints occasionally: closed ranges are
                // usually written to probe them (p = 0, p = 1, ...).
                match rng.below(16) {
                    0 => lo,
                    1 => hi,
                    _ => {
                        let u = rng.unit_f64() as $t;
                        let v = lo + u * (hi - lo);
                        v.clamp(lo, hi)
                    }
                }
            }
        }
    )+};
}

range_strategy_float!(f32, f64);
