//! Closed-form numerical analysis reproducing the paper's Fig. 1, Fig. 2
//! and Table 1.
//!
//! Everything here is deterministic arithmetic on protocol parameters — no
//! simulation — which is exactly how the paper produces those artifacts:
//!
//! * [`fig1_series`] — the optimal `g` of Eq. (6) over the
//!   (ε∞ ∈ \[0.5, 5\], α ∈ {0.1..0.6}) grid.
//! * [`fig2_rows`] — the approximate variance `V*` (Eq. (5)) of L-OSUE,
//!   OLOLOHA, RAPPOR and BiLOLOHA at n = 10 000 over the same grid.
//! * [`table1_rows`] — the communication/run-time/budget comparison,
//!   both symbolic and instantiated for concrete `(k, ε∞, ε1)`.
//! * Closed-form variance helpers with their cross-checks against Eq. (5):
//!   [`losue_variance_closed_form`], [`dbitflip_variance_approx`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ldp_longitudinal::chain::{ue_chain_params, UeChain};
use loloha::{optimal_g, LolohaParams};

/// The ε∞ grid used throughout the paper: 0.5, 1.0, …, 5.0.
pub fn paper_eps_grid() -> Vec<f64> {
    (1..=10).map(|i| 0.5 * i as f64).collect()
}

/// One point of a Fig. 1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Point {
    /// Longitudinal budget ε∞.
    pub eps_inf: f64,
    /// First-report fraction α (ε1 = α·ε∞).
    pub alpha: f64,
    /// The Eq. (6) optimal g.
    pub g: u32,
}

/// Fig. 1: optimal `g` for every (ε∞, α) grid point, grouped by α.
pub fn fig1_series(eps_grid: &[f64], alphas: &[f64]) -> Vec<Vec<Fig1Point>> {
    alphas
        .iter()
        .map(|&alpha| {
            eps_grid
                .iter()
                .map(|&eps_inf| Fig1Point {
                    eps_inf,
                    alpha,
                    g: optimal_g(eps_inf, alpha * eps_inf),
                })
                .collect()
        })
        .collect()
}

/// One row of the Fig. 2 comparison: `V*` of the four double-randomization
/// protocols at a budget point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Row {
    /// Longitudinal budget ε∞.
    pub eps_inf: f64,
    /// First-report fraction α.
    pub alpha: f64,
    /// V* of L-OSUE (Arcolezi et al. \[5\]).
    pub losue: f64,
    /// V* of OLOLOHA (this paper, Eq. (6) g).
    pub ololoha: f64,
    /// V* of RAPPOR (L-SUE) \[23\].
    pub rappor: f64,
    /// V* of BiLOLOHA (g = 2).
    pub biloloha: f64,
}

/// Fig. 2: the approximate variance of each protocol over the grid.
pub fn fig2_rows(n: f64, eps_grid: &[f64], alphas: &[f64]) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for &alpha in alphas {
        for &eps_inf in eps_grid {
            let e1 = alpha * eps_inf;
            let losue = ue_chain_params(UeChain::OueSue, eps_inf, e1)
                .expect("valid grid point")
                .variance_approx(n);
            let rappor = ue_chain_params(UeChain::SueSue, eps_inf, e1)
                .expect("valid grid point")
                .variance_approx(n);
            let ololoha = LolohaParams::optimal(eps_inf, e1)
                .expect("valid grid point")
                .variance_approx(n);
            let biloloha = LolohaParams::bi(eps_inf, e1)
                .expect("valid grid point")
                .variance_approx(n);
            rows.push(Fig2Row {
                eps_inf,
                alpha,
                losue,
                ololoha,
                rappor,
                biloloha,
            });
        }
    }
    rows
}

/// The paper's closed form for L-OSUE's approximate variance:
/// `V* = 4·e^{ε1} / (n·(e^{ε1} − 1)²)` — notably independent of ε∞.
pub fn losue_variance_closed_form(n: f64, eps_first: f64) -> f64 {
    let b = eps_first.exp();
    4.0 * b / (n * (b - 1.0) * (b - 1.0))
}

/// The approximate variance of dBitFlipPM:
/// `V* = b / (4·n·d·sinh²(ε∞/4))`.
///
/// Derived from the one-round SUE variance with the effective population
/// `n·d/b`; equals `a·b_buckets/(n·d·(a−1)²)` with `a = e^{ε∞/2}`. (The
/// paper prints this as `b/(2dn·sinh(ε∞/2))`; the `sinh` form below is the
/// one consistent with its own Eq. (5) pipeline, verified in tests.)
pub fn dbitflip_variance_approx(n: f64, buckets: u32, d: u32, eps_inf: f64) -> f64 {
    let s = (eps_inf / 4.0).sinh();
    buckets as f64 / (4.0 * n * d as f64 * s * s)
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Protocol name.
    pub protocol: &'static str,
    /// Communication bits per user per step (symbolic).
    pub comm_symbolic: String,
    /// Communication bits for the instantiated parameters.
    pub comm_bits: u32,
    /// Server run-time complexity (symbolic).
    pub server_complexity: &'static str,
    /// Privacy budget consumption (symbolic).
    pub budget_symbolic: String,
    /// Budget cap for the instantiated parameters.
    pub budget: f64,
}

/// Table 1 instantiated at `(k, ε∞, ε1)`, with dBitFlipPM at `(b, d)`.
pub fn table1_rows(k: u64, eps_inf: f64, eps_first: f64, b: u32, d: u32) -> Vec<Table1Row> {
    let ceil_log2 = |x: u64| (64 - (x.max(2) - 1).leading_zeros() as u64) as u32;
    let g = optimal_g(eps_inf, eps_first);
    vec![
        Table1Row {
            protocol: "LOLOHA",
            comm_symbolic: "ceil(log2 g)".into(),
            comm_bits: ceil_log2(g as u64),
            server_complexity: "O(n k)",
            budget_symbolic: "g eps_inf".into(),
            budget: g as f64 * eps_inf,
        },
        Table1Row {
            protocol: "L-GRR",
            comm_symbolic: "ceil(log2 k)".into(),
            comm_bits: ceil_log2(k),
            server_complexity: "O(n k)",
            budget_symbolic: "k eps_inf".into(),
            budget: k as f64 * eps_inf,
        },
        Table1Row {
            protocol: "RAPPOR",
            comm_symbolic: "k".into(),
            comm_bits: k as u32,
            server_complexity: "O(n k)",
            budget_symbolic: "k eps_inf".into(),
            budget: k as f64 * eps_inf,
        },
        Table1Row {
            protocol: "L-OSUE",
            comm_symbolic: "k".into(),
            comm_bits: k as u32,
            server_complexity: "O(n k)",
            budget_symbolic: "k eps_inf".into(),
            budget: k as f64 * eps_inf,
        },
        Table1Row {
            protocol: "dBitFlipPM",
            comm_symbolic: "d".into(),
            comm_bits: d,
            server_complexity: "O(n b)",
            budget_symbolic: "min(d+1, b) eps_inf".into(),
            budget: (d + 1).min(b) as f64 * eps_inf,
        },
    ]
}

/// The approximate variance of PRR-only local hashing (one round, no IRR):
/// Eq. (1) over the reduced domain with `p = e^{ε∞}/(e^{ε∞}+g−1)`,
/// `q' = 1/g` — the §4 one-round comparator for dBitFlipPM.
pub fn prr_only_variance_approx(n: f64, g: u32, eps_inf: f64) -> f64 {
    let a = eps_inf.exp();
    let gf = g as f64;
    let p = a / (a + gf - 1.0);
    let q = 1.0 / gf;
    ldp_primitives::estimator::single_variance_approx(n, p, q)
}

/// One row of the §4 one-round comparison: at equal ε∞, the V* and
/// worst-case budget of PRR-only LH (g = 2) against dBitFlipPM at
/// `(b, d = b)` and `(b, d = 1)`.
#[derive(Debug, Clone, Copy)]
pub struct OneRoundRow {
    /// The shared longitudinal budget ε∞.
    pub eps_inf: f64,
    /// PRR-only LH at g = 2: approximate variance.
    pub prr_only_var: f64,
    /// PRR-only LH at g = 2: budget cap (2·ε∞).
    pub prr_only_cap: f64,
    /// bBitFlipPM (d = b): approximate variance.
    pub bbit_var: f64,
    /// bBitFlipPM (d = b): budget cap (b·ε∞).
    pub bbit_cap: f64,
    /// 1BitFlipPM (d = 1): approximate variance.
    pub onebit_var: f64,
    /// 1BitFlipPM (d = 1): budget cap (2·ε∞).
    pub onebit_cap: f64,
}

/// The §4 one-round comparison across an ε∞ grid, for `n` users and `b`
/// buckets.
pub fn oneround_rows(n: f64, b: u32, eps_grid: &[f64]) -> Vec<OneRoundRow> {
    eps_grid
        .iter()
        .map(|&eps_inf| OneRoundRow {
            eps_inf,
            prr_only_var: prr_only_variance_approx(n, 2, eps_inf),
            prr_only_cap: 2.0 * eps_inf,
            bbit_var: dbitflip_variance_approx(n, b, b, eps_inf),
            bbit_cap: b as f64 * eps_inf,
            onebit_var: dbitflip_variance_approx(n, b, 1, eps_inf),
            onebit_cap: 2.0 * eps_inf,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_primitives::estimator::single_variance_approx;
    use ldp_primitives::params::sue_params;

    #[test]
    fn eps_grid_matches_paper() {
        let g = paper_eps_grid();
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], 0.5);
        assert_eq!(g[9], 5.0);
    }

    #[test]
    fn prr_only_variance_matches_eq1_pipeline() {
        // Must equal the generic one-round formula with the LH server pair.
        let (n, g, eps) = (10_000.0, 4u32, 2.0f64);
        let a = eps.exp();
        let p = a / (a + 3.0);
        let direct = single_variance_approx(n, p, 0.25);
        assert!((prr_only_variance_approx(n, g, eps) - direct).abs() < 1e-15);
    }

    #[test]
    fn oneround_comparison_shape() {
        // The §4 story in numbers: bBitFlipPM's variance beats PRR-only
        // (it keeps all b bits) but its cap is b/2 times larger; 1BitFlipPM
        // shares PRR-only's cap but pays a b-fold variance penalty.
        let rows = oneround_rows(10_000.0, 360, &paper_eps_grid());
        for r in &rows {
            assert!(r.bbit_cap / r.prr_only_cap == 180.0, "cap gap");
            assert!(r.onebit_var > r.prr_only_var, "1-bit sampling penalty");
            assert!((r.onebit_cap - r.prr_only_cap).abs() < 1e-12);
            assert!(r.prr_only_var.is_finite() && r.prr_only_var > 0.0);
        }
        // Variance decreases with eps for every column.
        for w in rows.windows(2) {
            assert!(w[1].prr_only_var < w[0].prr_only_var);
            assert!(w[1].bbit_var < w[0].bbit_var);
        }
    }

    #[test]
    fn fig1_series_shape() {
        let series = fig1_series(&paper_eps_grid(), &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(series.len(), 6);
        assert!(series.iter().all(|s| s.len() == 10));
        // High-privacy corner is binary; low-privacy corner is not.
        assert_eq!(series[0][0].g, 2);
        assert!(series[5][9].g > 2);
    }

    #[test]
    fn fig2_shapes_match_paper_findings() {
        let rows = fig2_rows(10_000.0, &paper_eps_grid(), &[0.1, 0.4, 0.6]);
        for r in &rows {
            assert!(r.losue > 0.0 && r.rappor > 0.0);
            // OLOLOHA tracks L-OSUE closely (the paper's key observation).
            let ratio = r.ololoha / r.losue;
            assert!(
                (0.5..4.0).contains(&ratio),
                "eps={} alpha={}: OLOLOHA/L-OSUE = {ratio}",
                r.eps_inf,
                r.alpha
            );
            // OLOLOHA never does worse than BiLOLOHA (it optimizes g).
            assert!(r.ololoha <= r.biloloha * (1.0 + 1e-9));
        }
        // In the low-privacy corner BiLOLOHA and RAPPOR are the laggards.
        let worst = rows
            .iter()
            .find(|r| r.eps_inf == 5.0 && r.alpha == 0.6)
            .unwrap();
        assert!(worst.biloloha > worst.ololoha);
        assert!(worst.rappor > worst.losue);
    }

    #[test]
    fn losue_closed_form_matches_eq5() {
        for &(ei, a) in &[(2.0, 0.5), (4.0, 0.3), (1.0, 0.6)] {
            let e1 = a * ei;
            let eq5 = ue_chain_params(UeChain::OueSue, ei, e1)
                .unwrap()
                .variance_approx(10_000.0);
            let closed = losue_variance_closed_form(10_000.0, e1);
            assert!(
                ((eq5 - closed) / closed).abs() < 1e-9,
                "eps={ei} alpha={a}: {eq5} vs {closed}"
            );
        }
    }

    #[test]
    fn dbitflip_variance_matches_single_round_derivation() {
        for &(ei, b, d) in &[(1.0, 360u32, 1u32), (3.0, 96, 96), (2.0, 353, 8)] {
            let n = 10_000.0;
            let (p, q) = sue_params(ei);
            let direct = single_variance_approx(n * d as f64 / b as f64, p, q);
            let closed = dbitflip_variance_approx(n, b, d, ei);
            assert!(
                ((direct - closed) / direct).abs() < 1e-9,
                "eps={ei} b={b} d={d}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn table1_budget_ordering() {
        let rows = table1_rows(360, 1.0, 0.5, 360, 1);
        let budget_of = |name: &str| rows.iter().find(|r| r.protocol == name).unwrap().budget;
        // LOLOHA and 1BitFlipPM are the only sub-linear budgets.
        assert!(budget_of("LOLOHA") < budget_of("RAPPOR"));
        assert!(budget_of("dBitFlipPM") < budget_of("RAPPOR"));
        assert_eq!(budget_of("RAPPOR"), 360.0);
        assert_eq!(budget_of("dBitFlipPM"), 2.0);
    }

    #[test]
    fn table1_comm_costs() {
        let rows = table1_rows(1412, 2.0, 1.0, 353, 353);
        let row = |name: &str| rows.iter().find(|r| r.protocol == name).unwrap();
        assert_eq!(row("L-GRR").comm_bits, 11); // ceil(log2 1412)
        assert_eq!(row("RAPPOR").comm_bits, 1412);
        assert_eq!(row("dBitFlipPM").comm_bits, 353);
        assert!(row("LOLOHA").comm_bits <= 5);
    }
}
