//! Property tests for the consistency and smoothing post-processors.

use ldp_postprocess::{project_onto_simplex, Consistency, KalmanSmoother, MovingAverage};
use proptest::prelude::*;

fn raw_histogram(k: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.5, k..=k)
}

proptest! {
    /// The projection always lands exactly on the simplex.
    #[test]
    fn projection_is_feasible(mut u in raw_histogram(8)) {
        project_onto_simplex(&mut u);
        let total: f64 = u.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        prop_assert!(u.iter().all(|&x| x >= 0.0));
    }

    /// Projecting twice equals projecting once (idempotence).
    #[test]
    fn projection_is_idempotent(mut u in raw_histogram(6)) {
        project_onto_simplex(&mut u);
        let once = u.clone();
        project_onto_simplex(&mut u);
        for (a, b) in once.iter().zip(&u) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The projection is order-preserving: if u_i >= u_j then x_i >= x_j.
    #[test]
    fn projection_preserves_order(u in raw_histogram(7)) {
        let mut x = u.clone();
        project_onto_simplex(&mut x);
        for i in 0..u.len() {
            for j in 0..u.len() {
                if u[i] > u[j] {
                    prop_assert!(x[i] >= x[j] - 1e-12);
                }
            }
        }
    }

    /// The projection is a contraction toward any simplex point: the output
    /// is never farther from a feasible point than the input was. This is
    /// the geometric fact that makes Norm-Sub "free accuracy": with the true
    /// histogram in the simplex, post-processing cannot hurt (in L2).
    #[test]
    fn projection_never_moves_away_from_feasible_points(
        u in raw_histogram(5),
        weights in proptest::collection::vec(0.01f64..1.0, 5),
    ) {
        let total: f64 = weights.iter().sum();
        let truth: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut x = u.clone();
        project_onto_simplex(&mut x);
        let d_before: f64 = u.iter().zip(&truth).map(|(a, b)| (a - b).powi(2)).sum();
        let d_after: f64 = x.iter().zip(&truth).map(|(a, b)| (a - b).powi(2)).sum();
        prop_assert!(d_after <= d_before + 1e-9, "after {d_after} > before {d_before}");
    }

    /// Every simplex-targeting method outputs a valid distribution; every
    /// clipping method outputs non-negative entries.
    #[test]
    fn consistency_methods_meet_their_contracts(u in raw_histogram(9)) {
        for m in [Consistency::NormMul, Consistency::NormSub] {
            let out = m.applied(&u);
            let total: f64 = out.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "{m:?} sum {total}");
            prop_assert!(out.iter().all(|&x| x >= 0.0), "{m:?}");
        }
        for m in [
            Consistency::ClipZero,
            Consistency::NormCut,
            Consistency::BaseCut { z: 2.0, variance: 1e-4 },
        ] {
            let out = m.applied(&u);
            prop_assert!(out.iter().all(|&x| x >= 0.0), "{m:?}");
        }
        let out = Consistency::NormCut.applied(&u);
        prop_assert!(out.iter().sum::<f64>() <= 1.0 + 1e-9);
        let out = Consistency::Norm.applied(&u);
        prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Norm preserves pairwise differences exactly (it is a pure shift).
    #[test]
    fn norm_is_a_uniform_shift(u in raw_histogram(4)) {
        let out = Consistency::Norm.applied(&u);
        for i in 1..u.len() {
            prop_assert!(((out[i] - out[0]) - (u[i] - u[0])).abs() < 1e-9);
        }
    }

    /// A moving average over a window of length 1 is the identity.
    #[test]
    fn window_one_moving_average_is_identity(rounds in proptest::collection::vec(raw_histogram(3), 1..6)) {
        let mut ma = MovingAverage::new(3, 1).unwrap();
        for r in &rounds {
            let out = ma.update(r).unwrap();
            for (a, b) in out.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    /// The Kalman posterior variance is monotonically non-increasing on a
    /// constant-Q filter and stays within (0, R + Q].
    #[test]
    fn kalman_posterior_variance_is_bounded(
        obs in proptest::collection::vec(-0.5f64..1.5, 2..40),
        q in 1e-8f64..1e-2,
        r in 1e-6f64..1e-1,
    ) {
        let mut kf = KalmanSmoother::new(1, q, r).unwrap();
        let mut prev = f64::INFINITY;
        for &o in &obs {
            kf.update(&[o]).unwrap();
            let p = kf.posterior_variance();
            prop_assert!(p > 0.0);
            prop_assert!(p <= (r + q) * (1.0 + 1e-9));
            prop_assert!(p <= prev + q + 1e-12, "variance jumped: {prev} -> {p}");
            prev = p;
        }
    }

    /// The Kalman estimate always lies between the min and max of the
    /// observations seen so far (convex-combination property of gain ≤ 1).
    #[test]
    fn kalman_estimate_stays_in_observed_hull(
        obs in proptest::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let mut kf = KalmanSmoother::new(1, 1e-4, 1e-2).unwrap();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &o in &obs {
            lo = lo.min(o);
            hi = hi.max(o);
            let out = kf.update(&[o]).unwrap();
            prop_assert!(out[0] >= lo - 1e-9 && out[0] <= hi + 1e-9);
        }
    }
}
