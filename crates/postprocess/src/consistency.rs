//! Per-round consistency repair of a raw estimated histogram.
//!
//! The methods follow the taxonomy of Wang et al. (NDSS 2020). They trade
//! off how much structure they impose:
//!
//! | method | output guarantees | best when |
//! |---|---|---|
//! | [`Consistency::ClipZero`] | `x ≥ 0` | you need honest totals elsewhere |
//! | [`Consistency::Norm`] | `Σx = 1` | estimates are already ≥ 0 |
//! | [`Consistency::NormMul`] | `x ≥ 0, Σx = 1` | few dominant values |
//! | [`Consistency::NormSub`] | `x ≥ 0, Σx = 1` (L2-closest) | general purpose |
//! | [`Consistency::NormCut`] | `x ≥ 0, Σx ≤ 1` | very sparse histograms |
//! | [`Consistency::BaseCut`] | `x ≥ 0` (below-threshold zeroed) | heavy hitters |
//!
//! `NormSub` is the Euclidean simplex projection and is the recommended
//! default: it never increases the squared error against any true
//! distribution (a property of projections onto convex sets containing the
//! truth, verified empirically by the crate's tests).

use crate::simplex::{clip_nonnegative, project_onto_simplex};

/// A consistency post-processing method for one round's estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Consistency {
    /// Clip negative entries to zero; do not renormalize.
    ClipZero,
    /// Additively shift all entries so they sum to one (entries may remain
    /// negative).
    Norm,
    /// Clip negatives to zero, then rescale multiplicatively to sum one.
    /// Falls back to uniform when everything clips to zero.
    NormMul,
    /// Euclidean projection onto the probability simplex (clip + common
    /// additive shift on the surviving support).
    NormSub,
    /// Clip negatives to zero; if the total still exceeds one, zero the
    /// *smallest* positive entries until the total is at most one. Never
    /// rescales, so surviving estimates keep their unbiased magnitudes.
    NormCut,
    /// Zero every entry below the significance threshold
    /// `θ = z · sqrt(V*)`, where `V*` is the estimator's approximate
    /// per-value variance and `z` the stored z-score; then clip negatives.
    BaseCut {
        /// Significance z-score (e.g. `1.96` for ~2.5% one-sided noise
        /// survival per value).
        z: f64,
        /// The protocol's approximate per-value variance `V*` (Eq. (5) /
        /// `variance_approx` of the protocol's parameter type).
        variance: f64,
    },
}

impl Consistency {
    /// Applies the method to `estimate` in place.
    pub fn apply(&self, estimate: &mut [f64]) {
        match *self {
            Consistency::ClipZero => clip_nonnegative(estimate),
            Consistency::Norm => norm_additive(estimate),
            Consistency::NormMul => norm_mul(estimate),
            Consistency::NormSub => project_onto_simplex(estimate),
            Consistency::NormCut => norm_cut(estimate),
            Consistency::BaseCut { z, variance } => base_cut(estimate, z, variance),
        }
    }

    /// Applies the method to a copy and returns it.
    pub fn applied(&self, estimate: &[f64]) -> Vec<f64> {
        let mut out = estimate.to_vec();
        self.apply(&mut out);
        out
    }
}

fn norm_additive(u: &mut [f64]) {
    if u.is_empty() {
        return;
    }
    let shift = (1.0 - u.iter().sum::<f64>()) / u.len() as f64;
    for x in u.iter_mut() {
        *x += shift;
    }
}

fn norm_mul(u: &mut [f64]) {
    clip_nonnegative(u);
    let total: f64 = u.iter().sum();
    if total > 0.0 {
        for x in u.iter_mut() {
            *x /= total;
        }
    } else if !u.is_empty() {
        let k = u.len() as f64;
        u.fill(1.0 / k);
    }
}

fn norm_cut(u: &mut [f64]) {
    clip_nonnegative(u);
    let mut total: f64 = u.iter().sum();
    if total <= 1.0 {
        return;
    }
    // Zero the smallest positive entries until the total drops to ≤ 1.
    let mut order: Vec<usize> = (0..u.len()).filter(|&i| u[i] > 0.0).collect();
    order.sort_by(|&a, &b| u[a].partial_cmp(&u[b]).expect("clipped entries are finite"));
    for i in order {
        if total <= 1.0 {
            break;
        }
        total -= u[i];
        u[i] = 0.0;
    }
}

fn base_cut(u: &mut [f64], z: f64, variance: f64) {
    let theta = z * variance.max(0.0).sqrt();
    for x in u.iter_mut() {
        if x.is_nan() || *x < theta {
            *x = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RAW: [f64; 5] = [0.52, -0.08, 0.31, 0.02, 0.19];

    fn sum(u: &[f64]) -> f64 {
        u.iter().sum()
    }

    #[test]
    fn clip_zero_only_removes_negatives() {
        let out = Consistency::ClipZero.applied(&RAW);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[0], RAW[0]);
        assert!(sum(&out) > 1.0); // not renormalized
    }

    #[test]
    fn norm_restores_unit_sum_without_clipping() {
        let out = Consistency::Norm.applied(&RAW);
        assert!((sum(&out) - 1.0).abs() < 1e-12);
        // The shift is uniform: pairwise differences are preserved.
        assert!((out[0] - out[2] - (RAW[0] - RAW[2])).abs() < 1e-12);
    }

    #[test]
    fn norm_mul_yields_distribution_proportional_to_clipped() {
        let out = Consistency::NormMul.applied(&RAW);
        assert!((sum(&out) - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&x| x >= 0.0));
        // Ratios among surviving entries are preserved.
        assert!((out[0] / out[2] - RAW[0] / RAW[2]).abs() < 1e-9);
    }

    #[test]
    fn norm_mul_all_negative_falls_back_to_uniform() {
        let out = Consistency::NormMul.applied(&[-0.5, -0.1, -0.2, -0.2]);
        for &x in &out {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn norm_sub_is_simplex_projection() {
        let out = Consistency::NormSub.applied(&RAW);
        assert!((sum(&out) - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn norm_cut_zeroes_smallest_until_sum_at_most_one() {
        let raw = [0.55, 0.4, 0.3, 0.05, -0.1];
        let out = Consistency::NormCut.applied(&raw);
        assert!(sum(&out) <= 1.0 + 1e-12);
        // Largest survivors are untouched (no rescale)…
        assert_eq!(out[0], 0.55);
        assert_eq!(out[1], 0.4);
        // …after cutting 0.05 (not enough) and then 0.3 (sum now 0.95).
        assert_eq!(out[2], 0.0);
        assert_eq!(out[3], 0.0);
        assert_eq!(out[4], 0.0);
    }

    #[test]
    fn norm_cut_noop_when_sum_below_one() {
        let raw = [0.2, 0.1, -0.05];
        let out = Consistency::NormCut.applied(&raw);
        assert_eq!(out, vec![0.2, 0.1, 0.0]);
    }

    #[test]
    fn base_cut_zeroes_below_threshold() {
        // V* = 0.0004 → σ = 0.02; z = 2 → θ = 0.04.
        let method = Consistency::BaseCut {
            z: 2.0,
            variance: 0.0004,
        };
        let out = method.applied(&[0.5, 0.03, -0.2, 0.04, 0.041]);
        assert_eq!(out[0], 0.5);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.0);
        assert_eq!(out[3], 0.04); // exactly at threshold survives
        assert_eq!(out[4], 0.041);
    }

    #[test]
    fn base_cut_zero_variance_equals_clip() {
        let method = Consistency::BaseCut {
            z: 3.0,
            variance: 0.0,
        };
        assert_eq!(method.applied(&RAW), Consistency::ClipZero.applied(&RAW));
    }

    #[test]
    fn all_methods_handle_empty_input() {
        for m in [
            Consistency::ClipZero,
            Consistency::Norm,
            Consistency::NormMul,
            Consistency::NormSub,
            Consistency::NormCut,
            Consistency::BaseCut {
                z: 2.0,
                variance: 0.01,
            },
        ] {
            assert!(m.applied(&[]).is_empty());
        }
    }
}
