//! Temporal smoothing of longitudinal estimate series.
//!
//! In the paper's setting the server produces one histogram estimate per
//! round, `f̂_1, …, f̂_τ`. Each round is unbiased with per-value variance
//! ≈ `V*` (Eq. (5)), but consecutive rounds estimate *nearly the same*
//! population histogram (the Syn dataset changes 25% of users per round; the
//! folktables-like counters drift slowly). A smoother trades a little bias
//! under drift for a large variance reduction — again free under LDP because
//! it is server-side post-processing.
//!
//! Three smoothers, in increasing sophistication:
//!
//! * [`MovingAverage`] — uniform window of the last `w` rounds.
//! * [`ExponentialSmoother`] — `s_t = λ·x_t + (1−λ)·s_{t−1}`.
//! * [`KalmanSmoother`] — per-value scalar Kalman filter with a random-walk
//!   state model. Observation noise `R` should be set to the protocol's
//!   `V*`; process noise `Q` to the expected squared per-round drift of a
//!   single frequency. The filter then adapts its gain optimally between
//!   "trust history" (Q ≪ R) and "trust the new round" (Q ≫ R).
//!
//! All smoothers operate on whole histograms (one state per value) and are
//! allocation-free per round after construction.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Errors from smoother construction.
#[derive(Debug, Clone, PartialEq)]
pub enum SmoothError {
    /// The window length must be at least 1.
    EmptyWindow,
    /// λ must lie in (0, 1].
    InvalidLambda(f64),
    /// Kalman noise parameters must be finite, `R > 0`, `Q ≥ 0`.
    InvalidNoise {
        /// Process noise Q.
        q: f64,
        /// Observation noise R.
        r: f64,
    },
    /// A round's histogram had a different length than the smoother state.
    DimensionMismatch {
        /// Expected number of values (k).
        expected: usize,
        /// Received histogram length.
        got: usize,
    },
}

impl fmt::Display for SmoothError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmoothError::EmptyWindow => write!(f, "moving-average window must be >= 1"),
            SmoothError::InvalidLambda(l) => {
                write!(f, "exponential smoothing factor must be in (0, 1], got {l}")
            }
            SmoothError::InvalidNoise { q, r } => {
                write!(
                    f,
                    "Kalman noises must be finite with R > 0, Q >= 0; got Q = {q}, R = {r}"
                )
            }
            SmoothError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "histogram length {got} does not match smoother dimension {expected}"
                )
            }
        }
    }
}

impl Error for SmoothError {}

/// Uniform moving average over the last `w` rounds, per value.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    k: usize,
    window: usize,
    history: VecDeque<Vec<f64>>,
    running: Vec<f64>,
}

impl MovingAverage {
    /// Creates a smoother for `k`-bin histograms with window length `window`.
    pub fn new(k: usize, window: usize) -> Result<Self, SmoothError> {
        if window == 0 {
            return Err(SmoothError::EmptyWindow);
        }
        Ok(Self {
            k,
            window,
            history: VecDeque::with_capacity(window),
            running: vec![0.0; k],
        })
    }

    /// Ingests one round's estimate and returns the smoothed histogram.
    pub fn update(&mut self, estimate: &[f64]) -> Result<Vec<f64>, SmoothError> {
        if estimate.len() != self.k {
            return Err(SmoothError::DimensionMismatch {
                expected: self.k,
                got: estimate.len(),
            });
        }
        if self.history.len() == self.window {
            let old = self.history.pop_front().expect("window is non-empty");
            for (r, o) in self.running.iter_mut().zip(&old) {
                *r -= o;
            }
        }
        for (r, &e) in self.running.iter_mut().zip(estimate) {
            *r += e;
        }
        self.history.push_back(estimate.to_vec());
        let denom = self.history.len() as f64;
        Ok(self.running.iter().map(|&r| r / denom).collect())
    }

    /// Number of rounds currently inside the window.
    pub fn fill(&self) -> usize {
        self.history.len()
    }
}

/// Exponentially weighted smoother `s_t = λ·x_t + (1−λ)·s_{t−1}`, per value.
#[derive(Debug, Clone)]
pub struct ExponentialSmoother {
    k: usize,
    lambda: f64,
    state: Option<Vec<f64>>,
}

impl ExponentialSmoother {
    /// Creates a smoother with factor `lambda ∈ (0, 1]`; `lambda = 1`
    /// disables smoothing (output = input).
    pub fn new(k: usize, lambda: f64) -> Result<Self, SmoothError> {
        if !lambda.is_finite() || lambda <= 0.0 || lambda > 1.0 {
            return Err(SmoothError::InvalidLambda(lambda));
        }
        Ok(Self {
            k,
            lambda,
            state: None,
        })
    }

    /// Ingests one round's estimate and returns the smoothed histogram. The
    /// first round initializes the state to the estimate itself.
    pub fn update(&mut self, estimate: &[f64]) -> Result<Vec<f64>, SmoothError> {
        if estimate.len() != self.k {
            return Err(SmoothError::DimensionMismatch {
                expected: self.k,
                got: estimate.len(),
            });
        }
        match &mut self.state {
            None => {
                self.state = Some(estimate.to_vec());
            }
            Some(s) => {
                for (si, &xi) in s.iter_mut().zip(estimate) {
                    *si = self.lambda * xi + (1.0 - self.lambda) * *si;
                }
            }
        }
        Ok(self.state.clone().expect("state initialized above"))
    }
}

/// Per-value scalar Kalman filter with random-walk dynamics.
///
/// State model per value `v`: `f_t(v) = f_{t−1}(v) + w_t`, `w_t ~ (0, Q)`;
/// observation `f̂_t(v) = f_t(v) + e_t`, `e_t ~ (0, R)`. The posterior
/// variance `P` and gain `K` are identical for every value (they do not
/// depend on the data), so the filter stores one `(P)` plus the `k` means.
#[derive(Debug, Clone)]
pub struct KalmanSmoother {
    k: usize,
    q: f64,
    r: f64,
    posterior_var: f64,
    mean: Option<Vec<f64>>,
}

impl KalmanSmoother {
    /// Creates a filter for `k`-bin histograms with process noise `q` (per
    /// round drift variance) and observation noise `r` (the protocol's `V*`).
    pub fn new(k: usize, q: f64, r: f64) -> Result<Self, SmoothError> {
        if !q.is_finite() || !r.is_finite() || q < 0.0 || r <= 0.0 {
            return Err(SmoothError::InvalidNoise { q, r });
        }
        Ok(Self {
            k,
            q,
            r,
            posterior_var: 0.0,
            mean: None,
        })
    }

    /// Ingests one round's estimate and returns the filtered histogram.
    ///
    /// The first round initializes the mean to the raw estimate with
    /// posterior variance `R`.
    pub fn update(&mut self, estimate: &[f64]) -> Result<Vec<f64>, SmoothError> {
        if estimate.len() != self.k {
            return Err(SmoothError::DimensionMismatch {
                expected: self.k,
                got: estimate.len(),
            });
        }
        match &mut self.mean {
            None => {
                self.mean = Some(estimate.to_vec());
                self.posterior_var = self.r;
            }
            Some(mean) => {
                let prior_var = self.posterior_var + self.q;
                let gain = prior_var / (prior_var + self.r);
                for (m, &x) in mean.iter_mut().zip(estimate) {
                    *m += gain * (x - *m);
                }
                self.posterior_var = (1.0 - gain) * prior_var;
            }
        }
        Ok(self.mean.clone().expect("mean initialized above"))
    }

    /// Current posterior variance `P_t` (identical across values).
    pub fn posterior_variance(&self) -> f64 {
        self.posterior_var
    }

    /// The steady-state gain `K∞` the filter converges to:
    /// `K∞ = (−Q + sqrt(Q² + 4QR)) / (2R)` … expressed via the steady-state
    /// prior variance `P⁻ = (Q + sqrt(Q² + 4QR))/2`.
    pub fn steady_state_gain(&self) -> f64 {
        let prior = (self.q + (self.q * self.q + 4.0 * self.q * self.r).sqrt()) / 2.0;
        prior / (prior + self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_of_constant_series_is_constant() {
        let mut ma = MovingAverage::new(3, 4).unwrap();
        for _ in 0..10 {
            let out = ma.update(&[0.2, 0.3, 0.5]).unwrap();
            assert!((out[0] - 0.2).abs() < 1e-12);
            assert!((out[2] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_window_slides() {
        let mut ma = MovingAverage::new(1, 2).unwrap();
        assert_eq!(ma.update(&[1.0]).unwrap(), vec![1.0]);
        assert_eq!(ma.update(&[3.0]).unwrap(), vec![2.0]); // (1+3)/2
        assert_eq!(ma.update(&[5.0]).unwrap(), vec![4.0]); // (3+5)/2, 1 evicted
        assert_eq!(ma.fill(), 2);
    }

    #[test]
    fn moving_average_rejects_zero_window_and_bad_dims() {
        assert_eq!(
            MovingAverage::new(3, 0).unwrap_err(),
            SmoothError::EmptyWindow
        );
        let mut ma = MovingAverage::new(3, 2).unwrap();
        assert!(matches!(
            ma.update(&[0.0; 4]),
            Err(SmoothError::DimensionMismatch {
                expected: 3,
                got: 4
            })
        ));
    }

    #[test]
    fn exponential_first_round_passes_through() {
        let mut es = ExponentialSmoother::new(2, 0.3).unwrap();
        assert_eq!(es.update(&[0.7, 0.3]).unwrap(), vec![0.7, 0.3]);
    }

    #[test]
    fn exponential_lambda_one_is_identity() {
        let mut es = ExponentialSmoother::new(2, 1.0).unwrap();
        es.update(&[0.9, 0.1]).unwrap();
        assert_eq!(es.update(&[0.4, 0.6]).unwrap(), vec![0.4, 0.6]);
    }

    #[test]
    fn exponential_converges_to_constant_input() {
        let mut es = ExponentialSmoother::new(1, 0.25).unwrap();
        es.update(&[0.0]).unwrap();
        let mut out = vec![0.0];
        for _ in 0..200 {
            out = es.update(&[1.0]).unwrap();
        }
        assert!((out[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_rejects_bad_lambda() {
        for l in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(ExponentialSmoother::new(2, l).is_err(), "lambda {l}");
        }
    }

    #[test]
    fn kalman_gain_decreases_when_history_is_trusted() {
        // Q ≪ R: after convergence the gain should be small (heavy smoothing).
        let mut kf = KalmanSmoother::new(1, 1e-8, 1e-2).unwrap();
        for _ in 0..100 {
            kf.update(&[0.5]).unwrap();
        }
        assert!(
            kf.steady_state_gain() < 0.05,
            "gain {}",
            kf.steady_state_gain()
        );
    }

    #[test]
    fn kalman_gain_near_one_when_drift_dominates() {
        let kf = KalmanSmoother::new(1, 1.0, 1e-6).unwrap();
        assert!(kf.steady_state_gain() > 0.99);
    }

    #[test]
    fn kalman_posterior_variance_shrinks_below_observation_noise() {
        let mut kf = KalmanSmoother::new(1, 1e-6, 1e-2).unwrap();
        kf.update(&[0.1]).unwrap();
        let first = kf.posterior_variance();
        for _ in 0..50 {
            kf.update(&[0.1]).unwrap();
        }
        assert!(kf.posterior_variance() < first);
        assert!(kf.posterior_variance() < 1e-2);
    }

    #[test]
    fn kalman_tracks_a_step_change() {
        let mut kf = KalmanSmoother::new(1, 1e-4, 1e-3).unwrap();
        for _ in 0..30 {
            kf.update(&[0.2]).unwrap();
        }
        let mut out = vec![0.0];
        for _ in 0..60 {
            out = kf.update(&[0.8]).unwrap();
        }
        assert!((out[0] - 0.8).abs() < 0.05, "tracked to {}", out[0]);
    }

    #[test]
    fn kalman_rejects_bad_noise() {
        assert!(KalmanSmoother::new(1, -1.0, 0.1).is_err());
        assert!(KalmanSmoother::new(1, 0.1, 0.0).is_err());
        assert!(KalmanSmoother::new(1, f64::NAN, 0.1).is_err());
    }

    #[test]
    fn smoothers_reduce_noise_variance_on_static_signal() {
        // Feed i.i.d. noise around a constant and check the smoothed series'
        // deviation is much smaller than the raw one. Deterministic stream.
        use rand::RngCore;
        let mut rng = ldp_rand::derive_rng(1234, 0);
        let truth = 0.4;
        let mut kf = KalmanSmoother::new(1, 1e-8, 1.0 / 12.0).unwrap();
        let mut raw_sq = 0.0;
        let mut smooth_sq = 0.0;
        let rounds = 400;
        for _ in 0..rounds {
            let noise = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let obs = truth + noise;
            let out = kf.update(&[obs]).unwrap();
            raw_sq += (obs - truth).powi(2);
            smooth_sq += (out[0] - truth).powi(2);
        }
        assert!(
            smooth_sq < raw_sq / 10.0,
            "smoothed {smooth_sq} vs raw {raw_sq}"
        );
    }
}
