//! Consistency post-processing and temporal smoothing for LDP frequency
//! estimates.
//!
//! The estimators of the paper (Eq. (1)/(3)) are unbiased but *unconstrained*:
//! a round's estimated histogram can contain negative frequencies and does not
//! sum to one. Because LDP is closed under post-processing (Proposition 2.2 of
//! the paper), the server may project the raw estimate onto the probability
//! simplex — or any weaker consistency set — *for free*, privacy-wise, and
//! usually gains accuracy. This crate implements the standard consistency
//! methods from the LDP literature (Wang et al., "Locally Differentially
//! Private Frequency Estimation with Consistency", NDSS 2020) plus temporal
//! smoothers tailored to the paper's longitudinal setting, where the server
//! sees a *series* of estimates `f̂_1, …, f̂_τ` per value:
//!
//! * [`Consistency`] — per-round histogram repair: non-negativity clipping,
//!   additive renormalization (Norm), multiplicative renormalization
//!   (Norm-Mul), Euclidean simplex projection (Norm-Sub), significance
//!   thresholding (Base-Cut), and cut-to-one (Norm-Cut).
//! * [`simplex::project_onto_simplex`] — the O(k log k) sort-based Euclidean
//!   projection underlying Norm-Sub.
//! * [`smoothing`] — per-value time-series smoothers: moving average,
//!   exponential, and a scalar Kalman filter whose observation noise is the
//!   protocol's approximate variance `V*` (Eq. (5)) and whose process noise
//!   models how fast the population histogram drifts.
//!
//! Everything here is deterministic post-processing of already-sanitized
//! data: no randomness, no privacy cost.
//!
//! ## Quickstart
//!
//! ```
//! use ldp_postprocess::{Consistency, KalmanSmoother};
//!
//! // A raw LDP estimate: negative entries, does not sum to one.
//! let raw = vec![0.52, -0.08, 0.31, 0.02, 0.19];
//! let repaired = Consistency::NormSub.applied(&raw);
//! assert!((repaired.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! assert!(repaired.iter().all(|&f| f >= 0.0));
//!
//! // Smooth a longitudinal series: observation noise = the protocol's V*.
//! let mut filter = KalmanSmoother::new(5, 1e-6, 1e-3).unwrap();
//! let smoothed = filter.update(&repaired).unwrap();
//! assert_eq!(smoothed.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consistency;
pub mod simplex;
pub mod smoothing;

pub use consistency::Consistency;
pub use simplex::{clip_nonnegative, project_onto_simplex};
pub use smoothing::{ExponentialSmoother, KalmanSmoother, MovingAverage, SmoothError};
