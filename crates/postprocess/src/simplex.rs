//! Euclidean projection onto the probability simplex.
//!
//! Given a raw estimate `u ∈ ℝᵏ`, the projection finds the unique point of
//! `Δᵏ = {x : x ≥ 0, Σx = 1}` closest to `u` in L2. The classic O(k log k)
//! algorithm (Held–Wolfe–Crowder 1974; popularized by Duchi et al. 2008)
//! sorts the coordinates, finds the largest support size ρ whose water level
//! keeps every supported coordinate positive, and shifts-and-clips:
//!
//! ```text
//! ρ = max { j : u_(j) + (1 − Σ_{i≤j} u_(i)) / j > 0 }      (u_(1) ≥ u_(2) ≥ …)
//! λ = (1 − Σ_{i≤ρ} u_(i)) / ρ
//! x_i = max(u_i + λ, 0)
//! ```
//!
//! In the LDP consistency literature this is exactly the "Norm-Sub" method:
//! subtract a common constant from the surviving coordinates and clip the
//! rest to zero.

/// Projects `u` onto the probability simplex in place (L2-closest point with
/// non-negative entries summing to one).
///
/// Runs in O(k log k). No-op on an empty slice. Non-finite inputs are
/// clamped: `NaN` is treated as 0 and infinities are clamped to ±1 before
/// projecting, so the output is always a valid distribution.
pub fn project_onto_simplex(u: &mut [f64]) {
    if u.is_empty() {
        return;
    }
    for x in u.iter_mut() {
        if x.is_nan() {
            *x = 0.0;
        } else if !x.is_finite() {
            *x = x.signum();
        }
    }
    let mut sorted: Vec<f64> = u.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("inputs sanitized to finite"));
    let mut cumsum = 0.0;
    let mut lambda = 0.0;
    let mut found = false;
    for (j, &uj) in sorted.iter().enumerate() {
        cumsum += uj;
        let candidate = (1.0 - cumsum) / (j + 1) as f64;
        if uj + candidate > 0.0 {
            lambda = candidate;
            found = true;
        } else {
            break;
        }
    }
    if !found {
        // All coordinates equal and the water level collapses; fall back to
        // uniform (only reachable through pathological inputs).
        let k = u.len() as f64;
        u.fill(1.0 / k);
        return;
    }
    for x in u.iter_mut() {
        *x = (*x + lambda).max(0.0);
    }
}

/// Clips negative entries to zero in place (the weakest consistency repair:
/// output is non-negative but need not sum to one).
pub fn clip_nonnegative(u: &mut [f64]) {
    for x in u.iter_mut() {
        if x.is_nan() || *x < 0.0 {
            *x = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(u: &[f64]) -> f64 {
        u.iter().sum()
    }

    #[test]
    fn projection_output_is_a_distribution() {
        let mut u = vec![0.5, -0.2, 0.9, -0.1, 0.3];
        project_onto_simplex(&mut u);
        assert!((sum(&u) - 1.0).abs() < 1e-12);
        assert!(u.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn projection_is_identity_on_the_simplex() {
        let mut u = vec![0.2, 0.3, 0.5];
        let orig = u.clone();
        project_onto_simplex(&mut u);
        for (a, b) in u.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_of_uniform_plus_constant_is_uniform() {
        // Adding a constant shifts all coordinates equally; the projection
        // must remove it exactly.
        let k = 7;
        let mut u: Vec<f64> = (0..k).map(|_| 1.0 / k as f64 + 0.35).collect();
        project_onto_simplex(&mut u);
        for &x in &u {
            assert!((x - 1.0 / k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_concentrates_dominant_coordinate() {
        let mut u = vec![5.0, 0.0, 0.0];
        project_onto_simplex(&mut u);
        assert!((u[0] - 1.0).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
        assert_eq!(u[2], 0.0);
    }

    #[test]
    fn projection_preserves_coordinate_order() {
        let mut u = vec![0.9, 0.1, -0.4, 0.5];
        project_onto_simplex(&mut u);
        assert!(u[0] >= u[3] && u[3] >= u[1] && u[1] >= u[2]);
    }

    #[test]
    fn projection_matches_brute_force_on_grid() {
        // Brute-force the k = 2 case: Δ² is the segment (t, 1−t), t ∈ [0,1];
        // minimize the squared distance by scanning a fine grid.
        let cases = [[0.8, -0.3], [2.0, 2.0], [-1.0, -2.0], [0.3, 0.4]];
        for case in cases {
            let mut u = case.to_vec();
            project_onto_simplex(&mut u);
            let mut best = (f64::INFINITY, 0.0);
            let steps = 100_000;
            for i in 0..=steps {
                let t = i as f64 / steps as f64;
                let d = (case[0] - t).powi(2) + (case[1] - (1.0 - t)).powi(2);
                if d < best.0 {
                    best = (d, t);
                }
            }
            assert!(
                (u[0] - best.1).abs() < 1e-4,
                "case {case:?}: {} vs {}",
                u[0],
                best.1
            );
        }
    }

    #[test]
    fn projection_handles_nan_and_infinity() {
        let mut u = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.2];
        project_onto_simplex(&mut u);
        assert!((sum(&u) - 1.0).abs() < 1e-12);
        assert!(u.iter().all(|&x| x.is_finite() && x >= 0.0));
    }

    #[test]
    fn projection_on_empty_slice_is_noop() {
        let mut u: Vec<f64> = vec![];
        project_onto_simplex(&mut u);
        assert!(u.is_empty());
    }

    #[test]
    fn projection_single_element_is_one() {
        let mut u = vec![-3.0];
        project_onto_simplex(&mut u);
        assert_eq!(u, vec![1.0]);
    }

    #[test]
    fn clip_zeroes_negatives_and_keeps_positives() {
        let mut u = vec![-0.5, 0.25, f64::NAN, 0.0];
        clip_nonnegative(&mut u);
        assert_eq!(u, vec![0.0, 0.25, 0.0, 0.0]);
    }
}
