//! Shuffle-model extension (the paper's §7 future work).
//!
//! The paper notes that a user's fixed hash function acts as a persistent
//! pseudonym and proposes countering it with a trusted shuffler that breaks
//! the report↔identifier link. This crate provides the two pieces needed to
//! study LOLOHA in that model:
//!
//! * [`Shuffler`] — anonymizes one collection round: reports are detached
//!   from user identities and uniformly permuted. To keep the server
//!   computable (it needs *a* hash per report), the hash function travels
//!   *with* its report, so the server learns the multiset of
//!   (hash, cell) pairs but not which user sent which — hashes stop being
//!   linkable pseudonyms across rounds.
//! * [`amplified_epsilon`] — privacy amplification by shuffling: an
//!   ε0-LDP report among `n` shuffled reports satisfies
//!   (ε, δ)-central-DP with
//!   `ε = ln(1 + (e^{ε0} − 1)·(4·√(2·ln(4/δ)/n) / (e^{ε0}+1) + 4/n))`
//!   (Feldman–McMillan–Talwar-style closed form as popularized in the
//!   shuffle-DP literature; exact constants vary by paper — this bound is
//!   used for *reporting*, the mechanism itself is unchanged).
//!
//! The estimator is unaffected by shuffling: support counting is a
//! symmetric function of the (hash, cell) multiset — verified by test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ldp_primitives::error::ParamError;
use ldp_rand::shuffle as fisher_yates;
use rand::RngCore;

/// A report travelling through the shuffler: the sender's hash function
/// plus their sanitized cell, with no user identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnonymousReport<H> {
    /// The hash function that produced the support mapping.
    pub hash: H,
    /// The sanitized LOLOHA report in `[0, g)`.
    pub cell: u32,
}

/// A trusted shuffler for one collection round.
#[derive(Debug, Default)]
pub struct Shuffler;

impl Shuffler {
    /// Uniformly permutes a batch of anonymous reports in place, erasing
    /// the submission order (the only identity signal left).
    pub fn shuffle<H, R: RngCore + ?Sized>(reports: &mut [AnonymousReport<H>], rng: &mut R) {
        fisher_yates(reports, rng);
    }
}

/// Privacy amplification by shuffling: the central (ε, δ)-DP level of one
/// ε0-LDP report hidden among `n` shuffled reports.
///
/// Returns an error when the bound's precondition fails (`n` too small for
/// the requested `ε0`/`δ`), in which case no amplification may be claimed.
pub fn amplified_epsilon(eps_local: f64, n: u64, delta: f64) -> Result<f64, ParamError> {
    ldp_primitives::error::check_epsilon(eps_local)?;
    if !(delta > 0.0 && delta < 1.0) {
        return Err(ParamError::InvalidProbability { p: delta, q: delta });
    }
    if n == 0 {
        return Err(ParamError::DomainTooSmall { k: 0, min: 1 });
    }
    let nf = n as f64;
    let e = eps_local.exp();
    let term = 4.0 * (2.0 * (4.0 / delta).ln() / nf).sqrt() / (e + 1.0) + 4.0 / nf;
    // The closed form requires the bracketed term below one to be
    // meaningful; otherwise report the un-amplified local ε.
    let amplified = (1.0 + (e - 1.0) * term).ln();
    Ok(amplified.min(eps_local))
}

/// How much shuffling buys at a standard deployment scale: the ratio
/// `ε_local / ε_central` (≥ 1; larger is better).
pub fn amplification_factor(eps_local: f64, n: u64, delta: f64) -> Result<f64, ParamError> {
    let central = amplified_epsilon(eps_local, n, delta)?;
    Ok(eps_local / central.max(f64::MIN_POSITIVE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_hash::{CarterWegman, Preimages, SeededHash, UniversalFamily};
    use ldp_rand::derive_rng;
    use loloha::{LolohaClient, LolohaParams};

    #[test]
    fn amplification_validates_inputs() {
        assert!(amplified_epsilon(0.0, 100, 1e-6).is_err());
        assert!(amplified_epsilon(1.0, 0, 1e-6).is_err());
        assert!(amplified_epsilon(1.0, 100, 0.0).is_err());
        assert!(amplified_epsilon(1.0, 100, 1.5).is_err());
    }

    #[test]
    fn amplification_improves_with_population() {
        let small = amplified_epsilon(1.0, 1_000, 1e-6).unwrap();
        let large = amplified_epsilon(1.0, 100_000, 1e-6).unwrap();
        assert!(large < small, "{large} vs {small}");
        assert!(
            large < 0.1,
            "1e5 users should amplify far below eps=1: {large}"
        );
    }

    #[test]
    fn amplification_never_exceeds_local_eps() {
        for &(e0, n) in &[(0.5, 10u64), (5.0, 100), (1.0, 10_000_000)] {
            let amp = amplified_epsilon(e0, n, 1e-8).unwrap();
            assert!(amp <= e0 + 1e-12, "e0={e0} n={n}: {amp}");
            assert!(amp > 0.0);
        }
    }

    #[test]
    fn amplification_factor_is_at_least_one() {
        let f = amplification_factor(1.0, 50_000, 1e-6).unwrap();
        assert!(f >= 1.0);
        assert!(f > 5.0, "50k users should amplify >5x, got {f}");
    }

    #[test]
    fn shuffling_preserves_the_multiset() {
        let mut rng = derive_rng(700, 0);
        let family = CarterWegman::new(2).unwrap();
        let mut reports: Vec<AnonymousReport<_>> = (0..100)
            .map(|i| AnonymousReport {
                hash: family.sample(&mut rng),
                cell: i % 2,
            })
            .collect();
        let mut before: Vec<(u64, u64, u32)> = reports
            .iter()
            .map(|r| (r.hash.parts().0, r.hash.parts().1, r.cell))
            .collect();
        Shuffler::shuffle(&mut reports, &mut rng);
        let mut after: Vec<(u64, u64, u32)> = reports
            .iter()
            .map(|r| (r.hash.parts().0, r.hash.parts().1, r.cell))
            .collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn estimation_is_invariant_under_shuffling() {
        // Support counting is symmetric in the reports: shuffled and
        // unshuffled rounds must produce identical histograms.
        let k = 30u64;
        let n = 2_000;
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let family = CarterWegman::new(2).unwrap();
        let mut rng = derive_rng(701, 0);
        let mut reports = Vec::with_capacity(n);
        for u in 0..n {
            let mut c = LolohaClient::new(&family, k, params, &mut rng).unwrap();
            let cell = c.report((u as u64) % k, &mut rng);
            reports.push(AnonymousReport {
                hash: *c.hash_fn(),
                cell,
            });
        }
        let count_supports = |reports: &[AnonymousReport<ldp_hash::CwHash>]| {
            let mut counts = vec![0u64; k as usize];
            for r in reports {
                let pre = Preimages::build(&r.hash, k);
                for &v in pre.cell(r.cell) {
                    counts[v as usize] += 1;
                }
            }
            counts
        };
        let plain = count_supports(&reports);
        Shuffler::shuffle(&mut reports, &mut rng);
        let shuffled = count_supports(&reports);
        assert_eq!(plain, shuffled);
    }

    #[test]
    fn loloha_first_report_amplifies() {
        // End-to-end story: BiLOLOHA's eps_1-LDP first report, shuffled
        // among the paper's n = 45222 Adult users, is centrally tiny.
        let params = LolohaParams::bi(1.0, 0.5).unwrap();
        let central = amplified_epsilon(params.eps_first(), 45_222, 1e-6).unwrap();
        assert!(central < 0.05, "central eps {central}");
        let _ = SeededHash::g(&CarterWegman::new(2).unwrap().sample(&mut derive_rng(1, 1)));
    }
}
