//! Parameterizations for two-round (PRR ∘ IRR) chained protocols.
//!
//! A chained unary protocol is fixed by four probabilities: the memoized
//! PRR pair `(p1, q1)` — which alone determines the longitudinal bound ε∞ —
//! and the per-report IRR pair `(p2, q2)` — chosen so that the *first*
//! report satisfies ε1-LDP, with `0 < ε1 < ε∞`.
//!
//! The composed single-report channel has
//! `ps = p1·p2 + (1−p1)·q2` and `qs = q1·p2 + (1−q1)·q2`,
//! and the unary ε of `(ps, qs)` must equal ε1. The paper (and its companion
//! work \[5\]) give closed forms for the L-SUE and L-OSUE combinations; the
//! L-OUE / L-SOUE extensions are solved numerically by bisection. Tests
//! cross-check the closed forms against the solver.

use crate::accountant::cap_classes_for;
use ldp_primitives::error::{check_epsilon_order, ParamError};
use ldp_primitives::params::{oue_params, sue_params, PerturbParams};

/// Which UE protocol is used in each round of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UeChain {
    /// SUE + SUE — the utility-oriented RAPPOR, "L-SUE" in \[5\].
    SueSue,
    /// OUE + SUE — the optimized "L-OSUE" of \[5\].
    OueSue,
    /// OUE + OUE — "L-OUE" (extension; \[5\] found it dominated by L-OSUE).
    OueOue,
    /// SUE + OUE — "L-SOUE" (extension).
    SueOue,
}

impl UeChain {
    /// Human-readable protocol name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            UeChain::SueSue => "RAPPOR",
            UeChain::OueSue => "L-OSUE",
            UeChain::OueOue => "L-OUE",
            UeChain::SueOue => "L-SOUE",
        }
    }
}

/// A fully resolved chained parameterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainParams {
    /// PRR (memoized) pair.
    pub prr: PerturbParams,
    /// IRR (fresh per report) pair.
    pub irr: PerturbParams,
    /// The longitudinal budget ε∞ the PRR pair encodes.
    pub eps_inf: f64,
    /// The first-report budget ε1 the composition encodes.
    pub eps_first: f64,
}

impl ChainParams {
    /// The composed single-report pair `(ps, qs)`.
    pub fn composed(&self) -> PerturbParams {
        let ps = self.prr.p * self.irr.p + (1.0 - self.prr.p) * self.irr.q;
        let qs = self.prr.q * self.irr.p + (1.0 - self.prr.q) * self.irr.q;
        PerturbParams::new(ps, qs).expect("composition of valid params is valid")
    }

    /// Eq. (5): the approximate variance `V*` of this chain for `n` users.
    pub fn variance_approx(&self, n: f64) -> f64 {
        ldp_primitives::estimator::chained_variance_approx(
            n, self.prr.p, self.prr.q, self.irr.p, self.irr.q,
        )
    }
}

/// Resolves the `(p1, q1, p2, q2)` of a UE chain at `(ε∞, ε1)`.
///
/// Closed forms (verified in tests against the numeric solver):
///
/// * L-SUE: `p2 = (e^{(ε∞+ε1)/2} − 1) / (e^{(ε∞+ε1)/2} + e^{ε∞/2} − e^{ε1/2} − 1)`
/// * L-OSUE: `p2 = (e^{ε∞+ε1} − 1) / (e^{ε∞+ε1} + e^{ε∞} − e^{ε1} − 1)`
pub fn ue_chain_params(
    chain: UeChain,
    eps_inf: f64,
    eps_first: f64,
) -> Result<ChainParams, ParamError> {
    check_epsilon_order(eps_first, eps_inf)?;
    let (p1, q1) = match chain {
        UeChain::SueSue | UeChain::SueOue => sue_params(eps_inf),
        UeChain::OueSue | UeChain::OueOue => oue_params(eps_inf),
    };
    let prr = PerturbParams::new(p1, q1).expect("PRR params valid");
    let irr = match chain {
        UeChain::SueSue => {
            let a = ((eps_inf + eps_first) / 2.0).exp();
            let p2 = (a - 1.0) / (a + (eps_inf / 2.0).exp() - (eps_first / 2.0).exp() - 1.0);
            PerturbParams::new(p2, 1.0 - p2).expect("L-SUE IRR valid")
        }
        UeChain::OueSue => {
            let a = (eps_inf + eps_first).exp();
            let p2 = (a - 1.0) / (a + eps_inf.exp() - eps_first.exp() - 1.0);
            PerturbParams::new(p2, 1.0 - p2).expect("L-OSUE IRR valid")
        }
        UeChain::OueOue | UeChain::SueOue => solve_oue_irr(prr, eps_first)?,
    };
    Ok(ChainParams {
        prr,
        irr,
        eps_inf,
        eps_first,
    })
}

/// Numerically solves for an OUE-style IRR (`p2 = 1/2`, free `q2`) such that
/// the composed first report is exactly ε1-LDP.
///
/// The composed unary ε is continuous and strictly decreasing in `q2` on
/// `(0, 1/2)`: at `q2 → 0` the IRR adds no upward noise (ε → ε∞ from the
/// PRR), at `q2 → 1/2` the report is pure noise (ε → 0). Bisection is
/// therefore exact to machine precision.
fn solve_oue_irr(prr: PerturbParams, eps_first: f64) -> Result<PerturbParams, ParamError> {
    let composed_eps = |q2: f64| -> f64 {
        let irr = PerturbParams { p: 0.5, q: q2 };
        let ps = prr.p * irr.p + (1.0 - prr.p) * irr.q;
        let qs = prr.q * irr.p + (1.0 - prr.q) * irr.q;
        ((ps * (1.0 - qs)) / ((1.0 - ps) * qs)).ln()
    };
    let (mut lo, mut hi) = (1e-12, 0.5 - 1e-12);
    // Ensure the target is bracketed; otherwise the (ε∞, ε1) pair is
    // unachievable with this IRR family.
    if composed_eps(lo) < eps_first || composed_eps(hi) > eps_first {
        return Err(ParamError::EpsilonOrder {
            eps_first,
            eps_inf: composed_eps(lo),
        });
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if composed_eps(mid) > eps_first {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    PerturbParams::new(0.5, 0.5 * (lo + hi))
}

/// The L-GRR parameterization over a `k`-ary domain (§2.4.3), using the
/// paper's published closed form verbatim:
/// `p2 = (e^{ε∞+ε1} − 1) / ((k−1)(e^{ε∞} − e^{ε1}) + e^{ε∞+ε1} − 1)`,
/// with `q2 = (1 − p2)/(k − 1)`.
///
/// The paper derives this from the two-path shorthand
/// `p_s = p1·p2 + q1·q2`, which drops the `(k−1)`/`(k−2)` collision
/// multiplicities of the exact k-ary composition. Consequence (pinned by
/// tests): for `k > 2` the *exact* first-report leakage
/// ([`lgrr_first_report_eps`]) is **strictly below** the requested ε1 —
/// the parameterization over-noises, never under-noises. The reproduction
/// uses this form for all figures so the L-GRR curves match the reference
/// implementation; [`lgrr_params_exact`] provides the tight alternative.
pub fn lgrr_params(
    k: u64,
    eps_inf: f64,
    eps_first: f64,
) -> Result<(PerturbParams, PerturbParams), ParamError> {
    check_epsilon_order(eps_first, eps_inf)?;
    if k < 2 {
        return Err(ParamError::DomainTooSmall { k, min: 2 });
    }
    let kf = k as f64;
    let a = eps_inf.exp();
    let b = eps_first.exp();
    let p1 = a / (a + kf - 1.0);
    let q1 = 1.0 / (a + kf - 1.0);
    let p2 = (a * b - 1.0) / ((kf - 1.0) * (a - b) + a * b - 1.0);
    let q2 = (1.0 - p2) / (kf - 1.0);
    Ok((PerturbParams::new(p1, q1)?, PerturbParams::new(p2, q2)?))
}

/// The exact L-GRR parameterization: solves
/// `ps/qs = e^{ε1}` over the full k-ary two-step transition
/// (`ps = p1·p2 + (k−1)·q1·q2`, `qs = p1·q2 + q1·p2 + (k−2)·q1·q2`),
/// giving
/// `p2 = (e^{ε∞+ε1} + (k−2)e^{ε1} − (k−1)) / ((e^{ε∞} − 1)(e^{ε1} + k − 1))`.
/// Coincides with [`lgrr_params`] at `k = 2`.
pub fn lgrr_params_exact(
    k: u64,
    eps_inf: f64,
    eps_first: f64,
) -> Result<(PerturbParams, PerturbParams), ParamError> {
    check_epsilon_order(eps_first, eps_inf)?;
    if k < 2 {
        return Err(ParamError::DomainTooSmall { k, min: 2 });
    }
    let kf = k as f64;
    let a = eps_inf.exp();
    let b = eps_first.exp();
    let p1 = a / (a + kf - 1.0);
    let q1 = 1.0 / (a + kf - 1.0);
    let p2 = (a * b + (kf - 2.0) * b - (kf - 1.0)) / ((a - 1.0) * (b + kf - 1.0));
    let q2 = (1.0 - p2) / (kf - 1.0);
    Ok((PerturbParams::new(p1, q1)?, PerturbParams::new(p2, q2)?))
}

/// The exact first-report ε of an L-GRR chain, from the full two-step
/// transition over the k-ary domain:
/// `ps = p1·p2 + (k−1)·q1·q2`, `qs = p1·q2 + q1·p2 + (k−2)·q1·q2`,
/// ε1 = ln(ps/qs). Used to verify the closed form above.
pub fn lgrr_first_report_eps(k: u64, prr: PerturbParams, irr: PerturbParams) -> f64 {
    let kf = k as f64;
    let ps = prr.p * irr.p + (kf - 1.0) * prr.q * irr.q;
    let qs = prr.p * irr.q + prr.q * irr.p + (kf - 2.0) * prr.q * irr.q;
    (ps / qs).ln()
}

/// The worst-case longitudinal budget of a UE/GRR chain on a `k`-ary
/// domain: `k · ε∞` (each distinct value consumes a fresh PRR).
pub fn chain_budget_cap(k: u64, eps_inf: f64) -> f64 {
    cap_classes_for(k) as f64 * eps_inf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn composed_eps(c: &ChainParams) -> f64 {
        c.composed().epsilon_unary()
    }

    #[test]
    fn rejects_bad_epsilon_order() {
        assert!(ue_chain_params(UeChain::SueSue, 1.0, 1.0).is_err());
        assert!(ue_chain_params(UeChain::OueSue, 1.0, 2.0).is_err());
        assert!(ue_chain_params(UeChain::SueSue, 1.0, 0.0).is_err());
        assert!(lgrr_params(10, 1.0, 1.5).is_err());
    }

    #[test]
    fn lsue_closed_form_hits_eps_first() {
        for &(ei, a) in &[(1.0, 0.4), (2.0, 0.5), (4.0, 0.6), (0.5, 0.1)] {
            let e1 = a * ei;
            let c = ue_chain_params(UeChain::SueSue, ei, e1).unwrap();
            assert!(
                (composed_eps(&c) - e1).abs() < 1e-9,
                "ε∞={ei} α={a}: composed {} vs {e1}",
                composed_eps(&c)
            );
            // PRR pair encodes ε∞.
            assert!((c.prr.epsilon_unary() - ei).abs() < 1e-9);
        }
    }

    #[test]
    fn losue_closed_form_hits_eps_first() {
        for &(ei, a) in &[(1.0, 0.4), (2.0, 0.5), (4.0, 0.6), (5.0, 0.3)] {
            let e1 = a * ei;
            let c = ue_chain_params(UeChain::OueSue, ei, e1).unwrap();
            assert!(
                (composed_eps(&c) - e1).abs() < 1e-9,
                "ε∞={ei} α={a}: composed {} vs {e1}",
                composed_eps(&c)
            );
            assert!((c.prr.epsilon_unary() - ei).abs() < 1e-9);
            assert_eq!(c.prr.p, 0.5, "L-OSUE PRR is OUE");
        }
    }

    #[test]
    fn oue_irr_solver_hits_eps_first() {
        for chain in [UeChain::OueOue, UeChain::SueOue] {
            for &(ei, a) in &[(1.0, 0.4), (3.0, 0.5), (5.0, 0.6)] {
                let e1 = a * ei;
                let c = ue_chain_params(chain, ei, e1).unwrap();
                assert!(
                    (composed_eps(&c) - e1).abs() < 1e-8,
                    "{chain:?} ε∞={ei} α={a}"
                );
                assert_eq!(c.irr.p, 0.5, "OUE-style IRR has p2 = 1/2");
            }
        }
    }

    #[test]
    fn lsue_matches_rappor_deployment_parameters() {
        // The RAPPOR deployment used p2 = 0.75, q2 = 0.25 for its IRR.
        // Solving for which (ε∞, ε1) that corresponds to: with SUE PRR at
        // ε∞ = ln(9) (p1 = 0.75), p2 = 0.75 gives the deployment chain.
        let ei = 9.0f64.ln();
        let c_target = 0.75f64;
        // Find e1 by scanning: the closed form is monotone in e1.
        let mut lo = 1e-6;
        let mut hi = ei - 1e-6;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            let c = ue_chain_params(UeChain::SueSue, ei, mid).unwrap();
            if c.irr.p < c_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c = ue_chain_params(UeChain::SueSue, ei, 0.5 * (lo + hi)).unwrap();
        assert!((c.irr.p - 0.75).abs() < 1e-6);
        assert!((c.prr.p - 0.75).abs() < 1e-9);
    }

    #[test]
    fn lgrr_paper_form_is_conservative() {
        // The paper's shorthand-derived p2 yields an exact first-report
        // leakage at or below the requested ε1 (equality only at k = 2).
        for &k in &[2u64, 10, 96, 360] {
            for &(ei, a) in &[(1.0, 0.4), (3.0, 0.5), (5.0, 0.6)] {
                let e1 = a * ei;
                let (prr, irr) = lgrr_params(k, ei, e1).unwrap();
                let actual = lgrr_first_report_eps(k, prr, irr);
                assert!(
                    actual <= e1 + 1e-9,
                    "k={k} ε∞={ei} α={a}: {actual} exceeds {e1}"
                );
                if k == 2 {
                    assert!((actual - e1).abs() < 1e-9, "k=2 must be tight");
                } else {
                    assert!(actual < e1, "k={k} should be strictly conservative");
                }
                // PRR encodes ε∞ as a GRR ratio regardless.
                assert!(((prr.p / prr.q).ln() - ei).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lgrr_exact_form_hits_eps_first() {
        for &k in &[2u64, 10, 96, 360, 1412] {
            for &(ei, a) in &[(1.0, 0.4), (3.0, 0.5), (5.0, 0.6), (0.5, 0.1)] {
                let e1 = a * ei;
                let (prr, irr) = lgrr_params_exact(k, ei, e1).unwrap();
                let actual = lgrr_first_report_eps(k, prr, irr);
                assert!(
                    (actual - e1).abs() < 1e-9,
                    "k={k} ε∞={ei} α={a}: {actual} vs {e1}"
                );
            }
        }
    }

    #[test]
    fn lgrr_forms_coincide_at_k2() {
        let (prr_a, irr_a) = lgrr_params(2, 2.0, 1.0).unwrap();
        let (prr_b, irr_b) = lgrr_params_exact(2, 2.0, 1.0).unwrap();
        assert!((prr_a.p - prr_b.p).abs() < 1e-12);
        assert!((irr_a.p - irr_b.p).abs() < 1e-12);
    }

    #[test]
    fn irr_noise_decreases_as_eps_first_approaches_eps_inf() {
        // ε1 → ε∞ means the IRR adds no noise: p2 → 1.
        let c_far = ue_chain_params(UeChain::OueSue, 2.0, 0.5).unwrap();
        let c_near = ue_chain_params(UeChain::OueSue, 2.0, 1.99).unwrap();
        assert!(c_near.irr.p > c_far.irr.p);
        assert!(c_near.irr.p > 0.99);
    }

    #[test]
    fn variance_approx_decreases_with_more_users() {
        let c = ue_chain_params(UeChain::OueSue, 2.0, 1.0).unwrap();
        assert!(c.variance_approx(10_000.0) < c.variance_approx(1_000.0));
    }

    #[test]
    fn chain_budget_cap_is_k_eps() {
        assert_eq!(chain_budget_cap(96, 2.0), 192.0);
    }
}
