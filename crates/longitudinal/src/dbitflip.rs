//! dBitFlipPM (§2.4.4; Ding, Kulkarni & Yekhanin, 2017).
//!
//! The domain `[k]` is generalized into `b` equal-width buckets; each user
//! fixes `d` sampled bucket positions forever and, for every *new* bucket
//! value, memoizes one SUE-style randomization of the `d` sampled bits
//! (`p = e^{ε∞/2}/(e^{ε∞/2}+1)`). There is **no second round**: repeats of
//! the same bucket resend the identical vector — which is exactly what the
//! change-detection attack of Table 2 exploits.
//!
//! The effective memoized input classes are `min(d + 1, b)`: one per sampled
//! bucket that the user's value can land on, plus a single shared "none of
//! my sampled buckets" class (all-zero signal). This is why the paper's
//! Table 1 reports a `min(d+1, b)·ε∞` longitudinal budget.

use crate::accountant::BudgetAccountant;
use ldp_hash::BucketMapper;
use ldp_primitives::error::ParamError;
use ldp_primitives::estimator::frequency_estimates;
use ldp_primitives::params::sue_params;
use ldp_primitives::BitVec;
use ldp_rand::{sample_distinct, Bernoulli};
use rand::RngCore;

/// One dBitFlipPM report: the memoized bits for the user's `d` sampled
/// bucket positions (the positions themselves are registered once).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DBitReport {
    /// Bit `l` is the perturbed value for sampled bucket `j_l`.
    pub bits: BitVec,
}

/// A dBitFlipPM client.
#[derive(Debug, Clone)]
pub struct DBitFlipClient {
    mapper: BucketMapper,
    sampled: Vec<u32>,
    keep: Bernoulli,
    noise: Bernoulli,
    /// Memoized d-bit vectors, one per input class (see module docs).
    memo: Vec<Option<BitVec>>,
    accountant: BudgetAccountant,
}

impl DBitFlipClient {
    /// Creates a client over domain `[0, k)` with `b` buckets, `d` sampled
    /// bits and longitudinal budget `eps_inf`. The `d` bucket positions are
    /// drawn (without replacement) from `rng` and fixed for the client's
    /// lifetime.
    pub fn new<R: RngCore + ?Sized>(
        k: u64,
        b: u32,
        d: u32,
        eps_inf: f64,
        rng: &mut R,
    ) -> Result<Self, ParamError> {
        ldp_primitives::error::check_epsilon(eps_inf)?;
        if d == 0 || d > b || b as u64 > k {
            return Err(ParamError::InvalidBuckets { b, d, k });
        }
        let mapper = BucketMapper::new(k, b).ok_or(ParamError::InvalidBuckets { b, d, k })?;
        let sampled: Vec<u32> = sample_distinct(rng, b as u64, d as usize)
            .into_iter()
            .map(|j| j as u32)
            .collect();
        let (p, q) = sue_params(eps_inf);
        let classes = (d + 1).min(b);
        Ok(Self {
            mapper,
            sampled,
            keep: Bernoulli::new(p).expect("valid p"),
            noise: Bernoulli::new(q).expect("valid q"),
            memo: vec![None; d as usize + 1],
            accountant: BudgetAccountant::new(eps_inf, classes),
        })
    }

    /// The sampled bucket positions `j_1 < … < j_d` (registered with the
    /// server once, mirroring the protocol's setup message).
    pub fn sampled(&self) -> &[u32] {
        &self.sampled
    }

    /// The bucket a domain value falls into (ground truth for the
    /// change-detection analysis).
    pub fn bucket_of(&self, value: u64) -> u32 {
        self.mapper.bucket(value)
    }

    /// The memoization input class of a bucket: the index of the matching
    /// sampled position, or `d` for "not sampled".
    fn class_of(&self, bucket: u32) -> u32 {
        match self.sampled.binary_search(&bucket) {
            Ok(l) => l as u32,
            Err(_) => self.sampled.len() as u32,
        }
    }

    /// Produces this step's report.
    ///
    /// # Panics
    /// Panics if `value` is outside the domain.
    pub fn report<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) -> DBitReport {
        let mut bits = BitVec::zeros(self.sampled.len());
        self.report_into(value, rng, &mut bits);
        DBitReport { bits }
    }

    /// Like [`Self::report`] but writes the `d` report bits into a
    /// caller-provided buffer, avoiding the per-report allocation on the
    /// hot path. The RNG draw sequence is identical to [`Self::report`].
    ///
    /// # Panics
    /// Panics if `value` is outside the domain or `out.len() != d`.
    pub fn report_into<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R, out: &mut BitVec) {
        let bucket = self.mapper.bucket(value);
        let class = self.class_of(bucket);
        // The "none sampled" class only exists when d < b.
        let account_class = class.min(self.accountant_classes() - 1);
        self.accountant.observe(account_class);
        if self.memo[class as usize].is_none() {
            let d = self.sampled.len();
            let mut bits = BitVec::zeros(d);
            for (l, &j) in self.sampled.iter().enumerate() {
                let bern = if j == bucket { &self.keep } else { &self.noise };
                if bern.sample(rng) {
                    bits.set(l, true);
                }
            }
            self.memo[class as usize] = Some(bits);
        }
        out.copy_from(self.memo[class as usize].as_ref().expect("just inserted"));
    }

    fn accountant_classes(&self) -> u32 {
        (self.sampled.len() as u32 + 1).min(self.mapper.b())
    }

    /// The user's accumulated longitudinal privacy loss ε̌ (Eq. (8)).
    pub fn privacy_spent(&self) -> f64 {
        self.accountant.spent()
    }

    /// Number of distinct memoized input classes so far.
    pub fn distinct_classes(&self) -> u32 {
        self.accountant.classes_seen()
    }

    /// The number of sampled bits `d` (the report width).
    pub fn d(&self) -> usize {
        self.sampled.len()
    }

    /// The bucket count `b`.
    pub fn b(&self) -> u32 {
        self.mapper.b()
    }

    /// Iterates the memoized `(class, d-bit vector)` pairs in class order
    /// (the persistence layer's traversal). Classes `0..d` are sampled
    /// positions; class `d` is the shared "none of my sampled buckets"
    /// vector.
    pub fn memo_entries(&self) -> impl Iterator<Item = (u32, &BitVec)> + '_ {
        self.memo
            .iter()
            .enumerate()
            .filter_map(|(c, m)| m.as_ref().map(|bits| (c as u32, bits)))
    }

    /// Restores a memoized report vector when rebuilding a client from a
    /// snapshot, charging the accountant exactly as the original
    /// memoization did.
    ///
    /// # Panics
    /// Panics if `class > d`, the class is already memoized with different
    /// bits, or the vector width differs from `d`.
    pub fn restore_memo(&mut self, class: u32, bits: &BitVec) {
        assert!((class as usize) < self.memo.len(), "class outside [0, d]");
        assert_eq!(bits.len(), self.sampled.len(), "report width mismatch");
        let slot = &mut self.memo[class as usize];
        assert!(
            slot.is_none() || slot.as_ref() == Some(bits),
            "memoization is write-once (class {class})"
        );
        *slot = Some(bits.clone());
        self.accountant
            .observe(class.min(self.accountant_classes() - 1));
    }
}

/// The dBitFlipPM aggregation server: estimates a `b`-bin bucket histogram
/// with Eq. (1), scaling `n` by `d/b` because each user only covers `d`
/// of the `b` bucket counters.
#[derive(Debug, Clone)]
pub struct DBitFlipServer {
    b: u32,
    d: u32,
    p: f64,
    q: f64,
    counts: Vec<u64>,
    n_step: u64,
}

impl DBitFlipServer {
    /// Creates a server for `b` buckets, `d` sampled bits, budget `eps_inf`.
    pub fn new(b: u32, d: u32, eps_inf: f64) -> Result<Self, ParamError> {
        ldp_primitives::error::check_epsilon(eps_inf)?;
        if d == 0 || d > b {
            return Err(ParamError::InvalidBuckets { b, d, k: b as u64 });
        }
        let (p, q) = sue_params(eps_inf);
        Ok(Self {
            b,
            d,
            p,
            q,
            counts: vec![0; b as usize],
            n_step: 0,
        })
    }

    /// Ingests one report given the user's registered sampled positions.
    ///
    /// # Panics
    /// Panics if the report width differs from the registration.
    pub fn ingest(&mut self, sampled: &[u32], report: &DBitReport) {
        assert_eq!(sampled.len(), self.d as usize, "sampled positions mismatch");
        assert_eq!(report.bits.len(), self.d as usize, "report width mismatch");
        for l in report.bits.iter_ones() {
            self.counts[sampled[l] as usize] += 1;
        }
        self.n_step += 1;
    }

    /// Merges pre-aggregated bucket counts (thread-local aggregation).
    pub fn ingest_counts(&mut self, counts: &[u64], n: u64) {
        assert_eq!(counts.len(), self.b as usize, "count length mismatch");
        for (acc, &c) in self.counts.iter_mut().zip(counts) {
            *acc += c;
        }
        self.n_step += n;
    }

    /// Number of reports ingested this step.
    pub fn n_step(&self) -> u64 {
        self.n_step
    }

    /// Estimates this step's `b`-bin bucket histogram and resets.
    pub fn estimate_and_reset(&mut self) -> Vec<f64> {
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        // Each bucket counter only hears from the n·d/b users that sampled it.
        let n_eff = self.n_step as f64 * self.d as f64 / self.b as f64;
        let est = frequency_estimates(&counts, n_eff, self.p, self.q);
        self.counts.fill(0);
        self.n_step = 0;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    #[test]
    fn constructor_validates() {
        let mut rng = derive_rng(520, 0);
        assert!(DBitFlipClient::new(100, 10, 0, 1.0, &mut rng).is_err());
        assert!(DBitFlipClient::new(100, 10, 11, 1.0, &mut rng).is_err());
        assert!(DBitFlipClient::new(5, 10, 1, 1.0, &mut rng).is_err());
        assert!(DBitFlipClient::new(100, 10, 1, 0.0, &mut rng).is_err());
        assert!(DBitFlipServer::new(10, 11, 1.0).is_err());
    }

    #[test]
    fn sampled_positions_are_distinct_and_sorted() {
        let mut rng = derive_rng(521, 0);
        let c = DBitFlipClient::new(360, 90, 16, 1.0, &mut rng).unwrap();
        let s = c.sampled();
        assert_eq!(s.len(), 16);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(s.iter().all(|&j| j < 90));
    }

    #[test]
    fn same_bucket_resends_identical_report() {
        let mut rng = derive_rng(522, 0);
        let mut c = DBitFlipClient::new(100, 10, 10, 1.0, &mut rng).unwrap();
        // values 0 and 5 share bucket 0 (width 10).
        let r1 = c.report(0, &mut rng);
        let r2 = c.report(5, &mut rng);
        let r3 = c.report(0, &mut rng);
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        assert_eq!(c.distinct_classes(), 1);
    }

    #[test]
    fn unsampled_buckets_share_one_class() {
        let mut rng = derive_rng(523, 0);
        // d = 1: at most one sampled bucket; every other bucket shares the
        // "none" class, so budget caps at 2ε∞ no matter how much the value
        // churns.
        let mut c = DBitFlipClient::new(100, 100, 1, 1.5, &mut rng).unwrap();
        for v in 0..100u64 {
            let _ = c.report(v, &mut rng);
        }
        assert!(c.distinct_classes() <= 2);
        assert!(c.privacy_spent() <= 2.0 * 1.5 + 1e-12);
    }

    #[test]
    fn d_equals_b_reports_full_vector() {
        let mut rng = derive_rng(524, 0);
        let mut c = DBitFlipClient::new(40, 8, 8, 2.0, &mut rng).unwrap();
        let r = c.report(0, &mut rng);
        assert_eq!(r.bits.len(), 8);
        // With d = b every bucket is sampled: the "none" class is
        // unreachable and the cap is b·ε∞.
        for v in 0..40u64 {
            let _ = c.report(v, &mut rng);
        }
        assert_eq!(c.distinct_classes(), 8);
        assert!((c.privacy_spent() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn report_into_matches_report_draw_for_draw() {
        let mut rng_a = derive_rng(529, 0);
        let mut rng_b = derive_rng(529, 0);
        let mut a = DBitFlipClient::new(100, 10, 4, 1.5, &mut rng_a).unwrap();
        let mut b = DBitFlipClient::new(100, 10, 4, 1.5, &mut rng_b).unwrap();
        let mut buf = BitVec::zeros(a.d());
        for v in [3u64, 47, 3, 91, 12] {
            a.report_into(v, &mut rng_a, &mut buf);
            assert_eq!(buf, b.report(v, &mut rng_b).bits, "value {v}");
        }
    }

    #[test]
    fn restore_memo_rebuilds_state_and_accounting() {
        let mut rng = derive_rng(530, 0);
        let mut original = DBitFlipClient::new(100, 10, 4, 1.5, &mut rng).unwrap();
        for v in [3u64, 47, 91] {
            let _ = original.report(v, &mut rng);
        }
        let mut restored = DBitFlipClient::new(100, 10, 4, 1.5, &mut derive_rng(530, 0)).unwrap();
        // Same construction seed ⇒ same sampled positions.
        assert_eq!(original.sampled(), restored.sampled());
        for (class, bits) in original.memo_entries() {
            restored.restore_memo(class, bits);
        }
        assert_eq!(original.distinct_classes(), restored.distinct_classes());
        assert_eq!(original.privacy_spent(), restored.privacy_spent());
        // Memoized classes replay identically without touching the RNG.
        let mut dummy = derive_rng(531, 0);
        for v in [3u64, 47, 91] {
            assert_eq!(
                original.report(v, &mut derive_rng(532, 0)),
                restored.report(v, &mut dummy)
            );
        }
    }

    #[test]
    fn end_to_end_bucket_histogram_accuracy() {
        // d = b (utility mode) on a uniform-ish distribution.
        let k = 100u64;
        let b = 20u32;
        let eps = 3.0;
        let n = 30_000;
        let mut server = DBitFlipServer::new(b, b, eps).unwrap();
        let mut rng = derive_rng(525, 0);
        for u in 0..n {
            let mut crng = derive_rng(526, u);
            let mut c = DBitFlipClient::new(k, b, b, eps, &mut crng).unwrap();
            let v = ldp_rand::uniform_u64(&mut rng, k);
            let r = c.report(v, &mut crng);
            let sampled = c.sampled().to_vec();
            server.ingest(&sampled, &r);
        }
        let est = server.estimate_and_reset();
        for (j, &e) in est.iter().enumerate() {
            assert!((e - 0.05).abs() < 0.03, "bucket {j}: {e}");
        }
    }

    #[test]
    fn subsampled_estimation_is_still_unbiased() {
        // d < b: the n·d/b scaling must keep estimates centred.
        let k = 60u64;
        let b = 12u32;
        let d = 3u32;
        let eps = 4.0;
        let n = 60_000;
        let mut server = DBitFlipServer::new(b, d, eps).unwrap();
        let _rng = derive_rng(527, 0);
        for u in 0..n {
            let mut crng = derive_rng(528, u);
            let mut c = DBitFlipClient::new(k, b, d, eps, &mut crng).unwrap();
            // Everyone holds value 0 → bucket 0 has frequency 1.
            let r = c.report(0, &mut crng);
            let sampled = c.sampled().to_vec();
            server.ingest(&sampled, &r);
        }
        let est = server.estimate_and_reset();
        assert!((est[0] - 1.0).abs() < 0.1, "bucket 0: {}", est[0]);
        for (j, &e) in est.iter().enumerate().skip(1) {
            assert!(e.abs() < 0.1, "bucket {j}: {e}");
        }
    }
}
