//! Memoization-based longitudinal LDP baselines (§2.4 of the LOLOHA paper).
//!
//! Longitudinal frequency monitoring cannot simply repeat a one-shot LDP
//! protocol: fresh noise every step enables averaging attacks, and naive
//! composition burns `τ·ε`. The state of the art instead *memoizes* a
//! permanently randomized response (PRR) per distinct input and re-noises it
//! per report (IRR). This crate implements every such baseline the paper
//! evaluates:
//!
//! * [`LongitudinalUeClient`] — the chained unary-encoding family of
//!   Arcolezi et al. \[5\]: **L-SUE** (= RAPPOR \[23\]), **L-OSUE**, plus the
//!   **L-OUE** / **L-SOUE** combinations as extensions.
//! * [`LgrrClient`] — **L-GRR** \[5\]: GRR chained with GRR.
//! * [`DBitFlipClient`] — **dBitFlipPM** \[13\]: bucketized one-round
//!   memoization with `d`-out-of-`b` bit sampling.
//! * [`ThreshClient`] — **THRESH** (Joseph et al., NeurIPS 2018), the
//!   data-change-based alternative discussed in §1/§6, as an extension.
//! * [`DdrmClient`] — a **DDRM**-style difference-tree mechanism (Xue et
//!   al., TKDE 2022), the other §1/§6 data-change-based baseline, as an
//!   extension (documented simplification in [`ddrm`]).
//!
//! Shared infrastructure:
//!
//! * [`chain`] — the (p1, q1, p2, q2) parameterizations: paper closed forms,
//!   cross-checked against a numeric solver.
//! * [`memo`] — compact per-user memoization tables.
//! * [`irr`] — the instantaneous-randomization step over bit vectors.
//! * [`BudgetAccountant`] — per-user longitudinal privacy loss ε̌ (Eq. (8)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod chain;
pub mod dbitflip;
pub mod ddrm;
pub mod irr;
pub mod lgrr;
pub mod lue;
pub mod memo;
pub mod thresh;

pub use accountant::BudgetAccountant;
pub use chain::{ChainParams, UeChain};
pub use dbitflip::{DBitFlipClient, DBitFlipServer, DBitReport};
pub use ddrm::{DdrmClient, DdrmReport, DdrmServer, DyadicNode};
pub use lgrr::{LgrrClient, LgrrServer};
pub use lue::{LongitudinalUeClient, LueServer};
pub use thresh::{ThreshClient, ThreshConfig, ThreshServer};
