//! THRESH — the data-change-based alternative (Joseph, Roth, Ullman &
//! Waggoner, NeurIPS 2018), §1/§6 of the LOLOHA paper.
//!
//! THRESH takes the opposite bet from memoization: instead of bounding the
//! leakage per *input class*, it keeps a global estimate frozen and spends
//! budget only when the population votes that the estimate has drifted.
//! The paper contrasts it with LOLOHA on two grounds, both visible in this
//! implementation (and in the `ablation_thresh` bench):
//!
//! 1. **Budget splitting is sub-optimal under LDP** — the total budget is
//!    divided between a per-round voting channel and per-epoch estimation
//!    channels, so each piece is weak.
//! 2. **Accuracy decays with the number of distribution changes** — once
//!    the `max_updates` epochs are exhausted the estimate goes stale no
//!    matter how wrong it becomes.
//!
//! This is a faithful *simplification* of THRESH (documented deviations:
//! the local "my estimate is stale" evidence is the user's value having
//! changed since their last estimation epoch, rather than the paper's
//! concentration-based test; budget is split evenly rather than with their
//! geometric schedule). It is an extension for comparison — the LOLOHA
//! paper itself does not evaluate THRESH.

use crate::accountant::{cap_classes_for, BudgetAccountant};
use ldp_primitives::error::ParamError;
use ldp_primitives::params::oue_params;
use ldp_primitives::{BitVec, Grr, PerturbParams, UeClient};
use rand::RngCore;

/// Shared THRESH configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThreshConfig {
    /// Domain size.
    pub k: u64,
    /// Total per-user privacy budget for the whole stream.
    pub eps_total: f64,
    /// Number of collection rounds the deployment is provisioned for.
    pub tau: usize,
    /// Maximum number of estimation epochs (the paper's `L`).
    pub max_updates: usize,
    /// Debiased vote fraction that triggers an update epoch.
    pub vote_threshold: f64,
}

impl ThreshConfig {
    /// Validates a configuration.
    pub fn new(
        k: u64,
        eps_total: f64,
        tau: usize,
        max_updates: usize,
        vote_threshold: f64,
    ) -> Result<Self, ParamError> {
        ldp_primitives::error::check_epsilon(eps_total)?;
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        if tau == 0 || max_updates == 0 || !(0.0..1.0).contains(&vote_threshold) {
            return Err(ParamError::InvalidProbability {
                p: vote_threshold,
                q: vote_threshold,
            });
        }
        Ok(Self {
            k,
            eps_total,
            tau,
            max_updates,
            vote_threshold,
        })
    }

    /// Per-round voting budget: half the total spread over every round.
    pub fn eps_vote(&self) -> f64 {
        self.eps_total / 2.0 / self.tau as f64
    }

    /// Per-epoch estimation budget: half the total spread over the allowed
    /// updates.
    pub fn eps_estimate(&self) -> f64 {
        self.eps_total / 2.0 / self.max_updates as f64
    }
}

/// One THRESH user.
#[derive(Debug, Clone)]
pub struct ThreshClient {
    cfg: ThreshConfig,
    vote_rr: Grr,
    estimator: UeClient,
    /// Value at the user's last estimation epoch (the staleness evidence).
    anchor: Option<u64>,
    accountant: BudgetAccountant,
    rounds_voted: u32,
}

impl ThreshClient {
    /// Creates a client.
    pub fn new(cfg: ThreshConfig) -> Result<Self, ParamError> {
        let vote_rr = Grr::new(2, cfg.eps_vote())?;
        let estimator = UeClient::oue(cfg.k, cfg.eps_estimate())?;
        // Budget classes: one per voting round plus one per update epoch.
        let classes = cap_classes_for((cfg.tau + cfg.max_updates) as u64);
        Ok(Self {
            cfg,
            vote_rr,
            estimator,
            anchor: None,
            accountant: BudgetAccountant::new(1.0, classes),
            rounds_voted: 0,
        })
    }

    /// Produces the vote for this round (every round).
    pub fn vote<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) -> bool {
        let stale = match self.anchor {
            None => true, // never participated in an estimate
            Some(a) => a != value,
        };
        // Spending: one fresh ε_vote class per round.
        self.accountant.observe(self.rounds_voted);
        self.rounds_voted += 1;
        self.vote_rr.perturb(u64::from(stale), rng) == 1
    }

    /// Produces a fresh estimation report (update epochs only) and anchors
    /// the current value.
    pub fn report<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.cfg.k as usize);
        self.report_into(value, rng, &mut out);
        out
    }

    /// Like [`Self::report`] but writes into a caller-provided buffer,
    /// avoiding the per-epoch allocation.
    ///
    /// # Panics
    /// Panics if `out.len() != k`.
    pub fn report_into<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R, out: &mut BitVec) {
        self.anchor = Some(value);
        self.accountant
            .observe(self.cfg.tau as u32 + self.updates_spent());
        self.estimator.perturb_into(value, rng, out);
    }

    fn updates_spent(&self) -> u32 {
        (self.accountant.classes_seen()).saturating_sub(self.rounds_voted)
    }

    /// Total privacy spent so far: votes at ε_vote plus epochs at ε_est.
    pub fn privacy_spent(&self) -> f64 {
        self.rounds_voted as f64 * self.cfg.eps_vote()
            + self.updates_spent() as f64 * self.cfg.eps_estimate()
    }
}

/// The THRESH server: counts votes each round, refreshes the global
/// estimate when the debiased vote fraction crosses the threshold.
#[derive(Debug, Clone)]
pub struct ThreshServer {
    cfg: ThreshConfig,
    vote_params: PerturbParams,
    est_params: PerturbParams,
    global: Vec<f64>,
    updates_done: usize,
    votes_this_round: (u64, u64), // (yes, total)
    est_counts: Vec<u64>,
    est_n: u64,
}

impl ThreshServer {
    /// Creates a server with a uniform prior estimate.
    pub fn new(cfg: ThreshConfig) -> Result<Self, ParamError> {
        let vote = Grr::new(2, cfg.eps_vote())?;
        let (p, q) = oue_params(cfg.eps_estimate());
        Ok(Self {
            cfg,
            vote_params: PerturbParams::new(vote.p(), vote.q())?,
            est_params: PerturbParams::new(p, q)?,
            global: vec![1.0 / cfg.k as f64; cfg.k as usize],
            updates_done: 0,
            votes_this_round: (0, 0),
            est_counts: vec![0; cfg.k as usize],
            est_n: 0,
        })
    }

    /// Ingests one vote.
    pub fn ingest_vote(&mut self, vote: bool) {
        if vote {
            self.votes_this_round.0 += 1;
        }
        self.votes_this_round.1 += 1;
    }

    /// Closes the voting phase: returns `true` if an update epoch starts
    /// (budget for one remains and the debiased vote fraction crosses the
    /// threshold).
    pub fn close_votes(&mut self) -> bool {
        let (yes, total) = self.votes_this_round;
        self.votes_this_round = (0, 0);
        if total == 0 || self.updates_done >= self.cfg.max_updates {
            return false;
        }
        // Debias the randomized-response votes (Eq. (1) with k = 2).
        let frac = ldp_primitives::estimator::frequency_estimate(
            yes as f64,
            total as f64,
            self.vote_params.p,
            self.vote_params.q,
        );
        frac > self.cfg.vote_threshold
    }

    /// Ingests one estimation report (update epochs).
    pub fn ingest_estimate(&mut self, bits: &BitVec) {
        for i in bits.iter_ones() {
            self.est_counts[i] += 1;
        }
        self.est_n += 1;
    }

    /// Closes an update epoch: replaces the global estimate.
    pub fn close_update(&mut self) {
        let counts: Vec<f64> = self.est_counts.iter().map(|&c| c as f64).collect();
        self.global = ldp_primitives::estimator::frequency_estimates(
            &counts,
            self.est_n as f64,
            self.est_params.p,
            self.est_params.q,
        );
        self.est_counts.fill(0);
        self.est_n = 0;
        self.updates_done += 1;
    }

    /// The current global estimate (stale between update epochs).
    pub fn estimate(&self) -> &[f64] {
        &self.global
    }

    /// Update epochs consumed so far.
    pub fn updates_done(&self) -> usize {
        self.updates_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::{derive_rng, uniform_u64};

    fn cfg(k: u64, tau: usize, updates: usize) -> ThreshConfig {
        ThreshConfig::new(k, 8.0, tau, updates, 0.3).unwrap()
    }

    #[test]
    fn config_validates() {
        assert!(ThreshConfig::new(1, 1.0, 10, 2, 0.3).is_err());
        assert!(ThreshConfig::new(10, 0.0, 10, 2, 0.3).is_err());
        assert!(ThreshConfig::new(10, 1.0, 0, 2, 0.3).is_err());
        assert!(ThreshConfig::new(10, 1.0, 10, 0, 0.3).is_err());
        assert!(ThreshConfig::new(10, 1.0, 10, 2, 1.5).is_err());
    }

    #[test]
    fn budget_split_is_accounted() {
        let c = cfg(8, 10, 2);
        assert!((c.eps_vote() - 0.4).abs() < 1e-12);
        assert!((c.eps_estimate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_spend_never_exceeds_eps_total() {
        let c = cfg(8, 10, 2);
        let mut client = ThreshClient::new(c).unwrap();
        let mut rng = derive_rng(900, 0);
        for t in 0..10u64 {
            let _ = client.vote(t % 8, &mut rng);
            if t % 5 == 0 && client.updates_spent() < 2 {
                let _ = client.report(t % 8, &mut rng);
            }
        }
        assert!(
            client.privacy_spent() <= c.eps_total + 1e-9,
            "{}",
            client.privacy_spent()
        );
    }

    #[test]
    fn stable_population_triggers_no_updates_after_first() {
        // After the first estimation epoch anchors everyone, a static
        // population votes "fresh" and no further updates fire.
        let c = cfg(6, 8, 4);
        let n = 4_000;
        let mut server = ThreshServer::new(c).unwrap();
        let mut clients: Vec<_> = (0..n).map(|_| ThreshClient::new(c).unwrap()).collect();
        let mut rng = derive_rng(901, 0);
        let values: Vec<u64> = (0..n).map(|_| uniform_u64(&mut rng, 6)).collect();
        let mut updates = 0;
        for _round in 0..8 {
            for (u, client) in clients.iter_mut().enumerate() {
                let v = client.vote(values[u], &mut rng);
                server.ingest_vote(v);
            }
            if server.close_votes() {
                updates += 1;
                for (u, client) in clients.iter_mut().enumerate() {
                    server.ingest_estimate(&client.report(values[u], &mut rng));
                }
                server.close_update();
            }
        }
        assert_eq!(updates, 1, "static data should settle after one epoch");
        // And the settled estimate is decent.
        let est = server.estimate();
        for (v, &e) in est.iter().enumerate() {
            assert!((e - 1.0 / 6.0).abs() < 0.1, "v={v}: {e}");
        }
    }

    #[test]
    fn report_into_reuses_buffer_and_matches_report() {
        let c = cfg(8, 10, 4);
        let mut x = ThreshClient::new(c).unwrap();
        let mut y = ThreshClient::new(c).unwrap();
        let mut rng_a = derive_rng(904, 0);
        let mut rng_b = derive_rng(904, 0);
        let mut buf = BitVec::zeros(8);
        for v in [1u64, 5, 2] {
            x.report_into(v, &mut rng_a, &mut buf);
            assert_eq!(buf, y.report(v, &mut rng_b), "value {v}");
        }
    }

    #[test]
    fn update_budget_exhausts_under_churn() {
        // Constant churn keeps voting "stale"; after max_updates epochs the
        // server stops updating and the estimate goes stale.
        let c = cfg(6, 12, 2);
        let n = 2_000;
        let mut server = ThreshServer::new(c).unwrap();
        let mut clients: Vec<_> = (0..n).map(|_| ThreshClient::new(c).unwrap()).collect();
        let mut rng = derive_rng(902, 0);
        for round in 0..12u64 {
            for (u, client) in clients.iter_mut().enumerate() {
                // Everyone's value changes every round.
                let value = (u as u64 + round) % 6;
                let v = client.vote(value, &mut rng);
                server.ingest_vote(v);
            }
            if server.close_votes() {
                for (u, client) in clients.iter_mut().enumerate() {
                    let value = (u as u64 + round) % 6;
                    server.ingest_estimate(&client.report(value, &mut rng));
                }
                server.close_update();
            }
        }
        assert_eq!(server.updates_done(), 2, "must stop at max_updates");
    }
}
