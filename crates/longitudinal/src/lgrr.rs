//! L-GRR (§2.4.3): Generalized Randomized Response chained with itself.
//!
//! The cheapest protocol on the wire (one symbol in `[k]`) and the best
//! utility for *small* domains, but its variance explodes with `k` — the
//! paper shows it is orders of magnitude worse than the UE family on the
//! evaluation datasets, which this reproduction confirms (Fig. 3).

use crate::accountant::{cap_classes_for, BudgetAccountant};
use crate::chain::lgrr_params;
use crate::memo::SymbolMemo;
use ldp_primitives::error::ParamError;
use ldp_primitives::estimator::chained_frequency_estimates;
use ldp_primitives::params::PerturbParams;
use ldp_primitives::Grr;
use rand::RngCore;

/// A longitudinal GRR client holding one user's memoized symbols.
#[derive(Debug, Clone)]
pub struct LgrrClient {
    k: u64,
    prr: Grr,
    irr: Grr,
    prr_params: PerturbParams,
    irr_params: PerturbParams,
    memo: SymbolMemo,
    accountant: BudgetAccountant,
}

impl LgrrClient {
    /// Creates a client over `[0, k)` with budgets `0 < eps_first < eps_inf`.
    ///
    /// Domains are limited to `k < 65535` by the memo encoding, far beyond
    /// every dataset in the paper.
    pub fn new(k: u64, eps_inf: f64, eps_first: f64) -> Result<Self, ParamError> {
        if !(2..u16::MAX as u64).contains(&k) {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let (prr_params, irr_params) = lgrr_params(k, eps_inf, eps_first)?;
        let prr = Grr::new(k, eps_inf)?;
        let irr = Grr::with_retention(k, irr_params.p)?;
        Ok(Self {
            k,
            prr,
            irr,
            prr_params,
            irr_params,
            memo: SymbolMemo::new(cap_classes_for(k)),
            accountant: BudgetAccountant::new(eps_inf, cap_classes_for(k)),
        })
    }

    /// Domain size.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The PRR `(p1, q1)` pair.
    pub fn prr_params(&self) -> PerturbParams {
        self.prr_params
    }

    /// The IRR `(p2, q2)` pair.
    pub fn irr_params(&self) -> PerturbParams {
        self.irr_params
    }

    /// Produces this step's report symbol in `[0, k)`.
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn report<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) -> u64 {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        let class = value as u32;
        self.accountant.observe(class);
        let memoized = match self.memo.get(class) {
            Some(s) => s as u64,
            None => {
                let s = self.prr.perturb(value, rng);
                self.memo.insert(class, s as u16);
                s
            }
        };
        self.irr.perturb(memoized, rng)
    }

    /// The user's accumulated longitudinal privacy loss ε̌ (Eq. (8)).
    pub fn privacy_spent(&self) -> f64 {
        self.accountant.spent()
    }

    /// Number of distinct values memoized so far.
    pub fn distinct_values(&self) -> u32 {
        self.accountant.classes_seen()
    }

    /// Iterates the memoized `(class, symbol)` pairs in class order (the
    /// persistence layer's traversal).
    pub fn memo_entries(&self) -> impl Iterator<Item = (u32, u16)> + '_ {
        self.memo.iter()
    }

    /// Restores a memoized PRR symbol when rebuilding a client from a
    /// snapshot, charging the accountant exactly as the original
    /// memoization did.
    ///
    /// # Panics
    /// Panics if the cell already holds a different symbol (memoization is
    /// write-once) or `symbol >= k`.
    pub fn restore_memo(&mut self, class: u32, symbol: u16) {
        assert!((symbol as u64) < self.k, "symbol outside [0, k)");
        self.memo.insert(class, symbol);
        self.accountant.observe(class);
    }
}

/// The L-GRR aggregation server (per-step counting + Eq. (3)).
#[derive(Debug, Clone)]
pub struct LgrrServer {
    k: usize,
    prr: PerturbParams,
    irr: PerturbParams,
    counts: Vec<u64>,
    n_step: u64,
}

impl LgrrServer {
    /// Creates a server over `[0, k)` matching the client parameterization.
    pub fn new(k: u64, eps_inf: f64, eps_first: f64) -> Result<Self, ParamError> {
        let (prr, irr) = lgrr_params(k, eps_inf, eps_first)?;
        Ok(Self {
            k: k as usize,
            prr,
            irr,
            counts: vec![0; k as usize],
            n_step: 0,
        })
    }

    /// Ingests one report symbol.
    ///
    /// # Panics
    /// Panics if `symbol >= k`.
    pub fn ingest(&mut self, symbol: u64) {
        self.counts[symbol as usize] += 1;
        self.n_step += 1;
    }

    /// Merges pre-aggregated counts (thread-local aggregation).
    pub fn ingest_counts(&mut self, counts: &[u64], n: u64) {
        assert_eq!(counts.len(), self.k, "count length mismatch");
        for (acc, &c) in self.counts.iter_mut().zip(counts) {
            *acc += c;
        }
        self.n_step += n;
    }

    /// Number of reports ingested this step.
    pub fn n_step(&self) -> u64 {
        self.n_step
    }

    /// Estimates this step's histogram with Eq. (3) and resets the counters.
    ///
    /// Note the `q` used for counting symbols is the *per-other-symbol*
    /// probability, exactly as in the UE case thanks to the support-count
    /// formulation.
    pub fn estimate_and_reset(&mut self) -> Vec<f64> {
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        // The symbol-channel composition over k values has support
        // probabilities ps = p1 p2 + (k−1) q1 q2 for the true value and
        // qs = p1 q2 + q1 p2 + (k−2) q1 q2 otherwise; both are affine in the
        // indicator, so Eq. (3)'s chained inversion applies with the
        // *composed* pair.
        let kf = self.k as f64;
        let ps = self.prr.p * self.irr.p + (kf - 1.0) * self.prr.q * self.irr.q;
        let qs = self.prr.p * self.irr.q
            + self.prr.q * self.irr.p
            + (kf - 2.0) * self.prr.q * self.irr.q;
        let est = chained_frequency_estimates(&counts, self.n_step as f64, ps, qs, 1.0, 0.0);
        self.counts.fill(0);
        self.n_step = 0;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::lgrr_first_report_eps;
    use ldp_rand::{derive_rng, AliasTable};

    #[test]
    fn constructor_validates() {
        assert!(LgrrClient::new(1, 1.0, 0.5).is_err());
        assert!(LgrrClient::new(10, 1.0, 1.0).is_err());
        assert!(LgrrClient::new(100_000, 1.0, 0.5).is_err());
    }

    #[test]
    fn first_report_epsilon_within_target() {
        // The client uses the paper's closed form, which is conservative for
        // k > 2: the realized first-report leakage never exceeds ε1.
        let c = LgrrClient::new(20, 2.0, 1.0).unwrap();
        let actual = lgrr_first_report_eps(20, c.prr_params(), c.irr_params());
        assert!(
            actual <= 1.0 + 1e-9,
            "first-report ε {actual} exceeds target"
        );
        assert!(actual > 0.0);
    }

    #[test]
    fn memoization_budget() {
        let mut c = LgrrClient::new(10, 1.5, 0.5).unwrap();
        let mut rng = derive_rng(510, 0);
        for _ in 0..5 {
            let _ = c.report(2, &mut rng);
        }
        assert_eq!(c.distinct_values(), 1);
        let _ = c.report(9, &mut rng);
        assert!((c.privacy_spent() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn restore_memo_rebuilds_state_and_accounting() {
        let mut c = LgrrClient::new(10, 1.5, 0.5).unwrap();
        let mut rng = derive_rng(514, 0);
        for v in [2u64, 9, 2, 4] {
            let _ = c.report(v, &mut rng);
        }
        let mut restored = LgrrClient::new(10, 1.5, 0.5).unwrap();
        let entries: Vec<(u32, u16)> = c.memo_entries().collect();
        assert_eq!(entries.len(), 3);
        for &(class, sym) in &entries {
            restored.restore_memo(class, sym);
        }
        assert_eq!(restored.distinct_values(), c.distinct_values());
        assert_eq!(restored.privacy_spent(), c.privacy_spent());
        assert_eq!(restored.memo_entries().collect::<Vec<_>>(), entries);
    }

    #[test]
    fn reports_stay_in_domain() {
        let mut c = LgrrClient::new(7, 2.0, 1.0).unwrap();
        let mut rng = derive_rng(511, 0);
        for v in 0..7u64 {
            for _ in 0..20 {
                assert!(c.report(v, &mut rng) < 7);
            }
        }
    }

    #[test]
    fn end_to_end_small_domain_accuracy() {
        // L-GRR is designed for small k; check it estimates well there.
        let k = 4u64;
        let n = 20_000usize;
        let (ei, e1) = (3.0, 1.5);
        let mut server = LgrrServer::new(k, ei, e1).unwrap();
        let weights = [4.0, 3.0, 2.0, 1.0];
        let total: f64 = weights.iter().sum();
        let truth: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let alias = AliasTable::new(&weights).unwrap();
        let mut rng = derive_rng(512, 0);
        for u in 0..n {
            let mut c = LgrrClient::new(k, ei, e1).unwrap();
            let mut crng = derive_rng(513, u as u64);
            let v = alias.sample(&mut rng) as u64;
            server.ingest(c.report(v, &mut crng));
        }
        let est = server.estimate_and_reset();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            assert!((e - t).abs() < 0.05, "v={v}: {e} vs {t}");
        }
    }

    #[test]
    fn server_counts_merge() {
        let mut a = LgrrServer::new(4, 2.0, 1.0).unwrap();
        let mut b = LgrrServer::new(4, 2.0, 1.0).unwrap();
        a.ingest(2);
        b.ingest_counts(&[0, 0, 1, 0], 1);
        assert_eq!(a.estimate_and_reset(), b.estimate_and_reset());
    }
}
