//! The instantaneous randomization (IRR) step over bit vectors.
//!
//! Given a memoized PRR vector `x'`, each report re-randomizes every bit
//! independently: a 1 stays with probability `p2`, a 0 rises with
//! probability `q2`. This is the step that makes consecutive reports of the
//! same memoized state differ, hiding *when* the underlying value changed.
//!
//! The implementation mirrors `UeClient`: for sparse `q2` the rising zeros
//! are enumerated by geometric skipping and the (few) ones re-drawn
//! individually; for dense `q2` a straight per-bit loop is used.

use ldp_primitives::params::PerturbParams;
use ldp_primitives::BitVec;
use ldp_rand::{Bernoulli, SparseHits};
use rand::RngCore;

/// Below this `q2` the sparse path is used.
const SPARSE_Q_THRESHOLD: f64 = 0.12;

/// A reusable IRR perturbation kernel for `bits`-bit vectors.
#[derive(Debug, Clone)]
pub struct IrrKernel {
    bits: usize,
    params: PerturbParams,
    keep: Bernoulli,
    noise: Bernoulli,
}

impl IrrKernel {
    /// Creates a kernel applying `(p2, q2)` to `bits`-bit vectors.
    pub fn new(bits: usize, params: PerturbParams) -> Self {
        let keep = Bernoulli::new(params.p).expect("validated p");
        let noise = Bernoulli::new(params.q).expect("validated q");
        Self {
            bits,
            params,
            keep,
            noise,
        }
    }

    /// The `(p2, q2)` pair.
    pub fn params(&self) -> PerturbParams {
        self.params
    }

    /// Applies the IRR to the memoized blocks `input` (little-endian bit
    /// order, exactly `ceil(bits/64)` blocks), writing into `out`.
    pub fn perturb_blocks_into<R: RngCore + ?Sized>(
        &self,
        input: &[u64],
        rng: &mut R,
        out: &mut BitVec,
    ) {
        assert_eq!(out.len(), self.bits, "output length mismatch");
        assert_eq!(input.len(), self.bits.div_ceil(64), "input block mismatch");
        out.clear();
        let q = self.params.q;
        if q > 0.0 && q < SPARSE_Q_THRESHOLD {
            // Rising zeros via skipping (hits on one-positions are
            // overwritten below, which preserves independence).
            for i in SparseHits::new(q, self.bits as u64, rng).expect("q in (0,1)") {
                out.set(i as usize, true);
            }
            for i in iter_ones(input, self.bits) {
                out.set(i, self.keep.sample(rng));
            }
        } else {
            for i in 0..self.bits {
                let is_one = (input[i / 64] >> (i % 64)) & 1 == 1;
                let bern = if is_one { &self.keep } else { &self.noise };
                if bern.sample(rng) {
                    out.set(i, true);
                }
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`IrrKernel::perturb_blocks_into`].
    pub fn perturb_blocks<R: RngCore + ?Sized>(&self, input: &[u64], rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.bits);
        self.perturb_blocks_into(input, rng, &mut out);
        out
    }
}

/// Iterates set-bit indices of raw blocks limited to `bits`.
fn iter_ones(blocks: &[u64], bits: usize) -> impl Iterator<Item = usize> + '_ {
    blocks.iter().enumerate().flat_map(move |(bi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                return None;
            }
            let tz = w.trailing_zeros() as usize;
            w &= w - 1;
            Some(bi * 64 + tz)
        })
        .take_while(move |&i| i < bits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    fn params(p: f64, q: f64) -> PerturbParams {
        PerturbParams::new(p, q).unwrap()
    }

    #[test]
    fn preserves_rates_dense_path() {
        let kernel = IrrKernel::new(100, params(0.8, 0.3));
        let mut rng = derive_rng(400, 0);
        let mut input = vec![0u64; 2];
        for i in 0..50 {
            input[i / 64] |= 1 << (i % 64); // bits 0..50 set
        }
        let n = 30_000;
        let mut kept = 0usize;
        let mut risen = 0usize;
        for _ in 0..n {
            let out = kernel.perturb_blocks(&input, &mut rng);
            if out.get(10) {
                kept += 1;
            }
            if out.get(90) {
                risen += 1;
            }
        }
        let p_hat = kept as f64 / n as f64;
        let q_hat = risen as f64 / n as f64;
        assert!((p_hat - 0.8).abs() < 0.02, "p {p_hat}");
        assert!((q_hat - 0.3).abs() < 0.02, "q {q_hat}");
    }

    #[test]
    fn preserves_rates_sparse_path() {
        let kernel = IrrKernel::new(200, params(0.9, 0.05));
        let mut rng = derive_rng(401, 0);
        let mut input = vec![0u64; 4];
        input[0] |= 1; // only bit 0 set
        let n = 40_000;
        let mut kept = 0usize;
        let mut risen = 0usize;
        for _ in 0..n {
            let out = kernel.perturb_blocks(&input, &mut rng);
            if out.get(0) {
                kept += 1;
            }
            if out.get(150) {
                risen += 1;
            }
        }
        let p_hat = kept as f64 / n as f64;
        let q_hat = risen as f64 / n as f64;
        assert!((p_hat - 0.9).abs() < 0.01, "p {p_hat}");
        assert!((q_hat - 0.05).abs() < 0.01, "q {q_hat}");
    }

    #[test]
    fn all_zero_input_rises_at_rate_q() {
        let kernel = IrrKernel::new(64, params(0.7, 0.25));
        let mut rng = derive_rng(402, 0);
        let input = [0u64];
        let n = 20_000;
        let mut total = 0usize;
        for _ in 0..n {
            total += kernel.perturb_blocks(&input, &mut rng).count_ones();
        }
        let rate = total as f64 / (n as f64 * 64.0);
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_degenerate_channel() {
        // p = 1, q = tiny: ones always survive.
        let kernel = IrrKernel::new(70, params(1.0, 1e-9));
        let mut rng = derive_rng(403, 0);
        let mut input = vec![0u64; 2];
        input[1] |= 1 << 3; // bit 67
        for _ in 0..50 {
            let out = kernel.perturb_blocks(&input, &mut rng);
            assert!(out.get(67));
        }
    }

    #[test]
    fn iter_ones_respects_bit_limit() {
        let blocks = [u64::MAX, u64::MAX];
        let ones: Vec<usize> = iter_ones(&blocks, 70).collect();
        assert_eq!(ones.len(), 70);
        assert_eq!(*ones.last().unwrap(), 69);
    }
}
