//! Per-user longitudinal privacy accounting (Eq. (8) and Definition 3.2).
//!
//! Under the paper's "LDP on the users' values" view, a memoizing mechanism
//! spends a fresh ε∞ every time it memoizes a *new* input class — a distinct
//! value for RAPPOR/L-OSUE/L-GRR, a distinct hash cell for LOLOHA, a distinct
//! sampled-bucket pattern for dBitFlipPM — and nothing on repeats. The
//! accountant tracks the set of classes seen and reports
//! `ε̌ = ε∞ · |classes|`, capped at `ε∞ · cap` (the protocol's worst case:
//! k, g, or min(d+1, b)).

/// Tracks the distinct memoized input classes of one user.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    eps_inf: f64,
    cap: u32,
    seen: Vec<u64>, // bitset over class ids
    count: u32,
}

impl BudgetAccountant {
    /// Creates an accountant for per-class leakage `eps_inf` over at most
    /// `classes` distinct classes (the protocol's composition cap).
    pub fn new(eps_inf: f64, classes: u32) -> Self {
        Self {
            eps_inf,
            cap: classes,
            seen: vec![0u64; (classes as usize).div_ceil(64).max(1)],
            count: 0,
        }
    }

    /// Records that `class` was used as a memoization input this step.
    /// Returns `true` when the class is new (a fresh ε∞ was spent).
    #[inline]
    pub fn observe(&mut self, class: u32) -> bool {
        debug_assert!(class < self.cap, "class {class} beyond cap {}", self.cap);
        let (w, b) = ((class / 64) as usize, class % 64);
        let is_new = self.seen[w] >> b & 1 == 0;
        if is_new {
            self.seen[w] |= 1 << b;
            self.count += 1;
        }
        is_new
    }

    /// Number of distinct classes memoized so far.
    pub fn classes_seen(&self) -> u32 {
        self.count
    }

    /// The accumulated longitudinal privacy loss ε̌ = ε∞ · classes seen.
    pub fn spent(&self) -> f64 {
        self.eps_inf * self.count as f64
    }

    /// The worst-case bound ε∞ · cap this accountant can ever reach.
    pub fn worst_case(&self) -> f64 {
        self.eps_inf * self.cap as f64
    }
}

/// Clamps a domain size to the `u32` class space used by the accountant.
pub fn cap_classes_for(k: u64) -> u32 {
    k.min(u32::MAX as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_accountant_has_spent_nothing() {
        let a = BudgetAccountant::new(1.5, 10);
        assert_eq!(a.classes_seen(), 0);
        assert_eq!(a.spent(), 0.0);
        assert_eq!(a.worst_case(), 15.0);
    }

    #[test]
    fn repeats_are_free() {
        let mut a = BudgetAccountant::new(2.0, 5);
        assert!(a.observe(3));
        assert!(!a.observe(3));
        assert!(!a.observe(3));
        assert_eq!(a.classes_seen(), 1);
        assert_eq!(a.spent(), 2.0);
    }

    #[test]
    fn spent_grows_linearly_with_new_classes() {
        let mut a = BudgetAccountant::new(0.5, 100);
        for c in 0..7 {
            assert!(a.observe(c));
        }
        assert_eq!(a.classes_seen(), 7);
        assert!((a.spent() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn spent_never_exceeds_worst_case() {
        let mut a = BudgetAccountant::new(1.0, 8);
        for c in 0..8 {
            a.observe(c);
        }
        assert_eq!(a.spent(), a.worst_case());
    }

    #[test]
    fn monotone_in_observations() {
        let mut a = BudgetAccountant::new(1.0, 64);
        let mut prev = 0.0;
        for c in [5u32, 5, 1, 63, 1, 2, 5] {
            a.observe(c);
            assert!(a.spent() >= prev);
            prev = a.spent();
        }
        assert_eq!(a.classes_seen(), 4);
    }

    #[test]
    fn large_class_space() {
        let mut a = BudgetAccountant::new(1.0, 1412);
        assert!(a.observe(1411));
        assert!(!a.observe(1411));
        assert_eq!(a.classes_seen(), 1);
    }
}
