//! DDRM-style difference-tree monitoring (documented simplification of
//! Xue et al., "DDRM: A Continual Frequency Estimation Mechanism with
//! Local Differential Privacy", TKDE 2022 — the paper's reference \[42\]).
//!
//! DDRM is the data-change-based alternative the paper contrasts LOLOHA
//! against in §1/§6: instead of memoizing sanitized *values*, users report
//! sanitized *differences* organized in a dyadic tree over the τ
//! collections, exploiting the assumption that boolean streams change
//! rarely (continuity). Its admitted limitations — budget allocation tied
//! to a τ fixed in advance, boolean domains — are exactly what this module
//! reproduces so the trade-off can be measured (`ablation_ddrm`).
//!
//! ## What is simplified, and why it is faithful
//!
//! The original allocates ε across tree levels and has each user report
//! several nodes. We make the allocation *by sampling*: each user is
//! assigned one uniformly random dyadic node (span `(start, end]` with
//! `end ≤ τ`), tracks their value at the two endpoints, and submits a
//! single 3-ary GRR report of the difference `v_end − v_start ∈ {−1,0,1}`
//! at the **full** budget ε (with `v_0 := 0`, so first-level nodes carry
//! absolute values). This preserves every property the comparison cares
//! about:
//!
//! * difference-tree reconstruction — `f̂_t = Σ_{node ∈ cover(t)} D̂_node`
//!   telescopes over the dyadic cover of `(0, t]`, O(log τ) terms;
//! * the τ-in-advance requirement — the node set depends on τ;
//! * boolean-only domains — longer-span differences stay in `{−1, 0, 1}`
//!   only for booleans;
//! * a *fixed total* privacy cost per user (here exactly ε, one report
//!   ever) that does not grow with data changes — the selling point of the
//!   family;
//! * accuracy that degrades as changes accumulate: node-difference
//!   variance is amortized only when most differences are zero.
//!
//! The cost of sampling is that each node is estimated from ≈ `n / N`
//! users (`N ≈ 2τ` nodes), which is the same `1/√(n/τ)`-type penalty the
//! original's per-level splitting pays in ε.

use crate::accountant::BudgetAccountant;
use ldp_primitives::error::{check_epsilon, ParamError};
use ldp_primitives::Grr;
use ldp_rand::uniform_u64;
use rand::RngCore;

/// A dyadic node: spans rounds `(index·2^level, (index+1)·2^level]`,
/// 1-based rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DyadicNode {
    /// Tree level; the span length is `2^level`.
    pub level: u8,
    /// Horizontal index at that level.
    pub index: u32,
}

impl DyadicNode {
    /// First round covered (exclusive lower endpoint is `start()`, the
    /// anchor round; `0` means the fixed baseline `v_0 = 0`).
    pub fn start(&self) -> u32 {
        self.index << self.level
    }

    /// Last round covered (inclusive) — the round at which the node closes
    /// and its difference is reported.
    pub fn end(&self) -> u32 {
        (self.index + 1) << self.level
    }
}

/// Enumerates every dyadic node with `end ≤ tau`, the reporting universe.
pub fn nodes_for(tau: u32) -> Vec<DyadicNode> {
    let mut out = Vec::new();
    let mut level = 0u8;
    while (1u32 << level) <= tau {
        let count = tau >> level;
        for index in 0..count {
            out.push(DyadicNode { level, index });
        }
        level += 1;
    }
    out
}

/// The dyadic cover of `(0, t]`: the O(log t) nodes whose spans partition
/// the prefix, following the binary representation of `t`.
pub fn dyadic_cover(t: u32) -> Vec<DyadicNode> {
    let mut out = Vec::new();
    let mut start = 0u32;
    let mut bit = 31u8;
    loop {
        let len = 1u32 << bit;
        if t & len != 0 {
            out.push(DyadicNode {
                level: bit,
                index: start >> bit,
            });
            start += len;
        }
        if bit == 0 {
            break;
        }
        bit -= 1;
    }
    out
}

/// One user's sanitized difference report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrmReport {
    /// The node this user covers (assigned at setup, public).
    pub node: DyadicNode,
    /// The 3-ary GRR output encoding a difference in `{−1, 0, +1}`.
    pub symbol: i8,
}

/// A DDRM-style client for one boolean stream over a τ fixed in advance.
#[derive(Debug, Clone)]
pub struct DdrmClient {
    node: DyadicNode,
    grr: Grr,
    anchor: Option<i8>,
    round: u32,
    tau: u32,
    accountant: BudgetAccountant,
}

impl DdrmClient {
    /// Creates a client with a uniformly sampled node over `tau ≥ 1`
    /// rounds at budget `eps` (the user's total, spent exactly once).
    pub fn new<R: RngCore + ?Sized>(tau: u32, eps: f64, rng: &mut R) -> Result<Self, ParamError> {
        check_epsilon(eps)?;
        if tau == 0 {
            return Err(ParamError::DomainTooSmall { k: 0, min: 1 });
        }
        let universe = nodes_for(tau);
        let node = universe[uniform_u64(rng, universe.len() as u64) as usize];
        let anchor = if node.start() == 0 { Some(0) } else { None };
        Ok(Self {
            node,
            grr: Grr::new(3, eps)?,
            anchor,
            round: 0,
            tau,
            accountant: BudgetAccountant::new(eps, 1),
        })
    }

    /// The node this client was assigned.
    pub fn node(&self) -> DyadicNode {
        self.node
    }

    /// Observes this round's true boolean value; returns a report exactly
    /// once, at the round the assigned node closes.
    ///
    /// # Panics
    /// Panics if called more than `tau` times.
    pub fn observe<R: RngCore + ?Sized>(&mut self, value: bool, rng: &mut R) -> Option<DdrmReport> {
        self.round += 1;
        assert!(self.round <= self.tau, "observe called beyond tau rounds");
        if self.round == self.node.start() {
            self.anchor = Some(value as i8);
        }
        if self.round == self.node.end() {
            let anchor = self.anchor.expect("anchor round precedes closing round");
            let diff = value as i8 - anchor; // ∈ {−1, 0, 1}
            self.accountant.observe(0);
            let symbol = self.grr.perturb((diff + 1) as u64, rng) as i8 - 1;
            return Some(DdrmReport {
                node: self.node,
                symbol,
            });
        }
        None
    }

    /// Longitudinal privacy spent — at most ε, *independent of τ and of
    /// how often the value changes* (the family's selling point).
    pub fn privacy_spent(&self) -> f64 {
        self.accountant.spent()
    }
}

/// The DDRM aggregation server: averages unbiased per-node difference
/// estimates and reconstructs the per-round boolean frequency.
#[derive(Debug, Clone)]
pub struct DdrmServer {
    tau: u32,
    gap: f64, // p − q of the 3-ary GRR
    node_sum: Vec<f64>,
    node_n: Vec<u64>,
}

impl DdrmServer {
    /// Creates a server for `tau` rounds at budget `eps` (must match the
    /// clients').
    pub fn new(tau: u32, eps: f64) -> Result<Self, ParamError> {
        check_epsilon(eps)?;
        if tau == 0 {
            return Err(ParamError::DomainTooSmall { k: 0, min: 1 });
        }
        let grr = Grr::new(3, eps)?;
        let nodes = nodes_for(tau).len();
        Ok(Self {
            tau,
            gap: grr.p() - grr.q(),
            node_sum: vec![0.0; nodes],
            node_n: vec![0; nodes],
        })
    }

    fn node_slot(&self, node: DyadicNode) -> usize {
        // Level-major enumeration matching `nodes_for`.
        let mut offset = 0usize;
        for level in 0..node.level {
            offset += (self.tau >> level) as usize;
        }
        offset + node.index as usize
    }

    /// Ingests one report.
    ///
    /// # Panics
    /// Panics if the node lies outside the τ universe.
    pub fn ingest(&mut self, report: &DdrmReport) {
        let slot = self.node_slot(report.node);
        // E[symbol | diff] = diff · (p − q), so symbol/(p−q) is unbiased.
        self.node_sum[slot] += report.symbol as f64 / self.gap;
        self.node_n[slot] += 1;
    }

    /// The unbiased mean-difference estimate of one node (0 when no user
    /// covered it).
    pub fn node_estimate(&self, node: DyadicNode) -> f64 {
        let slot = self.node_slot(node);
        if self.node_n[slot] == 0 {
            0.0
        } else {
            self.node_sum[slot] / self.node_n[slot] as f64
        }
    }

    /// Reconstructs the boolean frequency series `f̂_1 … f̂_τ` by summing
    /// each round's dyadic cover. Estimates are unbiased; they are *not*
    /// clipped to `[0, 1]` (apply `ldp-postprocess` for that).
    pub fn estimate(&self) -> Vec<f64> {
        (1..=self.tau)
            .map(|t| dyadic_cover(t).iter().map(|&n| self.node_estimate(n)).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    #[test]
    fn nodes_for_counts_match_dyadic_structure() {
        assert_eq!(nodes_for(1).len(), 1);
        assert_eq!(nodes_for(4).len(), 4 + 2 + 1);
        assert_eq!(nodes_for(6).len(), 6 + 3 + 1);
        assert_eq!(nodes_for(8).len(), 8 + 4 + 2 + 1);
        // Every node closes within tau.
        for node in nodes_for(12) {
            assert!(node.end() <= 12);
            assert!(node.start() < node.end());
        }
    }

    #[test]
    fn dyadic_cover_partitions_the_prefix() {
        for t in 1u32..=64 {
            let cover = dyadic_cover(t);
            // Spans are contiguous from 0 to t.
            let mut pos = 0u32;
            for node in &cover {
                assert_eq!(node.start(), pos, "t={t}");
                pos = node.end();
            }
            assert_eq!(pos, t, "t={t}");
            assert!(cover.len() as u32 <= 32 - t.leading_zeros(), "t={t}");
        }
    }

    #[test]
    fn cover_nodes_exist_in_universe() {
        let tau = 21;
        let universe = nodes_for(tau);
        for t in 1..=tau {
            for node in dyadic_cover(t) {
                assert!(universe.contains(&node), "t={t} node {node:?}");
            }
        }
    }

    #[test]
    fn client_reports_exactly_once() {
        let mut rng = derive_rng(600, 0);
        let tau = 16;
        for trial in 0..50 {
            let mut client = DdrmClient::new(tau, 1.0, &mut rng).unwrap();
            let mut reports = 0;
            for t in 0..tau {
                if client.observe(t % 3 == 0, &mut rng).is_some() {
                    reports += 1;
                }
            }
            assert_eq!(reports, 1, "trial {trial}");
            assert!((client.privacy_spent() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn privacy_spent_is_flat_in_changes_and_tau() {
        // The family's headline: unlike memoization protocols, the budget
        // does not grow with the number of data changes.
        let mut rng = derive_rng(601, 0);
        let mut chaotic = DdrmClient::new(32, 0.5, &mut rng).unwrap();
        let mut constant = DdrmClient::new(32, 0.5, &mut rng).unwrap();
        for t in 0..32 {
            chaotic.observe(t % 2 == 0, &mut rng); // changes every round
            constant.observe(true, &mut rng);
        }
        assert!((chaotic.privacy_spent() - 0.5).abs() < 1e-12);
        assert!((constant.privacy_spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn node_estimate_is_unbiased_for_planted_difference() {
        // All users observe a stream that is 0 until round 8 and 1 after;
        // the level-3 node (0,8] has difference +... v8=0? Use: 0 for
        // rounds 1..=8, 1 for rounds 9..=16. Node (8,16] difference = +1.
        let tau = 16;
        let eps = 2.0;
        let mut rng = derive_rng(602, 0);
        let mut server = DdrmServer::new(tau, eps).unwrap();
        for _ in 0..60_000 {
            let mut c = DdrmClient::new(tau, eps, &mut rng).unwrap();
            for t in 1..=tau {
                if let Some(r) = c.observe(t > 8, &mut rng) {
                    server.ingest(&r);
                }
            }
        }
        let late_half = DyadicNode { level: 3, index: 1 }; // (8, 16]
        let early_half = DyadicNode { level: 3, index: 0 }; // (0, 8]
        assert!((server.node_estimate(late_half) - 1.0).abs() < 0.1);
        assert!(server.node_estimate(early_half).abs() < 0.1);
    }

    #[test]
    fn estimate_tracks_a_step_change() {
        let tau = 16;
        let eps = 2.0;
        let mut rng = derive_rng(603, 0);
        let mut server = DdrmServer::new(tau, eps).unwrap();
        // 30% hold 1 throughout; the rest switch on after round 8.
        let n = 80_000;
        for u in 0..n {
            let always = u % 10 < 3;
            let mut c = DdrmClient::new(tau, eps, &mut rng).unwrap();
            for t in 1..=tau {
                if let Some(r) = c.observe(always || t > 8, &mut rng) {
                    server.ingest(&r);
                }
            }
        }
        let est = server.estimate();
        assert!((est[3] - 0.3).abs() < 0.1, "round 4: {}", est[3]);
        assert!((est[15] - 1.0).abs() < 0.1, "round 16: {}", est[15]);
    }

    #[test]
    fn empty_server_estimates_zero() {
        let server = DdrmServer::new(8, 1.0).unwrap();
        assert!(server.estimate().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = derive_rng(604, 0);
        assert!(DdrmClient::new(0, 1.0, &mut rng).is_err());
        assert!(DdrmClient::new(8, 0.0, &mut rng).is_err());
        assert!(DdrmServer::new(0, 1.0).is_err());
        assert!(DdrmServer::new(8, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "beyond tau rounds")]
    fn observing_past_tau_panics() {
        let mut rng = derive_rng(605, 0);
        let mut c = DdrmClient::new(2, 1.0, &mut rng).unwrap();
        c.observe(true, &mut rng);
        c.observe(true, &mut rng);
        c.observe(true, &mut rng);
    }
}
