//! The longitudinal unary-encoding family: RAPPOR (L-SUE), L-OSUE, and the
//! L-OUE / L-SOUE extensions.
//!
//! Client (per value `v`): one-hot encode, then
//! 1. **PRR** — permanently randomize with `(p1, q1)`; memoize per distinct
//!    value and reuse forever (this bounds the longitudinal loss at `ε∞`
//!    per distinct value).
//! 2. **IRR** — re-randomize the memoized vector with `(p2, q2)` on every
//!    report (this makes the first report ε1-LDP and hides change points).
//!
//! Server: per time step, sum reported bit vectors and invert both rounds
//! with Eq. (3).

use crate::accountant::{cap_classes_for, BudgetAccountant};
use crate::chain::{ue_chain_params, ChainParams, UeChain};
use crate::irr::IrrKernel;
use crate::memo::UnaryMemo;
use ldp_primitives::error::ParamError;
use ldp_primitives::estimator::chained_frequency_estimates;
use ldp_primitives::{BitVec, UeClient};
use rand::RngCore;

/// A longitudinal UE client holding one user's memoized PRR state.
#[derive(Debug, Clone)]
pub struct LongitudinalUeClient {
    k: usize,
    chain: ChainParams,
    prr_encoder: UeClient,
    irr: IrrKernel,
    memo: UnaryMemo,
    accountant: BudgetAccountant,
}

impl LongitudinalUeClient {
    /// Creates a client for `chain` over domain `[0, k)` with budgets
    /// `0 < eps_first < eps_inf`.
    pub fn new(chain: UeChain, k: u64, eps_inf: f64, eps_first: f64) -> Result<Self, ParamError> {
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let params = ue_chain_params(chain, eps_inf, eps_first)?;
        let prr_encoder = UeClient::with_params(k, params.prr.p, params.prr.q)?;
        let irr = IrrKernel::new(k as usize, params.irr);
        Ok(Self {
            k: k as usize,
            chain: params,
            prr_encoder,
            irr,
            memo: UnaryMemo::new(cap_classes_for(k), k as usize),
            accountant: BudgetAccountant::new(eps_inf, cap_classes_for(k)),
        })
    }

    /// The resolved chain parameters.
    pub fn chain(&self) -> ChainParams {
        self.chain
    }

    /// Domain size.
    pub fn k(&self) -> u64 {
        self.k as u64
    }

    /// Produces the report for this step's value, memoizing its PRR if new.
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn report<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.k);
        self.report_into(value, rng, &mut out);
        out
    }

    /// Like [`Self::report`] but writes into a caller-provided buffer.
    pub fn report_into<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R, out: &mut BitVec) {
        assert!((value as usize) < self.k, "value {value} outside domain");
        let class = value as u32;
        self.accountant.observe(class);
        if self.memo.get(class).is_none() {
            let prr = self.prr_encoder.perturb(value, rng);
            self.memo.insert(class, prr.blocks());
        }
        let blocks = self.memo.get(class).expect("just inserted");
        self.irr.perturb_blocks_into(blocks, rng, out);
    }

    /// The user's accumulated longitudinal privacy loss ε̌ (Eq. (8)).
    pub fn privacy_spent(&self) -> f64 {
        self.accountant.spent()
    }

    /// Number of distinct values memoized so far.
    pub fn distinct_values(&self) -> u32 {
        self.accountant.classes_seen()
    }

    /// Iterates the memoized `(class, PRR blocks)` pairs in class order
    /// (the persistence layer's traversal; blocks are
    /// `ceil(k/64)`-word little-endian bit vectors).
    pub fn memo_entries(&self) -> impl Iterator<Item = (u32, &[u64])> + '_ {
        self.memo.iter()
    }

    /// Restores a memoized PRR vector when rebuilding a client from a
    /// snapshot, charging the accountant exactly as the original
    /// memoization did.
    ///
    /// # Panics
    /// Panics if the class is already memoized or the block count differs
    /// from `ceil(k/64)`.
    pub fn restore_memo(&mut self, class: u32, blocks: &[u64]) {
        self.memo.insert(class, blocks);
        self.accountant.observe(class);
    }
}

/// The aggregation server for longitudinal UE protocols. Counts are per
/// time step: call [`LueServer::estimate_and_reset`] at the end of each
/// collection round.
#[derive(Debug, Clone)]
pub struct LueServer {
    k: usize,
    chain: ChainParams,
    counts: Vec<u64>,
    n_step: u64,
}

impl LueServer {
    /// Creates a server matching `chain` over `[0, k)`.
    pub fn new(k: u64, chain: ChainParams) -> Result<Self, ParamError> {
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        Ok(Self {
            k: k as usize,
            chain,
            counts: vec![0; k as usize],
            n_step: 0,
        })
    }

    /// Ingests one report for the current step.
    ///
    /// # Panics
    /// Panics if the report length differs from `k`.
    pub fn ingest(&mut self, bits: &BitVec) {
        assert_eq!(bits.len(), self.k, "report length mismatch");
        for i in bits.iter_ones() {
            self.counts[i] += 1;
        }
        self.n_step += 1;
    }

    /// Merges raw support counts accumulated elsewhere (thread-local
    /// aggregation in the simulator).
    pub fn ingest_counts(&mut self, counts: &[u64], n: u64) {
        assert_eq!(counts.len(), self.k, "count length mismatch");
        for (acc, &c) in self.counts.iter_mut().zip(counts) {
            *acc += c;
        }
        self.n_step += n;
    }

    /// Number of reports ingested this step.
    pub fn n_step(&self) -> u64 {
        self.n_step
    }

    /// Estimates this step's histogram with Eq. (3) and resets the counters.
    pub fn estimate_and_reset(&mut self) -> Vec<f64> {
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let est = chained_frequency_estimates(
            &counts,
            self.n_step as f64,
            self.chain.prr.p,
            self.chain.prr.q,
            self.chain.irr.p,
            self.chain.irr.q,
        );
        self.counts.fill(0);
        self.n_step = 0;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::{derive_rng, AliasTable};

    #[test]
    fn constructor_validates() {
        assert!(LongitudinalUeClient::new(UeChain::SueSue, 1, 1.0, 0.5).is_err());
        assert!(LongitudinalUeClient::new(UeChain::SueSue, 10, 1.0, 1.0).is_err());
    }

    #[test]
    fn memoization_spends_budget_once_per_value() {
        let mut c = LongitudinalUeClient::new(UeChain::OueSue, 8, 2.0, 1.0).unwrap();
        let mut rng = derive_rng(500, 0);
        assert_eq!(c.privacy_spent(), 0.0);
        for _ in 0..10 {
            let _ = c.report(3, &mut rng);
        }
        assert_eq!(c.distinct_values(), 1);
        assert!((c.privacy_spent() - 2.0).abs() < 1e-12);
        let _ = c.report(5, &mut rng);
        assert_eq!(c.distinct_values(), 2);
        assert!((c.privacy_spent() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reports_vary_but_memo_is_stable() {
        // With the IRR in place two reports of the same value usually
        // differ, but the memoized PRR behind them must not change: the
        // support-bit distribution stays centred on the PRR state.
        let mut c = LongitudinalUeClient::new(UeChain::SueSue, 16, 3.0, 1.0).unwrap();
        let mut rng = derive_rng(501, 0);
        let first = c.report(7, &mut rng);
        let mut any_diff = false;
        for _ in 0..20 {
            if c.report(7, &mut rng) != first {
                any_diff = true;
            }
        }
        assert!(any_diff, "IRR never changed the report across 20 draws");
        assert_eq!(c.distinct_values(), 1);
    }

    #[test]
    fn restore_memo_rebuilds_state_and_accounting() {
        let mut c = LongitudinalUeClient::new(UeChain::OueSue, 12, 2.0, 1.0).unwrap();
        let mut rng = derive_rng(505, 0);
        for v in [3u64, 9, 3, 11] {
            let _ = c.report(v, &mut rng);
        }
        let mut restored = LongitudinalUeClient::new(UeChain::OueSue, 12, 2.0, 1.0).unwrap();
        let entries: Vec<(u32, Vec<u64>)> =
            c.memo_entries().map(|(k, b)| (k, b.to_vec())).collect();
        assert_eq!(entries.len(), 3);
        for (class, blocks) in &entries {
            restored.restore_memo(*class, blocks);
        }
        assert_eq!(restored.distinct_values(), c.distinct_values());
        assert_eq!(restored.privacy_spent(), c.privacy_spent());
        let back: Vec<(u32, Vec<u64>)> = restored
            .memo_entries()
            .map(|(k, b)| (k, b.to_vec()))
            .collect();
        assert_eq!(back, entries);
    }

    fn run_protocol(chain: UeChain, seed: u64) {
        // End-to-end longitudinal accuracy on a static distribution.
        let k = 12u64;
        let n = 8_000usize;
        let tau = 4;
        let (ei, e1) = (3.0, 1.5);
        let params = ue_chain_params(chain, ei, e1).unwrap();
        let mut server = LueServer::new(k, params).unwrap();
        let weights: Vec<f64> = (0..k).map(|v| (v + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let truth: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let alias = AliasTable::new(&weights).unwrap();
        let mut clients: Vec<LongitudinalUeClient> = (0..n)
            .map(|_| LongitudinalUeClient::new(chain, k, ei, e1).unwrap())
            .collect();
        let mut values: Vec<u64> = {
            let mut rng = derive_rng(seed, 999);
            (0..n).map(|_| alias.sample(&mut rng) as u64).collect()
        };
        let mut last_est = vec![0.0; k as usize];
        for t in 0..tau {
            for (u, client) in clients.iter_mut().enumerate() {
                let mut rng = derive_rng(seed, (t * n + u) as u64);
                // values evolve slowly: 10% of users re-draw each step.
                if u % 10 == t % 10 {
                    values[u] = alias.sample(&mut rng) as u64;
                }
                server.ingest(&client.report(values[u], &mut rng));
            }
            last_est = server.estimate_and_reset();
        }
        let v_star = params.variance_approx(n as f64);
        for (v, (&e, &t)) in last_est.iter().zip(&truth).enumerate() {
            let tol = 6.0 * v_star.sqrt();
            assert!(
                (e - t).abs() < tol,
                "{chain:?} v={v}: {e} vs {t} (tol {tol})"
            );
        }
    }

    #[test]
    fn rappor_end_to_end() {
        run_protocol(UeChain::SueSue, 502);
    }

    #[test]
    fn losue_end_to_end() {
        run_protocol(UeChain::OueSue, 503);
    }

    #[test]
    fn loue_end_to_end() {
        run_protocol(UeChain::OueOue, 504);
    }

    #[test]
    fn server_reset_clears_state() {
        let params = ue_chain_params(UeChain::OueSue, 2.0, 1.0).unwrap();
        let mut server = LueServer::new(4, params).unwrap();
        let mut bits = BitVec::zeros(4);
        bits.set(1, true);
        server.ingest(&bits);
        assert_eq!(server.n_step(), 1);
        let _ = server.estimate_and_reset();
        assert_eq!(server.n_step(), 0);
    }

    #[test]
    fn ingest_counts_merges() {
        let params = ue_chain_params(UeChain::OueSue, 2.0, 1.0).unwrap();
        let mut a = LueServer::new(4, params).unwrap();
        let mut b = LueServer::new(4, params).unwrap();
        let mut bits = BitVec::zeros(4);
        bits.set(2, true);
        a.ingest(&bits);
        b.ingest_counts(&[0, 0, 1, 0], 1);
        assert_eq!(a.estimate_and_reset(), b.estimate_and_reset());
    }
}
