//! Compact per-user memoization tables.
//!
//! A longitudinal client must remember the PRR output for every distinct
//! input it has reported. With tens of thousands of simulated users alive at
//! once, per-user `HashMap`s are too heavy; instead:
//!
//! * [`SymbolMemo`] — for symbol-valued PRRs (L-GRR, LOLOHA): a flat
//!   `Vec<u16>` indexed by input class, `u16::MAX` meaning "not memoized".
//! * [`UnaryMemo`] — for bit-vector PRRs (RAPPOR / L-UE family): a `u16`
//!   index table into a single grow-only arena of fixed-width bit blocks,
//!   so each client performs O(distinct inputs) small allocations in one
//!   contiguous buffer.

/// Sentinel for "no memoized entry".
const EMPTY: u16 = u16::MAX;

/// Memoizes one symbol (`< u16::MAX`) per input class.
#[derive(Debug, Clone)]
pub struct SymbolMemo {
    table: Vec<u16>,
}

impl SymbolMemo {
    /// Creates an empty memo over `classes` input classes.
    ///
    /// # Panics
    /// Panics if `classes` exceeds `u16::MAX` slots? No — classes may be up
    /// to `u32`; only the *stored symbols* must fit in `u16 − 1`.
    pub fn new(classes: u32) -> Self {
        Self {
            table: vec![EMPTY; classes as usize],
        }
    }

    /// Looks up the memoized symbol for `class`.
    #[inline]
    pub fn get(&self, class: u32) -> Option<u16> {
        match self.table[class as usize] {
            EMPTY => None,
            s => Some(s),
        }
    }

    /// Stores `symbol` for `class`.
    ///
    /// # Panics
    /// Panics if `symbol == u16::MAX` (reserved) or the slot is taken with a
    /// different value (memoization must be write-once).
    #[inline]
    pub fn insert(&mut self, class: u32, symbol: u16) {
        assert_ne!(symbol, EMPTY, "symbol u16::MAX is reserved");
        let slot = &mut self.table[class as usize];
        assert!(
            *slot == EMPTY || *slot == symbol,
            "memoization is write-once (class {class})"
        );
        *slot = symbol;
    }

    /// Number of memoized classes.
    pub fn len(&self) -> usize {
        self.table.iter().filter(|&&s| s != EMPTY).count()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.table.iter().all(|&s| s == EMPTY)
    }

    /// Iterates the memoized `(class, symbol)` pairs in class order (the
    /// persistence layer's traversal).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u16)> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != EMPTY)
            .map(|(c, &s)| (c as u32, s))
    }
}

/// Memoizes one fixed-width bit vector per input class, arena-backed.
#[derive(Debug, Clone)]
pub struct UnaryMemo {
    index: Vec<u16>,
    arena: Vec<u64>,
    blocks_per_entry: usize,
    entries: u16,
}

impl UnaryMemo {
    /// Creates an empty memo over `classes` input classes, each storing a
    /// bit vector of `bits` bits.
    pub fn new(classes: u32, bits: usize) -> Self {
        Self {
            index: vec![EMPTY; classes as usize],
            arena: Vec::new(),
            blocks_per_entry: bits.div_ceil(64),
            entries: 0,
        }
    }

    /// Looks up the memoized blocks for `class`.
    #[inline]
    pub fn get(&self, class: u32) -> Option<&[u64]> {
        match self.index[class as usize] {
            EMPTY => None,
            idx => {
                let start = idx as usize * self.blocks_per_entry;
                Some(&self.arena[start..start + self.blocks_per_entry])
            }
        }
    }

    /// Inserts the blocks for `class` and returns them.
    ///
    /// # Panics
    /// Panics if the class is already memoized, the block count is wrong, or
    /// more than `u16::MAX − 1` entries are inserted.
    pub fn insert(&mut self, class: u32, blocks: &[u64]) -> &[u64] {
        assert_eq!(blocks.len(), self.blocks_per_entry, "block count mismatch");
        assert_eq!(
            self.index[class as usize], EMPTY,
            "memoization is write-once"
        );
        assert!(self.entries < EMPTY, "memo arena full");
        let idx = self.entries;
        self.index[class as usize] = idx;
        self.entries += 1;
        let start = self.arena.len();
        self.arena.extend_from_slice(blocks);
        &self.arena[start..start + self.blocks_per_entry]
    }

    /// Number of memoized classes.
    pub fn len(&self) -> usize {
        self.entries as usize
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Iterates the memoized `(class, blocks)` pairs in class order (the
    /// persistence layer's traversal).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u64])> + '_ {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, &idx)| idx != EMPTY)
            .map(|(c, &idx)| {
                let start = idx as usize * self.blocks_per_entry;
                (c as u32, &self.arena[start..start + self.blocks_per_entry])
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_memo_roundtrip() {
        let mut m = SymbolMemo::new(10);
        assert!(m.is_empty());
        assert_eq!(m.get(3), None);
        m.insert(3, 7);
        assert_eq!(m.get(3), Some(7));
        assert_eq!(m.len(), 1);
        // Idempotent re-insert of the same value is allowed.
        m.insert(3, 7);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn symbol_memo_rejects_overwrite() {
        let mut m = SymbolMemo::new(4);
        m.insert(0, 1);
        m.insert(0, 2);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn symbol_memo_rejects_sentinel() {
        let mut m = SymbolMemo::new(4);
        m.insert(0, u16::MAX);
    }

    #[test]
    fn unary_memo_roundtrip() {
        let mut m = UnaryMemo::new(5, 100); // 2 blocks per entry
        assert!(m.is_empty());
        assert_eq!(m.get(2), None);
        let blocks = [0xDEAD_BEEFu64, 0x1234];
        m.insert(2, &blocks);
        assert_eq!(m.get(2), Some(&blocks[..]));
        let blocks_b = [1u64, 2];
        m.insert(4, &blocks_b);
        assert_eq!(m.get(2), Some(&blocks[..]), "arena growth must not corrupt");
        assert_eq!(m.get(4), Some(&blocks_b[..]));
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn unary_memo_rejects_overwrite() {
        let mut m = UnaryMemo::new(3, 64);
        m.insert(1, &[0]);
        m.insert(1, &[1]);
    }

    #[test]
    #[should_panic(expected = "block count")]
    fn unary_memo_rejects_wrong_width() {
        let mut m = UnaryMemo::new(3, 64);
        m.insert(1, &[0, 1]);
    }

    #[test]
    fn iterators_walk_entries_in_class_order() {
        let mut s = SymbolMemo::new(8);
        s.insert(5, 2);
        s.insert(1, 9);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(1, 9), (5, 2)]);
        let mut u = UnaryMemo::new(6, 64);
        u.insert(4, &[7]);
        u.insert(0, &[3]);
        let entries: Vec<(u32, Vec<u64>)> = u.iter().map(|(c, b)| (c, b.to_vec())).collect();
        assert_eq!(entries, vec![(0, vec![3]), (4, vec![7])]);
    }

    #[test]
    fn unary_memo_many_entries() {
        let mut m = UnaryMemo::new(1000, 64);
        for c in 0..1000u32 {
            m.insert(c, &[c as u64]);
        }
        for c in (0..1000u32).rev() {
            assert_eq!(m.get(c), Some(&[c as u64][..]));
        }
    }
}
