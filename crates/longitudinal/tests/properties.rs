//! Property-based tests for the longitudinal baselines.

use ldp_longitudinal::chain::{
    lgrr_first_report_eps, lgrr_params, lgrr_params_exact, ue_chain_params, UeChain,
};
use ldp_longitudinal::{DBitFlipClient, LgrrClient, LongitudinalUeClient};
use ldp_rand::derive_rng;
use proptest::prelude::*;

prop_compose! {
    fn arb_budgets()(ei in 0.3f64..5.0, a in 0.1f64..0.9) -> (f64, f64) {
        (ei, a * ei)
    }
}

proptest! {
    /// Closed-form L-SUE / L-OSUE chains hit the requested first-report ε
    /// exactly, on arbitrary budget pairs.
    #[test]
    fn closed_form_chains_hit_eps1((ei, e1) in arb_budgets()) {
        for chain in [UeChain::SueSue, UeChain::OueSue] {
            let c = ue_chain_params(chain, ei, e1).unwrap();
            let eps = c.composed().epsilon_unary();
            prop_assert!((eps - e1).abs() < 1e-8, "{chain:?}: {eps} vs {e1}");
            prop_assert!((c.prr.epsilon_unary() - ei).abs() < 1e-8);
            // IRR probabilities are valid.
            prop_assert!(c.irr.p > 0.5 && c.irr.p < 1.0);
        }
    }

    /// The exact L-GRR parameterization is tight and the paper's form is
    /// conservative, for arbitrary (k, ε∞, ε1).
    #[test]
    fn lgrr_forms_ordered((ei, e1) in arb_budgets(), k in 2u64..2_000) {
        let (prr_e, irr_e) = lgrr_params_exact(k, ei, e1).unwrap();
        let exact = lgrr_first_report_eps(k, prr_e, irr_e);
        prop_assert!((exact - e1).abs() < 1e-8, "exact {exact} vs {e1}");
        let (prr_p, irr_p) = lgrr_params(k, ei, e1).unwrap();
        let paper = lgrr_first_report_eps(k, prr_p, irr_p);
        prop_assert!(paper <= e1 + 1e-9, "paper form leaked {paper} > {e1}");
    }

    /// Memoization is value-stable: repeated reports of one value never
    /// spend additional budget, for any protocol in the family.
    #[test]
    fn memoization_is_idempotent((ei, e1) in arb_budgets(), k in 4u64..64, v_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let v = ((k as f64 * v_frac) as u64).min(k - 1);
        let mut rng = derive_rng(seed, 0);

        let mut lue = LongitudinalUeClient::new(UeChain::OueSue, k, ei, e1).unwrap();
        let mut lgrr = LgrrClient::new(k, ei, e1).unwrap();
        for _ in 0..5 {
            let _ = lue.report(v, &mut rng);
            let _ = lgrr.report(v, &mut rng);
        }
        prop_assert_eq!(lue.distinct_values(), 1);
        prop_assert_eq!(lgrr.distinct_values(), 1);
        prop_assert!((lue.privacy_spent() - ei).abs() < 1e-12);
        prop_assert!((lgrr.privacy_spent() - ei).abs() < 1e-12);
    }

    /// dBitFlipPM reports are deterministic per bucket and the budget obeys
    /// min(d+1, b)·ε∞ under full-domain churn.
    #[test]
    fn dbitflip_budget_cap(seed in any::<u64>(), k in 8u64..256, d_frac in 0.0f64..=1.0, ei in 0.3f64..4.0) {
        let b = (k / 2).max(2) as u32;
        let d = ((b as f64 * d_frac) as u32).clamp(1, b);
        let mut rng = derive_rng(seed, 1);
        let mut c = DBitFlipClient::new(k, b, d, ei, &mut rng).unwrap();
        let mut reports = std::collections::HashMap::new();
        for v in 0..k {
            let r = c.report(v, &mut rng);
            let bucket = c.bucket_of(v);
            // Same bucket ⇒ identical memoized report.
            if let Some(prev) = reports.insert(bucket, r.bits.clone()) {
                prop_assert_eq!(prev, r.bits);
            }
        }
        let cap = (d + 1).min(b) as f64 * ei;
        prop_assert!(c.privacy_spent() <= cap + 1e-9);
        prop_assert!(c.distinct_classes() <= (d + 1).min(b));
    }

    /// Reports of the UE family always have the domain's width.
    #[test]
    fn lue_report_width((ei, e1) in arb_budgets(), k in 2u64..128, seed in any::<u64>()) {
        let mut rng = derive_rng(seed, 2);
        let mut c = LongitudinalUeClient::new(UeChain::SueSue, k, ei, e1).unwrap();
        let bits = c.report(k - 1, &mut rng);
        prop_assert_eq!(bits.len() as u64, k);
    }
}
