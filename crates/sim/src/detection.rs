//! The Table 2 change-point detection attack on dBitFlipPM.
//!
//! dBitFlipPM memoizes one randomized vector per input class and has no
//! second sanitization round, so its reports are a *deterministic* function
//! of the current bucket: a changed report proves the bucket changed. The
//! attacker therefore flags round `t` whenever `report_t ≠ report_{t−1}`.
//! The converse does not hold — two buckets may share a memoized vector —
//! which is why `d = 1` (two classes, often colliding) protects users and
//! `d = b` (distinct one-hot patterns) exposes nearly all of them.
//!
//! The per-user tracker is *client state* (it must checkpoint and resume
//! with the memo), so it lives in `ldp_client` and rides inside the
//! [`ClientPool`](ldp_client::ClientPool); this module keeps the
//! population-level summary the simulator reports.
//!
//! Following the paper's worst-case analysis, the reported metric is the
//! fraction of users for whom **every** bucket change was flagged, among
//! users that had at least one change.

pub use ldp_client::DetectionTrack;

/// Aggregate detection outcome over a population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionSummary {
    /// Users with at least one bucket change.
    pub users_with_changes: usize,
    /// Users whose changes were all detected.
    pub fully_detected: usize,
}

impl DetectionSummary {
    /// Aggregates per-user trackers.
    pub fn from_tracks<'a>(tracks: impl Iterator<Item = &'a DetectionTrack>) -> Self {
        let mut s = Self {
            users_with_changes: 0,
            fully_detected: 0,
        };
        for t in tracks {
            if t.had_changes() {
                s.users_with_changes += 1;
                if t.fully_detected() {
                    s.fully_detected += 1;
                }
            }
        }
        s
    }

    /// The Table 2 percentage: fully detected / users with changes
    /// (0 when no user changed).
    pub fn rate(&self) -> f64 {
        if self.users_with_changes == 0 {
            0.0
        } else {
            self.fully_detected as f64 / self.users_with_changes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_primitives::BitVec;

    fn bits(pattern: &[bool]) -> BitVec {
        let mut b = BitVec::zeros(pattern.len());
        for (i, &p) in pattern.iter().enumerate() {
            b.set(i, p);
        }
        b
    }

    #[test]
    fn summary_rates() {
        let mut a = DetectionTrack::new(); // fully detected
        a.observe(0, &bits(&[true]));
        a.observe(1, &bits(&[false]));
        let mut b = DetectionTrack::new(); // missed
        b.observe(0, &bits(&[true]));
        b.observe(1, &bits(&[true]));
        let c = DetectionTrack::new(); // no changes
        let s = DetectionSummary::from_tracks([&a, &b, &c].into_iter());
        assert_eq!(s.users_with_changes, 2);
        assert_eq!(s.fully_detected, 1);
        assert!((s.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_population_rate_is_zero() {
        let s = DetectionSummary::from_tracks(std::iter::empty());
        assert_eq!(s.rate(), 0.0);
    }
}
