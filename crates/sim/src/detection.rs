//! The Table 2 change-point detection attack on dBitFlipPM.
//!
//! dBitFlipPM memoizes one randomized vector per input class and has no
//! second sanitization round, so its reports are a *deterministic* function
//! of the current bucket: a changed report proves the bucket changed. The
//! attacker therefore flags round `t` whenever `report_t ≠ report_{t−1}`.
//! The converse does not hold — two buckets may share a memoized vector —
//! which is why `d = 1` (two classes, often colliding) protects users and
//! `d = b` (distinct one-hot patterns) exposes nearly all of them.
//!
//! Following the paper's worst-case analysis, the reported metric is the
//! fraction of users for whom **every** bucket change was flagged, among
//! users that had at least one change.

use ldp_primitives::BitVec;

/// Per-user tracking state for the detection attack.
#[derive(Debug, Clone)]
pub struct DetectionTrack {
    prev_bucket: Option<u32>,
    prev_bits: Option<BitVec>,
    any_change: bool,
    missed: bool,
}

impl DetectionTrack {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            prev_bucket: None,
            prev_bits: None,
            any_change: false,
            missed: false,
        }
    }

    /// Records one round: the user's true bucket and the report sent.
    pub fn observe(&mut self, bucket: u32, bits: &BitVec) {
        if let (Some(pb), Some(pbits)) = (self.prev_bucket, &self.prev_bits) {
            let bucket_changed = pb != bucket;
            let report_changed = pbits != bits;
            // Memoized reports are deterministic per bucket: a report change
            // without a bucket change would be a protocol bug.
            debug_assert!(!report_changed || bucket_changed);
            if bucket_changed {
                self.any_change = true;
                if !report_changed {
                    self.missed = true;
                }
            }
        }
        self.prev_bucket = Some(bucket);
        self.prev_bits = Some(bits.clone());
    }

    /// Whether the user changed bucket at least once.
    pub fn had_changes(&self) -> bool {
        self.any_change
    }

    /// Whether *all* of the user's bucket changes were flagged.
    pub fn fully_detected(&self) -> bool {
        self.any_change && !self.missed
    }
}

impl Default for DetectionTrack {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate detection outcome over a population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionSummary {
    /// Users with at least one bucket change.
    pub users_with_changes: usize,
    /// Users whose changes were all detected.
    pub fully_detected: usize,
}

impl DetectionSummary {
    /// Aggregates per-user trackers.
    pub fn from_tracks<'a>(tracks: impl Iterator<Item = &'a DetectionTrack>) -> Self {
        let mut s = Self {
            users_with_changes: 0,
            fully_detected: 0,
        };
        for t in tracks {
            if t.had_changes() {
                s.users_with_changes += 1;
                if t.fully_detected() {
                    s.fully_detected += 1;
                }
            }
        }
        s
    }

    /// The Table 2 percentage: fully detected / users with changes
    /// (0 when no user changed).
    pub fn rate(&self) -> f64 {
        if self.users_with_changes == 0 {
            0.0
        } else {
            self.fully_detected as f64 / self.users_with_changes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(pattern: &[bool]) -> BitVec {
        let mut b = BitVec::zeros(pattern.len());
        for (i, &p) in pattern.iter().enumerate() {
            b.set(i, p);
        }
        b
    }

    #[test]
    fn no_changes_means_not_counted() {
        let mut t = DetectionTrack::new();
        let b = bits(&[true, false]);
        for _ in 0..5 {
            t.observe(3, &b);
        }
        assert!(!t.had_changes());
        assert!(!t.fully_detected());
    }

    #[test]
    fn detected_change() {
        let mut t = DetectionTrack::new();
        t.observe(0, &bits(&[true, false]));
        t.observe(1, &bits(&[false, true])); // bucket and report changed
        assert!(t.had_changes());
        assert!(t.fully_detected());
    }

    #[test]
    fn missed_change_is_never_fully_detected() {
        let mut t = DetectionTrack::new();
        let same = bits(&[true, true]);
        t.observe(0, &same);
        t.observe(1, &same); // bucket changed, report identical → missed
        t.observe(2, &bits(&[false, false])); // later detected change
        assert!(t.had_changes());
        assert!(!t.fully_detected());
    }

    #[test]
    fn summary_rates() {
        let mut a = DetectionTrack::new(); // fully detected
        a.observe(0, &bits(&[true]));
        a.observe(1, &bits(&[false]));
        let mut b = DetectionTrack::new(); // missed
        b.observe(0, &bits(&[true]));
        b.observe(1, &bits(&[true]));
        let c = DetectionTrack::new(); // no changes
        let s = DetectionSummary::from_tracks([&a, &b, &c].into_iter());
        assert_eq!(s.users_with_changes, 2);
        assert_eq!(s.fully_detected, 1);
        assert!((s.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_population_rate_is_zero() {
        let s = DetectionSummary::from_tracks(std::iter::empty());
        assert_eq!(s.rate(), 0.0);
    }
}
