//! The paper's evaluation metrics and small summary statistics.

/// Mean squared error between an estimate and ground-truth histogram —
/// the inner sum of Eq. (7) for one time step.
pub fn mse(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "histogram length mismatch");
    assert!(!estimate.is_empty(), "empty histograms");
    let sum: f64 = estimate
        .iter()
        .zip(truth)
        .map(|(&e, &t)| (e - t) * (e - t))
        .sum();
    sum / estimate.len() as f64
}

/// Arithmetic mean (NaN on empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Mean ± sample standard deviation over repeated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean over runs.
    pub mean: f64,
    /// Sample standard deviation over runs.
    pub std: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl Summary {
    /// Summarizes a set of per-run values.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            mean: mean(xs),
            std: std_dev(xs),
            runs: xs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_histograms_is_zero() {
        let h = [0.25, 0.25, 0.5];
        assert_eq!(mse(&h, &h), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let e = [0.5, 0.5];
        let t = [0.0, 1.0];
        assert!((mse(&e, &t) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_rejects_mismatched_lengths() {
        let _ = mse(&[0.1], &[0.1, 0.2]);
    }

    #[test]
    fn mean_and_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        let sd = std_dev(&xs);
        assert!((sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_summaries() {
        assert!(mean(&[]).is_nan());
        assert_eq!(std_dev(&[1.0]), 0.0);
        let s = Summary::of(&[2.0]);
        assert_eq!(s.runs, 1);
        assert_eq!(s.std, 0.0);
    }
}
