//! The longitudinal collection runner.
//!
//! One call to [`run_experiment`] simulates a full (dataset, method, ε∞, α)
//! cell: `n` stateful clients over `τ` rounds, server-side estimation each
//! round, and the paper's metrics at the end.
//!
//! Users are partitioned into chunks processed by worker threads. Each user
//! owns an independent RNG stream derived from `(seed, user)`, so results
//! are bit-identical regardless of the thread count. Workers accumulate
//! *support counts* locally (walking LOLOHA hash preimages or UE set bits);
//! the main thread merges them and applies the protocol's estimator.

use crate::config::{dbit_buckets, ExperimentConfig, Method};
use crate::detection::{DetectionSummary, DetectionTrack};
use crate::metrics::mse;
use ldp_datasets::{empirical_histogram, DatasetSpec};
use ldp_hash::{BucketMapper, CarterWegman, CwHash, Preimages};
use ldp_longitudinal::chain::{ue_chain_params, UeChain};
use ldp_longitudinal::{
    DBitFlipClient, DBitFlipServer, LgrrClient, LgrrServer, LongitudinalUeClient, LueServer,
};
use ldp_primitives::error::ParamError;
use ldp_primitives::BitVec;
use ldp_rand::{derive_rng2, LdpRng};
use loloha::{LolohaClient, LolohaParams, LolohaServer};

/// Outcome of one experiment cell.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Eq. (7): MSE averaged over the τ rounds. `NaN` when the method's
    /// output histogram is not k-binned (dBitFlipPM with b < k), mirroring
    /// the paper's exclusion in Figs. 3c/3d.
    pub mse_avg: f64,
    /// Eq. (8): longitudinal privacy loss ε̌ averaged over users.
    pub eps_avg: f64,
    /// The worst user's ε̌.
    pub eps_max: f64,
    /// Average number of distinct memoized input classes per user.
    pub distinct_avg: f64,
    /// Table 2 detection outcome (dBitFlipPM only).
    pub detection: Option<DetectionSummary>,
    /// The resolved reduced domain size: g for LOLOHA, b for dBitFlipPM.
    pub reduced_domain: Option<u32>,
    /// Whether `mse_avg` is a comparable k-bin MSE.
    pub comparable_mse: bool,
}

enum ClientState {
    Lue(Box<LongitudinalUeClient>),
    Lgrr(Box<LgrrClient>),
    Loloha {
        client: Box<LolohaClient<CwHash>>,
        preimages: Preimages,
    },
    DBit(Box<DBitFlipClient>),
}

impl ClientState {
    fn privacy_spent(&self) -> f64 {
        match self {
            ClientState::Lue(c) => c.privacy_spent(),
            ClientState::Lgrr(c) => c.privacy_spent(),
            ClientState::Loloha { client, .. } => client.privacy_spent(),
            ClientState::DBit(c) => c.privacy_spent(),
        }
    }

    fn distinct_classes(&self) -> u32 {
        match self {
            ClientState::Lue(c) => c.distinct_values(),
            ClientState::Lgrr(c) => c.distinct_values(),
            ClientState::Loloha { client, .. } => client.distinct_cells(),
            ClientState::DBit(c) => c.distinct_classes(),
        }
    }
}

struct SimUser {
    state: ClientState,
    rng: LdpRng,
    detect: Option<DetectionTrack>,
}

enum Estimator {
    Lue(LueServer),
    Lgrr(LgrrServer),
    Loloha(LolohaServer),
    DBit {
        server: DBitFlipServer,
        mapper: BucketMapper,
    },
}

impl Estimator {
    fn dim(&self, k: u64) -> usize {
        match self {
            Estimator::DBit { mapper, .. } => mapper.b() as usize,
            _ => k as usize,
        }
    }

    fn estimate(&mut self, counts: &[u64], n: u64) -> Vec<f64> {
        match self {
            Estimator::Lue(s) => {
                s.ingest_counts(counts, n);
                s.estimate_and_reset()
            }
            Estimator::Lgrr(s) => {
                s.ingest_counts(counts, n);
                s.estimate_and_reset()
            }
            Estimator::Loloha(s) => {
                s.ingest_counts(counts, n);
                s.estimate_and_reset()
            }
            Estimator::DBit { server, .. } => {
                server.ingest_counts(counts, n);
                server.estimate_and_reset()
            }
        }
    }
}

/// Protocol-wide immutable pieces resolved from the configuration.
struct MethodSetup {
    estimator: Estimator,
    reduced_domain: Option<u32>,
    comparable_mse: bool,
    loloha_params: Option<LolohaParams>,
    dbit: Option<(u32, u32)>, // (b, d)
}

fn resolve_method(
    method: Method,
    k: u64,
    eps_inf: f64,
    eps_first: f64,
) -> Result<MethodSetup, ParamError> {
    let chain_of = |c: UeChain| ue_chain_params(c, eps_inf, eps_first);
    Ok(match method {
        Method::Rappor | Method::LOsue | Method::LOue | Method::LSoue => {
            let chain = match method {
                Method::Rappor => UeChain::SueSue,
                Method::LOsue => UeChain::OueSue,
                Method::LOue => UeChain::OueOue,
                _ => UeChain::SueOue,
            };
            MethodSetup {
                estimator: Estimator::Lue(LueServer::new(k, chain_of(chain)?)?),
                reduced_domain: None,
                comparable_mse: true,
                loloha_params: None,
                dbit: None,
            }
        }
        Method::LGrr => MethodSetup {
            estimator: Estimator::Lgrr(LgrrServer::new(k, eps_inf, eps_first)?),
            reduced_domain: None,
            comparable_mse: true,
            loloha_params: None,
            dbit: None,
        },
        Method::BiLoloha | Method::OLoloha => {
            let params = if method == Method::BiLoloha {
                LolohaParams::bi(eps_inf, eps_first)?
            } else {
                LolohaParams::optimal(eps_inf, eps_first)?
            };
            MethodSetup {
                estimator: Estimator::Loloha(LolohaServer::new(k, params)?),
                reduced_domain: Some(params.g()),
                comparable_mse: true,
                loloha_params: Some(params),
                dbit: None,
            }
        }
        Method::OneBitFlip | Method::BBitFlip => {
            let b = dbit_buckets(k);
            let d = if method == Method::OneBitFlip { 1 } else { b };
            let mapper = BucketMapper::new(k, b).ok_or(ParamError::InvalidBuckets { b, d, k })?;
            MethodSetup {
                estimator: Estimator::DBit {
                    server: DBitFlipServer::new(b, d, eps_inf)?,
                    mapper,
                },
                reduced_domain: Some(b),
                comparable_mse: b as u64 == k,
                loloha_params: None,
                dbit: Some((b, d)),
            }
        }
    })
}

fn make_user(
    setup: &MethodSetup,
    method: Method,
    k: u64,
    eps_inf: f64,
    eps_first: f64,
    seed: u64,
    user: usize,
) -> Result<SimUser, ParamError> {
    let mut rng = derive_rng2(seed, 0x00C1_1E47, user as u64);
    let (state, detect) = match method {
        Method::Rappor | Method::LOsue | Method::LOue | Method::LSoue => {
            let chain = match method {
                Method::Rappor => UeChain::SueSue,
                Method::LOsue => UeChain::OueSue,
                Method::LOue => UeChain::OueOue,
                _ => UeChain::SueOue,
            };
            (
                ClientState::Lue(Box::new(LongitudinalUeClient::new(
                    chain, k, eps_inf, eps_first,
                )?)),
                None,
            )
        }
        Method::LGrr => (
            ClientState::Lgrr(Box::new(LgrrClient::new(k, eps_inf, eps_first)?)),
            None,
        ),
        Method::BiLoloha | Method::OLoloha => {
            let params = setup.loloha_params.expect("resolved for LOLOHA methods");
            let family =
                CarterWegman::new(params.g()).ok_or(ParamError::InvalidG { g: params.g() })?;
            let client = LolohaClient::new(&family, k, params, &mut rng)?;
            let preimages = Preimages::build(client.hash_fn(), k);
            (
                ClientState::Loloha {
                    client: Box::new(client),
                    preimages,
                },
                None,
            )
        }
        Method::OneBitFlip | Method::BBitFlip => {
            let (b, d) = setup.dbit.expect("resolved for dBitFlip methods");
            let client = DBitFlipClient::new(k, b, d, eps_inf, &mut rng)?;
            (
                ClientState::DBit(Box::new(client)),
                Some(DetectionTrack::new()),
            )
        }
    };
    Ok(SimUser { state, rng, detect })
}

/// Processes one user for one round, adding their support into `counts`.
fn process_user(user: &mut SimUser, value: u64, counts: &mut [u64], scratch: &mut BitVec) {
    match &mut user.state {
        ClientState::Lue(c) => {
            c.report_into(value, &mut user.rng, scratch);
            for i in scratch.iter_ones() {
                counts[i] += 1;
            }
        }
        ClientState::Lgrr(c) => {
            counts[c.report(value, &mut user.rng) as usize] += 1;
        }
        ClientState::Loloha { client, preimages } => {
            let cell = client.report(value, &mut user.rng);
            for &v in preimages.cell(cell) {
                counts[v as usize] += 1;
            }
        }
        ClientState::DBit(c) => {
            let report = c.report(value, &mut user.rng);
            let sampled = c.sampled();
            for l in report.bits.iter_ones() {
                counts[sampled[l] as usize] += 1;
            }
            if let Some(track) = &mut user.detect {
                track.observe(c.bucket_of(value), &report.bits);
            }
        }
    }
}

/// Runs one experiment cell and returns its metrics.
pub fn run_experiment(
    dataset: &dyn DatasetSpec,
    cfg: &ExperimentConfig,
) -> Result<RunMetrics, ParamError> {
    let k = dataset.k();
    let n = dataset.n();
    let tau = dataset.tau();
    let eps_first = cfg.eps_first();
    let mut setup = resolve_method(cfg.method, k, cfg.eps_inf, eps_first)?;
    let dim = setup.estimator.dim(k);

    // Build users, chunked for the worker threads.
    let threads = cfg.effective_threads().clamp(1, n.max(1));
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<SimUser>> = Vec::with_capacity(threads);
    {
        let mut users = Vec::with_capacity(n);
        for u in 0..n {
            users.push(make_user(
                &setup,
                cfg.method,
                k,
                cfg.eps_inf,
                eps_first,
                cfg.seed,
                u,
            )?);
        }
        let mut rest = users;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let tail = rest.split_off(take);
            chunks.push(rest);
            rest = tail;
        }
    }

    let mut data = dataset.instantiate(cfg.seed);
    let mut partials: Vec<Vec<u64>> = (0..chunks.len()).map(|_| vec![0u64; dim]).collect();
    let mut mse_sum = 0.0;
    let mut mse_rounds = 0usize;

    for _t in 0..tau {
        let values = data.step();
        assert_eq!(values.len(), n, "dataset produced wrong population size");
        for p in &mut partials {
            p.fill(0);
        }
        // Dispatch chunks to scoped worker threads.
        std::thread::scope(|s| {
            let mut offset = 0usize;
            let mut handles = Vec::new();
            for (chunk, partial) in chunks.iter_mut().zip(&mut partials) {
                let slice = &values[offset..offset + chunk.len()];
                offset += chunk.len();
                let k_usize = k as usize;
                handles.push(s.spawn(move || {
                    let mut scratch = BitVec::zeros(k_usize);
                    for (user, &v) in chunk.iter_mut().zip(slice) {
                        process_user(user, v, partial, &mut scratch);
                    }
                }));
            }
            for h in handles {
                h.join().expect("worker thread panicked");
            }
        });
        // Merge and estimate.
        let mut merged = vec![0u64; dim];
        for p in &partials {
            for (m, &c) in merged.iter_mut().zip(p) {
                *m += c;
            }
        }
        let estimate = setup.estimator.estimate(&merged, n as u64);
        if setup.comparable_mse {
            let truth = empirical_histogram(values, k);
            mse_sum += mse(&estimate, &truth);
            mse_rounds += 1;
        }
    }

    // Final per-user metrics (fixed order: independent of threading).
    let mut eps_sum = 0.0;
    let mut eps_max = 0.0f64;
    let mut distinct_sum = 0.0;
    for chunk in &chunks {
        for user in chunk {
            let spent = user.state.privacy_spent();
            eps_sum += spent;
            eps_max = eps_max.max(spent);
            distinct_sum += user.state.distinct_classes() as f64;
        }
    }
    let detection = if matches!(cfg.method, Method::OneBitFlip | Method::BBitFlip) {
        Some(DetectionSummary::from_tracks(
            chunks.iter().flatten().filter_map(|u| u.detect.as_ref()),
        ))
    } else {
        None
    };

    Ok(RunMetrics {
        mse_avg: if mse_rounds > 0 {
            mse_sum / mse_rounds as f64
        } else {
            f64::NAN
        },
        eps_avg: eps_sum / n as f64,
        eps_max,
        distinct_avg: distinct_sum / n as f64,
        detection,
        reduced_domain: setup.reduced_domain,
        comparable_mse: setup.comparable_mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::SynDataset;

    fn small_syn() -> SynDataset {
        SynDataset::new(24, 3_000, 6, 0.25)
    }

    fn run(method: Method, eps_inf: f64, alpha: f64) -> RunMetrics {
        let cfg = ExperimentConfig::new(method, eps_inf, alpha, 77).unwrap();
        run_experiment(&small_syn(), &cfg).unwrap()
    }

    #[test]
    fn all_methods_produce_finite_metrics() {
        for method in Method::paper_set() {
            let m = run(method, 2.0, 0.5);
            assert!(m.eps_avg.is_finite(), "{method:?}");
            assert!(m.eps_avg > 0.0, "{method:?}");
            assert!(m.comparable_mse, "{method:?} (b = k here)");
            assert!(m.mse_avg.is_finite(), "{method:?}");
            assert!(m.mse_avg >= 0.0, "{method:?}");
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let cfg1 = ExperimentConfig::new(Method::BiLoloha, 2.0, 0.5, 5)
            .unwrap()
            .with_threads(1);
        let cfg4 = cfg1.with_threads(4);
        let ds = small_syn();
        let a = run_experiment(&ds, &cfg1).unwrap();
        let b = run_experiment(&ds, &cfg4).unwrap();
        assert_eq!(a.mse_avg.to_bits(), b.mse_avg.to_bits());
        assert_eq!(a.eps_avg.to_bits(), b.eps_avg.to_bits());
    }

    #[test]
    fn loloha_budget_beats_baselines_under_churn() {
        // The headline claim: under frequent changes, BiLOLOHA's ε̌_avg is
        // far below RAPPOR's, and capped at 2ε∞ while RAPPOR keeps growing
        // with every distinct value (≈ 1 + 0.25·(τ−1) of them here).
        let ds = SynDataset::new(24, 2_000, 20, 0.25);
        let rappor = run_experiment(
            &ds,
            &ExperimentConfig::new(Method::Rappor, 1.0, 0.5, 77).unwrap(),
        )
        .unwrap();
        let bi = run_experiment(
            &ds,
            &ExperimentConfig::new(Method::BiLoloha, 1.0, 0.5, 77).unwrap(),
        )
        .unwrap();
        assert!(
            bi.eps_avg < rappor.eps_avg / 2.0,
            "BiLOLOHA {} vs RAPPOR {}",
            bi.eps_avg,
            rappor.eps_avg
        );
        assert!(bi.eps_max <= 2.0 + 1e-9, "BiLOLOHA cap 2ε∞");
        assert!(rappor.eps_max > 2.0, "RAPPOR should exceed the LOLOHA cap");
    }

    #[test]
    fn one_bitflip_detection_is_rare_and_b_bitflip_near_total() {
        let one = run(Method::OneBitFlip, 1.0, 0.5);
        let full = run(Method::BBitFlip, 1.0, 0.5);
        let one_rate = one.detection.unwrap().rate();
        let full_rate = full.detection.unwrap().rate();
        assert!(one_rate < 0.05, "1BitFlipPM rate {one_rate}");
        assert!(full_rate > 0.95, "bBitFlipPM rate {full_rate}");
    }

    #[test]
    fn ololoha_mse_not_worse_than_biloloha_low_privacy() {
        // In low-privacy regimes OLOLOHA's larger g buys utility.
        let bi = run(Method::BiLoloha, 5.0, 0.6);
        let o = run(Method::OLoloha, 5.0, 0.6);
        assert!(o.reduced_domain.unwrap() > 2);
        assert!(
            o.mse_avg <= bi.mse_avg * 1.5,
            "O {} vs Bi {}",
            o.mse_avg,
            bi.mse_avg
        );
    }

    #[test]
    fn large_domain_dbitflip_mse_is_flagged_incomparable() {
        let ds = ldp_datasets::FolkLikeDataset::new("T", 800, 500, 3, 0.004);
        let cfg = ExperimentConfig::new(Method::BBitFlip, 1.0, 0.5, 3).unwrap();
        let m = run_experiment(&ds, &cfg).unwrap();
        assert!(!m.comparable_mse);
        assert!(m.mse_avg.is_nan());
        assert_eq!(m.reduced_domain, Some(200));
    }
}
