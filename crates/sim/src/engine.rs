//! The longitudinal collection runner.
//!
//! One call to [`run_experiment`] simulates a full (dataset, method, ε∞, α)
//! cell: `n` stateful clients over `τ` rounds, server-side estimation each
//! round, and the paper's metrics at the end.
//!
//! The engine is a thin driver: all per-user client state lives in an
//! [`ldp_client::ClientPool`] (constructed through the method registry, so
//! there is no per-method dispatch here at all) and all aggregation in
//! [`ldp_runtime::ShardedAggregator`]. Two collection paths agree
//! bit-for-bit:
//!
//! * [`run_experiment`] — the pool's users are partitioned into chunks,
//!   each worker thread sanitizing one chunk straight into its own
//!   aggregator shard, and the aggregator merges and estimates at the end
//!   of every round.
//! * [`run_experiment_piped`] — the same chunks submit report envelopes
//!   through the concurrent `ldp_ingest` pipeline, whose shard workers
//!   accumulate while sanitization is still running (the production
//!   collector topology).
//!
//! Each user owns an independent RNG stream derived from `(seed, user)`
//! and the shard merge is an order-independent sum, so results are
//! bit-identical regardless of the thread/shard/worker count and of which
//! path collected the reports.

use crate::config::{ExperimentConfig, Method};
use crate::detection::DetectionSummary;
use crate::metrics::mse;
use ldp_client::{ClientConfig, ClientPool};
use ldp_datasets::{empirical_histogram, DatasetSpec};
use ldp_ingest::IngestPipeline;
use ldp_primitives::error::ParamError;
use ldp_runtime::ShardedAggregator;

/// Outcome of one experiment cell.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Eq. (7): MSE averaged over the τ rounds. `NaN` when the method's
    /// output histogram is not k-binned (dBitFlipPM with b < k), mirroring
    /// the paper's exclusion in Figs. 3c/3d.
    pub mse_avg: f64,
    /// Eq. (8): longitudinal privacy loss ε̌ averaged over users.
    pub eps_avg: f64,
    /// The worst user's ε̌.
    pub eps_max: f64,
    /// Average number of distinct memoized input classes per user.
    pub distinct_avg: f64,
    /// Table 2 detection outcome (dBitFlipPM only).
    pub detection: Option<DetectionSummary>,
    /// The resolved reduced domain size: g for LOLOHA, b for dBitFlipPM.
    pub reduced_domain: Option<u32>,
    /// Whether `mse_avg` is a comparable k-bin MSE.
    pub comparable_mse: bool,
}

/// Builds the population behind the method registry: every user's state
/// and RNG stream comes from `ldp_client`, with no per-method dispatch in
/// the engine.
fn build_pool(cfg: &ExperimentConfig, k: u64, n: usize) -> Result<ClientPool, ParamError> {
    let client_cfg = ClientConfig::for_method(cfg.method, k, cfg.eps_inf, cfg.eps_first())?;
    ClientPool::new(client_cfg, cfg.seed, n)
}

/// Final per-user metrics, read in fixed user order (independent of the
/// threading layout during collection).
fn finalize_metrics(
    pool: &ClientPool,
    cfg: &ExperimentConfig,
    n: usize,
    mse_sum: f64,
    mse_rounds: usize,
    agg: &ShardedAggregator,
) -> RunMetrics {
    let mut eps_sum = 0.0;
    let mut eps_max = 0.0f64;
    let mut distinct_sum = 0.0;
    for state in pool.states() {
        let spent = state.privacy_spent();
        eps_sum += spent;
        eps_max = eps_max.max(spent);
        distinct_sum += state.distinct_classes() as f64;
    }
    let detection = if matches!(cfg.method, Method::OneBitFlip | Method::BBitFlip) {
        Some(DetectionSummary::from_tracks(
            pool.states().filter_map(|s| s.detection()),
        ))
    } else {
        None
    };
    RunMetrics {
        mse_avg: if mse_rounds > 0 {
            mse_sum / mse_rounds as f64
        } else {
            f64::NAN
        },
        eps_avg: eps_sum / n as f64,
        eps_max,
        distinct_avg: distinct_sum / n as f64,
        detection,
        reduced_domain: agg.reduced_domain(),
        comparable_mse: agg.k_binned(),
    }
}

/// Runs one experiment cell and returns its metrics.
pub fn run_experiment(
    dataset: &dyn DatasetSpec,
    cfg: &ExperimentConfig,
) -> Result<RunMetrics, ParamError> {
    let k = dataset.k();
    let n = dataset.n();
    let tau = dataset.tau();

    // One aggregator shard per worker thread.
    let threads = cfg.effective_threads().clamp(1, n.max(1));
    let mut agg =
        ShardedAggregator::for_method(cfg.method, k, cfg.eps_inf, cfg.eps_first(), threads)?;
    let mut pool = build_pool(cfg, k, n)?;

    let mut data = dataset.instantiate(cfg.seed);
    let mut mse_sum = 0.0;
    let mut mse_rounds = 0usize;

    for _t in 0..tau {
        let values = data.step();
        assert_eq!(values.len(), n, "dataset produced wrong population size");
        // The aggregator starts zeroed and finish_round resets the shards,
        // so each iteration begins on a clean round.
        pool.sanitize_round_into_shards(values, agg.shards_mut());
        let round = agg.finish_round();
        debug_assert_eq!(round.reports, n as u64, "every user reports every round");
        if agg.k_binned() {
            let truth = empirical_histogram(values, k);
            mse_sum += mse(&round.estimate, &truth);
            mse_rounds += 1;
        }
    }

    Ok(finalize_metrics(&pool, cfg, n, mse_sum, mse_rounds, &agg))
}

/// Runs one experiment cell through the concurrent ingestion pipeline
/// (`ldp_ingest`): the client pool sanitizes its users on scoped threads
/// and submits keyed envelopes to the pipeline's shard workers, which
/// accumulate concurrently with sanitization.
///
/// Bit-identical to [`run_experiment`] for every method and thread count:
/// each user owns a `(seed, user)`-derived RNG stream, routing is a stable
/// hash of the user index, and both shard accumulation and the merge are
/// order-independent sums.
pub fn run_experiment_piped(
    dataset: &dyn DatasetSpec,
    cfg: &ExperimentConfig,
) -> Result<RunMetrics, ParamError> {
    let k = dataset.k();
    let n = dataset.n();
    let tau = dataset.tau();

    let workers = cfg.effective_threads().clamp(1, n.max(1));
    let mut pipe =
        IngestPipeline::for_method(cfg.method, k, cfg.eps_inf, cfg.eps_first(), workers)?;
    let mut pool = build_pool(cfg, k, n)?;

    let mut data = dataset.instantiate(cfg.seed);
    let mut mse_sum = 0.0;
    let mut mse_rounds = 0usize;

    for _t in 0..tau {
        let values = data.step();
        assert_eq!(values.len(), n, "dataset produced wrong population size");
        pool.sanitize_round(values, workers, &pipe.handle())
            .expect("ingest worker lost");
        let round = pipe.finish_round().expect("ingest worker lost");
        debug_assert_eq!(round.reports, n as u64, "every user reports every round");
        if pipe.aggregator().k_binned() {
            let truth = empirical_histogram(values, k);
            mse_sum += mse(&round.estimate, &truth);
            mse_rounds += 1;
        }
    }

    Ok(finalize_metrics(
        &pool,
        cfg,
        n,
        mse_sum,
        mse_rounds,
        pipe.aggregator(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::SynDataset;

    fn small_syn() -> SynDataset {
        SynDataset::new(24, 3_000, 6, 0.25)
    }

    fn run(method: Method, eps_inf: f64, alpha: f64) -> RunMetrics {
        let cfg = ExperimentConfig::new(method, eps_inf, alpha, 77).unwrap();
        run_experiment(&small_syn(), &cfg).unwrap()
    }

    #[test]
    fn all_methods_produce_finite_metrics() {
        for method in Method::paper_set() {
            let m = run(method, 2.0, 0.5);
            assert!(m.eps_avg.is_finite(), "{method:?}");
            assert!(m.eps_avg > 0.0, "{method:?}");
            assert!(m.comparable_mse, "{method:?} (b = k here)");
            assert!(m.mse_avg.is_finite(), "{method:?}");
            assert!(m.mse_avg >= 0.0, "{method:?}");
        }
    }

    #[test]
    fn results_are_shard_count_invariant_for_every_method() {
        // The aggregator merge is an order-independent sum and every user
        // owns a (seed, user)-derived RNG stream, so 1, 3, and 8 worker
        // shards must agree bit-for-bit — for all nine protocol variants.
        let ds = SynDataset::new(16, 240, 3, 0.3);
        for method in Method::all() {
            let base = ExperimentConfig::new(method, 2.0, 0.5, 5).unwrap();
            let reference = run_experiment(&ds, &base.with_threads(1)).unwrap();
            for threads in [3usize, 8] {
                let m = run_experiment(&ds, &base.with_threads(threads)).unwrap();
                assert_eq!(
                    reference.mse_avg.to_bits(),
                    m.mse_avg.to_bits(),
                    "{method:?} mse at {threads} threads"
                );
                assert_eq!(
                    reference.eps_avg.to_bits(),
                    m.eps_avg.to_bits(),
                    "{method:?} eps at {threads} threads"
                );
                assert_eq!(
                    reference.distinct_avg.to_bits(),
                    m.distinct_avg.to_bits(),
                    "{method:?} distinct at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn piped_engine_is_bit_identical_for_every_method() {
        // The ingest-pipeline collection path must agree with the direct
        // shard-filling path bit-for-bit, for all nine protocol variants
        // and across worker counts.
        let ds = SynDataset::new(16, 240, 3, 0.3);
        for method in Method::all() {
            let base = ExperimentConfig::new(method, 2.0, 0.5, 5).unwrap();
            let reference = run_experiment(&ds, &base.with_threads(1)).unwrap();
            for threads in [1usize, 4] {
                let m = run_experiment_piped(&ds, &base.with_threads(threads)).unwrap();
                assert_eq!(
                    reference.mse_avg.to_bits(),
                    m.mse_avg.to_bits(),
                    "{method:?} mse piped at {threads} workers"
                );
                assert_eq!(
                    reference.eps_avg.to_bits(),
                    m.eps_avg.to_bits(),
                    "{method:?} eps piped at {threads} workers"
                );
                assert_eq!(
                    reference.eps_max.to_bits(),
                    m.eps_max.to_bits(),
                    "{method:?} eps_max piped at {threads} workers"
                );
                assert_eq!(
                    reference.distinct_avg.to_bits(),
                    m.distinct_avg.to_bits(),
                    "{method:?} distinct piped at {threads} workers"
                );
                if let (Some(a), Some(b)) = (&reference.detection, &m.detection) {
                    assert_eq!(a.rate().to_bits(), b.rate().to_bits(), "{method:?}");
                }
            }
        }
    }

    #[test]
    fn loloha_budget_beats_baselines_under_churn() {
        // The headline claim: under frequent changes, BiLOLOHA's ε̌_avg is
        // far below RAPPOR's, and capped at 2ε∞ while RAPPOR keeps growing
        // with every distinct value (≈ 1 + 0.25·(τ−1) of them here).
        let ds = SynDataset::new(24, 2_000, 20, 0.25);
        let rappor = run_experiment(
            &ds,
            &ExperimentConfig::new(Method::Rappor, 1.0, 0.5, 77).unwrap(),
        )
        .unwrap();
        let bi = run_experiment(
            &ds,
            &ExperimentConfig::new(Method::BiLoloha, 1.0, 0.5, 77).unwrap(),
        )
        .unwrap();
        assert!(
            bi.eps_avg < rappor.eps_avg / 2.0,
            "BiLOLOHA {} vs RAPPOR {}",
            bi.eps_avg,
            rappor.eps_avg
        );
        assert!(bi.eps_max <= 2.0 + 1e-9, "BiLOLOHA cap 2ε∞");
        assert!(rappor.eps_max > 2.0, "RAPPOR should exceed the LOLOHA cap");
    }

    #[test]
    fn one_bitflip_detection_is_rare_and_b_bitflip_near_total() {
        let one = run(Method::OneBitFlip, 1.0, 0.5);
        let full = run(Method::BBitFlip, 1.0, 0.5);
        let one_rate = one.detection.unwrap().rate();
        let full_rate = full.detection.unwrap().rate();
        assert!(one_rate < 0.05, "1BitFlipPM rate {one_rate}");
        assert!(full_rate > 0.95, "bBitFlipPM rate {full_rate}");
    }

    #[test]
    fn ololoha_mse_not_worse_than_biloloha_low_privacy() {
        // In low-privacy regimes OLOLOHA's larger g buys utility.
        let bi = run(Method::BiLoloha, 5.0, 0.6);
        let o = run(Method::OLoloha, 5.0, 0.6);
        assert!(o.reduced_domain.unwrap() > 2);
        assert!(
            o.mse_avg <= bi.mse_avg * 1.5,
            "O {} vs Bi {}",
            o.mse_avg,
            bi.mse_avg
        );
    }

    #[test]
    fn large_domain_dbitflip_mse_is_flagged_incomparable() {
        let ds = ldp_datasets::FolkLikeDataset::new("T", 800, 500, 3, 0.004);
        let cfg = ExperimentConfig::new(Method::BBitFlip, 1.0, 0.5, 3).unwrap();
        let m = run_experiment(&ds, &cfg).unwrap();
        assert!(!m.comparable_mse);
        assert!(m.mse_avg.is_nan());
        assert_eq!(m.reduced_domain, Some(200));
    }
}
