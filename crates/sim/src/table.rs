//! Minimal table emitters for the benchmark harness.
//!
//! Every figure/table binary prints two artifacts: a CSV block (one row per
//! data point, machine-readable for replotting) and a human-readable
//! markdown table. No serialization dependency needed.

use std::fmt::Write as _;

/// An in-memory table with string headers and formatted cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " {cell:w$} |");
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float compactly for tables: scientific for very small/large
/// magnitudes, fixed otherwise, `NaN` spelled out.
pub fn fmt_sci(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() < 1e-3 || x.abs() >= 1e6 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["x,y", "q\"z"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[2], "\"x,y\",\"q\"\"z\"");
    }

    #[test]
    fn markdown_has_separator_and_alignment() {
        let mut t = Table::new(["name", "v"]);
        t.push_row(["long-name", "1"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = Table::new(["a"]);
        t.push_row(["1", "2"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_sci(f64::NAN), "n/a");
        assert_eq!(fmt_sci(0.0), "0");
        assert!(fmt_sci(1.5e-7).contains('e'));
        assert_eq!(fmt_sci(0.1234567), "0.1235");
    }
}
