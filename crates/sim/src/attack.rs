//! The averaging attack that motivates memoization (§2.4).
//!
//! If a user re-randomizes their true value with *fresh* noise every round,
//! an adversary observing the report stream can average the noise away: the
//! mode of GRR reports converges to the true value as τ grows. Memoization
//! caps what the stream reveals at the memoized state — the adversary's
//! mode converges to the *permanently randomized* value instead, which
//! equals the truth only with probability `p1`.
//!
//! [`averaging_attack`] measures the adversary's success rate under both
//! regimes; the `ablation_averaging_attack` bench binary reproduces the
//! motivating numbers.

use ldp_longitudinal::LgrrClient;
use ldp_primitives::error::ParamError;
use ldp_primitives::Grr;
use ldp_rand::derive_rng2;

/// Which reporting regime the simulated users follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Fresh GRR noise at ε1 every round (no memoization).
    FreshNoise,
    /// L-GRR memoization: PRR at ε∞ once, IRR per round, first report ε1.
    Memoized,
}

/// Simulates `trials` users each reporting their fixed true value for
/// `tau` rounds; the adversary guesses the mode of the observed reports.
/// Returns the fraction of users whose true value was recovered.
pub fn averaging_attack(
    k: u64,
    eps_inf: f64,
    eps_first: f64,
    tau: usize,
    trials: usize,
    regime: Regime,
    seed: u64,
) -> Result<f64, ParamError> {
    ldp_primitives::error::check_epsilon_order(eps_first, eps_inf)?;
    if k < 2 {
        return Err(ParamError::DomainTooSmall { k, min: 2 });
    }
    let mut successes = 0usize;
    for trial in 0..trials {
        let mut rng = derive_rng2(seed, 0x00A7_7AC4, trial as u64);
        let truth = ldp_rand::uniform_u64(&mut rng, k);
        let mut histogram = vec![0u64; k as usize];
        match regime {
            Regime::FreshNoise => {
                let grr = Grr::new(k, eps_first)?;
                for _ in 0..tau {
                    histogram[grr.perturb(truth, &mut rng) as usize] += 1;
                }
            }
            Regime::Memoized => {
                let mut client = LgrrClient::new(k, eps_inf, eps_first)?;
                for _ in 0..tau {
                    histogram[client.report(truth, &mut rng) as usize] += 1;
                }
            }
        }
        let guess = histogram
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(v, _)| v as u64)
            .expect("non-empty histogram");
        if guess == truth {
            successes += 1;
        }
    }
    Ok(successes as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_noise_is_broken_by_long_streams() {
        // With τ = 200 rounds at ε1 = 1 over k = 8, the mode identifies the
        // true value essentially always.
        let rate = averaging_attack(8, 2.0, 1.0, 200, 200, Regime::FreshNoise, 1).unwrap();
        assert!(rate > 0.95, "fresh-noise attack rate {rate}");
    }

    #[test]
    fn memoization_caps_the_attack() {
        // The adversary can at best learn the memoized PRR value, which is
        // the truth only with probability p1 = e^{ε∞}/(e^{ε∞}+k−1) ≈ 0.51.
        let rate = averaging_attack(8, 2.0, 1.0, 200, 300, Regime::Memoized, 2).unwrap();
        let p1 = (2.0f64.exp()) / (2.0f64.exp() + 7.0);
        assert!(rate < p1 + 0.1, "memoized attack rate {rate} vs p1 {p1}");
        assert!(rate > p1 - 0.1, "memoized attack rate {rate} vs p1 {p1}");
    }

    #[test]
    fn memoized_is_strictly_safer_than_fresh() {
        let fresh = averaging_attack(16, 2.0, 1.0, 100, 200, Regime::FreshNoise, 3).unwrap();
        let memo = averaging_attack(16, 2.0, 1.0, 100, 200, Regime::Memoized, 3).unwrap();
        assert!(memo < fresh, "memo {memo} vs fresh {fresh}");
    }

    #[test]
    fn short_streams_leak_less() {
        let short = averaging_attack(8, 2.0, 0.5, 1, 400, Regime::FreshNoise, 4).unwrap();
        let long = averaging_attack(8, 2.0, 0.5, 100, 400, Regime::FreshNoise, 4).unwrap();
        assert!(short < long, "short {short} vs long {long}");
    }

    #[test]
    fn validates_inputs() {
        assert!(averaging_attack(1, 2.0, 1.0, 1, 1, Regime::FreshNoise, 0).is_err());
        assert!(averaging_attack(4, 1.0, 2.0, 1, 1, Regime::FreshNoise, 0).is_err());
    }
}
