//! Multi-threaded longitudinal LDP collection simulator (§5 of the paper).
//!
//! Drives `n` stateful clients through `τ` collection rounds of an evolving
//! dataset, aggregates their reports server-side, and computes the paper's
//! evaluation metrics:
//!
//! * [`metrics`] — `MSE_avg` (Eq. (7)) against per-step ground truth, and
//!   the averaged longitudinal privacy loss `ε̌_avg` (Eq. (8)).
//! * [`engine`] — the runner: user chunks are processed on worker threads
//!   (per-user RNG streams make results independent of the thread count),
//!   support counts are merged, and the matching server estimator is
//!   applied each round.
//! * [`detection`] — the Table 2 attack on dBitFlipPM: a report change
//!   implies a bucket change (memoized responses are deterministic), so the
//!   attacker flags exactly the rounds whose report differs from the
//!   previous one.
//! * [`attack`] — the averaging attack that motivates memoization
//!   (§2.4): repeated fresh-noise reports expose the true value, memoized
//!   reports do not.
//! * [`table`] — minimal CSV/markdown emitters for the bench harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod config;
pub mod detection;
pub mod engine;
pub mod metrics;
pub mod table;

pub use config::{ExperimentConfig, Method};
pub use engine::{run_experiment, run_experiment_piped, RunMetrics};
pub use metrics::{mean, mse, std_dev, Summary};
