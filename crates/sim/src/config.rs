//! Experiment configuration: the method under test and its budgets.

use ldp_primitives::error::ParamError;

/// The longitudinal protocols evaluated in the paper (plus the two L-UE
/// chaining extensions from Arcolezi et al. \[5\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// RAPPOR / L-SUE: SUE chained with SUE \[23\].
    Rappor,
    /// L-OSUE: OUE (PRR) chained with SUE (IRR) \[5\].
    LOsue,
    /// L-OUE: OUE chained with OUE (extension).
    LOue,
    /// L-SOUE: SUE chained with OUE (extension).
    LSoue,
    /// L-GRR: GRR chained with GRR \[5\].
    LGrr,
    /// BiLOLOHA: LOLOHA at g = 2 (privacy-tuned).
    BiLoloha,
    /// OLOLOHA: LOLOHA at the Eq. (6) optimal g (utility-tuned).
    OLoloha,
    /// 1BitFlipPM: dBitFlipPM with d = 1 (privacy-tuned) \[13\].
    OneBitFlip,
    /// bBitFlipPM: dBitFlipPM with d = b (utility-tuned) \[13\].
    BBitFlip,
}

impl Method {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Rappor => "RAPPOR",
            Method::LOsue => "L-OSUE",
            Method::LOue => "L-OUE",
            Method::LSoue => "L-SOUE",
            Method::LGrr => "L-GRR",
            Method::BiLoloha => "BiLOLOHA",
            Method::OLoloha => "OLOLOHA",
            Method::OneBitFlip => "1BitFlipPM",
            Method::BBitFlip => "bBitFlipPM",
        }
    }

    /// The seven methods of Figs. 3–4.
    pub fn paper_set() -> [Method; 7] {
        [
            Method::BBitFlip,
            Method::LOsue,
            Method::OLoloha,
            Method::Rappor,
            Method::BiLoloha,
            Method::OneBitFlip,
            Method::LGrr,
        ]
    }

    /// Whether the method is single-round (no IRR step): only dBitFlipPM.
    pub fn single_round(&self) -> bool {
        matches!(self, Method::OneBitFlip | Method::BBitFlip)
    }
}

/// One experiment cell: a method at a budget point.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub method: Method,
    /// Longitudinal budget ε∞ (upper bound).
    pub eps_inf: f64,
    /// First-report fraction α, so ε1 = α·ε∞. Ignored by single-round
    /// methods.
    pub alpha: f64,
    /// Master seed; every (user, round) stream derives from it.
    pub seed: u64,
    /// Worker threads (0 = use all available cores).
    pub threads: usize,
}

impl ExperimentConfig {
    /// Creates a validated configuration.
    pub fn new(method: Method, eps_inf: f64, alpha: f64, seed: u64) -> Result<Self, ParamError> {
        ldp_primitives::error::check_epsilon(eps_inf)?;
        let alpha_valid = alpha > 0.0 && alpha < 1.0;
        if !method.single_round() && !alpha_valid {
            return Err(ParamError::EpsilonOrder {
                eps_first: alpha * eps_inf,
                eps_inf,
            });
        }
        Ok(Self {
            method,
            eps_inf,
            alpha,
            seed,
            threads: 0,
        })
    }

    /// The first-report budget ε1 = α·ε∞.
    pub fn eps_first(&self) -> f64 {
        self.alpha * self.eps_inf
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves the effective thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The paper's bucket choice for dBitFlipPM: `b = k` when `k ≤ 360`
/// (Syn, Adult), `b = ⌊k/4⌋` for the large census domains.
pub fn dbit_buckets(k: u64) -> u32 {
    if k <= 360 {
        k as u32
    } else {
        (k / 4) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Method::Rappor.name(), "RAPPOR");
        assert_eq!(Method::BBitFlip.name(), "bBitFlipPM");
        assert_eq!(Method::OneBitFlip.name(), "1BitFlipPM");
    }

    #[test]
    fn paper_set_has_seven_methods() {
        let set = Method::paper_set();
        assert_eq!(set.len(), 7);
        assert!(!set.contains(&Method::LOue));
    }

    #[test]
    fn config_validation() {
        assert!(ExperimentConfig::new(Method::Rappor, 1.0, 0.5, 0).is_ok());
        assert!(ExperimentConfig::new(Method::Rappor, 0.0, 0.5, 0).is_err());
        assert!(ExperimentConfig::new(Method::Rappor, 1.0, 1.0, 0).is_err());
        // Single-round methods ignore alpha entirely.
        assert!(ExperimentConfig::new(Method::BBitFlip, 1.0, 0.0, 0).is_ok());
    }

    #[test]
    fn dbit_bucket_rule() {
        assert_eq!(dbit_buckets(96), 96);
        assert_eq!(dbit_buckets(360), 360);
        assert_eq!(dbit_buckets(1412), 353);
        assert_eq!(dbit_buckets(1234), 308);
    }

    #[test]
    fn eps_first_is_alpha_fraction() {
        let c = ExperimentConfig::new(Method::LOsue, 2.0, 0.4, 1).unwrap();
        assert!((c.eps_first() - 0.8).abs() < 1e-12);
    }
}
