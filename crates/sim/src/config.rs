//! Experiment configuration: the method under test and its budgets.

use ldp_primitives::error::ParamError;

// The method registry lives in the aggregation runtime so every front end
// (simulator, CLI, bench harness, examples) shares one protocol list.
pub use ldp_runtime::{dbit_buckets, Method};

/// One experiment cell: a method at a budget point.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub method: Method,
    /// Longitudinal budget ε∞ (upper bound).
    pub eps_inf: f64,
    /// First-report fraction α, so ε1 = α·ε∞. Ignored by single-round
    /// methods.
    pub alpha: f64,
    /// Master seed; every (user, round) stream derives from it.
    pub seed: u64,
    /// Worker threads (0 = use all available cores).
    pub threads: usize,
}

impl ExperimentConfig {
    /// Creates a validated configuration.
    pub fn new(method: Method, eps_inf: f64, alpha: f64, seed: u64) -> Result<Self, ParamError> {
        ldp_primitives::error::check_epsilon(eps_inf)?;
        let alpha_valid = alpha > 0.0 && alpha < 1.0;
        if !method.single_round() && !alpha_valid {
            return Err(ParamError::EpsilonOrder {
                eps_first: alpha * eps_inf,
                eps_inf,
            });
        }
        Ok(Self {
            method,
            eps_inf,
            alpha,
            seed,
            threads: 0,
        })
    }

    /// The first-report budget ε1 = α·ε∞.
    pub fn eps_first(&self) -> f64 {
        self.alpha * self.eps_inf
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves the effective thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(ExperimentConfig::new(Method::Rappor, 1.0, 0.5, 0).is_ok());
        assert!(ExperimentConfig::new(Method::Rappor, 0.0, 0.5, 0).is_err());
        assert!(ExperimentConfig::new(Method::Rappor, 1.0, 1.0, 0).is_err());
        // Single-round methods ignore alpha entirely.
        assert!(ExperimentConfig::new(Method::BBitFlip, 1.0, 0.0, 0).is_ok());
    }

    #[test]
    fn eps_first_is_alpha_fraction() {
        let c = ExperimentConfig::new(Method::LOsue, 2.0, 0.4, 1).unwrap();
        assert!((c.eps_first() - 0.8).abs() < 1e-12);
    }
}
