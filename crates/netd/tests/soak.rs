//! Soak and backpressure suite.
//!
//! Three sustained-traffic properties the protocol must hold under
//! pressure:
//!
//! * A **trickling sender** (bytes arriving far slower than the
//!   daemon's poll tick) never desynchronizes the stream — the
//!   connection's incremental assembler parks partial frames across
//!   ticks and memory stays bounded by one frame.
//! * A **burst** into a deliberately tiny pipeline (one worker, channel
//!   capacity 1) maps socket pressure onto the ingest pipeline's own
//!   backpressure: the `send_blocked` counters fire, nothing is
//!   dropped, and every report still lands exactly once.
//! * Over a multi-round, multi-connection run, **every accepted frame
//!   is acked exactly once** (daemon-side applied count equals
//!   client-side acked count) and the daemon's connection gauge returns
//!   to zero once the clients leave.

use ldp_ingest::ReportBatch;
use ldp_netd::{
    decode_frame, encode_frame, read_frame, run_loadgen, Collectd, DaemonConfig, Frame,
    LoadgenConfig,
};
use ldp_obs::MetricsRegistry;
use ldp_runtime::Method;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn daemon_config(method: Method, k: u64) -> DaemonConfig {
    DaemonConfig::new(method, k, 2.0, 1.0)
}

/// Drip-feeds `bytes` down the stream a few bytes at a time, sleeping
/// past the daemon's poll tick between chunks.
fn trickle(stream: &mut TcpStream, bytes: &[u8]) {
    for chunk in bytes.chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn expect_frame(stream: &mut TcpStream) -> Frame {
    let mut buf = Vec::new();
    assert!(read_frame(stream, &mut buf).unwrap(), "daemon replied");
    decode_frame(&buf).unwrap().1
}

#[test]
fn a_trickling_sender_never_desynchronizes_the_stream() {
    let obs = MetricsRegistry::new();
    let daemon = Collectd::start(daemon_config(Method::LGrr, 8), &obs).unwrap();
    let mut s = TcpStream::connect(daemon.local_addr()).unwrap();

    let hello = encode_frame(
        &Frame::Hello {
            worker_id: 0,
            k: 8,
            dim: 8,
            method: Method::LGrr.name().into(),
        },
        daemon.fingerprint(),
    );
    let mut batch = ReportBatch::new();
    batch.push_report([2u32]);
    batch.push_report([7u32]);
    let submit = encode_frame(
        &Frame::Submit {
            seq: 1,
            key_base: 0,
            batch,
        },
        daemon.fingerprint(),
    );

    // Length prefix and body both arrive in sub-frame dribs; every
    // chunk boundary lands mid-field somewhere.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::try_from(hello.len()).unwrap().to_le_bytes());
    wire.extend_from_slice(&hello);
    trickle(&mut s, &wire);
    assert!(matches!(expect_frame(&mut s), Frame::HelloAck { .. }));

    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::try_from(submit.len()).unwrap().to_le_bytes());
    wire.extend_from_slice(&submit);
    trickle(&mut s, &wire);
    assert!(matches!(
        expect_frame(&mut s),
        Frame::Ack {
            seq: 1,
            reports: 2,
            ..
        }
    ));

    // The stream is still frame-aligned: a normally sent frame parses.
    let end = encode_frame(&Frame::EndRound { round: 0 }, daemon.fingerprint());
    s.write_all(&u32::try_from(end.len()).unwrap().to_le_bytes())
        .unwrap();
    s.write_all(&end).unwrap();
    match expect_frame(&mut s) {
        Frame::RoundResult { reports, .. } => assert_eq!(reports, 2),
        other => panic!("expected a round result, got {other:?}"),
    }

    drop(s);
    daemon.trigger_drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.frames_applied, 1);
    assert_eq!(report.rounds_finished, 1);
}

#[test]
fn burst_traffic_lands_exactly_once_through_pipeline_backpressure() {
    let obs = MetricsRegistry::new();
    let mut dcfg = daemon_config(Method::LOue, 8);
    // The tightest pipeline the config allows: one shard worker behind a
    // one-envelope channel, one report per envelope. Socket ingestion
    // must block on the channel, not buffer unboundedly.
    dcfg.workers = 1;
    dcfg.channel_capacity = 1;
    dcfg.batch_reports = 1;
    let daemon = Collectd::start(dcfg, &obs).unwrap();

    let users: usize = 300;
    let mut lcfg = LoadgenConfig::new(daemon.local_addr(), Method::LOue, 8, 2.0, 1.0);
    lcfg.users = users;
    lcfg.workers = 2;
    lcfg.frame_reports = 64;
    let report = run_loadgen(&lcfg, &obs).unwrap();

    daemon.trigger_drain();
    let dreport = daemon.join().unwrap();

    assert_eq!(report.reports, users as u64, "nothing dropped");
    assert_eq!(report.rounds[0].reports, users as u64);
    assert_eq!(
        dreport.frames_applied, report.frames,
        "every accepted frame applied exactly once"
    );
    let snap = obs.snapshot();
    assert!(
        snap.counter_total("ldp.ingest.pipeline.send_blocked") > 0,
        "the burst must hit the pipeline's backpressure at least once"
    );
}

#[test]
fn acks_are_exactly_once_and_the_connection_gauge_drains_to_zero() {
    let obs = MetricsRegistry::new();
    let daemon = Collectd::start(daemon_config(Method::BiLoloha, 16), &obs).unwrap();

    let users: usize = 40;
    let rounds: u64 = 2;
    let mut lcfg = LoadgenConfig::new(daemon.local_addr(), Method::BiLoloha, 16, 2.0, 1.0);
    lcfg.users = users;
    lcfg.rounds = rounds;
    lcfg.workers = 3;
    lcfg.frame_reports = 4;
    let report = run_loadgen(&lcfg, &obs).unwrap();

    assert_eq!(report.retries, 0);
    assert_eq!(
        report.reports,
        (users as u64) * rounds,
        "one ack per report"
    );
    assert!(report.reports_per_sec > 0.0);

    // The loadgen connections have closed; the daemon's live-connection
    // gauge must return to zero within a few ticks.
    let gauge = obs.gauge("ldp.netd.connections");
    let deadline = Instant::now() + Duration::from_secs(10);
    while gauge.get() != 0 {
        assert!(Instant::now() < deadline, "gauge stuck at {}", gauge.get());
        std::thread::sleep(Duration::from_millis(10));
    }

    daemon.trigger_drain();
    let dreport = daemon.join().unwrap();
    assert_eq!(
        dreport.frames_applied, report.frames,
        "applied == acked: exactly once"
    );
    assert_eq!(dreport.rounds_finished, rounds);
    assert_eq!(dreport.connections_served, 3 * rounds);

    let snap = obs.snapshot();
    // Wire-level accounting exists and is labeled per frame kind.
    assert!(snap.counter_total("ldp.netd.frames_rx") > 0);
    assert!(snap.counter_total("ldp.netd.frames_tx") > 0);
}
