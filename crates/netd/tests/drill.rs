//! Crash/drain drill: the network path must be a transparent transport.
//!
//! Three arms, each comparing the daemon's round estimates against an
//! uninterrupted in-process reference (`ClientPool` sanitizing straight
//! into an `IngestPipeline`) bit-for-bit via `f64::to_bits`:
//!
//! 1. **Equivalence** — a clean loadgen → collectd run over loopback,
//!    every method, plus a multi-round schedule.
//! 2. **Drain** — a daemon absorbs a prefix of the round, drains
//!    gracefully (final checkpoint), a fresh daemon resumes from disk,
//!    and a full loadgen replay dedups the prefix via `resume_seq`.
//! 3. **Hard kill** — the daemon dies mid-round with *no* final
//!    checkpoint; loadgen retries against a restarted daemon on the
//!    same address until the round lands.
//!
//! Determinism rests on two properties pinned elsewhere: per-user RNG
//! streams are independent of worker chunking (client crate), and
//! estimate computation is a pure function of merged counts (runtime
//! crate). Here we pin that the wire, checkpoint, and dedup layers
//! preserve those counts exactly.

use ldp_client::{ClientConfig, ClientPool, ReportBuf, ReportSink};
use ldp_ingest::IngestPipeline;
use ldp_netd::{
    config_fingerprint, round_values, run_loadgen, Collectd, DaemonConfig, Deadline, LoadgenConfig,
    NetSink,
};
use ldp_obs::MetricsRegistry;
use ldp_runtime::{Method, ShardedAggregator};
use std::path::PathBuf;
use std::time::Duration;

const K: u64 = 8;
const EPS_INF: f64 = 2.0;
const EPS_FIRST: f64 = 1.0;
const SEED: u64 = 0xD1A1;

/// A per-test scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("ldp_netd_drill_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The uninterrupted in-process reference: same seed, same population,
/// same per-round values, straight into the ingest pipeline.
fn reference_rounds(
    method: Method,
    users: usize,
    rounds: u64,
    workers: usize,
) -> Vec<(u64, Vec<f64>)> {
    let cfg = ClientConfig::for_method(method, K, EPS_INF, EPS_FIRST).unwrap();
    let mut pool = ClientPool::new(cfg, SEED, users).unwrap();
    let mut pipeline = IngestPipeline::for_method(method, K, EPS_INF, EPS_FIRST, workers).unwrap();
    let mut out = Vec::new();
    for round in 0..rounds {
        let values = round_values(SEED, round, users, K);
        pool.sanitize_round(&values, workers, &pipeline.handle())
            .unwrap();
        let snap = pipeline.finish_round().unwrap();
        out.push((snap.reports, snap.estimate));
    }
    out
}

fn assert_bit_identical(method: Method, reference: &[(u64, Vec<f64>)], got: &[(u64, Vec<f64>)]) {
    assert_eq!(reference.len(), got.len(), "{}: round count", method.name());
    for (round, (r, g)) in reference.iter().zip(got).enumerate() {
        assert_eq!(r.0, g.0, "{} round {round}: reports", method.name());
        assert_eq!(
            r.1.len(),
            g.1.len(),
            "{} round {round}: estimate dim",
            method.name()
        );
        for (i, (a, b)) in r.1.iter().zip(&g.1).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} round {round} bin {i}: {a} vs {b}",
                method.name()
            );
        }
    }
}

fn daemon_config(method: Method) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(method, K, EPS_INF, EPS_FIRST);
    cfg.workers = 2;
    cfg
}

fn loadgen_config(
    addr: std::net::SocketAddr,
    method: Method,
    users: usize,
    rounds: u64,
    workers: usize,
) -> LoadgenConfig {
    let mut cfg = LoadgenConfig::new(addr, method, K, EPS_INF, EPS_FIRST);
    cfg.users = users;
    cfg.rounds = rounds;
    cfg.workers = workers;
    cfg.frame_reports = 5; // several frames per round even at test scale
    cfg.seed = SEED;
    cfg
}

#[test]
fn loopback_collection_is_bit_identical_to_in_process_for_every_method() {
    let users = 24;
    for method in Method::all() {
        let obs = MetricsRegistry::new();
        let daemon = Collectd::start(daemon_config(method), &obs).unwrap();
        let cfg = loadgen_config(daemon.local_addr(), method, users, 1, 2);
        let report = run_loadgen(&cfg, &obs).unwrap();
        daemon.trigger_drain();
        let dreport = daemon.join().unwrap();

        assert_eq!(report.retries, 0, "{}: clean run", method.name());
        assert_eq!(
            report.reports,
            users as u64,
            "{}: every report acked exactly once",
            method.name()
        );
        assert_eq!(dreport.frames_applied, report.frames, "{}", method.name());
        let got: Vec<_> = report
            .rounds
            .iter()
            .map(|r| (r.reports, r.estimate.clone()))
            .collect();
        assert_bit_identical(method, &reference_rounds(method, users, 1, 2), &got);
    }
}

#[test]
fn multi_round_schedules_cycle_end_round_correctly() {
    let users = 18;
    let rounds = 3;
    for method in [Method::BiLoloha, Method::BBitFlip] {
        let obs = MetricsRegistry::new();
        let daemon = Collectd::start(daemon_config(method), &obs).unwrap();
        let cfg = loadgen_config(daemon.local_addr(), method, users, rounds, 2);
        let report = run_loadgen(&cfg, &obs).unwrap();
        daemon.trigger_drain();
        let dreport = daemon.join().unwrap();

        assert_eq!(dreport.rounds_finished, rounds, "{}", method.name());
        let got: Vec<_> = report
            .rounds
            .iter()
            .map(|r| (r.reports, r.estimate.clone()))
            .collect();
        assert_bit_identical(method, &reference_rounds(method, users, rounds, 2), &got);
    }
}

/// Replays the first full frame of each loadgen worker's chunk by hand:
/// a fresh pool (identical to the one `run_loadgen` will build) walks
/// each worker's user range in order, exactly as
/// `sanitize_round_sinks` would, and stops after one wire frame. The
/// daemon applies and checkpoints this prefix; the later full replay
/// must skip it via `resume_seq`.
fn send_prefix(
    daemon: &Collectd,
    method: Method,
    users: usize,
    workers: usize,
    frame_reports: usize,
    obs: &MetricsRegistry,
) -> u64 {
    let cfg = ClientConfig::for_method(method, K, EPS_INF, EPS_FIRST).unwrap();
    let mut pool = ClientPool::new(cfg, SEED, users).unwrap();
    let dim = ShardedAggregator::for_method(method, K, EPS_INF, EPS_FIRST, 1)
        .unwrap()
        .dim();
    let fingerprint = config_fingerprint(method, K, dim as u64, EPS_INF, EPS_FIRST);
    let values = round_values(SEED, 0, users, K);
    let chunk = users.div_ceil(workers).max(1);
    let mut buf = ReportBuf::new();
    let mut sent = 0u64;
    for w in 0..workers {
        let start = w * chunk;
        let end = users.min(start + chunk);
        if start >= end {
            break;
        }
        let prefix_end = end.min(start + frame_reports);
        let mut sink = NetSink::connect(
            daemon.local_addr(),
            u32::try_from(w).unwrap(),
            method,
            K,
            dim as u64,
            fingerprint,
            frame_reports,
            obs,
            Deadline::after(Duration::from_secs(10)),
        )
        .unwrap();
        assert_eq!(sink.server_round(), 0);
        for (user, &value) in values.iter().enumerate().take(prefix_end).skip(start) {
            pool.sanitize_one(user, value, &mut buf);
            sink.submit(user as u64, buf.support()).unwrap();
        }
        sink.finish().unwrap();
        assert_eq!(sink.frames_acked(), 1, "one aligned prefix frame");
        sent += sink.reports_acked();
    }
    sent
}

#[test]
fn graceful_drain_and_resume_is_bit_identical_for_every_method_and_worker_count() {
    let users = 12;
    let frame_reports = 2;
    for method in Method::all() {
        for workers in [1usize, 3] {
            let tag = format!("drain_{}_{workers}", method.name().replace('-', "_"));
            let dir = TempDir::new(&tag);
            let obs = MetricsRegistry::new();

            // Phase 1: daemon A absorbs an aligned prefix, checkpointing
            // after every frame, then drains gracefully.
            let mut dcfg = daemon_config(method);
            dcfg.dir = Some(dir.0.clone());
            dcfg.checkpoint_every = 1;
            let daemon_a = Collectd::start(dcfg.clone(), &obs).unwrap();
            assert!(!daemon_a.resumed());
            let prefix = send_prefix(&daemon_a, method, users, workers, frame_reports, &obs);
            assert!(prefix > 0, "{}: prefix reached the daemon", method.name());
            daemon_a.trigger_drain();
            let report_a = daemon_a.join().unwrap();
            assert!(!report_a.hard_killed);
            assert_eq!(report_a.frames_applied, workers.min(users) as u64);

            // Phase 2: daemon B resumes from A's checkpoint; a full
            // loadgen replay regenerates the round and skips the prefix.
            let daemon_b = Collectd::start(dcfg, &obs).unwrap();
            assert!(daemon_b.resumed(), "{}: daemon B resumed", method.name());
            let mut lcfg = loadgen_config(daemon_b.local_addr(), method, users, 1, workers);
            lcfg.frame_reports = frame_reports;
            let report = run_loadgen(&lcfg, &obs).unwrap();
            daemon_b.trigger_drain();
            daemon_b.join().unwrap();

            assert_eq!(
                report.reports + prefix,
                users as u64,
                "{} x{workers}: replay resent only the unapplied suffix",
                method.name()
            );
            let got: Vec<_> = report
                .rounds
                .iter()
                .map(|r| (r.reports, r.estimate.clone()))
                .collect();
            assert_bit_identical(method, &reference_rounds(method, users, 1, workers), &got);
        }
    }
}

#[test]
fn hard_kill_mid_round_resumes_bit_identical_for_every_method() {
    let users = 16;
    for method in Method::all() {
        let tag = format!("kill_{}", method.name().replace('-', "_"));
        let dir = TempDir::new(&tag);
        let obs = MetricsRegistry::new();

        // Daemon A dies (no final checkpoint) after 3 applied frames;
        // its last periodic checkpoint covers at most the first 2.
        let mut dcfg = daemon_config(method);
        dcfg.dir = Some(dir.0.clone());
        dcfg.checkpoint_every = 2;
        dcfg.kill_after_frames = Some(3);
        let daemon_a = Collectd::start(dcfg.clone(), &obs).unwrap();
        let addr = daemon_a.local_addr();

        // The "operator": waits out the crash, then restarts on the same
        // address so the retrying loadgen can find the daemon again.
        let mut restart_cfg = dcfg;
        restart_cfg.addr = addr;
        restart_cfg.kill_after_frames = None;
        let restart_obs = obs.clone();
        let operator = std::thread::spawn(move || {
            let report_a = daemon_a.join().unwrap();
            let daemon_b = Collectd::start(restart_cfg, &restart_obs).unwrap();
            (report_a, daemon_b)
        });

        let mut lcfg = loadgen_config(addr, method, users, 1, 2);
        lcfg.frame_reports = 2; // 4 frames per worker: the kill lands mid-round
        lcfg.retry_timeout = Some(Duration::from_secs(60));
        let report = run_loadgen(&lcfg, &obs).unwrap();

        let (report_a, daemon_b) = operator.join().unwrap();
        daemon_b.trigger_drain();
        daemon_b.join().unwrap();

        assert!(report_a.hard_killed, "{}: A died hard", method.name());
        assert!(
            report.retries > 0,
            "{}: the round was replayed",
            method.name()
        );
        let got: Vec<_> = report
            .rounds
            .iter()
            .map(|r| (r.reports, r.estimate.clone()))
            .collect();
        assert_bit_identical(method, &reference_rounds(method, users, 1, 2), &got);
    }
}
