//! Protocol-level hostile-input suite.
//!
//! The decoder half works over raw byte slices: truncation at *every*
//! byte offset, a bit flip at *every* bit position, foreign magics,
//! future protocol versions, forged cardinality claims, and arbitrary
//! fuzz blobs must all come back as typed [`NetError`]s — never a panic,
//! never an allocation driven by an unvalidated claim.
//!
//! The daemon half feeds the same hostility through a live socket: each
//! attack earns a structured error frame (the taxonomy from
//! `docs/WIRE_FORMAT.md` §5) and a closed connection, and the daemon
//! keeps serving clean traffic afterwards.

use ldp_ingest::ReportBatch;
use ldp_netd::{
    decode_frame, encode_frame, read_frame, write_frame, Collectd, Conn, DaemonConfig, ErrorCode,
    Frame, NetError, MAX_FRAME_LEN, MAX_WIRE_REPORTS, WIRE_MAGIC, WIRE_VERSION,
};
use ldp_obs::MetricsRegistry;
use ldp_primitives::codec::{CodecError, CodecWriter};
use ldp_runtime::Method;
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;

const FP: u64 = 0x5EED_CAFE_F00D_D00D;

/// One of every frame kind, with non-trivial payloads.
fn sample_frames() -> Vec<Frame> {
    let mut batch = ReportBatch::new();
    batch.push_report([1u32, 5, 11]);
    batch.push_report([0u32]);
    vec![
        Frame::Hello {
            worker_id: 2,
            k: 64,
            dim: 12,
            method: "L-OSUE".into(),
        },
        Frame::HelloAck {
            worker_id: 2,
            resume_seq: 9,
            round: 3,
        },
        Frame::Submit {
            seq: 10,
            key_base: 512,
            batch,
        },
        Frame::Ack {
            seq: 10,
            reports: 2,
            durable_seq: 8,
        },
        Frame::EndRound { round: 3 },
        Frame::RoundResult {
            round: 3,
            reports: 77,
            estimate: vec![0.5, 0.25, 0.125],
        },
        Frame::Shutdown,
        Frame::ShutdownAck { reports: 77 },
        Frame::Error {
            code: ErrorCode::Protocol,
            detail: "example".into(),
        },
    ]
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    for frame in sample_frames() {
        let body = encode_frame(&frame, FP);
        assert!(decode_frame(&body).is_ok());
        for cut in 0..body.len() {
            let err = decode_frame(&body[..cut]);
            assert!(
                err.is_err(),
                "{frame:?}: truncation to {cut}/{} bytes must fail",
                body.len()
            );
        }
    }
}

#[test]
fn a_bit_flip_at_every_position_is_a_typed_error() {
    for frame in sample_frames() {
        let body = encode_frame(&frame, FP);
        for byte in 0..body.len() {
            for bit in 0..8 {
                let mut evil = body.clone();
                evil[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&evil).is_err(),
                    "{frame:?}: flipping byte {byte} bit {bit} must fail"
                );
            }
        }
    }
}

#[test]
fn foreign_magics_are_rejected_as_bad_magic() {
    // Other registered containers must never parse as wire frames.
    for magic in [b"LLHA", b"LDPS", b"LDCC", b"LDNS", b"XXXX"] {
        let mut w = CodecWriter::new(magic, WIRE_VERSION, FP);
        w.put_u8(6); // a plausible Shutdown
        let body = w.finish();
        assert_eq!(
            decode_frame(&body).unwrap_err(),
            NetError::Codec(CodecError::BadMagic),
            "{}",
            String::from_utf8_lossy(&magic[..])
        );
    }
}

#[test]
fn future_protocol_versions_fail_closed() {
    for version in [WIRE_VERSION + 1, WIRE_VERSION + 7, u16::MAX] {
        let mut w = CodecWriter::new(WIRE_MAGIC, version, FP);
        w.put_u8(6);
        let body = w.finish();
        assert_eq!(
            decode_frame(&body).unwrap_err(),
            NetError::Codec(CodecError::UnsupportedVersion(version)),
        );
    }
}

#[test]
fn unknown_frame_kinds_are_typed() {
    for kind in [9u8, 42, 255] {
        let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION, FP);
        w.put_u8(kind);
        let body = w.finish();
        assert_eq!(
            decode_frame(&body).unwrap_err(),
            NetError::UnknownKind(kind)
        );
    }
}

#[test]
fn oversized_cardinality_claims_fail_before_any_allocation() {
    // The claim alone is hostile: the body is tiny, so an implementation
    // that allocated `report_count` slots before cross-checking the
    // payload length would construct a multi-gigabyte buffer here.
    let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION, FP);
    w.put_u8(2); // Submit
    w.put_u64(1);
    w.put_u64(0);
    w.put_u32(MAX_WIRE_REPORTS + 1);
    w.put_u32(0);
    let body = w.finish();
    assert_eq!(
        decode_frame(&body).unwrap_err(),
        NetError::OversizedBatch {
            reports: MAX_WIRE_REPORTS + 1,
            indices: 0
        }
    );
}

proptest! {
    /// Arbitrary blobs never panic the decoder; they either parse (only
    /// possible for a byte-exact valid frame) or come back typed.
    #[test]
    fn arbitrary_blobs_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
    }

    /// Arbitrary mutations of a valid frame never panic either — this
    /// walks the "almost valid" space where parsers usually break.
    #[test]
    fn mutated_valid_frames_never_panic(
        which in 0usize..9,
        byte in 0usize..64,
        value in any::<u8>(),
    ) {
        let frames = sample_frames();
        let mut body = encode_frame(&frames[which % frames.len()], FP);
        if !body.is_empty() {
            let i = byte % body.len();
            body[i] = value;
        }
        let _ = decode_frame(&body);
    }
}

// ---------------------------------------------------------------------------
// Live-daemon hostility: every attack is answered with a structured
// error frame and the daemon survives to serve clean traffic.
// ---------------------------------------------------------------------------

/// Reads the daemon's reply off a raw stream and decodes it.
fn read_reply(stream: &mut TcpStream) -> Frame {
    let mut buf = Vec::new();
    assert!(read_frame(stream, &mut buf).unwrap(), "daemon sent a reply");
    decode_frame(&buf).unwrap().1
}

fn expect_error(stream: &mut TcpStream, want: ErrorCode) {
    match read_reply(stream) {
        Frame::Error { code, detail } => {
            assert_eq!(code, want);
            assert!(!detail.is_empty());
        }
        other => panic!("expected an {want} error frame, got {other:?}"),
    }
}

/// A clean hello → submit → end-round exchange, proving the daemon is
/// still healthy. Returns the round's report total.
fn clean_round(daemon: &Collectd, obs: &MetricsRegistry, round: u64) -> u64 {
    let mut c = Conn::connect(
        daemon.local_addr(),
        daemon.fingerprint(),
        obs,
        ldp_netd::Deadline::after(std::time::Duration::from_secs(10)),
    )
    .unwrap();
    c.send(&Frame::Hello {
        worker_id: 0,
        k: 16,
        dim: 16,
        method: Method::LGrr.name().into(),
    })
    .unwrap();
    let (_, ack) = c.recv().unwrap().unwrap();
    assert!(matches!(ack, Frame::HelloAck { .. }), "{ack:?}");
    let mut batch = ReportBatch::new();
    batch.push_report([3u32]);
    c.send(&Frame::Submit {
        seq: 1,
        key_base: 0,
        batch,
    })
    .unwrap();
    let (_, ack) = c.recv().unwrap().unwrap();
    assert!(matches!(ack, Frame::Ack { seq: 1, .. }), "{ack:?}");
    c.send(&Frame::EndRound { round }).unwrap();
    match c.recv().unwrap().unwrap().1 {
        Frame::RoundResult { reports, .. } => reports,
        other => panic!("expected a round result, got {other:?}"),
    }
}

#[test]
fn a_hostile_gauntlet_cannot_take_the_daemon_down() {
    let obs = MetricsRegistry::new();
    let daemon = Collectd::start(DaemonConfig::new(Method::LGrr, 16, 2.0, 1.0), &obs).unwrap();
    let addr = daemon.local_addr();

    // 1. A forged length prefix claiming far beyond the cap: rejected
    //    before any buffer grows, answered typed, connection closed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    expect_error(&mut s, ErrorCode::FrameTooLarge);
    let mut buf = Vec::new();
    assert!(!read_frame(&mut s, &mut buf).unwrap(), "daemon closed");

    // 2. A length prefix just over the cap, same outcome.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
    expect_error(&mut s, ErrorCode::FrameTooLarge);

    // 3. Garbage bytes under an honest little length prefix.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&16u32.to_le_bytes()).unwrap();
    s.write_all(&[0xA5; 16]).unwrap();
    expect_error(&mut s, ErrorCode::Malformed);

    // 4. A frame from the future: fails closed as malformed.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION + 1, daemon.fingerprint());
    w.put_u8(6);
    write_frame(&mut s, &w.finish()).unwrap();
    expect_error(&mut s, ErrorCode::Malformed);

    // 5. A well-formed container claiming an absurd batch cardinality.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION, daemon.fingerprint());
    w.put_u8(2); // Submit
    w.put_u64(1);
    w.put_u64(0);
    w.put_u32(u32::MAX);
    w.put_u32(u32::MAX);
    write_frame(&mut s, &w.finish()).unwrap();
    expect_error(&mut s, ErrorCode::OversizedBatch);

    // 6. An unknown frame kind.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION, daemon.fingerprint());
    w.put_u8(200);
    write_frame(&mut s, &w.finish()).unwrap();
    expect_error(&mut s, ErrorCode::UnknownKind);

    // 7. A truncated frame followed by a hangup: nobody left to answer,
    //    the daemon just closes its side.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[1, 2, 3]).unwrap();
    drop(s);

    // 8. A support index outside the aggregation dimension: the frame is
    //    wire-valid, rejected at the application layer, and the
    //    connection survives for a corrected retry.
    let mut c = Conn::connect(
        addr,
        daemon.fingerprint(),
        &obs,
        ldp_netd::Deadline::after(std::time::Duration::from_secs(10)),
    )
    .unwrap();
    c.send(&Frame::Hello {
        worker_id: 7,
        k: 16,
        dim: 16,
        method: Method::LGrr.name().into(),
    })
    .unwrap();
    assert!(matches!(
        c.recv().unwrap().unwrap().1,
        Frame::HelloAck { .. }
    ));
    let mut batch = ReportBatch::new();
    batch.push_report([16u32]); // dim is 16, so 16 is out of range
    c.send(&Frame::Submit {
        seq: 1,
        key_base: 0,
        batch,
    })
    .unwrap();
    match c.recv().unwrap().unwrap().1 {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::SupportOutOfRange),
        other => panic!("expected a support-range error, got {other:?}"),
    }
    let mut batch = ReportBatch::new();
    batch.push_report([15u32]);
    c.send(&Frame::Submit {
        seq: 1,
        key_base: 0,
        batch,
    })
    .unwrap();
    assert!(
        matches!(c.recv().unwrap().unwrap().1, Frame::Ack { seq: 1, .. }),
        "the connection survives an application-level rejection"
    );
    drop(c);

    // After the whole gauntlet, a clean round still works and contains
    // exactly the two legitimate reports (the out-of-range submit left
    // nothing behind).
    let reports = clean_round(&daemon, &obs, 0);
    assert_eq!(reports, 2);

    daemon.trigger_drain();
    let report = daemon.join().unwrap();
    assert!(!report.hard_killed);
    assert_eq!(report.rounds_finished, 1);
}
