//! `loadgen`: the deterministic traffic driver for `collectd`.
//!
//! Loadgen owns a real [`ClientPool`] — the same per-user memoized
//! state and `(seed, user)`-derived RNG streams the in-process collect
//! path uses — and drives full sanitize rounds through N network sinks,
//! one TCP connection per worker. Because sanitization is a pure
//! function of (config, seed, round values) and the pool snapshots its
//! state at each round start, a round interrupted by a daemon crash is
//! *replayed*: the pool restores the round-start snapshot, reconnects,
//! and regenerates byte-identical frames with byte-identical sequence
//! numbers, which the daemon's session dedup then applies exactly once.
//! No client-side frame log is ever kept.
//!
//! The round input itself comes from [`round_values`], a seeded FNV-1a
//! mix — tests and the CI smoke drill call the same function to know
//! exactly what traffic a given (seed, round) produced.

use crate::conn::Conn;
use crate::deadline::Deadline;
use crate::error::NetError;
use crate::proto::{config_fingerprint, Frame};
use ldp_client::{ClientConfig, ClientPool, ReportSink};
use ldp_ingest::ReportBatch;
use ldp_obs::{Histogram, MetricsRegistry, Span};
use ldp_primitives::codec::fnv1a;
use ldp_runtime::{Method, ShardedAggregator};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Reports per submit frame when the caller does not override it.
pub const DEFAULT_FRAME_REPORTS: usize = 128;

/// Loadgen configuration. Construct with [`LoadgenConfig::new`] and
/// override fields as needed.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The daemon to drive.
    pub addr: SocketAddr,
    /// Frequency protocol (must match the daemon's).
    pub method: Method,
    /// Input domain size (must match the daemon's).
    pub k: u64,
    /// Longitudinal privacy budget (`ε_∞`).
    pub eps_inf: f64,
    /// First-report budget (`ε_1`).
    pub eps_first: f64,
    /// Population size.
    pub users: usize,
    /// Collection rounds to run.
    pub rounds: u64,
    /// Connection workers (one TCP connection each; clamped to ≥ 1).
    pub workers: usize,
    /// Reports packed per submit frame (clamped to ≥ 1).
    pub frame_reports: usize,
    /// Master seed for the pool's per-user streams and [`round_values`].
    pub seed: u64,
    /// Budget for replaying a round through daemon restarts (`None`
    /// fails fast on the first transport error).
    pub retry_timeout: Option<Duration>,
    /// Send an in-band `Shutdown` (drain + final checkpoint) after the
    /// last round.
    pub shutdown: bool,
}

impl LoadgenConfig {
    /// A loopback loadgen for `method` with library defaults.
    pub fn new(addr: SocketAddr, method: Method, k: u64, eps_inf: f64, eps_first: f64) -> Self {
        Self {
            addr,
            method,
            k,
            eps_inf,
            eps_first,
            users: 100,
            rounds: 1,
            workers: 2,
            frame_reports: DEFAULT_FRAME_REPORTS,
            seed: 42,
            retry_timeout: None,
            shutdown: false,
        }
    }
}

/// One finished round as reported by the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The round index.
    pub round: u64,
    /// Reports the daemon folded into the round.
    pub reports: u64,
    /// The daemon's frequency estimate for the round.
    pub estimate: Vec<f64>,
}

/// What a loadgen run did, returned by [`run_loadgen`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Every finished round, in order.
    pub rounds: Vec<RoundOutcome>,
    /// Reports submitted and acked (replay-skipped frames excluded).
    pub reports: u64,
    /// Submit frames sent and acked.
    pub frames: u64,
    /// Round replays forced by retryable failures.
    pub retries: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Acked reports per wall-clock second.
    pub reports_per_sec: f64,
}

/// The deterministic round input: user `u`'s value for `round` under
/// `seed`, an FNV-1a mix reduced mod `k`. Exported so tests and the CI
/// drill can reconstruct exactly the traffic a loadgen run produced.
pub fn round_values(seed: u64, round: u64, users: usize, k: u64) -> Vec<u64> {
    let k = k.max(1);
    (0..users as u64)
        .map(|u| {
            let mut bytes = [0u8; 24];
            bytes[..8].copy_from_slice(&seed.to_le_bytes());
            bytes[8..16].copy_from_slice(&round.to_le_bytes());
            bytes[16..].copy_from_slice(&u.to_le_bytes());
            fnv1a(&bytes) % k
        })
        .collect()
}

/// One worker's connection to the daemon, packing contiguously keyed
/// reports into submit frames and awaiting each frame's ack before the
/// next send. Implements [`ReportSink`], so
/// [`ClientPool::sanitize_round_sinks`] can drive it directly.
pub struct NetSink {
    conn: Conn,
    worker_id: u32,
    /// Last sequence number assigned (acked or replay-skipped).
    seq: u64,
    /// The daemon's applied high-water from the handshake: frames with
    /// `seq <= resume_seq` are regenerated but not resent.
    resume_seq: u64,
    /// The daemon's round at handshake time.
    server_round: u64,
    frame_reports: usize,
    batch: ReportBatch,
    key_base: u64,
    next_key: u64,
    ack_wait_ns: Histogram,
    frames_acked: u64,
    reports_acked: u64,
}

impl NetSink {
    /// Dials the daemon and completes the hello handshake for
    /// `worker_id`.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        addr: SocketAddr,
        worker_id: u32,
        method: Method,
        k: u64,
        dim: u64,
        fingerprint: u64,
        frame_reports: usize,
        obs: &MetricsRegistry,
        deadline: Deadline,
    ) -> Result<Self, NetError> {
        let mut conn = Conn::connect(addr, fingerprint, obs, deadline)?;
        conn.send(&Frame::Hello {
            worker_id,
            k,
            dim,
            method: method.name().into(),
        })?;
        let (resume_seq, server_round) = match conn.recv()? {
            Some((
                _,
                Frame::HelloAck {
                    worker_id: echoed,
                    resume_seq,
                    round,
                },
            )) if echoed == worker_id => (resume_seq, round),
            Some((_, Frame::Error { code, detail })) => {
                return Err(NetError::Remote { code, detail })
            }
            Some(_) => return Err(NetError::Protocol("unexpected reply to hello")),
            None => return Err(NetError::Io("daemon closed during handshake".into())),
        };
        Ok(Self {
            conn,
            worker_id,
            seq: 0,
            resume_seq,
            server_round,
            frame_reports: frame_reports.max(1),
            batch: ReportBatch::new(),
            key_base: 0,
            next_key: 0,
            ack_wait_ns: obs.histogram("ldp.netd.loadgen.ack_wait_ns"),
            frames_acked: 0,
            reports_acked: 0,
        })
    }

    /// The session id this sink handshook with.
    pub fn worker_id(&self) -> u32 {
        self.worker_id
    }

    /// The daemon's round at handshake time.
    pub fn server_round(&self) -> u64 {
        self.server_round
    }

    /// Frames sent and acked through this sink (replay-skips excluded).
    pub fn frames_acked(&self) -> u64 {
        self.frames_acked
    }

    /// Reports sent and acked through this sink.
    pub fn reports_acked(&self) -> u64 {
        self.reports_acked
    }

    fn flush_frame(&mut self) -> Result<(), NetError> {
        if self.batch.is_empty() {
            return Ok(());
        }
        self.seq += 1;
        let batch = std::mem::take(&mut self.batch);
        if self.seq <= self.resume_seq {
            // The daemon already applied this frame before it restarted;
            // regeneration keeps the RNG streams and sequence numbers
            // aligned, but resending would only earn a duplicate-ack.
            return Ok(());
        }
        let reports = u32::try_from(batch.report_count())
            .map_err(|_| NetError::BadBatch("report count beyond u32"))?;
        self.conn.send(&Frame::Submit {
            seq: self.seq,
            key_base: self.key_base,
            batch,
        })?;
        let _timed = Span::enter(&self.ack_wait_ns);
        match self.conn.recv()? {
            Some((_, Frame::Ack { seq, .. })) if seq == self.seq => {
                self.frames_acked += 1;
                self.reports_acked += u64::from(reports);
                Ok(())
            }
            Some((_, Frame::Error { code, detail })) => Err(NetError::Remote { code, detail }),
            Some(_) => Err(NetError::Protocol("unexpected reply to submit")),
            None => Err(NetError::Io("daemon closed awaiting ack".into())),
        }
    }

    /// Barriers the round on the daemon and returns its merged outcome.
    /// Flushes any buffered reports first.
    pub fn end_round(&mut self, round: u64) -> Result<RoundOutcome, NetError> {
        self.flush_frame()?;
        self.conn.send(&Frame::EndRound { round })?;
        match self.conn.recv()? {
            Some((
                _,
                Frame::RoundResult {
                    round: got,
                    reports,
                    estimate,
                },
            )) if got == round => Ok(RoundOutcome {
                round,
                reports,
                estimate,
            }),
            Some((_, Frame::Error { code, detail })) => Err(NetError::Remote { code, detail }),
            Some(_) => Err(NetError::Protocol("unexpected reply to end-round")),
            None => Err(NetError::Io("daemon closed awaiting round result".into())),
        }
    }
}

impl ReportSink for NetSink {
    type Error = NetError;

    fn submit(&mut self, user: u64, support: &[usize]) -> Result<(), NetError> {
        if !self.batch.is_empty()
            && (user != self.next_key || self.batch.report_count() >= self.frame_reports)
        {
            self.flush_frame()?;
        }
        if self.batch.is_empty() {
            self.key_base = user;
        }
        let mut indices = Vec::with_capacity(support.len());
        for &index in support {
            indices.push(u32::try_from(index).map_err(|_| NetError::BadBatch("index beyond u32"))?);
        }
        self.batch.push_report(indices);
        self.next_key = user + 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), NetError> {
        self.flush_frame()
    }
}

/// Runs the whole traffic schedule against a daemon and returns the
/// per-round outcomes plus throughput accounting. Retryable failures
/// (daemon draining, transport faults) replay the interrupted round
/// from its in-memory pool snapshot until [`LoadgenConfig::retry_timeout`]
/// runs out.
pub fn run_loadgen(cfg: &LoadgenConfig, obs: &MetricsRegistry) -> Result<LoadgenReport, NetError> {
    let client_cfg = ClientConfig::for_method(cfg.method, cfg.k, cfg.eps_inf, cfg.eps_first)
        .map_err(|e| NetError::Pipeline(e.to_string()))?;
    // Resolve the aggregation dimension exactly as the daemon does (for
    // bucketized dBitFlipPM it is `b`, not `k`).
    let dim = ShardedAggregator::for_method(cfg.method, cfg.k, cfg.eps_inf, cfg.eps_first, 1)
        .map_err(|e| NetError::Pipeline(e.to_string()))?
        .dim();
    let fingerprint = config_fingerprint(cfg.method, cfg.k, dim as u64, cfg.eps_inf, cfg.eps_first);
    let mut pool = ClientPool::with_obs(client_cfg, cfg.seed, cfg.users, obs)
        .map_err(|e| NetError::Pipeline(e.to_string()))?;

    let started = Instant::now();
    let mut report = LoadgenReport {
        rounds: Vec::new(),
        reports: 0,
        frames: 0,
        retries: 0,
        elapsed: Duration::ZERO,
        reports_per_sec: 0.0,
    };

    for round in 0..cfg.rounds {
        let values = round_values(cfg.seed, round, cfg.users, cfg.k);
        let snapshot = pool.checkpoint();
        let budget = match cfg.retry_timeout {
            Some(t) => Deadline::after(t),
            None => Deadline::expired(),
        };
        loop {
            match run_round(
                cfg,
                fingerprint,
                dim,
                &mut pool,
                &values,
                round,
                obs,
                &mut report,
            ) {
                Ok(outcome) => {
                    report.rounds.push(outcome);
                    break;
                }
                Err(e) if e.retryable() && !budget.is_expired() => {
                    report.retries += 1;
                    obs.counter("ldp.netd.loadgen.retries").inc();
                    pool.restore(&snapshot)
                        .map_err(|e| NetError::Pipeline(e.to_string()))?;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    if cfg.shutdown {
        let mut conn = Conn::connect(
            cfg.addr,
            fingerprint,
            obs,
            Deadline::after(Duration::from_secs(30)),
        )?;
        conn.send(&Frame::Shutdown)?;
        match conn.recv()? {
            Some((_, Frame::ShutdownAck { .. })) | None => {}
            Some((_, Frame::Error { code, detail })) => {
                return Err(NetError::Remote { code, detail })
            }
            Some(_) => return Err(NetError::Protocol("unexpected reply to shutdown")),
        }
    }

    report.elapsed = started.elapsed();
    report.reports_per_sec = if report.elapsed.as_secs_f64() > 0.0 {
        report.reports as f64 / report.elapsed.as_secs_f64()
    } else {
        0.0
    };
    Ok(report)
}

#[allow(clippy::too_many_arguments)]
fn run_round(
    cfg: &LoadgenConfig,
    fingerprint: u64,
    dim: usize,
    pool: &mut ClientPool,
    values: &[u64],
    round: u64,
    obs: &MetricsRegistry,
    report: &mut LoadgenReport,
) -> Result<RoundOutcome, NetError> {
    let workers = cfg.workers.clamp(1, cfg.users.max(1));
    let deadline = Deadline::after(Duration::from_secs(30));
    let mut sinks = Vec::with_capacity(workers);
    for w in 0..workers {
        sinks.push(NetSink::connect(
            cfg.addr,
            u32::try_from(w).map_err(|_| NetError::Protocol("worker id beyond u32"))?,
            cfg.method,
            cfg.k,
            dim as u64,
            fingerprint,
            cfg.frame_reports,
            obs,
            deadline,
        )?);
    }
    // A daemon that already folded this round (it crashed after the
    // round checkpoint but before our result arrived) must not receive
    // the traffic again — replaying into the next round would
    // double-count. Fetch the cached result instead.
    if sinks[0].server_round() == round + 1 {
        return sinks[0].end_round(round);
    }
    if sinks[0].server_round() != round {
        return Err(NetError::Protocol("daemon round out of step with schedule"));
    }
    pool.sanitize_round_sinks(values, &mut sinks)?;
    let outcome = sinks[0].end_round(round)?;
    for sink in &sinks {
        report.frames += sink.frames_acked();
        report.reports += sink.reports_acked();
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_values_are_deterministic_and_in_domain() {
        let a = round_values(7, 3, 100, 16);
        let b = round_values(7, 3, 100, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v < 16));
        assert_ne!(a, round_values(7, 4, 100, 16), "rounds differ");
        assert_ne!(a, round_values(8, 3, 100, 16), "seeds differ");
        // The mix actually spreads over the domain.
        let distinct: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(distinct.len() > 4);
    }
}
