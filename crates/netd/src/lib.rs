//! The collection service layer: `collectd`, a long-running TCP
//! ingestion daemon over the `LDNW` wire protocol, and `loadgen`, its
//! deterministic client-side traffic driver.
//!
//! Everything below the socket reuses the workspace's existing
//! collection machinery — [`ldp_ingest::IngestPipeline`] for
//! shard-parallel aggregation with backpressure, the shard checkpoint
//! codec for durability, [`ldp_client::ClientPool`] as the traffic
//! source — so the network path is a *transport*, not a second
//! implementation: a loadgen → collectd round over loopback produces
//! estimates byte-identical to the in-process collect path, including
//! across a daemon kill + resume mid-round (`tests/drill.rs` pins this
//! for every method).
//!
//! Module map:
//!
//! * [`proto`] — framing, the frame vocabulary, encode/decode
//!   (normative spec: `docs/WIRE_FORMAT.md`).
//! * [`error`] — the typed [`NetError`] taxonomy and wire
//!   [`ErrorCode`]s; hostile bytes select variants, never panics.
//! * [`conn`] — one framed, instrumented connection (both endpoints).
//! * [`daemon`] — [`Collectd`]: accept loop, session dedup,
//!   checkpointing, graceful drain, crash resume.
//! * [`loadgen`] — [`run_loadgen`] / [`NetSink`]: deterministic
//!   replayable traffic over [`ldp_client::ReportSink`].
//! * [`store`] — the `LDNS` daemon checkpoint container (nests the
//!   existing `LDPS` shard container).
//! * [`deadline`], [`signal`] — injectable timeouts and the SIGTERM
//!   latch.
//!
//! This crate is collector-side infrastructure: it never sees true
//! values, client seeds, or memoized protocol state — only sanitized
//! reports in transit, like `ldp_ingest` below it.

#![warn(missing_docs)]

pub mod conn;
pub mod daemon;
pub mod deadline;
pub mod error;
pub mod loadgen;
pub mod proto;
pub mod signal;
pub mod store;

pub use conn::{Conn, Polled};
pub use daemon::{Collectd, DaemonConfig, DaemonReport};
pub use deadline::Deadline;
pub use error::{ErrorCode, NetError};
pub use loadgen::{
    round_values, run_loadgen, LoadgenConfig, LoadgenReport, NetSink, RoundOutcome,
    DEFAULT_FRAME_REPORTS,
};
pub use proto::{
    config_fingerprint, decode_frame, encode_frame, read_frame, write_frame, Frame, CONTROL_WORKER,
    MAX_FRAME_LEN, MAX_WIRE_DIM, MAX_WIRE_INDICES, MAX_WIRE_REPORTS, WIRE_MAGIC, WIRE_VERSION,
};
pub use signal::{install_term_handler, request_term, reset_term, term_requested};
pub use store::{decode_net_checkpoint, encode_net_checkpoint, NetCheckpoint, NetStore};
