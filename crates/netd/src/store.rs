//! Durable daemon state: the `LDNS` checkpoint container.
//!
//! A drained (or periodically checkpointing) `collectd` persists one
//! atomic file so a killed daemon resumes mid-round byte-identically:
//!
//! ```text
//! "LDNS" | version u16 | fingerprint u64
//! | round u64
//! | has_last u8 | last_reports u64 | last_len u32 | last_len × f64
//! | session_count u32 | session_count × (worker_id u32 | seq u64)
//! | shard_blob frame            (one complete LDPS container)
//! | fnv1a u64
//! ```
//!
//! The shard blob is byte-for-byte what `ldp_ingest::ShardStore` writes
//! — the daemon reuses the existing shard checkpoint codec, nested, so
//! both layers land in one atomic rename and can never drift apart. The
//! session table carries each client session's applied high-water
//! sequence (the dedup floor a resumed daemon hands back in hello-acks),
//! and `has_last` caches the previous round's result so an `EndRound`
//! retried across a crash replays the answer instead of double-ending.
//!
//! The header fingerprint is the wire configuration fingerprint
//! ([`crate::proto::config_fingerprint`]); a checkpoint from a
//! differently configured daemon is rejected before its body is parsed.

use crate::error::NetError;
use crate::proto::MAX_WIRE_DIM;
use ldp_ingest::ShardCheckpoint;
use ldp_primitives::codec::{self, CodecError, CodecReader, CodecWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"LDNS";
const VERSION: u16 = 1;

/// Most sessions a checkpoint may claim — far above any realistic
/// worker fleet, low enough that a corrupt count cannot force an
/// allocation burst.
const MAX_SESSIONS: u32 = 1 << 20;

/// A point-in-time capture of the daemon's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct NetCheckpoint {
    /// The collection round in progress when the capture was taken.
    pub round: u64,
    /// The previous round's cached outcome (reports, estimate), if any
    /// round has finished — the idempotence cache for retried
    /// `EndRound` frames.
    pub last_result: Option<(u64, Vec<f64>)>,
    /// Per-session applied high-water submit sequences (ordered map:
    /// the encode path iterates it, and encode paths must be
    /// deterministic).
    pub sessions: BTreeMap<u32, u64>,
    /// The ingest pipeline's shard states, captured at the same
    /// barrier.
    pub shards: ShardCheckpoint,
}

/// Serializes a daemon checkpoint under the given configuration
/// fingerprint.
pub fn encode_net_checkpoint(cp: &NetCheckpoint, fingerprint: u64) -> Vec<u8> {
    let shard_blob = ldp_ingest::encode_checkpoint(&cp.shards);
    let mut w = CodecWriter::with_capacity(
        MAGIC,
        VERSION,
        fingerprint,
        8 + 13 + 12 * cp.sessions.len() + 4 + shard_blob.len(),
    );
    w.put_u64(cp.round);
    // Linearized option encoding (flag + fields) so the write sequence
    // mirrors the read sequence field-for-field in both shapes.
    let (has_last, last_reports, last_estimate): (u8, u64, &[f64]) = match &cp.last_result {
        Some((reports, estimate)) => (1, *reports, estimate.as_slice()),
        None => (0, 0, &[]),
    };
    w.put_u8(has_last);
    w.put_u64(last_reports);
    w.put_u32(u32::try_from(last_estimate.len()).expect("estimate dimension fits u32"));
    for &v in last_estimate {
        w.put_f64(v);
    }
    w.put_u32(u32::try_from(cp.sessions.len()).expect("session count fits u32"));
    for (&worker_id, &seq) in &cp.sessions {
        w.put_u32(worker_id);
        w.put_u64(seq);
    }
    w.put_frame(&shard_blob);
    w.finish()
}

/// Deserializes a daemon checkpoint, verifying the configuration
/// fingerprint before the body is interpreted. Every failure mode is a
/// typed error; cardinality claims are checked against caps and the
/// remaining payload before any buffer is allocated.
pub fn decode_net_checkpoint(bytes: &[u8], fingerprint: u64) -> Result<NetCheckpoint, NetError> {
    let mut r = CodecReader::open(bytes, MAGIC, VERSION)?;
    r.expect_fingerprint(
        fingerprint,
        "daemon checkpoint from a different configuration",
    )?;
    let round = r.get_u64()?;
    let has_last = r.get_u8()?;
    let last_reports = r.get_u64()?;
    let last_len = r.get_u32()?;
    if last_len > MAX_WIRE_DIM || 8usize * last_len as usize > r.remaining() {
        return Err(NetError::Codec(CodecError::Corrupt(
            "cached estimate length beyond payload",
        )));
    }
    let mut last_estimate = Vec::with_capacity(last_len as usize);
    for _ in 0..last_len {
        last_estimate.push(r.get_f64()?);
    }
    let last_result = match has_last {
        0 => None,
        1 => Some((last_reports, last_estimate)),
        _ => {
            return Err(NetError::Codec(CodecError::Corrupt(
                "cached-result flag is not 0 or 1",
            )))
        }
    };
    let session_count = r.get_u32()?;
    if session_count > MAX_SESSIONS || 12usize * session_count as usize > r.remaining() {
        return Err(NetError::Codec(CodecError::Corrupt(
            "session count beyond payload",
        )));
    }
    let mut sessions = BTreeMap::new();
    for _ in 0..session_count {
        let worker_id = r.get_u32()?;
        let seq = r.get_u64()?;
        if sessions.insert(worker_id, seq).is_some() {
            return Err(NetError::Codec(CodecError::Corrupt(
                "duplicate session id in checkpoint",
            )));
        }
    }
    let shard_blob = r.get_frame()?;
    let shards = ldp_ingest::decode_checkpoint(shard_blob)?;
    r.finish()?;
    Ok(NetCheckpoint {
        round,
        last_result,
        sessions,
        shards,
    })
}

/// File-backed store for [`NetCheckpoint`]s: atomic writes (temp file +
/// rename, via the shared codec helper), typed errors, no partial
/// states.
#[derive(Debug, Clone)]
pub struct NetStore {
    path: PathBuf,
    fingerprint: u64,
}

impl NetStore {
    /// A store writing/reading `path` under the given configuration
    /// fingerprint.
    pub fn new(path: impl Into<PathBuf>, fingerprint: u64) -> Self {
        Self {
            path: path.into(),
            fingerprint,
        }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a checkpoint file exists to resume from.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Atomically persists a checkpoint.
    pub fn save(&self, cp: &NetCheckpoint) -> Result<(), NetError> {
        let bytes = encode_net_checkpoint(cp, self.fingerprint);
        codec::write_atomic(&self.path, &bytes)?;
        Ok(())
    }

    /// Loads the checkpoint back.
    pub fn load(&self) -> Result<NetCheckpoint, NetError> {
        let bytes = codec::read_file(&self.path)?;
        decode_net_checkpoint(&bytes, self.fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_ingest::ShardState;

    fn sample() -> NetCheckpoint {
        NetCheckpoint {
            round: 3,
            last_result: Some((12, vec![0.5, -0.25, 0.0])),
            sessions: BTreeMap::from([(0, 9), (1, 7), (u32::MAX, 2)]),
            shards: ShardCheckpoint {
                dim: 3,
                shards: vec![
                    ShardState {
                        counts: vec![4, 0, 1],
                        reports: 5,
                    },
                    ShardState {
                        counts: vec![0, 7, 0],
                        reports: 7,
                    },
                ],
            },
        }
    }

    #[test]
    fn checkpoint_round_trips_through_the_file_store() {
        let dir = std::env::temp_dir().join(format!("ldns-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = NetStore::new(dir.join("netd.ckpt"), 77);
        assert!(!store.exists());
        let cp = sample();
        store.save(&cp).unwrap();
        assert!(store.exists());
        assert_eq!(store.load().unwrap(), cp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_fingerprint_is_rejected_before_the_body() {
        let bytes = encode_net_checkpoint(&sample(), 1);
        let err = decode_net_checkpoint(&bytes, 2).unwrap_err();
        assert!(matches!(err, NetError::Codec(CodecError::Mismatch(_))));
    }

    #[test]
    fn none_cached_result_round_trips() {
        let mut cp = sample();
        cp.last_result = None;
        let bytes = encode_net_checkpoint(&cp, 5);
        assert_eq!(decode_net_checkpoint(&bytes, 5).unwrap(), cp);
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let bytes = encode_net_checkpoint(&sample(), 9);
        for cut in 0..bytes.len() {
            assert!(
                decode_net_checkpoint(&bytes[..cut], 9).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn forged_session_count_fails_before_allocation() {
        let cp = NetCheckpoint {
            round: 0,
            last_result: None,
            sessions: BTreeMap::new(),
            shards: ShardCheckpoint {
                dim: 1,
                shards: vec![ShardState {
                    counts: vec![0],
                    reports: 0,
                }],
            },
        };
        let bytes = encode_net_checkpoint(&cp, 0);
        // Session count lives right after round + cached-result block:
        // header 14 + 8 (round) + 1 + 8 + 4 (empty cached result).
        let off = 14 + 8 + 13;
        let mut forged = bytes.clone();
        forged[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // Recompute the trailer so only the forged count is at fault.
        let body_len = forged.len() - 8;
        let sum = codec::fnv1a(&forged[..body_len]);
        forged[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = decode_net_checkpoint(&forged, 0).unwrap_err();
        assert!(
            matches!(err, NetError::Codec(CodecError::Corrupt(_))),
            "{err:?}"
        );
    }
}
