//! `collectd`: the long-running TCP ingestion daemon.
//!
//! One daemon owns one [`IngestPipeline`] for one resolved protocol
//! configuration. Remote loadgen workers connect over TCP, handshake
//! with a [`Frame::Hello`] pinning the configuration fingerprint, and
//! stream [`Frame::Submit`] batches; each accepted frame is applied to
//! the pipeline through the bounded-channel batching transport (so
//! socket pressure maps onto the pipeline's own backpressure) and
//! acknowledged exactly once.
//!
//! # Durability and exactly-once
//!
//! The daemon periodically persists one atomic [`NetCheckpoint`] (shard
//! states + per-session applied sequence high-waters + round counter +
//! previous round's cached result). Sequence dedup makes application
//! idempotent: a client that never saw its ack resends, and the daemon
//! re-acks without re-applying. A restarted daemon resumes from the
//! checkpoint and hands each reconnecting session its `resume_seq`, so
//! a deterministic client replays only the suffix the checkpoint missed
//! — the net effect is byte-identical to an uninterrupted run (see
//! `tests/drill.rs`).
//!
//! Consistency between shard state and the session table is enforced by
//! a checkpoint gate (`RwLock`): connection threads hold the read side
//! across [dedup check → apply+flush → high-water advance], the
//! checkpointer holds the write side across [pipeline barrier → session
//! snapshot → atomic save], so a checkpoint can never capture a frame's
//! reports without its sequence advance or vice versa.
//!
//! # Drain
//!
//! A [`Frame::Shutdown`], SIGTERM ([`crate::signal`]), or
//! [`Collectd::trigger_drain`] flips the drain latch: connections answer
//! their next frame with a `Draining` error and close, the accept loop
//! stops accepting, joins the connection threads, takes one final
//! checkpoint, and exits. [`Collectd::kill_hard`] is the test hook for
//! the other drill arm: threads stop where they stand and *no* final
//! checkpoint is taken, simulating `kill -9` up to process boundaries.

use crate::conn::{Conn, Polled};
use crate::deadline::Deadline;
use crate::error::{ErrorCode, NetError};
use crate::proto::{config_fingerprint, Frame};
use crate::signal;
use crate::store::{NetCheckpoint, NetStore};
use ldp_ingest::{BatchSubmitter, IngestHandle, IngestPipeline, DEFAULT_BATCH_REPORTS};
use ldp_obs::{Gauge, MetricsRegistry};
use ldp_runtime::{Method, ShardedAggregator};
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll granularity for the accept loop and per-connection reads: the
/// latency bound on noticing drain/kill/signal latches.
const TICK: Duration = Duration::from_millis(10);

/// Checkpoint file name inside [`DaemonConfig::dir`].
const CHECKPOINT_FILE: &str = "collectd.ckpt";

/// Daemon configuration. Construct with [`DaemonConfig::new`] and
/// override fields as needed.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:0` by default — the kernel picks a free
    /// port, read it back with [`Collectd::local_addr`]).
    pub addr: SocketAddr,
    /// Frequency protocol to aggregate under.
    pub method: Method,
    /// Input domain size.
    pub k: u64,
    /// Longitudinal privacy budget (`ε_∞`).
    pub eps_inf: f64,
    /// First-report budget (`ε_1`).
    pub eps_first: f64,
    /// Ingest pipeline shard workers (clamped to ≥ 1).
    pub workers: usize,
    /// Bound of each shard worker's envelope channel — the backpressure
    /// depth socket ingestion is allowed before submitters block.
    pub channel_capacity: usize,
    /// Reports per in-process batch envelope (the submitter's flush
    /// threshold; wire frames are flushed per-frame regardless).
    pub batch_reports: usize,
    /// Close a connection that stays silent this long (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Take a durable checkpoint every this many applied submit frames
    /// (0 disables periodic checkpoints; round ends and drains always
    /// checkpoint).
    pub checkpoint_every: u64,
    /// Durable state directory. `None` runs the daemon memory-only —
    /// still drains cleanly, but cannot resume after a kill.
    pub dir: Option<PathBuf>,
    /// Drill hook: hard-kill the daemon (as if `kill -9`, no final
    /// checkpoint) after this many applied submit frames.
    pub kill_after_frames: Option<u64>,
}

impl DaemonConfig {
    /// A loopback daemon for `method` with library defaults.
    pub fn new(method: Method, k: u64, eps_inf: f64, eps_first: f64) -> Self {
        Self {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            method,
            k,
            eps_inf,
            eps_first,
            workers: 2,
            channel_capacity: ldp_ingest::DEFAULT_CHANNEL_CAPACITY,
            batch_reports: DEFAULT_BATCH_REPORTS,
            idle_timeout: None,
            checkpoint_every: 64,
            dir: None,
            kill_after_frames: None,
        }
    }
}

/// What the daemon did over its lifetime, returned by
/// [`Collectd::join`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonReport {
    /// Rounds finished (the round counter at exit).
    pub rounds_finished: u64,
    /// Submit frames applied (duplicates excluded).
    pub frames_applied: u64,
    /// Connections accepted over the lifetime.
    pub connections_served: u64,
    /// Whether the daemon exited through the hard-kill hook (no final
    /// checkpoint) rather than a drain.
    pub hard_killed: bool,
    /// Whether the daemon resumed from an existing checkpoint at start.
    pub resumed: bool,
}

/// Session bookkeeping: applied high-waters (live) and their state as of
/// the last durable checkpoint.
#[derive(Debug, Default)]
struct SessionTable {
    applied: BTreeMap<u32, u64>,
    durable: BTreeMap<u32, u64>,
}

struct Shared {
    pipeline: Mutex<IngestPipeline>,
    handle: IngestHandle,
    /// The checkpoint-consistency gate (see module docs).
    gate: RwLock<()>,
    sessions: Mutex<SessionTable>,
    round: AtomicU64,
    last_result: Mutex<Option<(u64, Vec<f64>)>>,
    draining: AtomicBool,
    kill: AtomicBool,
    frames_applied: AtomicU64,
    frames_since_ckpt: AtomicU64,
    connections_served: AtomicU64,
    live_conns: AtomicU64,
    conn_gauge: Gauge,
    store: Option<NetStore>,
    fingerprint: u64,
    method: Method,
    k: u64,
    dim: usize,
    batch_reports: usize,
    idle_timeout: Option<Duration>,
    checkpoint_every: u64,
    kill_after_frames: Option<u64>,
    obs: MetricsRegistry,
}

/// Locks a mutex, shrugging off poisoning: every guarded structure here
/// stays valid across a panicked holder, and the daemon must keep
/// serving other connections.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    /// Takes one durable checkpoint under the write gate: pipeline
    /// barrier, session snapshot, atomic save. Memory-only daemons just
    /// refresh the durable session view.
    fn checkpoint_now(&self) -> Result<NetCheckpoint, NetError> {
        let _gate = self.gate.write().unwrap_or_else(|e| e.into_inner());
        let shards = lock(&self.pipeline).checkpoint()?;
        let mut sessions = lock(&self.sessions);
        let cp = NetCheckpoint {
            round: self.round.load(Ordering::SeqCst),
            last_result: lock(&self.last_result).clone(),
            sessions: sessions.applied.clone(),
            shards,
        };
        if let Some(store) = &self.store {
            store.save(&cp)?;
        }
        sessions.durable = sessions.applied.clone();
        self.frames_since_ckpt.store(0, Ordering::SeqCst);
        self.obs.counter("ldp.netd.checkpoints").inc();
        Ok(cp)
    }

    fn stopping(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
            || self.draining.load(Ordering::SeqCst)
            || signal::term_requested()
    }
}

/// A running `collectd` instance. Dropping without [`Collectd::join`]
/// drains in the background; join to observe the [`DaemonReport`].
pub struct Collectd {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<DaemonReport>>,
    local_addr: SocketAddr,
    resumed: bool,
}

impl Collectd {
    /// Builds the pipeline (resuming from a checkpoint in
    /// [`DaemonConfig::dir`] if one exists), binds the listener, and
    /// spawns the accept loop.
    pub fn start(cfg: DaemonConfig, obs: &MetricsRegistry) -> Result<Self, NetError> {
        let pipeline = build_pipeline(&cfg, obs)?;
        let dim = pipeline.dim();
        let fingerprint =
            config_fingerprint(cfg.method, cfg.k, dim as u64, cfg.eps_inf, cfg.eps_first);
        let store = match &cfg.dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| NetError::Io(e.to_string()))?;
                Some(NetStore::new(dir.join(CHECKPOINT_FILE), fingerprint))
            }
            None => None,
        };

        let handle = pipeline.handle();
        let shared = Arc::new(Shared {
            pipeline: Mutex::new(pipeline),
            handle,
            gate: RwLock::new(()),
            sessions: Mutex::new(SessionTable::default()),
            round: AtomicU64::new(0),
            last_result: Mutex::new(None),
            draining: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            frames_applied: AtomicU64::new(0),
            frames_since_ckpt: AtomicU64::new(0),
            connections_served: AtomicU64::new(0),
            live_conns: AtomicU64::new(0),
            conn_gauge: obs.gauge("ldp.netd.connections"),
            store,
            fingerprint,
            method: cfg.method,
            k: cfg.k,
            dim,
            batch_reports: cfg.batch_reports.max(1),
            idle_timeout: cfg.idle_timeout,
            checkpoint_every: cfg.checkpoint_every,
            kill_after_frames: cfg.kill_after_frames,
            obs: obs.clone(),
        });

        let mut resumed = false;
        if let Some(store) = &shared.store {
            if store.exists() {
                let cp = store.load()?;
                lock(&shared.pipeline).restore(&cp.shards)?;
                let mut sessions = lock(&shared.sessions);
                sessions.applied = cp.sessions.clone();
                sessions.durable = cp.sessions;
                shared.round.store(cp.round, Ordering::SeqCst);
                *lock(&shared.last_result) = cp.last_result;
                resumed = true;
                shared.obs.counter("ldp.netd.resumes").inc();
            }
        }

        let listener = TcpListener::bind(cfg.addr).map_err(|e| NetError::Io(e.to_string()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;

        let loop_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("collectd-accept".into())
            .spawn(move || accept_loop(&loop_shared, &listener, resumed))
            .map_err(|e| NetError::Io(e.to_string()))?;

        Ok(Self {
            shared,
            accept: Some(accept),
            local_addr,
            resumed,
        })
    }

    /// The bound listen address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The configuration fingerprint this daemon pins in every frame.
    pub fn fingerprint(&self) -> u64 {
        self.shared.fingerprint
    }

    /// Whether the daemon resumed from an existing checkpoint.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Requests a graceful drain (the programmatic SIGTERM): stop
    /// accepting, close connections, take a final checkpoint, exit.
    pub fn trigger_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Drill hook: stop everything where it stands, skipping the final
    /// checkpoint — the closest an in-process daemon gets to `kill -9`.
    pub fn kill_hard(&self) {
        self.shared.kill.store(true, Ordering::SeqCst);
    }

    /// Waits for the daemon to exit (after a drain/kill trigger) and
    /// returns its lifetime report.
    pub fn join(mut self) -> Result<DaemonReport, NetError> {
        match self.accept.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| NetError::Pipeline("accept loop panicked".into())),
            None => Err(NetError::Pipeline("daemon already joined".into())),
        }
    }
}

impl Drop for Collectd {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.shared.draining.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
    }
}

fn build_pipeline(cfg: &DaemonConfig, obs: &MetricsRegistry) -> Result<IngestPipeline, NetError> {
    let agg = ShardedAggregator::for_method_obs(
        cfg.method,
        cfg.k,
        cfg.eps_inf,
        cfg.eps_first,
        cfg.workers.max(1),
        obs,
    )
    .map_err(|e| NetError::Pipeline(e.to_string()))?;
    Ok(IngestPipeline::from_aggregator_obs(
        agg,
        cfg.channel_capacity,
        obs,
    ))
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, resumed: bool) -> DaemonReport {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.stopping() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections_served.fetch_add(1, Ordering::SeqCst);
                let n = shared.live_conns.fetch_add(1, Ordering::SeqCst) + 1;
                shared.conn_gauge.set(n);
                let conn_shared = Arc::clone(shared);
                if let Ok(join) = std::thread::Builder::new()
                    .name("collectd-conn".into())
                    .spawn(move || {
                        serve_conn(&conn_shared, stream);
                        let n = conn_shared.live_conns.fetch_sub(1, Ordering::SeqCst) - 1;
                        conn_shared.conn_gauge.set(n);
                    })
                {
                    conns.push(join);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(TICK);
                conns.retain(|j| !j.is_finished());
            }
            Err(_) => std::thread::sleep(TICK),
        }
    }
    let hard_killed = shared.kill.load(Ordering::SeqCst);
    // Drain: connections observe the latch on their next tick and
    // return; a hard kill abandons them mid-flight on purpose.
    if !hard_killed {
        shared.draining.store(true, Ordering::SeqCst);
    }
    for join in conns {
        let _ = join.join();
    }
    if !hard_killed {
        let _ = shared.checkpoint_now();
    }
    DaemonReport {
        rounds_finished: shared.round.load(Ordering::SeqCst),
        frames_applied: shared.frames_applied.load(Ordering::SeqCst),
        connections_served: shared.connections_served.load(Ordering::SeqCst),
        hard_killed,
        resumed,
    }
}

fn serve_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let mut conn = Conn::wrap(stream, shared.fingerprint, &shared.obs);
    let mut submitter = shared.handle.batching(shared.batch_reports);
    let mut session: Option<u32> = None;
    let mut idle = idle_deadline(shared);
    loop {
        if shared.kill.load(Ordering::SeqCst) {
            return;
        }
        if shared.draining.load(Ordering::SeqCst) || signal::term_requested() {
            let _ = conn.send(&Frame::Error {
                code: ErrorCode::Draining,
                detail: "daemon is draining".into(),
            });
            return;
        }
        match conn.poll(TICK) {
            Ok(Polled::Idle) => {
                if idle.is_expired() {
                    let _ = conn.send(&Frame::Error {
                        code: ErrorCode::IdleTimeout,
                        detail: "connection idle past the daemon's timeout".into(),
                    });
                    return;
                }
            }
            Ok(Polled::Closed) => return,
            Ok(Polled::Frame(fp, frame)) => {
                idle = idle_deadline(shared);
                if fp != shared.fingerprint {
                    let _ = conn.send(&Frame::Error {
                        code: ErrorCode::ConfigMismatch,
                        detail: "frame fingerprint does not match this daemon's configuration"
                            .into(),
                    });
                    return;
                }
                match handle_frame(shared, &mut submitter, &mut session, frame) {
                    Ok(Reply::Send(reply)) => {
                        if conn.send(&reply).is_err() {
                            return;
                        }
                    }
                    Ok(Reply::SendThenClose(reply)) => {
                        let _ = conn.send(&reply);
                        return;
                    }
                    Err(e) => {
                        // An application-level rejection: answer typed,
                        // keep the connection for well-formed retries.
                        if conn
                            .send(&Frame::Error {
                                code: e.code(),
                                detail: e.to_string(),
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            }
            Err(e) => {
                // A malformed frame (or transport failure): answer typed
                // and close — the stream can no longer be trusted.
                let _ = conn.send(&Frame::Error {
                    code: e.code(),
                    detail: e.to_string(),
                });
                return;
            }
        }
    }
}

fn idle_deadline(shared: &Shared) -> Deadline {
    match shared.idle_timeout {
        Some(t) => Deadline::after(t),
        None => Deadline::never(),
    }
}

enum Reply {
    Send(Frame),
    SendThenClose(Frame),
}

fn handle_frame(
    shared: &Arc<Shared>,
    submitter: &mut BatchSubmitter,
    session: &mut Option<u32>,
    frame: Frame,
) -> Result<Reply, NetError> {
    match frame {
        Frame::Hello {
            worker_id,
            k,
            dim,
            method,
        } => {
            if k != shared.k || dim != shared.dim as u64 || method != shared.method.name() {
                return Err(NetError::Protocol(
                    "hello parameters disagree with the daemon's configuration",
                ));
            }
            *session = Some(worker_id);
            let resume_seq = lock(&shared.sessions)
                .applied
                .get(&worker_id)
                .copied()
                .unwrap_or(0);
            Ok(Reply::Send(Frame::HelloAck {
                worker_id,
                resume_seq,
                round: shared.round.load(Ordering::SeqCst),
            }))
        }
        Frame::Submit {
            seq,
            key_base,
            batch,
        } => {
            let worker = session.ok_or(NetError::Protocol("submit before hello"))?;
            // Validate the whole frame before applying any of it, so a
            // rejected frame leaves no partial reports behind and the
            // session high-water stays honest.
            for report in batch.reports() {
                for &index in report {
                    if index as usize >= shared.dim {
                        return Err(NetError::SupportOutOfRange {
                            index: index as usize,
                            dim: shared.dim,
                        });
                    }
                }
            }
            let reports = u32::try_from(batch.report_count())
                .map_err(|_| NetError::BadBatch("report count beyond u32"))?;
            let applied;
            {
                let _gate = shared.gate.read().unwrap_or_else(|e| e.into_inner());
                let high = lock(&shared.sessions)
                    .applied
                    .get(&worker)
                    .copied()
                    .unwrap_or(0);
                if seq <= high {
                    applied = false; // duplicate of an applied frame: re-ack only
                } else if seq != high + 1 {
                    return Err(NetError::Protocol("submit sequence gap"));
                } else {
                    for (i, report) in batch.reports().enumerate() {
                        submitter.submit(
                            key_base + i as u64,
                            report.iter().map(|&index| index as usize),
                        )?;
                    }
                    submitter.flush()?;
                    lock(&shared.sessions).applied.insert(worker, seq);
                    applied = true;
                }
            }
            if applied {
                let total = shared.frames_applied.fetch_add(1, Ordering::SeqCst) + 1;
                let since = shared.frames_since_ckpt.fetch_add(1, Ordering::SeqCst) + 1;
                if shared.checkpoint_every > 0 && since >= shared.checkpoint_every {
                    shared.checkpoint_now()?;
                }
                if shared.kill_after_frames.is_some_and(|n| total >= n) {
                    shared.kill.store(true, Ordering::SeqCst);
                }
            }
            let durable_seq = lock(&shared.sessions)
                .durable
                .get(&worker)
                .copied()
                .unwrap_or(0);
            Ok(Reply::Send(Frame::Ack {
                seq,
                reports,
                durable_seq,
            }))
        }
        Frame::EndRound { round } => {
            let current = shared.round.load(Ordering::SeqCst);
            if round + 1 == current {
                // A retry across a crash: replay the cached result.
                let cached = lock(&shared.last_result).clone();
                let (reports, estimate) =
                    cached.ok_or(NetError::Protocol("no cached result for previous round"))?;
                return Ok(Reply::Send(Frame::RoundResult {
                    round,
                    reports,
                    estimate,
                }));
            }
            if round != current {
                return Err(NetError::Protocol("round out of step"));
            }
            let snapshot;
            {
                let _gate = shared.gate.write().unwrap_or_else(|e| e.into_inner());
                snapshot = lock(&shared.pipeline).finish_round()?;
                *lock(&shared.last_result) = Some((snapshot.reports, snapshot.estimate.clone()));
                let mut sessions = lock(&shared.sessions);
                sessions.applied.clear();
                shared.round.store(current + 1, Ordering::SeqCst);
            }
            shared.checkpoint_now()?;
            shared.obs.counter("ldp.netd.rounds").inc();
            Ok(Reply::Send(Frame::RoundResult {
                round,
                reports: snapshot.reports,
                estimate: snapshot.estimate,
            }))
        }
        Frame::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            let cp = shared.checkpoint_now()?;
            let reports = cp.shards.shards.iter().map(|s| s.reports).sum();
            Ok(Reply::SendThenClose(Frame::ShutdownAck { reports }))
        }
        Frame::Error { .. } => Ok(Reply::SendThenClose(Frame::Error {
            code: ErrorCode::Protocol,
            detail: "peer reported an error; closing".into(),
        })),
        Frame::HelloAck { .. }
        | Frame::Ack { .. }
        | Frame::RoundResult { .. }
        | Frame::ShutdownAck { .. } => {
            Err(NetError::Protocol("daemon received a client-bound frame"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_ingest::ReportBatch;

    fn client(daemon: &Collectd, obs: &MetricsRegistry) -> Conn {
        Conn::connect(
            daemon.local_addr(),
            daemon.fingerprint(),
            obs,
            Deadline::after(Duration::from_secs(5)),
        )
        .unwrap()
    }

    #[test]
    fn hello_submit_endround_round_trips_over_loopback() {
        let obs = MetricsRegistry::new();
        let daemon = Collectd::start(DaemonConfig::new(Method::LGrr, 8, 2.0, 1.0), &obs).unwrap();
        let mut c = client(&daemon, &obs);
        c.send(&Frame::Hello {
            worker_id: 0,
            k: 8,
            dim: 8,
            method: Method::LGrr.name().into(),
        })
        .unwrap();
        let (_, ack) = c.recv().unwrap().unwrap();
        assert_eq!(
            ack,
            Frame::HelloAck {
                worker_id: 0,
                resume_seq: 0,
                round: 0
            }
        );

        let mut batch = ReportBatch::new();
        batch.push_report([3u32]);
        batch.push_report([5u32]);
        c.send(&Frame::Submit {
            seq: 1,
            key_base: 0,
            batch: batch.clone(),
        })
        .unwrap();
        let (_, ack) = c.recv().unwrap().unwrap();
        assert!(
            matches!(
                ack,
                Frame::Ack {
                    seq: 1,
                    reports: 2,
                    ..
                }
            ),
            "{ack:?}"
        );

        // A duplicate is re-acked without double-counting.
        c.send(&Frame::Submit {
            seq: 1,
            key_base: 0,
            batch,
        })
        .unwrap();
        let (_, dup) = c.recv().unwrap().unwrap();
        assert!(matches!(dup, Frame::Ack { seq: 1, .. }));

        c.send(&Frame::EndRound { round: 0 }).unwrap();
        let (_, result) = c.recv().unwrap().unwrap();
        match result {
            Frame::RoundResult {
                round,
                reports,
                estimate,
            } => {
                assert_eq!(round, 0);
                assert_eq!(reports, 2, "duplicate frame must not double-count");
                assert_eq!(estimate.len(), 8);
            }
            other => panic!("expected a round result, got {other:?}"),
        }

        daemon.trigger_drain();
        let report = daemon.join().unwrap();
        assert_eq!(report.rounds_finished, 1);
        assert_eq!(report.frames_applied, 1);
        assert!(!report.hard_killed);
    }

    #[test]
    fn submit_before_hello_is_a_typed_protocol_error() {
        let obs = MetricsRegistry::new();
        let daemon = Collectd::start(DaemonConfig::new(Method::LOue, 4, 1.0, 0.5), &obs).unwrap();
        let mut c = client(&daemon, &obs);
        let mut batch = ReportBatch::new();
        batch.push_report([0u32]);
        c.send(&Frame::Submit {
            seq: 1,
            key_base: 0,
            batch,
        })
        .unwrap();
        let (_, reply) = c.recv().unwrap().unwrap();
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::Protocol,
                    ..
                }
            ),
            "{reply:?}"
        );
        daemon.trigger_drain();
        daemon.join().unwrap();
    }

    #[test]
    fn foreign_fingerprint_is_rejected_with_a_config_mismatch() {
        let obs = MetricsRegistry::new();
        let daemon = Collectd::start(DaemonConfig::new(Method::LOsue, 4, 1.0, 0.5), &obs).unwrap();
        let mut c = Conn::connect(
            daemon.local_addr(),
            daemon.fingerprint() ^ 1,
            &obs,
            Deadline::after(Duration::from_secs(5)),
        )
        .unwrap();
        c.send(&Frame::EndRound { round: 0 }).unwrap();
        let (_, reply) = c.recv().unwrap().unwrap();
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::ConfigMismatch,
                    ..
                }
            ),
            "{reply:?}"
        );
        daemon.trigger_drain();
        daemon.join().unwrap();
    }
}
