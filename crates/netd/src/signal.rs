//! Minimal SIGTERM latch for the `collectd` binary path.
//!
//! The daemon drains gracefully on SIGTERM. The runtime has no safe
//! std-only signal API, so this module carries the workspace's one
//! unsafe block: registering a handler that does nothing but store into
//! a static `AtomicBool` (the only async-signal-safe action a handler
//! may take). The daemon's accept loop polls the latch between accepts.
//!
//! On non-Unix targets the latch exists but never fires; the in-band
//! `Shutdown` frame remains the portable drain trigger.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGTERM (or SIGINT) is delivered.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered since
/// [`install_term_handler`] ran.
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Test/driver hook: raise the latch programmatically (what the signal
/// handler itself does), so drain-on-signal paths are testable without
/// delivering a real signal.
pub fn request_term() {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the latch (between daemon runs in one process).
pub fn reset_term() {
    TERM_REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::TERM_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_signum: i32) {
        // Storing into an atomic is async-signal-safe; nothing else is
        // allowed here.
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Registers the latch for SIGTERM and SIGINT.
    pub fn install_term_handler() {
        // SAFETY: `signal(2)` with a handler that only stores to a
        // static atomic; both arguments are valid for the platform ABI
        // and the handler performs only async-signal-safe work.
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal delivery on this target; the latch only moves through
    /// [`super::request_term`].
    pub fn install_term_handler() {}
}

pub use imp::install_term_handler;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_moves_through_the_programmatic_hook() {
        reset_term();
        assert!(!term_requested());
        request_term();
        assert!(term_requested());
        reset_term();
        assert!(!term_requested());
    }
}
