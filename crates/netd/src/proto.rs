//! The LDNW wire protocol: framing, the frame vocabulary, and the
//! encode/decode pair.
//!
//! Normative byte-level spec: `docs/WIRE_FORMAT.md`. A connection is a
//! stream of length-prefixed frames:
//!
//! ```text
//! len u32 LE | body (len bytes)
//! body = "LDNW" | version u16 | fingerprint u64 | kind u8 | payload | fnv1a u64
//! ```
//!
//! The body is one instance of the workspace's unified checkpoint
//! container ([`ldp_primitives::codec`]), so every frame inherits the
//! container's hostile-input posture: magic and version checked first,
//! the checksum verified before any payload byte is interpreted, and
//! every read bounds-checked. The outer length prefix is capped at
//! [`MAX_FRAME_LEN`] *before* the read buffer grows, so a forged length
//! cannot force an allocation; batch cardinality claims are likewise
//! checked against [`MAX_WIRE_REPORTS`]/[`MAX_WIRE_INDICES`] and the
//! remaining payload length before the index buffers are allocated.
//!
//! The container fingerprint carries the [`config_fingerprint`] both
//! sides derive from their own protocol configuration, so every frame —
//! not just the handshake — pins the configuration it was produced
//! under.

use crate::error::{ErrorCode, NetError};
use ldp_ingest::ReportBatch;
use ldp_primitives::codec::{fnv1a, CodecReader, CodecWriter};
use ldp_runtime::Method;
use std::io::{Read, Write};

/// The wire container magic (registered in `docs/CHECKPOINT_FORMAT.md`
/// §3; `LDNW` frames live on sockets, never as files).
pub const WIRE_MAGIC: &[u8; 4] = b"LDNW";
/// Current wire protocol version. A daemon speaks exactly one version;
/// frames from the future are answered with a malformed-frame error so
/// old daemons fail closed (see `docs/WIRE_FORMAT.md` §2).
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on a frame body's length, enforced against the length
/// prefix before any buffer is grown. Generous for the largest legal
/// submit ([`MAX_WIRE_INDICES`] indices ≈ 4 MiB) plus headroom for a
/// dense round-result estimate.
pub const MAX_FRAME_LEN: u32 = 1 << 23;
/// Most reports one submit frame may claim.
pub const MAX_WIRE_REPORTS: u32 = 1 << 16;
/// Most support indices one submit frame may claim (mirrors the ingest
/// transport's flush invariant).
pub const MAX_WIRE_INDICES: u32 = 1 << 20;
/// Largest estimate dimension a round-result frame may claim.
pub const MAX_WIRE_DIM: u32 = 1 << 24;

/// The session id loadgen's control connection (round barriers and
/// shutdown, never submits) identifies itself with.
pub const CONTROL_WORKER: u32 = u32::MAX;

/// The protocol's frame vocabulary. Kind bytes are append-only.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → daemon handshake: pins the session id and the client's
    /// resolved configuration (the fingerprint rides in the container
    /// header; the explicit fields make mismatch diagnostics readable).
    Hello {
        /// Stable per-worker session id (dedup state survives restarts).
        worker_id: u32,
        /// Input domain size the client resolved its protocol over.
        k: u64,
        /// Aggregation dimension the client expects the daemon to run.
        dim: u64,
        /// Protocol registry name (`Method::name`).
        method: String,
    },
    /// Daemon → client handshake reply: where this session's submit
    /// sequence resumes (everything `≤ resume_seq` is already applied
    /// and durable or in-memory — do not resend).
    HelloAck {
        /// Echoed session id.
        worker_id: u32,
        /// High-water submit sequence already applied for this session.
        resume_seq: u64,
        /// The daemon's current collection round.
        round: u64,
    },
    /// Client → daemon report batch: contiguously keyed reports in the
    /// ingest transport's flat-index shape.
    Submit {
        /// Per-session monotone frame sequence number (from 1).
        seq: u64,
        /// Routing key of the first report; report `i` keys `base + i`.
        key_base: u64,
        /// The packed reports.
        batch: ReportBatch,
    },
    /// Daemon → client: the submit frame `seq` is applied. `durable_seq`
    /// is this session's high-water mark in the last durable checkpoint
    /// (0 before the first), letting a client bound its replay window.
    Ack {
        /// The applied submit sequence.
        seq: u64,
        /// Reports the frame carried (echoed for client-side accounting).
        reports: u32,
        /// This session's sequence in the last durable checkpoint.
        durable_seq: u64,
    },
    /// Client → daemon: barrier the round and return its estimate.
    /// Idempotent across a crash: re-ending the previous round replays
    /// the cached result instead of closing the new round early.
    EndRound {
        /// The round the client believes it is ending.
        round: u64,
    },
    /// Daemon → client: the finished round's merged outcome.
    RoundResult {
        /// The finished round.
        round: u64,
        /// Reports folded into the round.
        reports: u64,
        /// The protocol estimator over the merged counts.
        estimate: Vec<f64>,
    },
    /// Client → daemon: drain, checkpoint, and exit (the in-band
    /// equivalent of SIGTERM).
    Shutdown,
    /// Daemon → client: drain finished; the final checkpoint covers
    /// `reports` applied reports.
    ShutdownAck {
        /// Reports covered by the final checkpoint.
        reports: u64,
    },
    /// Either direction: a structured failure report. The daemon always
    /// answers a rejected frame with one of these before closing.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail (never report contents).
        detail: String,
    },
}

impl Frame {
    /// The frame's wire kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0,
            Frame::HelloAck { .. } => 1,
            Frame::Submit { .. } => 2,
            Frame::Ack { .. } => 3,
            Frame::EndRound { .. } => 4,
            Frame::RoundResult { .. } => 5,
            Frame::Shutdown => 6,
            Frame::ShutdownAck { .. } => 7,
            Frame::Error { .. } => 8,
        }
    }

    /// A static label for telemetry series.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::Submit { .. } => "submit",
            Frame::Ack { .. } => "ack",
            Frame::EndRound { .. } => "end_round",
            Frame::RoundResult { .. } => "round_result",
            Frame::Shutdown => "shutdown",
            Frame::ShutdownAck { .. } => "shutdown_ack",
            Frame::Error { .. } => "error",
        }
    }
}

/// The configuration fingerprint both endpoints derive independently
/// and pin in every frame header: FNV-1a over the protocol identity
/// (method tag + name), the domain, the resolved aggregation dimension,
/// and the privacy budgets. Seeds are deliberately excluded — the
/// daemon never learns client seeds.
pub fn config_fingerprint(method: Method, k: u64, dim: u64, eps_inf: f64, eps_first: f64) -> u64 {
    let name = method.name().as_bytes();
    let mut bytes = Vec::with_capacity(name.len() + 32);
    bytes.extend_from_slice(name);
    bytes.extend_from_slice(&k.to_le_bytes());
    bytes.extend_from_slice(&dim.to_le_bytes());
    bytes.extend_from_slice(&eps_inf.to_le_bytes());
    bytes.extend_from_slice(&eps_first.to_le_bytes());
    fnv1a(&bytes)
}

/// Serializes one frame into a finished container body (length prefix
/// not included — [`write_frame`] adds it when the body hits a stream).
pub fn encode_frame(frame: &Frame, fingerprint: u64) -> Vec<u8> {
    let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION, fingerprint);
    w.put_u8(frame.kind());
    match frame {
        Frame::Hello {
            worker_id,
            k,
            dim,
            method,
        } => {
            w.put_u32(*worker_id);
            w.put_u64(*k);
            w.put_u64(*dim);
            w.put_frame(method.as_bytes());
        }
        Frame::HelloAck {
            worker_id,
            resume_seq,
            round,
        } => {
            w.put_u32(*worker_id);
            w.put_u64(*resume_seq);
            w.put_u64(*round);
        }
        Frame::Submit {
            seq,
            key_base,
            batch,
        } => {
            w.put_u64(*seq);
            w.put_u64(*key_base);
            w.put_u32(u32::try_from(batch.report_count()).expect("report count fits u32"));
            w.put_u32(u32::try_from(batch.index_count()).expect("index count fits u32"));
            for &end in batch.ends() {
                w.put_u32(end);
            }
            for &index in batch.indices() {
                w.put_u32(index);
            }
        }
        Frame::Ack {
            seq,
            reports,
            durable_seq,
        } => {
            w.put_u64(*seq);
            w.put_u32(*reports);
            w.put_u64(*durable_seq);
        }
        Frame::EndRound { round } => {
            w.put_u64(*round);
        }
        Frame::RoundResult {
            round,
            reports,
            estimate,
        } => {
            w.put_u64(*round);
            w.put_u64(*reports);
            w.put_u32(u32::try_from(estimate.len()).expect("estimate dimension fits u32"));
            for &v in estimate {
                w.put_f64(v);
            }
        }
        Frame::Shutdown => {}
        Frame::ShutdownAck { reports } => {
            w.put_u64(*reports);
        }
        Frame::Error { code, detail } => {
            w.put_u8(code.as_u8());
            w.put_frame(detail.as_bytes());
        }
    }
    w.finish()
}

/// Deserializes a frame body produced by [`encode_frame`], returning the
/// header fingerprint alongside the frame. Every failure mode is a typed
/// [`NetError`]; cardinality claims are validated against the caps *and*
/// the remaining payload length before any index buffer is allocated.
pub fn decode_frame(body: &[u8]) -> Result<(u64, Frame), NetError> {
    let mut r = CodecReader::open(body, WIRE_MAGIC, WIRE_VERSION)?;
    let fingerprint = r.fingerprint();
    let kind = r.get_u8()?;
    let frame = match kind {
        0 => {
            let worker_id = r.get_u32()?;
            let k = r.get_u64()?;
            let dim = r.get_u64()?;
            let method = String::from_utf8(r.get_frame()?.to_vec())
                .map_err(|_| NetError::Protocol("method name is not UTF-8"))?;
            Frame::Hello {
                worker_id,
                k,
                dim,
                method,
            }
        }
        1 => Frame::HelloAck {
            worker_id: r.get_u32()?,
            resume_seq: r.get_u64()?,
            round: r.get_u64()?,
        },
        2 => {
            let seq = r.get_u64()?;
            let key_base = r.get_u64()?;
            let report_count = r.get_u32()?;
            let index_count = r.get_u32()?;
            if report_count > MAX_WIRE_REPORTS || index_count > MAX_WIRE_INDICES {
                return Err(NetError::OversizedBatch {
                    reports: report_count,
                    indices: index_count,
                });
            }
            let claimed = 4usize * (report_count as usize + index_count as usize);
            if claimed != r.remaining() {
                return Err(NetError::BadBatch(
                    "batch counts disagree with payload length",
                ));
            }
            let mut ends = Vec::with_capacity(report_count as usize);
            for _ in 0..report_count {
                ends.push(r.get_u32()?);
            }
            let mut indices = Vec::with_capacity(index_count as usize);
            for _ in 0..index_count {
                indices.push(r.get_u32()?);
            }
            let batch = ReportBatch::from_parts(indices, ends).map_err(NetError::BadBatch)?;
            Frame::Submit {
                seq,
                key_base,
                batch,
            }
        }
        3 => Frame::Ack {
            seq: r.get_u64()?,
            reports: r.get_u32()?,
            durable_seq: r.get_u64()?,
        },
        4 => Frame::EndRound {
            round: r.get_u64()?,
        },
        5 => {
            let round = r.get_u64()?;
            let reports = r.get_u64()?;
            let dim = r.get_u32()?;
            if dim > MAX_WIRE_DIM {
                return Err(NetError::OversizedBatch {
                    reports: 0,
                    indices: dim,
                });
            }
            if 8usize * dim as usize != r.remaining() {
                return Err(NetError::BadBatch(
                    "estimate dimension disagrees with payload length",
                ));
            }
            let mut estimate = Vec::with_capacity(dim as usize);
            for _ in 0..dim {
                estimate.push(r.get_f64()?);
            }
            Frame::RoundResult {
                round,
                reports,
                estimate,
            }
        }
        6 => Frame::Shutdown,
        7 => Frame::ShutdownAck {
            reports: r.get_u64()?,
        },
        8 => {
            let code = ErrorCode::from_u8(r.get_u8()?)?;
            let detail = String::from_utf8(r.get_frame()?.to_vec())
                .map_err(|_| NetError::Protocol("error detail is not UTF-8"))?;
            Frame::Error { code, detail }
        }
        other => return Err(NetError::UnknownKind(other)),
    };
    r.finish()?;
    Ok((fingerprint, frame))
}

/// Writes one encoded body to a stream with its length prefix. The cap
/// is enforced here too, so an over-long locally built frame (e.g. an
/// estimate beyond [`MAX_WIRE_DIM`]) fails typed instead of poisoning
/// the peer.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), NetError> {
    let len = u32::try_from(body.len()).map_err(|_| NetError::FrameTooLarge {
        len: u32::MAX,
        cap: MAX_FRAME_LEN,
    })?;
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge {
            len,
            cap: MAX_FRAME_LEN,
        });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame body into `buf` (reused across
/// frames — steady-state reading allocates nothing once the buffer has
/// grown to the connection's working size). Returns `Ok(false)` on a
/// clean end-of-stream at a frame boundary. The length claim is checked
/// against [`MAX_FRAME_LEN`] *before* the buffer grows.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<bool, NetError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(NetError::Codec(
                ldp_primitives::codec::CodecError::Truncated,
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge {
            len,
            cap: MAX_FRAME_LEN,
        });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        let mut batch = ReportBatch::new();
        batch.push_report([0u32, 4, 9]);
        batch.push_report([2u32]);
        vec![
            Frame::Hello {
                worker_id: 3,
                k: 100,
                dim: 16,
                method: "BiLOLOHA".into(),
            },
            Frame::HelloAck {
                worker_id: 3,
                resume_seq: 42,
                round: 7,
            },
            Frame::Submit {
                seq: 43,
                key_base: 1024,
                batch,
            },
            Frame::Ack {
                seq: 43,
                reports: 2,
                durable_seq: 40,
            },
            Frame::EndRound { round: 7 },
            Frame::RoundResult {
                round: 7,
                reports: 5000,
                estimate: vec![0.25, -0.5, f64::NAN.copysign(-1.0), 0.0],
            },
            Frame::Shutdown,
            Frame::ShutdownAck { reports: 5000 },
            Frame::Error {
                code: ErrorCode::Draining,
                detail: "drain initiated".into(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips_with_its_fingerprint() {
        for frame in sample_frames() {
            let body = encode_frame(&frame, 0xABCD_EF01_2345_6789);
            let (fp, decoded) = decode_frame(&body).unwrap();
            assert_eq!(fp, 0xABCD_EF01_2345_6789, "{frame:?}");
            match (&frame, &decoded) {
                // NaN payloads round-trip bit-exactly but compare unequal.
                (
                    Frame::RoundResult { estimate: a, .. },
                    Frame::RoundResult { estimate: b, .. },
                ) => {
                    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(a), bits(b));
                }
                _ => assert_eq!(frame, decoded),
            }
        }
    }

    #[test]
    fn frames_traverse_a_stream_with_length_prefixes() {
        let mut wire = Vec::new();
        for frame in sample_frames() {
            write_frame(&mut wire, &encode_frame(&frame, 7)).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        let mut seen = 0;
        while read_frame(&mut cursor, &mut buf).unwrap() {
            decode_frame(&buf).unwrap();
            seen += 1;
        }
        assert_eq!(seen, sample_frames().len());
    }

    #[test]
    fn forged_length_is_rejected_before_the_buffer_grows() {
        let mut wire = Vec::from(u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(
            err,
            NetError::FrameTooLarge {
                len: u32::MAX,
                cap: MAX_FRAME_LEN
            }
        );
        assert_eq!(buf.capacity(), 0, "no allocation for a forged claim");
    }

    #[test]
    fn oversized_batch_claims_fail_before_allocation() {
        // A hand-built submit claiming u32::MAX reports in a tiny body.
        let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION, 0);
        w.put_u8(2);
        w.put_u64(1); // seq
        w.put_u64(0); // key_base
        w.put_u32(u32::MAX); // report_count
        w.put_u32(3); // index_count
        let body = w.finish();
        assert_eq!(
            decode_frame(&body).unwrap_err(),
            NetError::OversizedBatch {
                reports: u32::MAX,
                indices: 3
            }
        );
    }

    #[test]
    fn batch_counts_must_match_the_payload_exactly() {
        let mut w = CodecWriter::new(WIRE_MAGIC, WIRE_VERSION, 0);
        w.put_u8(2);
        w.put_u64(1);
        w.put_u64(0);
        w.put_u32(2); // claims 2 reports…
        w.put_u32(1); // …and 1 index, but ships only one u32
        w.put_u32(1);
        let body = w.finish();
        assert_eq!(
            decode_frame(&body).unwrap_err(),
            NetError::BadBatch("batch counts disagree with payload length")
        );
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let a = config_fingerprint(Method::BiLoloha, 100, 2, 1.0, 0.5);
        assert_eq!(a, config_fingerprint(Method::BiLoloha, 100, 2, 1.0, 0.5));
        assert_ne!(a, config_fingerprint(Method::OLoloha, 100, 2, 1.0, 0.5));
        assert_ne!(a, config_fingerprint(Method::BiLoloha, 101, 2, 1.0, 0.5));
        assert_ne!(a, config_fingerprint(Method::BiLoloha, 100, 4, 1.0, 0.5));
        assert_ne!(a, config_fingerprint(Method::BiLoloha, 100, 2, 2.0, 0.5));
    }
}
