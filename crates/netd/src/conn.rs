//! One framed connection: blocking and polled frame exchange over a
//! `TcpStream`, with per-frame telemetry.
//!
//! Both endpoints speak through [`Conn`]: the daemon wraps accepted
//! sockets, loadgen wraps dialed ones. The receive path assembles
//! frames *incrementally* — a poll tick that catches a frame mid-flight
//! parks the partial bytes and resumes on the next tick, so a slow or
//! trickling sender can never desynchronize the stream (the soak
//! suite's slow-reader scenario). The body buffer is bounded by
//! [`crate::proto::MAX_FRAME_LEN`] and reused across frames, so a
//! connection's steady-state memory is one frame regardless of how much
//! traffic it carries.

use crate::deadline::Deadline;
use crate::error::NetError;
use crate::proto::{decode_frame, encode_frame, write_frame, Frame, MAX_FRAME_LEN};
use ldp_obs::MetricsRegistry;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Telemetry names (`docs/OBS_FORMAT.md` conventions).
const FRAMES_RX: &str = "ldp.netd.frames_rx";
const FRAMES_TX: &str = "ldp.netd.frames_tx";
const BYTES: &str = "ldp.netd.bytes";

/// Outcome of one non-blocking receive poll.
#[derive(Debug)]
pub enum Polled {
    /// A whole frame arrived: its header fingerprint and the frame.
    Frame(u64, Frame),
    /// Nothing (or only part of a frame) arrived within the poll tick.
    Idle,
    /// The peer closed the stream at a frame boundary.
    Closed,
}

/// Incremental frame-assembly state, preserved across poll ticks.
#[derive(Debug, Default)]
struct Assembler {
    len_bytes: [u8; 4],
    len_filled: usize,
    /// `Some` once the length prefix is complete and cap-checked.
    body_len: Option<usize>,
    body: Vec<u8>,
    body_filled: usize,
}

impl Assembler {
    fn reset(&mut self) {
        self.len_filled = 0;
        self.body_len = None;
        self.body_filled = 0;
    }

    /// Whether any bytes of a frame have been consumed (end-of-stream
    /// here is truncation, not a clean close).
    fn mid_frame(&self) -> bool {
        self.len_filled > 0 || self.body_len.is_some()
    }
}

/// A framed, instrumented TCP connection.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    asm: Assembler,
    fingerprint: u64,
    obs: MetricsRegistry,
}

impl Conn {
    /// Dials `addr` within `deadline` and wraps the stream. An expired
    /// deadline fails immediately (the injected-timeout test path).
    pub fn connect(
        addr: SocketAddr,
        fingerprint: u64,
        obs: &MetricsRegistry,
        deadline: Deadline,
    ) -> Result<Self, NetError> {
        let timeout = match deadline.remaining() {
            Some(d) if d.is_zero() => return Err(NetError::IdleTimeout),
            Some(d) => d,
            None => Duration::from_secs(30),
        };
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Ok(Self::wrap(stream, fingerprint, obs))
    }

    /// Wraps an already established stream (the daemon's accept path).
    pub fn wrap(stream: TcpStream, fingerprint: u64, obs: &MetricsRegistry) -> Self {
        // Frames are request/response sized; latency beats batching.
        let _ = stream.set_nodelay(true);
        Self {
            stream,
            asm: Assembler::default(),
            fingerprint,
            obs: obs.clone(),
        }
    }

    /// The configuration fingerprint stamped into every sent frame.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The peer's address, if the socket still knows it.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.peer_addr().ok()
    }

    /// Encodes and sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let body = encode_frame(frame, self.fingerprint);
        write_frame(&mut self.stream, &body)?;
        self.obs.counter_labeled(FRAMES_TX, frame.kind_name()).inc();
        self.obs
            .counter_labeled(BYTES, "tx")
            .inc_by(body.len() as u64 + 4);
        Ok(())
    }

    /// Blocks until a whole frame arrives (or the peer closes: `None`).
    pub fn recv(&mut self) -> Result<Option<(u64, Frame)>, NetError> {
        self.stream.set_read_timeout(None)?;
        match self.advance()? {
            Polled::Frame(fp, frame) => Ok(Some((fp, frame))),
            Polled::Closed => Ok(None),
            // Unreachable without a read timeout, but harmless to map.
            Polled::Idle => Err(NetError::IdleTimeout),
        }
    }

    /// Polls for one frame, waiting at most `tick`. Partial progress is
    /// kept in the assembler, so "no whole frame this tick"
    /// ([`Polled::Idle`]) is always safe to retry — the stream never
    /// desynchronizes.
    pub fn poll(&mut self, tick: Duration) -> Result<Polled, NetError> {
        self.stream
            .set_read_timeout(Some(tick.max(Duration::from_millis(1))))?;
        self.advance()
    }

    /// Pumps reads into the assembler until a frame completes, the
    /// stream ends, or a read would exceed the configured timeout.
    fn advance(&mut self) -> Result<Polled, NetError> {
        loop {
            let Some(len) = self.asm.body_len else {
                // Still assembling the 4-byte length prefix.
                match self
                    .stream
                    .read(&mut self.asm.len_bytes[self.asm.len_filled..])
                {
                    Ok(0) => {
                        if self.asm.mid_frame() {
                            return Err(NetError::Codec(
                                ldp_primitives::codec::CodecError::Truncated,
                            ));
                        }
                        return Ok(Polled::Closed);
                    }
                    Ok(n) => self.asm.len_filled += n,
                    Err(e) if would_block(&e) => return Ok(Polled::Idle),
                    Err(e) => return Err(e.into()),
                }
                if self.asm.len_filled == 4 {
                    let claimed = u32::from_le_bytes(self.asm.len_bytes);
                    // Cap check *before* the body buffer grows: a forged
                    // length cannot force an allocation.
                    if claimed > MAX_FRAME_LEN {
                        return Err(NetError::FrameTooLarge {
                            len: claimed,
                            cap: MAX_FRAME_LEN,
                        });
                    }
                    self.asm.body_len = Some(claimed as usize);
                    self.asm.body.clear();
                    self.asm.body.resize(claimed as usize, 0);
                    self.asm.body_filled = 0;
                }
                continue;
            };
            if self.asm.body_filled < len {
                match self
                    .stream
                    .read(&mut self.asm.body[self.asm.body_filled..len])
                {
                    Ok(0) => {
                        return Err(NetError::Codec(
                            ldp_primitives::codec::CodecError::Truncated,
                        ))
                    }
                    Ok(n) => self.asm.body_filled += n,
                    Err(e) if would_block(&e) => return Ok(Polled::Idle),
                    Err(e) => return Err(e.into()),
                }
                continue;
            }
            let decoded = decode_frame(&self.asm.body[..len]);
            self.asm.reset();
            let (fp, frame) = decoded?;
            self.obs.counter_labeled(FRAMES_RX, frame.kind_name()).inc();
            self.obs.counter_labeled(BYTES, "rx").inc_by(len as u64 + 4);
            return Ok(Polled::Frame(fp, frame));
        }
    }
}

/// The platform's two spellings of "the socket timeout elapsed".
fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}
