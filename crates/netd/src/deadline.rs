//! Injectable deadlines.
//!
//! Timeout behavior (idle connections, loadgen reconnect budgets) is
//! driven through explicit [`Deadline`] values instead of bare sleeps,
//! so tests exercise the timeout *paths* without waiting wall-clock
//! time: an already-expired deadline trips the timeout branch on the
//! very next check.

use std::time::{Duration, Instant};

/// A point in time an operation must finish by. `None` means "never" —
/// the operation waits indefinitely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self {
            at: Some(Instant::now() + timeout),
        }
    }

    /// A deadline that never expires.
    pub fn never() -> Self {
        Self { at: None }
    }

    /// A deadline that is already in the past — the injection hook test
    /// suites use to drive timeout branches without sleeping.
    pub fn expired() -> Self {
        Self {
            at: Some(Instant::now() - Duration::from_nanos(1)),
        }
    }

    /// Whether the deadline has passed.
    pub fn is_expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Time left before expiry, clamped to zero (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_deadlines_report_without_waiting() {
        assert!(Deadline::expired().is_expired());
        assert_eq!(Deadline::expired().remaining(), Some(Duration::ZERO));
        assert!(!Deadline::never().is_expired());
        assert_eq!(Deadline::never().remaining(), None);
        assert!(!Deadline::after(Duration::from_secs(3600)).is_expired());
    }
}
