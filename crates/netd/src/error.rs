//! The network error taxonomy.
//!
//! Every failure mode on the wire — malformed bytes, protocol misuse,
//! configuration drift, resource-cap violations, and transport faults —
//! is a typed [`NetError`] variant, never a panic. The daemon answers a
//! failing connection with a structured error frame carrying the
//! variant's [`ErrorCode`], so a client can distinguish "retry later"
//! (draining, transport) from "fix your config" (mismatch, protocol).

use ldp_primitives::codec::CodecError;
use std::fmt;

/// One-byte wire identifier for each error class, carried in error
/// frames (see `docs/WIRE_FORMAT.md` §5). Codes are append-only: new
/// classes get new numbers, existing numbers are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame body failed container decoding (magic, version,
    /// checksum, truncation, or trailing bytes).
    Malformed = 1,
    /// The length prefix claimed more than [`crate::proto::MAX_FRAME_LEN`].
    FrameTooLarge = 2,
    /// The frame kind byte names no known frame.
    UnknownKind = 3,
    /// The peer's configuration fingerprint disagrees with ours.
    ConfigMismatch = 4,
    /// A submit batch is structurally inconsistent (offsets, counts).
    BadBatch = 5,
    /// A submit batch claims more reports/indices than the protocol cap.
    OversizedBatch = 6,
    /// A report index is outside the aggregation dimension.
    SupportOutOfRange = 7,
    /// A frame arrived out of protocol order (e.g. submit before hello).
    Protocol = 8,
    /// The connection produced no frame within the idle timeout.
    IdleTimeout = 9,
    /// The daemon is draining for shutdown; retry after it restarts.
    Draining = 10,
    /// A server-side fault (ingest pipeline or I/O), not the client's.
    Internal = 11,
}

impl ErrorCode {
    /// Decodes a wire byte back to the code.
    pub fn from_u8(byte: u8) -> Result<Self, NetError> {
        Ok(match byte {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::FrameTooLarge,
            3 => ErrorCode::UnknownKind,
            4 => ErrorCode::ConfigMismatch,
            5 => ErrorCode::BadBatch,
            6 => ErrorCode::OversizedBatch,
            7 => ErrorCode::SupportOutOfRange,
            8 => ErrorCode::Protocol,
            9 => ErrorCode::IdleTimeout,
            10 => ErrorCode::Draining,
            11 => ErrorCode::Internal,
            other => return Err(NetError::UnknownErrorCode(other)),
        })
    }

    /// The wire byte for this code.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// A static label (telemetry labels must be `&'static str`).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::UnknownKind => "unknown_kind",
            ErrorCode::ConfigMismatch => "config_mismatch",
            ErrorCode::BadBatch => "bad_batch",
            ErrorCode::OversizedBatch => "oversized_batch",
            ErrorCode::SupportOutOfRange => "support_out_of_range",
            ErrorCode::Protocol => "protocol",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a wire operation failed. Mirrors the checkpoint layer's
/// [`CodecError`] philosophy: typed, displayable, comparable — a hostile
/// byte stream can select the variant but never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Container-level decode failure of a frame body.
    Codec(CodecError),
    /// A length prefix exceeding the frame cap — rejected before any
    /// buffer grows, so a forged length cannot force an allocation.
    FrameTooLarge {
        /// Claimed body length.
        len: u32,
        /// The enforced cap ([`crate::proto::MAX_FRAME_LEN`]).
        cap: u32,
    },
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Unknown error code byte inside an error frame.
    UnknownErrorCode(u8),
    /// The peer pins a different configuration fingerprint.
    ConfigMismatch {
        /// The fingerprint the peer sent.
        got: u64,
        /// The fingerprint this side derives from its own config.
        want: u64,
    },
    /// Structurally inconsistent submit batch.
    BadBatch(&'static str),
    /// Submit batch claims beyond the protocol caps — rejected before
    /// the index buffers are allocated.
    OversizedBatch {
        /// Claimed report count.
        reports: u32,
        /// Claimed index count.
        indices: u32,
    },
    /// A decoded report index is outside the aggregation dimension.
    SupportOutOfRange {
        /// The offending index.
        index: usize,
        /// The aggregation dimension.
        dim: usize,
    },
    /// Frame sequencing violation (e.g. submit before hello).
    Protocol(&'static str),
    /// No frame arrived within the connection's idle deadline.
    IdleTimeout,
    /// The daemon is draining; the round can be replayed after restart.
    Draining,
    /// The peer reported a structured error frame.
    Remote {
        /// The peer's error class.
        code: ErrorCode,
        /// The peer's human-readable detail.
        detail: String,
    },
    /// The ingest pipeline failed server-side.
    Pipeline(String),
    /// Transport-level I/O failure.
    Io(String),
}

impl NetError {
    /// The wire error class this variant maps to when the daemon reports
    /// it to a client.
    pub fn code(&self) -> ErrorCode {
        match self {
            NetError::Codec(_) => ErrorCode::Malformed,
            NetError::FrameTooLarge { .. } => ErrorCode::FrameTooLarge,
            NetError::UnknownKind(_) => ErrorCode::UnknownKind,
            NetError::UnknownErrorCode(_) => ErrorCode::Malformed,
            NetError::ConfigMismatch { .. } => ErrorCode::ConfigMismatch,
            NetError::BadBatch(_) => ErrorCode::BadBatch,
            NetError::OversizedBatch { .. } => ErrorCode::OversizedBatch,
            NetError::SupportOutOfRange { .. } => ErrorCode::SupportOutOfRange,
            NetError::Protocol(_) => ErrorCode::Protocol,
            NetError::IdleTimeout => ErrorCode::IdleTimeout,
            NetError::Draining => ErrorCode::Draining,
            NetError::Remote { code, .. } => *code,
            NetError::Pipeline(_) | NetError::Io(_) => ErrorCode::Internal,
        }
    }

    /// Whether a loadgen client should treat the failure as transient
    /// and replay the round once the daemon is back: drains, transport
    /// faults, and server-internal faults qualify; malformed frames and
    /// configuration drift never resolve by retrying.
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Draining | NetError::Io(_) | NetError::IdleTimeout => true,
            NetError::Remote { code, .. } => {
                matches!(code, ErrorCode::Draining | ErrorCode::Internal)
            }
            _ => false,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "malformed frame: {e}"),
            NetError::FrameTooLarge { len, cap } => {
                write!(f, "frame length {len} exceeds the {cap}-byte cap")
            }
            NetError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            NetError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            NetError::ConfigMismatch { got, want } => write!(
                f,
                "configuration fingerprint mismatch: peer {got:#018x}, ours {want:#018x}"
            ),
            NetError::BadBatch(what) => write!(f, "inconsistent submit batch: {what}"),
            NetError::OversizedBatch { reports, indices } => write!(
                f,
                "submit batch claims {reports} reports / {indices} indices, beyond the protocol cap"
            ),
            NetError::SupportOutOfRange { index, dim } => {
                write!(f, "report index {index} outside dimension {dim}")
            }
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::IdleTimeout => f.write_str("connection idle past its deadline"),
            NetError::Draining => f.write_str("daemon is draining for shutdown"),
            NetError::Remote { code, detail } => write!(f, "peer error [{code}]: {detail}"),
            NetError::Pipeline(e) => write!(f, "ingest pipeline failure: {e}"),
            NetError::Io(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<ldp_ingest::IngestError> for NetError {
    fn from(e: ldp_ingest::IngestError) -> Self {
        match e {
            ldp_ingest::IngestError::SupportOutOfRange { index, dim } => {
                NetError::SupportOutOfRange { index, dim }
            }
            other => NetError::Pipeline(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_round_trips_its_wire_byte() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::FrameTooLarge,
            ErrorCode::UnknownKind,
            ErrorCode::ConfigMismatch,
            ErrorCode::BadBatch,
            ErrorCode::OversizedBatch,
            ErrorCode::SupportOutOfRange,
            ErrorCode::Protocol,
            ErrorCode::IdleTimeout,
            ErrorCode::Draining,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Ok(code));
            assert!(!code.name().is_empty());
        }
        assert_eq!(
            ErrorCode::from_u8(0),
            Err(NetError::UnknownErrorCode(0)),
            "0 is reserved so a zeroed byte never parses as a code"
        );
    }

    #[test]
    fn retryability_separates_transient_from_permanent() {
        assert!(NetError::Draining.retryable());
        assert!(NetError::Io("reset".into()).retryable());
        assert!(!NetError::ConfigMismatch { got: 1, want: 2 }.retryable());
        assert!(!NetError::UnknownKind(77).retryable());
        assert!(NetError::Remote {
            code: ErrorCode::Draining,
            detail: String::new()
        }
        .retryable());
        assert!(!NetError::Remote {
            code: ErrorCode::BadBatch,
            detail: String::new()
        }
        .retryable());
    }
}
