//! Property-based tests for the one-shot protocol layer.
//!
//! These verify the *algebraic* guarantees on randomly drawn parameters:
//! LDP ratios computed from exact transition probabilities, estimator
//! unbiasedness as an identity on expectations, and structural invariants
//! of the bit-vector and parameter helpers.

use ldp_primitives::estimator::{
    chained_frequency_estimate, chained_variance, chained_variance_approx, frequency_estimate,
};
use ldp_primitives::params::{grr_params, olh_g, oue_params, sue_params};
use ldp_primitives::{BitVec, Grr, PerturbParams, UeClient};
use proptest::prelude::*;

prop_compose! {
    fn arb_eps()(e in 0.05f64..6.0) -> f64 { e }
}

prop_compose! {
    fn arb_k()(k in 2u64..500) -> u64 { k }
}

proptest! {
    /// GRR's transition matrix satisfies the ε-LDP inequality with equality
    /// at the (v, v) / (v', v) pair.
    #[test]
    fn grr_ldp_ratio_is_exact(eps in arb_eps(), k in arb_k()) {
        let grr = Grr::new(k, eps).unwrap();
        let ratio = grr.p() / grr.q();
        prop_assert!((ratio.ln() - eps).abs() < 1e-9);
        // Row stochasticity.
        let row: f64 = grr.p() + (k as f64 - 1.0) * grr.q();
        prop_assert!((row - 1.0).abs() < 1e-9);
    }

    /// The unary ε of SUE/OUE parameter pairs matches the requested ε.
    #[test]
    fn ue_params_epsilon_roundtrip(eps in arb_eps()) {
        let (ps, qs) = sue_params(eps);
        let (po, qo) = oue_params(eps);
        let es = PerturbParams::new(ps, qs).unwrap().epsilon_unary();
        let eo = PerturbParams::new(po, qo).unwrap().epsilon_unary();
        prop_assert!((es - eps).abs() < 1e-8, "SUE {es} vs {eps}");
        prop_assert!((eo - eps).abs() < 1e-8, "OUE {eo} vs {eps}");
    }

    /// Eq. (1) inverts the expected support count for any frequency.
    #[test]
    fn eq1_unbiased_identity(
        f in 0.0f64..1.0,
        p in 0.55f64..0.999,
        q in 0.001f64..0.45,
        n in 100.0f64..1e6,
    ) {
        let expected_count = n * (f * p + (1.0 - f) * q);
        let est = frequency_estimate(expected_count, n, p, q);
        prop_assert!((est - f).abs() < 1e-9);
    }

    /// Eq. (3) inverts the expected support count under two rounds.
    #[test]
    fn eq3_unbiased_identity(
        f in 0.0f64..1.0,
        p1 in 0.55f64..0.999,
        q1 in 0.001f64..0.45,
        p2 in 0.55f64..0.999,
        q2 in 0.001f64..0.45,
        n in 100.0f64..1e6,
    ) {
        let ps = p1 * p2 + (1.0 - p1) * q2;
        let qs = q1 * p2 + (1.0 - q1) * q2;
        let expected_count = n * (f * ps + (1.0 - f) * qs);
        let est = chained_frequency_estimate(expected_count, n, p1, q1, p2, q2);
        prop_assert!((est - f).abs() < 1e-8);
    }

    /// Eq. (4) is non-negative and Eq. (5) equals Eq. (4) at f = 0.
    #[test]
    fn variance_formulas_consistent(
        p1 in 0.55f64..0.999,
        q1 in 0.001f64..0.45,
        p2 in 0.55f64..0.999,
        q2 in 0.001f64..0.45,
    ) {
        let n = 10_000.0;
        let v0 = chained_variance(0.0, n, p1, q1, p2, q2);
        let vstar = chained_variance_approx(n, p1, q1, p2, q2);
        prop_assert!(v0 >= 0.0);
        prop_assert!((v0 - vstar).abs() < 1e-15);
    }

    /// olh_g is monotone in ε and always at least 2.
    #[test]
    fn olh_g_monotone(e1 in arb_eps(), e2 in arb_eps()) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(olh_g(lo) >= 2);
        prop_assert!(olh_g(lo) <= olh_g(hi));
    }

    /// GRR perturbation output always stays in the domain.
    #[test]
    fn grr_output_in_domain(eps in arb_eps(), k in arb_k(), seed in any::<u64>()) {
        let grr = Grr::new(k, eps).unwrap();
        let mut rng = ldp_rand::derive_rng(seed, 0);
        for v in [0, k / 2, k - 1] {
            let y = grr.perturb(v, &mut rng);
            prop_assert!(y < k);
        }
    }

    /// UE reports have the right length and plausible density.
    #[test]
    fn ue_report_shape(eps in 0.3f64..4.0, k in 4u64..200, seed in any::<u64>()) {
        let client = UeClient::oue(k, eps).unwrap();
        let mut rng = ldp_rand::derive_rng(seed, 1);
        let bits = client.perturb(k - 1, &mut rng);
        prop_assert_eq!(bits.len() as u64, k);
        prop_assert!(bits.count_ones() as u64 <= k);
    }

    /// BitVec set/get agree for arbitrary index sets.
    #[test]
    fn bitvec_set_get(len in 1usize..500, idxs in prop::collection::vec(0usize..500, 0..64)) {
        let mut bv = BitVec::zeros(len);
        let mut expected = vec![false; len];
        for &i in idxs.iter().filter(|&&i| i < len) {
            bv.set(i, true);
            expected[i] = true;
        }
        for (i, &e) in expected.iter().enumerate() {
            prop_assert_eq!(bv.get(i), e);
        }
        let ones: Vec<usize> = bv.iter_ones().collect();
        let want: Vec<usize> =
            expected.iter().enumerate().filter(|(_, &e)| e).map(|(i, _)| i).collect();
        prop_assert_eq!(ones, want);
    }

    /// grr_params always form a valid distribution with p/q = e^eps.
    #[test]
    fn grr_params_valid(eps in arb_eps(), k in arb_k()) {
        let (p, q) = grr_params(eps, k);
        prop_assert!(p > 0.0 && p < 1.0);
        prop_assert!(q > 0.0 && q < 1.0);
        prop_assert!(p > q);
        prop_assert!(((p / q).ln() - eps).abs() < 1e-9);
    }
}
