//! Corruption properties of the shared checkpoint codec.
//!
//! Every durable format in the workspace (`loloha::persist`,
//! `ldp_ingest::store`, `ldp_client::store`) is one instance of this
//! container, so the hostile-input guarantees are proven here **once**,
//! against arbitrary payloads, instead of ad-hoc per store:
//!
//! * truncation at *every* byte boundary → typed error, never a panic;
//! * any single bit-flip anywhere in the container → typed error;
//! * foreign magic → [`CodecError::BadMagic`];
//! * any version other than the writer's → [`CodecError::UnsupportedVersion`];
//! * forged frame lengths → bounds-checked [`CodecError::Truncated`].

use ldp_primitives::codec::{self, CodecError, CodecReader, CodecWriter, CHECKSUM_LEN, HEADER_LEN};
use proptest::prelude::*;

const MAGIC: &[u8; 4] = b"PROP";
const VERSION: u16 = 4;

/// Builds a container around an arbitrary payload, with a mix of raw
/// bytes and framed chunks so both write paths are exercised.
fn container(payload: &[u8], framed: bool, fingerprint: u64) -> Vec<u8> {
    let mut w = CodecWriter::with_capacity(MAGIC, VERSION, fingerprint, payload.len());
    if framed {
        for chunk in payload.chunks(5) {
            w.put_frame(chunk);
        }
    } else {
        w.put_bytes(payload);
    }
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A container round-trips: open verifies header + checksum, the
    /// payload reads back identically, and `finish` accepts exactly the
    /// written length.
    #[test]
    fn roundtrip_is_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        fingerprint in any::<u64>(),
    ) {
        let bytes = container(&payload, false, fingerprint);
        let mut r = CodecReader::open(&bytes, MAGIC, VERSION).expect("opens");
        prop_assert_eq!(r.fingerprint(), fingerprint);
        prop_assert_eq!(r.take(payload.len()).expect("payload"), &payload[..]);
        r.finish().expect("fully consumed");
    }

    /// Framed payloads round-trip chunk by chunk.
    #[test]
    fn frames_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let bytes = container(&payload, true, 7);
        let mut r = CodecReader::open(&bytes, MAGIC, VERSION).expect("opens");
        let mut got = Vec::new();
        for _ in 0..payload.chunks(5).count() {
            got.extend_from_slice(r.get_frame().expect("frame"));
        }
        r.finish().expect("fully consumed");
        prop_assert_eq!(got, payload);
    }

    /// Truncating a container at ANY byte is rejected with a typed error
    /// (`Truncated` below the minimum layout, `ChecksumMismatch` once a
    /// plausible trailer exists) — and never panics.
    #[test]
    fn truncation_at_every_byte_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..120),
        framed in any::<bool>(),
    ) {
        let bytes = container(&payload, framed, 3);
        for cut in 0..bytes.len() {
            let err = CodecReader::open(&bytes[..cut], MAGIC, VERSION).unwrap_err();
            prop_assert!(
                matches!(err, CodecError::Truncated | CodecError::ChecksumMismatch),
                "cut {}: {:?}", cut, err
            );
        }
    }

    /// Flipping any single bit anywhere in the container is caught: in
    /// the magic (BadMagic), the version (UnsupportedVersion), or any
    /// later byte (the checksum trailer covers header and payload; a flip
    /// inside the trailer itself no longer matches the body).
    #[test]
    fn any_single_bit_flip_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = container(&payload, false, 11);
        let i = ((bytes.len() as f64 * byte_frac) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[i] ^= 1 << bit;
        let err = CodecReader::open(&bad, MAGIC, VERSION)
            .expect_err("corrupted container must not open");
        match i {
            0..=3 => prop_assert_eq!(err, CodecError::BadMagic),
            4..=5 => prop_assert!(matches!(err, CodecError::UnsupportedVersion(_))),
            _ => prop_assert_eq!(err, CodecError::ChecksumMismatch),
        }
    }

    /// Foreign magic is always BadMagic, whatever the rest looks like.
    #[test]
    fn foreign_magic_is_rejected(
        other_bits in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let other = other_bits.to_le_bytes();
        prop_assume!(&other != MAGIC);
        let bytes = container(&payload, false, 0);
        let mut foreign = bytes.clone();
        foreign[..4].copy_from_slice(&other);
        prop_assert_eq!(
            CodecReader::open(&foreign, MAGIC, VERSION).err(),
            Some(CodecError::BadMagic)
        );
        prop_assert_eq!(
            codec::sniff_version(&foreign, MAGIC).err(),
            Some(CodecError::BadMagic)
        );
    }

    /// Every version other than the expected one — past or future — is
    /// UnsupportedVersion(v), and the sniffer reports it faithfully so
    /// migration shims can dispatch on it.
    #[test]
    fn other_versions_are_rejected_with_their_number(
        version in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(version != VERSION);
        let mut bytes = container(&payload, false, 0);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            CodecReader::open(&bytes, MAGIC, VERSION).err(),
            Some(CodecError::UnsupportedVersion(version))
        );
        prop_assert_eq!(codec::sniff_version(&bytes, MAGIC).unwrap(), version);
    }

    /// A forged frame length never reads out of bounds — even when the
    /// checksum has been fixed up to cover the forgery.
    #[test]
    fn forged_frame_lengths_are_bounds_checked(claim in 1u32..u32::MAX) {
        let mut w = CodecWriter::new(MAGIC, VERSION, 0);
        w.put_u32(claim); // frame header claiming `claim` bytes ...
        let bytes = w.finish(); // ... over an empty body
        let mut r = CodecReader::open(&bytes, MAGIC, VERSION).expect("opens");
        prop_assert_eq!(r.get_frame().err(), Some(CodecError::Truncated));
    }
}

#[test]
fn min_sized_container_is_header_plus_trailer() {
    let bytes = CodecWriter::new(MAGIC, VERSION, 9).finish();
    assert_eq!(bytes.len(), HEADER_LEN + CHECKSUM_LEN);
    let r = CodecReader::open(&bytes, MAGIC, VERSION).unwrap();
    assert_eq!(r.fingerprint(), 9);
    assert_eq!(r.remaining(), 0);
    r.finish().unwrap();
}
