//! The one checkpoint codec every durable format in this workspace is
//! built on.
//!
//! Three subsystems persist state across restarts — the standalone LOLOHA
//! client snapshots (`loloha::persist`), the shard-state checkpoints
//! (`ldp_ingest::store`), and the client-pool checkpoints
//! (`ldp_client::store`) — and all of them share one container format,
//! implemented here exactly once. The normative on-disk specification
//! lives in `docs/CHECKPOINT_FORMAT.md`; this module is its reference
//! implementation.
//!
//! Container layout (little-endian throughout):
//!
//! ```text
//! magic [u8; 4] | version u16 | fingerprint u64
//! | payload (store-specific, length-prefixed frames for variable parts)
//! | checksum u64 (FNV-1a over every preceding byte)
//! ```
//!
//! * The **magic** names the store; a file with a different magic is
//!   foreign ([`CodecError::BadMagic`]).
//! * The **version** is the store's format version. Decoders sniff it
//!   first ([`sniff_version`]) so they can route legacy versions to
//!   migration shims; versions newer than the build are rejected as
//!   [`CodecError::UnsupportedVersion`], never guessed at.
//! * The **fingerprint** pins the configuration the payload is only valid
//!   for (each store documents what it hashes); folding a checkpoint into
//!   a differently-configured consumer is a [`CodecError::Mismatch`].
//! * The **checksum** is FNV-1a ([`fnv1a`]) — tiny, dependency-free
//!   corruption detection, *not* a cryptographic integrity guarantee: the
//!   checkpoint trusts its storage, so decoders must still prove every
//!   declared length against the actual buffer before sizing an
//!   allocation from it.
//!
//! [`CodecWriter`] builds a container (header up front, checksum appended
//! by [`CodecWriter::finish`]); [`CodecReader::open`] verifies magic,
//! version, and checksum before exposing a single payload byte, then
//! hands out bounds-checked reads. [`CodecReader::raw`] runs the same
//! bounds-checked reads over a bare sub-payload (no header, no trailer) —
//! the per-protocol state blobs nested inside client checkpoints use it.
//! [`write_atomic`] is the shared durable-write path: temp file + rename,
//! so a crash mid-write never clobbers the previous checkpoint.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Bytes of the fixed container header: magic + version + fingerprint.
pub const HEADER_LEN: usize = 4 + 2 + 8;
/// Bytes of the FNV-1a checksum trailer.
pub const CHECKSUM_LEN: usize = 8;

/// Why a checkpoint failed to decode, validate, or hit disk. The single
/// error type shared by every durable format in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer is shorter than the declared layout.
    Truncated,
    /// The magic bytes do not match (a foreign file).
    BadMagic,
    /// The version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The trailing checksum does not match the content (bit rot or a
    /// partial overwrite).
    ChecksumMismatch,
    /// A decoded field is outside its domain (corrupt checkpoint).
    Corrupt(&'static str),
    /// The checkpoint was captured under a different configuration than
    /// the consumer it is being folded into.
    Mismatch(&'static str),
    /// An underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "checkpoint is truncated"),
            CodecError::BadMagic => write!(f, "checkpoint has wrong magic bytes (foreign file)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "checkpoint version {v} is not supported by this build")
            }
            CodecError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (corrupt file)")
            }
            CodecError::Corrupt(what) => write!(f, "checkpoint is corrupt: {what}"),
            CodecError::Mismatch(what) => {
                write!(f, "checkpoint does not match this configuration: {what}")
            }
            CodecError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl Error for CodecError {}

/// FNV-1a, 64-bit: the workspace's checksum and fingerprint hash. Tiny and
/// dependency-free; forgeable by construction, so it detects accidents,
/// not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reads the magic and version of a container without touching the rest,
/// so decoders can route legacy versions to migration shims before the
/// full (checksummed) open.
pub fn sniff_version(bytes: &[u8], magic: &[u8; 4]) -> Result<u16, CodecError> {
    if bytes.len() >= 4 && &bytes[..4] != magic {
        return Err(CodecError::BadMagic);
    }
    if bytes.len() < 6 {
        return Err(CodecError::Truncated);
    }
    Ok(u16::from_le_bytes([bytes[4], bytes[5]]))
}

/// Verifies the FNV-1a trailer of a checksummed buffer and returns the
/// body (everything before the trailer). Legacy (pre-unified-header)
/// decoders use this to share the trailer check without the fingerprint
/// field.
pub fn split_checksummed(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < CHECKSUM_LEN {
        return Err(CodecError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    // ldp_lint::allow(L001): split_at(len - 8) makes the trailer exactly 8 bytes
    let declared = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a(body) != declared {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(body)
}

/// Builds one container: header eagerly, payload via the `put_*` methods,
/// checksum appended by [`CodecWriter::finish`].
#[derive(Debug)]
pub struct CodecWriter {
    buf: Vec<u8>,
}

impl CodecWriter {
    /// Starts a container with the given magic, format version, and
    /// configuration fingerprint.
    pub fn new(magic: &[u8; 4], version: u16, fingerprint: u64) -> Self {
        Self::with_capacity(magic, version, fingerprint, 0)
    }

    /// Like [`CodecWriter::new`], pre-reserving `payload` bytes beyond the
    /// header and trailer.
    pub fn with_capacity(magic: &[u8; 4], version: u16, fingerprint: u64, payload: usize) -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload + CHECKSUM_LEN);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        Self { buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64` (bit pattern, so NaN
    /// payloads and signed zeros round-trip exactly).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no framing (fixed-width fields).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed frame: `len u32 | len bytes`.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds `u32::MAX` — frames are for per-record
    /// payloads, which are orders of magnitude smaller.
    pub fn put_frame(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("frame exceeds u32::MAX");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far (header included).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written (never true: the header is eager).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends the FNV-1a trailer over everything written and returns the
    /// finished container.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked little-endian reads over a container payload (via
/// [`CodecReader::open`]) or a bare sub-payload (via [`CodecReader::raw`]).
/// Every failure mode is a typed [`CodecError`], never a panic.
#[derive(Debug)]
pub struct CodecReader<'a> {
    /// The readable region: container payload (header consumed, trailer
    /// excluded) or the raw slice.
    bytes: &'a [u8],
    pos: usize,
    fingerprint: u64,
}

impl<'a> CodecReader<'a> {
    /// Opens a container: verifies the magic, requires exactly `version`
    /// (legacy versions must be routed to shims via [`sniff_version`]
    /// *before* calling this), and verifies the checksum trailer before
    /// exposing any payload byte.
    pub fn open(bytes: &'a [u8], magic: &[u8; 4], version: u16) -> Result<Self, CodecError> {
        let got = sniff_version(bytes, magic)?;
        if got != version {
            return Err(CodecError::UnsupportedVersion(got));
        }
        if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
            return Err(CodecError::Truncated);
        }
        let body = split_checksummed(bytes)?;
        // ldp_lint::allow(L001): the length floor above proves 8 header bytes exist
        let fingerprint = u64::from_le_bytes(body[6..HEADER_LEN].try_into().expect("header"));
        Ok(Self {
            bytes: &body[HEADER_LEN..],
            pos: 0,
            fingerprint,
        })
    }

    /// Wraps a bare sub-payload (no header, no checksum) in the same
    /// bounds-checked reads — for state blobs nested inside a container.
    pub fn raw(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            fingerprint: 0,
        }
    }

    /// The container's configuration fingerprint (0 for raw readers).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Requires the container's fingerprint to equal `want`; anything else
    /// is a foreign checkpoint.
    pub fn expect_fingerprint(&self, want: u64, what: &'static str) -> Result<(), CodecError> {
        if self.fingerprint != want {
            return Err(CodecError::Mismatch(what));
        }
        Ok(())
    }

    /// Unread payload bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Takes an exact-width array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        // ldp_lint::allow(L001): take(N) returns exactly N bytes or errors first
        Ok(self.take(N)?.try_into().expect("exact length"))
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    /// Reads a length-prefixed frame written by [`CodecWriter::put_frame`].
    pub fn get_frame(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Requires the payload to be fully consumed — trailing bytes mean a
    /// forged length field or a hand-edited file.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.pos != self.bytes.len() {
            return Err(CodecError::Corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

/// Durably writes `bytes` to `path`: the content lands in a sibling
/// `.tmp` file first and is renamed over the destination, so a crash
/// mid-write never leaves a half-written checkpoint where a valid one
/// stood.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CodecError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes).map_err(|e| CodecError::Io(e.to_string()))?;
    fs::rename(&tmp, path).map_err(|e| CodecError::Io(e.to_string()))
}

/// Reads a whole checkpoint file, mapping filesystem failures to
/// [`CodecError::Io`].
pub fn read_file(path: &Path) -> Result<Vec<u8>, CodecError> {
    fs::read(path).map_err(|e| CodecError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 4] = b"TEST";

    fn sample() -> Vec<u8> {
        let mut w = CodecWriter::new(MAGIC, 3, 0xF00D);
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(-0.0);
        w.put_frame(b"abc");
        w.finish()
    }

    #[test]
    fn writer_reader_roundtrip() {
        let bytes = sample();
        let mut r = CodecReader::open(&bytes, MAGIC, 3).unwrap();
        assert_eq!(r.fingerprint(), 0xF00D);
        r.expect_fingerprint(0xF00D, "cfg").unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_frame().unwrap(), b"abc");
        r.finish().unwrap();
    }

    #[test]
    fn open_rejects_foreign_magic_and_versions() {
        let bytes = sample();
        assert_eq!(
            CodecReader::open(&bytes, b"ELSE", 3).err(),
            Some(CodecError::BadMagic)
        );
        assert_eq!(
            CodecReader::open(&bytes, MAGIC, 2).err(),
            Some(CodecError::UnsupportedVersion(3))
        );
        assert_eq!(sniff_version(&bytes, MAGIC).unwrap(), 3);
    }

    #[test]
    fn open_rejects_every_truncation_with_a_typed_error() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = CodecReader::open(&bytes[..cut], MAGIC, 3).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::ChecksumMismatch),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn checksum_catches_payload_bit_flips() {
        let bytes = sample();
        for i in HEADER_LEN..bytes.len() - CHECKSUM_LEN {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert_eq!(
                CodecReader::open(&bad, MAGIC, 3).err(),
                Some(CodecError::ChecksumMismatch),
                "byte {i}"
            );
        }
    }

    #[test]
    fn wrong_fingerprint_is_a_mismatch() {
        let bytes = sample();
        let r = CodecReader::open(&bytes, MAGIC, 3).unwrap();
        assert_eq!(
            r.expect_fingerprint(0xBEEF, "seed differs").err(),
            Some(CodecError::Mismatch("seed differs"))
        );
    }

    #[test]
    fn forged_frame_lengths_never_read_out_of_bounds() {
        let mut w = CodecWriter::new(MAGIC, 1, 0);
        w.put_u32(u32::MAX); // frame claiming 4 GiB
        let bytes = w.finish();
        let mut r = CodecReader::open(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.get_frame().err(), Some(CodecError::Truncated));
    }

    #[test]
    fn raw_reader_finish_rejects_trailing_bytes() {
        let mut r = CodecReader::raw(&[1, 2, 3]);
        assert_eq!(r.get_u16().unwrap(), 0x0201);
        assert_eq!(
            r.finish().err(),
            Some(CodecError::Corrupt("trailing bytes after payload"))
        );
        assert_eq!(r.get_u8().unwrap(), 3);
        r.finish().unwrap();
        assert_eq!(r.get_u8().err(), Some(CodecError::Truncated));
    }

    #[test]
    fn atomic_write_replaces_previous_content() {
        let path = std::env::temp_dir().join(format!("ldp_codec_test_{}.bin", std::process::id()));
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second");
        std::fs::remove_file(&path).ok();
        assert!(matches!(read_file(&path), Err(CodecError::Io(_))));
    }
}
