//! A compact bit vector for unary-encoded reports.
//!
//! Unary Encoding ships one bit per domain value; with `k` up to 1412 in the
//! paper's datasets a report is at most 23 machine words. The server only
//! needs set-bit iteration (to bump support counts), so the representation
//! is a plain `Vec<u64>` with trailing-zero scanning.

/// A fixed-length bit vector backed by 64-bit blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            blocks: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.blocks[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Calls `f` with every set-bit index, in increasing order.
    ///
    /// Equivalent to `iter_ones().for_each(f)` but folds a whole 64-bit
    /// block per loop with no iterator state to thread through — the hot
    /// shape for expanding dense unary-encoded supports into flat index
    /// buffers.
    #[inline]
    pub fn for_each_one<F: FnMut(usize)>(&self, mut f: F) {
        for (block_idx, &block) in self.blocks.iter().enumerate() {
            let mut current = block;
            while current != 0 {
                f(block_idx * 64 + current.trailing_zeros() as usize);
                current &= current - 1; // clear lowest set bit
            }
        }
    }

    /// Resets all bits to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Overwrites this vector with `other`'s bits, keeping the allocation.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in copy_from");
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// Overwrites this vector from raw little-endian blocks. Stray bits
    /// beyond `len` in the last block are masked off, so untrusted block
    /// data can never make [`BitVec::iter_ones`] yield an out-of-range
    /// index.
    ///
    /// # Panics
    /// Panics if the block count differs from `ceil(len/64)`.
    pub fn copy_from_blocks(&mut self, blocks: &[u64]) {
        assert_eq!(
            self.blocks.len(),
            blocks.len(),
            "block count mismatch in copy_from_blocks"
        );
        self.blocks.copy_from_slice(blocks);
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The underlying blocks (low bit of block 0 is bit 0).
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }
}

/// Iterator over set-bit indices of a [`BitVec`].
pub struct IterOnes<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.block_idx * 64 + tz);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_zero() {
        let bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.iter_ones().next().is_none());
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut bv = BitVec::zeros(100);
        bv.set(0, true);
        bv.set(63, true);
        bv.set(64, true);
        bv.set(99, true);
        for i in 0..100 {
            let expect = matches!(i, 0 | 63 | 64 | 99);
            assert_eq!(bv.get(i), expect, "bit {i}");
        }
        bv.flip(63);
        assert!(!bv.get(63));
        bv.set(0, false);
        assert!(!bv.get(0));
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut bv = BitVec::zeros(200);
        let idxs = [3usize, 64, 65, 127, 128, 199];
        for &i in &idxs {
            bv.set(i, true);
        }
        let collected: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(collected, idxs);
    }

    #[test]
    fn for_each_one_matches_iter_ones() {
        let mut bv = BitVec::zeros(200);
        for &i in &[0usize, 3, 63, 64, 65, 127, 128, 199] {
            bv.set(i, true);
        }
        let mut folded = Vec::new();
        bv.for_each_one(|i| folded.push(i));
        assert_eq!(folded, bv.iter_ones().collect::<Vec<_>>());
        let empty = BitVec::zeros(70);
        empty.for_each_one(|_| panic!("no set bits"));
    }

    #[test]
    fn copy_from_and_blocks_roundtrip() {
        let mut src = BitVec::zeros(70);
        src.set(3, true);
        src.set(69, true);
        let mut dst = BitVec::zeros(70);
        dst.set(10, true);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let mut from_blocks = BitVec::zeros(70);
        from_blocks.copy_from_blocks(src.blocks());
        assert_eq!(from_blocks, src);
    }

    #[test]
    fn copy_from_blocks_masks_stray_tail_bits() {
        let mut bv = BitVec::zeros(70);
        // Bits 70..128 of the raw blocks are out of range and must vanish.
        bv.copy_from_blocks(&[0, u64::MAX]);
        let ones: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(ones, vec![64, 65, 66, 67, 68, 69]);
    }

    #[test]
    fn clear_resets() {
        let mut bv = BitVec::zeros(70);
        bv.set(5, true);
        bv.set(69, true);
        bv.clear();
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.len(), 70);
    }

    #[test]
    fn empty_vector_behaves() {
        let bv = BitVec::zeros(0);
        assert!(bv.is_empty());
        assert_eq!(bv.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let bv = BitVec::zeros(10);
        let _ = bv.get(10);
    }

    #[test]
    fn non_multiple_of_64_length() {
        let mut bv = BitVec::zeros(65);
        bv.set(64, true);
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![64]);
    }
}
