//! Generalized Randomized Response (§2.3.1).
//!
//! `M_GRR(v; ε)` reports the true value with probability
//! `p = e^ε/(e^ε + k − 1)` and any *other* fixed value with probability
//! `q = (1 − p)/(k − 1)`, which satisfies ε-LDP because `p/q = e^ε`.

use crate::error::{check_epsilon, ParamError};
use crate::params::grr_params;
use ldp_rand::{uniform_excluding, Bernoulli};
use rand::RngCore;

/// A GRR mechanism over the domain `[0, k)`.
#[derive(Debug, Clone)]
pub struct Grr {
    k: u64,
    eps: f64,
    p: f64,
    q: f64,
    keep: Bernoulli,
}

impl Grr {
    /// Creates a GRR mechanism at privacy level `eps` over `k ≥ 2` values.
    pub fn new(k: u64, eps: f64) -> Result<Self, ParamError> {
        check_epsilon(eps)?;
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let (p, q) = grr_params(eps, k);
        let keep = Bernoulli::new(p).expect("grr p in [0,1] by construction");
        Ok(Self { k, eps, p, q, keep })
    }

    /// Creates a GRR mechanism from an explicit retention probability `p`
    /// (with `q = (1 − p)/(k − 1)`), as needed when a chained protocol
    /// prescribes `p2` directly rather than an ε.
    pub fn with_retention(k: u64, p: f64) -> Result<Self, ParamError> {
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let q = (1.0 - p) / (k as f64 - 1.0);
        if !(p.is_finite() && p > 0.0 && p < 1.0) || p <= q {
            return Err(ParamError::InvalidProbability { p, q });
        }
        let eps = (p / q).ln();
        let keep = Bernoulli::new(p).expect("validated p");
        Ok(Self { k, eps, p, q, keep })
    }

    /// Domain size.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Privacy level ε.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Retention probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Per-other-value noise probability `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Perturbs one value.
    ///
    /// # Panics
    /// Panics if `value >= k` (domain violations are caller bugs).
    #[inline]
    pub fn perturb<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> u64 {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        if self.keep.sample(rng) {
            value
        } else {
            uniform_excluding(rng, self.k, value)
        }
    }

    /// The exact transition probability `Pr[output = y | input = v]`.
    /// Exposed for LDP-ratio tests and for the exact-variance checks.
    pub fn transition(&self, v: u64, y: u64) -> f64 {
        assert!(v < self.k && y < self.k);
        if v == y {
            self.p
        } else {
            self.q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Grr::new(1, 1.0).is_err());
        assert!(Grr::new(10, 0.0).is_err());
        assert!(Grr::new(10, -1.0).is_err());
        assert!(Grr::new(10, f64::NAN).is_err());
    }

    #[test]
    fn transition_matrix_satisfies_ldp_exactly() {
        for &(k, eps) in &[(2u64, 0.5f64), (10, 1.0), (360, 3.0)] {
            let grr = Grr::new(k, eps).unwrap();
            // Rows sum to one.
            let row_sum: f64 = (0..k).map(|y| grr.transition(0, y)).sum();
            assert!((row_sum - 1.0).abs() < 1e-9);
            // Max ratio across inputs for any output is exactly e^eps.
            let ratio = grr.p() / grr.q();
            assert!((ratio - eps.exp()).abs() < 1e-9 * eps.exp());
        }
    }

    #[test]
    fn perturb_keeps_with_probability_p() {
        let grr = Grr::new(8, 1.5).unwrap();
        let mut rng = derive_rng(300, 0);
        let n = 200_000;
        let kept = (0..n).filter(|_| grr.perturb(3, &mut rng) == 3).count();
        let rate = kept as f64 / n as f64;
        let tol = 5.0 * (grr.p() * (1.0 - grr.p()) / n as f64).sqrt();
        assert!((rate - grr.p()).abs() < tol, "rate {rate} vs p {}", grr.p());
    }

    #[test]
    fn perturb_noise_is_uniform_over_other_values() {
        let grr = Grr::new(5, 0.8).unwrap();
        let mut rng = derive_rng(301, 0);
        let n = 300_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[grr.perturb(2, &mut rng) as usize] += 1;
        }
        let expected_other = n as f64 * grr.q();
        for (v, &c) in counts.iter().enumerate() {
            if v == 2 {
                continue;
            }
            let dev = (c as f64 - expected_other).abs() / expected_other;
            assert!(dev < 0.05, "value {v} dev {dev}");
        }
    }

    #[test]
    fn binary_domain_is_classic_randomized_response() {
        let grr = Grr::new(2, 2.0f64.ln()).unwrap();
        // p = 2/3, q = 1/3 for eps = ln 2, k = 2.
        assert!((grr.p() - 2.0 / 3.0).abs() < 1e-12);
        assert!((grr.q() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_input_panics() {
        let grr = Grr::new(4, 1.0).unwrap();
        let mut rng = derive_rng(302, 0);
        let _ = grr.perturb(4, &mut rng);
    }
}
