//! Typed errors for protocol parameter validation.
//!
//! Every constructor in the protocol crates validates its inputs and returns
//! one of these variants instead of panicking: experiment configurations are
//! user input, and a bad ε or domain size must surface as a recoverable
//! error, not a crash halfway through a parameter sweep.

use std::error::Error;
use std::fmt;

/// Reasons a protocol cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// ε must be a positive finite number.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// A two-round protocol needs `0 < ε1 < ε∞`.
    EpsilonOrder {
        /// First-report budget ε1.
        eps_first: f64,
        /// Longitudinal budget ε∞.
        eps_inf: f64,
    },
    /// The domain must contain at least `min` values.
    DomainTooSmall {
        /// Provided domain size.
        k: u64,
        /// Minimum required size.
        min: u64,
    },
    /// The reduced domain size `g` must satisfy `g ≥ 2`.
    InvalidG {
        /// Provided g.
        g: u32,
    },
    /// dBitFlipPM needs `1 ≤ d ≤ b ≤ k`.
    InvalidBuckets {
        /// Number of buckets b.
        b: u32,
        /// Number of sampled bits d.
        d: u32,
        /// Domain size k.
        k: u64,
    },
    /// A probability parameter escaped `[0, 1]` or `p == q` (which makes the
    /// estimator undefined).
    InvalidProbability {
        /// Retention probability p.
        p: f64,
        /// Noise probability q.
        q: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::InvalidEpsilon { value } => {
                write!(f, "epsilon must be positive and finite, got {value}")
            }
            ParamError::EpsilonOrder { eps_first, eps_inf } => write!(
                f,
                "two-round protocols require 0 < eps_first < eps_inf, got \
                 eps_first = {eps_first}, eps_inf = {eps_inf}"
            ),
            ParamError::DomainTooSmall { k, min } => {
                write!(f, "domain size {k} is below the minimum of {min}")
            }
            ParamError::InvalidG { g } => {
                write!(f, "reduced domain size g must be at least 2, got {g}")
            }
            ParamError::InvalidBuckets { b, d, k } => write!(
                f,
                "dBitFlipPM requires 1 <= d <= b <= k, got d = {d}, b = {b}, k = {k}"
            ),
            ParamError::InvalidProbability { p, q } => write!(
                f,
                "perturbation probabilities must lie in [0, 1] with p != q, \
                 got p = {p}, q = {q}"
            ),
        }
    }
}

impl Error for ParamError {}

/// Validates that ε is positive and finite.
pub fn check_epsilon(eps: f64) -> Result<(), ParamError> {
    if eps.is_finite() && eps > 0.0 {
        Ok(())
    } else {
        Err(ParamError::InvalidEpsilon { value: eps })
    }
}

/// Validates the `0 < ε1 < ε∞` ordering required by two-round protocols.
pub fn check_epsilon_order(eps_first: f64, eps_inf: f64) -> Result<(), ParamError> {
    check_epsilon(eps_first)?;
    check_epsilon(eps_inf)?;
    if eps_first < eps_inf {
        Ok(())
    } else {
        Err(ParamError::EpsilonOrder { eps_first, eps_inf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_epsilon_accepts_positive() {
        assert!(check_epsilon(0.5).is_ok());
        assert!(check_epsilon(10.0).is_ok());
    }

    #[test]
    fn check_epsilon_rejects_bad_values() {
        for v in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(check_epsilon(v).is_err(), "{v} accepted");
        }
    }

    #[test]
    fn epsilon_order_enforced() {
        assert!(check_epsilon_order(0.5, 1.0).is_ok());
        assert!(check_epsilon_order(1.0, 1.0).is_err());
        assert!(check_epsilon_order(2.0, 1.0).is_err());
        assert!(check_epsilon_order(0.0, 1.0).is_err());
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = ParamError::DomainTooSmall { k: 1, min: 2 };
        assert!(e.to_string().contains("below the minimum"));
        let e = ParamError::InvalidBuckets { b: 3, d: 5, k: 10 };
        assert!(e.to_string().contains("1 <= d <= b <= k"));
    }
}
