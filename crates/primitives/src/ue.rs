//! Unary Encoding protocols (§2.3.3): SUE (the RAPPOR encoding) and OUE.
//!
//! The input is one-hot encoded into `k` bits; each bit is perturbed
//! independently — a 1 survives with probability `p`, a 0 flips up with
//! probability `q`. SUE picks the symmetric pair (`p + q = 1`), OUE the
//! variance-optimal pair (`p = 1/2`, `q = 1/(e^ε+1)`).
//!
//! Perturbation is O(k·q) expected time, not O(k): the zero bits that flip
//! up are enumerated by geometric skipping when `q` is small, falling back
//! to a per-bit loop for dense `q`.

use crate::bitvec::BitVec;
use crate::error::ParamError;
use crate::estimator::frequency_estimates;
use crate::params::{oue_params, sue_params, PerturbParams};
use ldp_rand::{Bernoulli, SparseHits};
use rand::RngCore;

/// Below this noise probability the zero bits are enumerated by geometric
/// skipping; above it a dense per-bit loop is cheaper.
const SPARSE_Q_THRESHOLD: f64 = 0.12;

/// A one-shot UE client.
#[derive(Debug, Clone)]
pub struct UeClient {
    k: usize,
    params: PerturbParams,
    keep: Bernoulli,
    noise: Bernoulli,
}

impl UeClient {
    /// Creates a SUE client over `[0, k)` at level `eps`.
    pub fn sue(k: u64, eps: f64) -> Result<Self, ParamError> {
        crate::error::check_epsilon(eps)?;
        let (p, q) = sue_params(eps);
        Self::with_params(k, p, q)
    }

    /// Creates an OUE client over `[0, k)` at level `eps`.
    pub fn oue(k: u64, eps: f64) -> Result<Self, ParamError> {
        crate::error::check_epsilon(eps)?;
        let (p, q) = oue_params(eps);
        Self::with_params(k, p, q)
    }

    /// Creates a UE client with explicit `(p, q)`.
    pub fn with_params(k: u64, p: f64, q: f64) -> Result<Self, ParamError> {
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let params = PerturbParams::new(p, q)?;
        let keep = Bernoulli::new(p).expect("validated p");
        let noise = Bernoulli::new(q).expect("validated q");
        Ok(Self {
            k: k as usize,
            params,
            keep,
            noise,
        })
    }

    /// Domain size.
    pub fn k(&self) -> u64 {
        self.k as u64
    }

    /// The `(p, q)` pair in use.
    pub fn params(&self) -> PerturbParams {
        self.params
    }

    /// The ε-LDP level induced by `(p, q)`.
    pub fn epsilon(&self) -> f64 {
        self.params.epsilon_unary()
    }

    /// Encodes and perturbs `value` into a `k`-bit report.
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn perturb<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> BitVec {
        assert!((value as usize) < self.k, "value {value} outside domain");
        let mut bits = BitVec::zeros(self.k);
        self.perturb_into(value, rng, &mut bits);
        bits
    }

    /// Perturbs into a caller-provided buffer (cleared first), avoiding the
    /// allocation on hot paths.
    pub fn perturb_into<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R, bits: &mut BitVec) {
        assert_eq!(bits.len(), self.k, "buffer length mismatch");
        assert!((value as usize) < self.k, "value {value} outside domain");
        bits.clear();
        let v = value as usize;
        let q = self.params.q;
        if q > 0.0 && q < SPARSE_Q_THRESHOLD {
            // Geometric skipping over all k positions; the true bit's
            // position is overwritten afterwards, so a hit there is ignored.
            let hits = SparseHits::new(q, self.k as u64, rng).expect("q in (0, 1) checked above");
            for i in hits {
                bits.set(i as usize, true);
            }
            bits.set(v, false);
        } else if q > 0.0 {
            for i in 0..self.k {
                if i != v && self.noise.sample(rng) {
                    bits.set(i, true);
                }
            }
        }
        bits.set(v, self.keep.sample(rng));
    }
}

/// The UE aggregation server.
#[derive(Debug, Clone)]
pub struct UeServer {
    k: usize,
    params: PerturbParams,
    n: u64,
    counts: Vec<u64>,
}

impl UeServer {
    /// Creates a server matching a client's `(p, q)` over `[0, k)`.
    pub fn new(k: u64, params: PerturbParams) -> Result<Self, ParamError> {
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        Ok(Self {
            k: k as usize,
            params,
            n: 0,
            counts: vec![0; k as usize],
        })
    }

    /// Ingests one report.
    ///
    /// # Panics
    /// Panics if the report length differs from `k`.
    pub fn ingest(&mut self, bits: &BitVec) {
        assert_eq!(bits.len(), self.k, "report length mismatch");
        for i in bits.iter_ones() {
            self.counts[i] += 1;
        }
        self.n += 1;
    }

    /// Number of ingested reports.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Estimates the k-bin histogram with Eq. (1).
    pub fn estimate(&self) -> Vec<f64> {
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        frequency_estimates(&counts, self.n as f64, self.params.p, self.params.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::single_variance_approx;
    use ldp_rand::derive_rng;

    #[test]
    fn constructors_validate() {
        assert!(UeClient::sue(1, 1.0).is_err());
        assert!(UeClient::sue(10, 0.0).is_err());
        assert!(UeClient::with_params(10, 0.5, 0.5).is_err());
    }

    #[test]
    fn sue_epsilon_roundtrips() {
        for &eps in &[0.5, 1.0, 3.0] {
            let c = UeClient::sue(50, eps).unwrap();
            assert!((c.epsilon() - eps).abs() < 1e-9);
        }
    }

    #[test]
    fn oue_epsilon_roundtrips() {
        for &eps in &[0.5, 1.0, 3.0] {
            let c = UeClient::oue(50, eps).unwrap();
            assert!((c.epsilon() - eps).abs() < 1e-9);
        }
    }

    #[test]
    fn perturb_bit_rates_match_p_and_q() {
        // eps=2 OUE has q ≈ 0.119 (sparse path); SUE eps=1 has q ≈ 0.38
        // (dense path). Check both paths produce the advertised rates.
        for (client, seed) in [
            (UeClient::oue(40, 2.0).unwrap(), 320u64),
            (UeClient::sue(40, 1.0).unwrap(), 321),
        ] {
            let mut rng = derive_rng(seed, 0);
            let n = 40_000;
            let v = 7u64;
            let mut one_kept = 0usize;
            let mut zero_flipped = 0usize;
            for _ in 0..n {
                let bits = client.perturb(v, &mut rng);
                if bits.get(v as usize) {
                    one_kept += 1;
                }
                if bits.get(0) {
                    zero_flipped += 1;
                }
            }
            let p_hat = one_kept as f64 / n as f64;
            let q_hat = zero_flipped as f64 / n as f64;
            let pp = client.params();
            let ptol = 5.0 * (pp.p * (1.0 - pp.p) / n as f64).sqrt();
            let qtol = 5.0 * (pp.q * (1.0 - pp.q) / n as f64).sqrt();
            assert!((p_hat - pp.p).abs() < ptol, "p {p_hat} vs {}", pp.p);
            assert!((q_hat - pp.q).abs() < qtol, "q {q_hat} vs {}", pp.q);
        }
    }

    #[test]
    fn perturb_into_reuses_buffer() {
        let client = UeClient::oue(30, 1.0).unwrap();
        let mut rng = derive_rng(322, 0);
        let mut buf = BitVec::zeros(30);
        client.perturb_into(5, &mut rng, &mut buf);
        let first = buf.clone();
        client.perturb_into(6, &mut rng, &mut buf);
        // The buffer is fully overwritten (no stale bits from value 5
        // guaranteed by clear); just sanity-check it's usable twice.
        assert_eq!(buf.len(), 30);
        let _ = first;
    }

    fn end_to_end(client: UeClient, seed: u64) {
        let k = client.k();
        let n = 30_000usize;
        let mut server = UeServer::new(k, client.params()).unwrap();
        let mut rng = derive_rng(seed, 0);
        let weights: Vec<f64> = (0..k).map(|v| ((v % 5) + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let truth: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let alias = ldp_rand::AliasTable::new(&weights).unwrap();
        for _ in 0..n {
            let v = alias.sample(&mut rng) as u64;
            server.ingest(&client.perturb(v, &mut rng));
        }
        let est = server.estimate();
        let pp = client.params();
        let v_star = single_variance_approx(n as f64, pp.p, pp.q);
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            let tol = 6.0 * v_star.sqrt();
            assert!((e - t).abs() < tol, "v={v}: {e} vs {t} (tol {tol})");
        }
    }

    #[test]
    fn sue_end_to_end_accuracy() {
        end_to_end(UeClient::sue(25, 1.0).unwrap(), 323);
    }

    #[test]
    fn oue_end_to_end_accuracy() {
        end_to_end(UeClient::oue(25, 1.0).unwrap(), 324);
    }

    #[test]
    fn oue_beats_sue_variance() {
        // The whole point of OUE: lower V* at equal eps.
        for &eps in &[1.0, 2.0, 4.0] {
            let (ps, qs) = crate::params::sue_params(eps);
            let (po, qo) = crate::params::oue_params(eps);
            let vs = single_variance_approx(1000.0, ps, qs);
            let vo = single_variance_approx(1000.0, po, qo);
            assert!(vo <= vs + 1e-12, "eps={eps}: OUE {vo} vs SUE {vs}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn server_rejects_wrong_length() {
        let mut server = UeServer::new(10, PerturbParams::new(0.7, 0.2).unwrap()).unwrap();
        server.ingest(&BitVec::zeros(9));
    }
}
