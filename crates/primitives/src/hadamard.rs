//! Hadamard Response (Acharya, Sun & Zhang, AISTATS 2019) — the
//! communication-efficient one-shot oracle cited as \[2\] by the paper.
//!
//! Each value `v` is assigned the nonzero Hadamard row `c_v = v + 1` of the
//! `K×K` Sylvester matrix (`K` the smallest power of two `> k`). The user
//! reports a single index `j ∈ [K]`, drawn to favour the `+1` entries of
//! their row: `Pr[j] = 2p/K` if `H[c_v][j] = +1`, else `2(1−p)/K`, with
//! `p = e^ε/(e^ε + 1)`. Every output's likelihood ratio across inputs is at
//! most `p/(1−p) = e^ε`, so the mechanism is ε-LDP with `log2 K` bits of
//! communication.
//!
//! Aggregation is where Hadamard structure shines: with `h` the histogram
//! of received indices, the support count of *every* value is read off one
//! fast Walsh–Hadamard transform — `C(v) = (n + ĥ[c_v])/2` where
//! `ĥ = FWHT(h)` — O(K log K) total instead of O(n·k).

use crate::error::{check_epsilon, ParamError};
use crate::estimator::frequency_estimate;
use ldp_rand::{uniform_u64, Bernoulli};
use rand::RngCore;

/// The Hadamard Response mechanism over `[0, k)`.
#[derive(Debug, Clone)]
pub struct HadamardResponse {
    k: u64,
    /// Matrix order: smallest power of two strictly greater than `k`.
    order: u64,
    p: f64,
    keep: Bernoulli,
}

/// Whether the Sylvester-Hadamard entry `H[r][c]` is `+1`:
/// `popcount(r & c)` even.
#[inline]
fn plus(r: u64, c: u64) -> bool {
    (r & c).count_ones().is_multiple_of(2)
}

impl HadamardResponse {
    /// Creates the mechanism at privacy level `eps` over `k ≥ 2` values.
    pub fn new(k: u64, eps: f64) -> Result<Self, ParamError> {
        check_epsilon(eps)?;
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        // Need k+1 distinct nonzero rows, i.e. order > k.
        let order = (k + 1).next_power_of_two();
        let e = eps.exp();
        let p = e / (e + 1.0);
        let keep = Bernoulli::new(p).expect("p in (0,1)");
        Ok(Self { k, order, p, keep })
    }

    /// Domain size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The Hadamard order `K` (a power of two, `> k`).
    pub fn order(&self) -> u64 {
        self.order
    }

    /// Retention probability `p = e^ε/(e^ε+1)`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Communication bits per report: `log2 K`.
    pub fn comm_bits(&self) -> u32 {
        self.order.trailing_zeros()
    }

    /// The Hadamard row assigned to `value`.
    #[inline]
    pub fn row_of(&self, value: u64) -> u64 {
        debug_assert!(value < self.k);
        value + 1
    }

    /// Produces one ε-LDP report: an index in `[0, K)`.
    ///
    /// Sampling is exact and O(1): choose the `+1` half of the row with
    /// probability `p`, then a uniform member of that half. Each half has
    /// exactly `K/2` indices for every nonzero row.
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn perturb<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> u64 {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        let row = self.row_of(value);
        let want_plus = self.keep.sample(rng);
        // Rejection-free enumeration: the m-th element of the +1 (or −1)
        // half. Low bit of `row` is set for odd rows... structure varies, so
        // draw uniformly within the half by index walking: pick a uniform
        // j0 in [0, K/2) and map it through the half's enumeration.
        // Simpler and still O(1) expected: rejection sample (accept prob
        // 1/2 per draw).
        loop {
            let j = uniform_u64(rng, self.order);
            if plus(row, j) == want_plus {
                return j;
            }
        }
    }

    /// The exact transition probability `Pr[report = j | value]`.
    pub fn transition(&self, value: u64, j: u64) -> f64 {
        assert!(value < self.k && j < self.order);
        let half = self.order as f64 / 2.0;
        if plus(self.row_of(value), j) {
            self.p / half
        } else {
            (1.0 - self.p) / half
        }
    }
}

/// The aggregation server: accumulates the report histogram and estimates
/// all `k` frequencies from one Walsh–Hadamard transform.
#[derive(Debug, Clone)]
pub struct HrServer {
    mech: HadamardResponse,
    histogram: Vec<i64>,
    n: u64,
}

impl HrServer {
    /// Creates a server matching a client's configuration.
    pub fn new(k: u64, eps: f64) -> Result<Self, ParamError> {
        let mech = HadamardResponse::new(k, eps)?;
        let order = mech.order as usize;
        Ok(Self {
            mech,
            histogram: vec![0; order],
            n: 0,
        })
    }

    /// Ingests one report index.
    ///
    /// # Panics
    /// Panics if the index is out of range.
    pub fn ingest(&mut self, j: u64) {
        self.histogram[j as usize] += 1;
        self.n += 1;
    }

    /// Number of ingested reports.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Estimates the k-bin histogram: one FWHT then Eq. (1) per value with
    /// `(p, q) = (p, 1/2)`.
    pub fn estimate(&self) -> Vec<f64> {
        let mut spectrum = self.histogram.clone();
        fwht(&mut spectrum);
        let nf = self.n as f64;
        (0..self.mech.k)
            .map(|v| {
                let row = self.mech.row_of(v) as usize;
                let support = (nf + spectrum[row] as f64) / 2.0;
                frequency_estimate(support, nf, self.mech.p, 0.5)
            })
            .collect()
    }
}

/// In-place fast Walsh–Hadamard transform (Sylvester ordering, unnormalized:
/// applying it twice multiplies by the length).
pub fn fwht(data: &mut [i64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT length must be a power of two");
    let mut h = 1;
    while h < n {
        for block in (0..n).step_by(h * 2) {
            for i in block..block + h {
                let (a, b) = (data[i], data[i + h]);
                data[i] = a + b;
                data[i + h] = a - b;
            }
        }
        h *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::{derive_rng, AliasTable};

    #[test]
    fn constructor_validates() {
        assert!(HadamardResponse::new(1, 1.0).is_err());
        assert!(HadamardResponse::new(10, 0.0).is_err());
        assert!(HrServer::new(10, -1.0).is_err());
    }

    #[test]
    fn order_is_smallest_power_of_two_above_k() {
        assert_eq!(HadamardResponse::new(3, 1.0).unwrap().order(), 4);
        assert_eq!(HadamardResponse::new(4, 1.0).unwrap().order(), 8);
        assert_eq!(HadamardResponse::new(96, 1.0).unwrap().order(), 128);
        assert_eq!(HadamardResponse::new(360, 1.0).unwrap().order(), 512);
    }

    #[test]
    fn comm_bits_is_log_order() {
        let hr = HadamardResponse::new(360, 1.0).unwrap();
        assert_eq!(hr.comm_bits(), 9);
    }

    #[test]
    fn transition_is_a_distribution_with_exact_ldp_ratio() {
        let hr = HadamardResponse::new(13, 1.7).unwrap();
        for v in 0..13u64 {
            let total: f64 = (0..hr.order()).map(|j| hr.transition(v, j)).sum();
            assert!((total - 1.0).abs() < 1e-9, "v={v} total {total}");
        }
        // The worst-case ratio across any pair of inputs at any output is
        // p/(1-p) = e^eps.
        let mut max_ratio: f64 = 0.0;
        for j in 0..hr.order() {
            let probs: Vec<f64> = (0..13).map(|v| hr.transition(v, j)).collect();
            let hi = probs.iter().cloned().fold(f64::MIN, f64::max);
            let lo = probs.iter().cloned().fold(f64::MAX, f64::min);
            max_ratio = max_ratio.max(hi / lo);
        }
        assert!(
            (max_ratio.ln() - 1.7).abs() < 1e-9,
            "ln ratio {}",
            max_ratio.ln()
        );
    }

    #[test]
    fn rows_are_half_balanced_and_orthogonal() {
        let hr = HadamardResponse::new(20, 1.0).unwrap();
        let order = hr.order();
        for v in 0..20u64 {
            let plus_count = (0..order).filter(|&j| plus(hr.row_of(v), j)).count() as u64;
            assert_eq!(plus_count, order / 2, "row {v} unbalanced");
        }
        // Orthogonality: two distinct rows agree on exactly half the
        // columns — the property that cancels cross-terms in estimation.
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                let agree = (0..order)
                    .filter(|&j| plus(hr.row_of(u), j) == plus(hr.row_of(v), j))
                    .count() as u64;
                assert_eq!(agree, order / 2, "rows {u},{v}");
            }
        }
    }

    #[test]
    fn fwht_involution() {
        let mut data: Vec<i64> = vec![3, -1, 4, 1, -5, 9, 2, -6];
        let original = data.clone();
        fwht(&mut data);
        fwht(&mut data);
        for (a, &b) in data.iter().zip(&original) {
            assert_eq!(*a, b * 8);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fwht_rejects_odd_length() {
        let mut data = vec![1i64, 2, 3];
        fwht(&mut data);
    }

    #[test]
    fn perturb_matches_transition_empirically() {
        let hr = HadamardResponse::new(6, 1.2).unwrap();
        let mut rng = derive_rng(1100, 0);
        let n = 200_000;
        let v = 3u64;
        let mut counts = vec![0u64; hr.order() as usize];
        for _ in 0..n {
            counts[hr.perturb(v, &mut rng) as usize] += 1;
        }
        for (j, &c) in counts.iter().enumerate() {
            let expected = hr.transition(v, j as u64) * n as f64;
            let dev = (c as f64 - expected).abs() / expected.max(1.0);
            assert!(dev < 0.1, "j={j}: {c} vs {expected}");
        }
    }

    #[test]
    fn end_to_end_estimation_accuracy() {
        let k = 24u64;
        let eps = 2.0;
        let n = 60_000;
        let mut server = HrServer::new(k, eps).unwrap();
        let client = HadamardResponse::new(k, eps).unwrap();
        let weights: Vec<f64> = (0..k).map(|v| (v % 4 + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let truth: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let alias = AliasTable::new(&weights).unwrap();
        let mut rng = derive_rng(1101, 0);
        for _ in 0..n {
            let v = alias.sample(&mut rng) as u64;
            server.ingest(client.perturb(v, &mut rng));
        }
        let est = server.estimate();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            assert!((e - t).abs() < 0.02, "v={v}: {e} vs {t}");
        }
        assert_eq!(server.n(), n);
    }
}
