//! One-shot LDP frequency-estimation protocols and their estimators.
//!
//! This crate reproduces §2.3 of the LOLOHA paper (Arcolezi et al., EDBT
//! 2023): the three classic families of locally differentially private
//! frequency oracles that every longitudinal protocol in this workspace is
//! built from.
//!
//! * [`Grr`] — Generalized Randomized Response over a `k`-ary domain.
//! * [`LhClient`]/[`LhServer`] — Local Hashing (BLH with `g = 2`, OLH with
//!   `g = ⌊e^ε + 1⌉`): hash into a reduced domain, then GRR over it.
//! * [`UeClient`]/[`UeServer`] — Unary Encoding (SUE, the RAPPOR encoding,
//!   and OUE, the optimized variant).
//! * [`HadamardResponse`]/[`HrServer`] — the communication-efficient
//!   Hadamard Response oracle cited as \[2\], with an O(K log K)
//!   Walsh–Hadamard aggregation server (extension).
//!
//! It also hosts the estimator/variance toolbox shared by the longitudinal
//! crates:
//!
//! * Eq. (1): [`estimator::frequency_estimates`] — the unbiased one-round
//!   estimator.
//! * Eq. (3): [`estimator::chained_frequency_estimates`] — the two-round
//!   (PRR ∘ IRR) estimator.
//! * Eq. (4)/(5): [`estimator::chained_variance`] /
//!   [`estimator::chained_variance_approx`].
//!
//! All mechanisms expose their exact transition probabilities so tests can
//! verify the ε-LDP inequality directly on the transition matrix rather
//! than trusting the algebra.
//!
//! Finally, the crate hosts the workspace's single durable-format
//! substrate: [`codec`], the versioned checkpoint container (magic +
//! version + fingerprint header, length-prefixed framing, FNV-1a checksum
//! trailer, atomic file replacement) that `loloha::persist`,
//! `ldp_ingest::store`, and `ldp_client::store` all encode through. The
//! normative byte-level spec is `docs/CHECKPOINT_FORMAT.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod codec;
pub mod error;
pub mod estimator;
pub mod grr;
pub mod hadamard;
pub mod lh;
pub mod params;
pub mod ue;

pub use bitvec::BitVec;
pub use codec::{CodecError, CodecReader, CodecWriter};
pub use error::ParamError;
pub use grr::Grr;
pub use hadamard::{HadamardResponse, HrServer};
pub use lh::{LhClient, LhMode, LhReport, LhServer};
pub use params::PerturbParams;
pub use ue::{UeClient, UeServer};
