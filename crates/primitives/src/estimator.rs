//! The unbiased frequency estimators and variance formulas of the paper.
//!
//! * Eq. (1): one round of sanitization with parameters `(p, q)`.
//! * Eq. (3): two chained rounds — PRR `(p1, q1)` then IRR `(p2, q2)`.
//! * Eq. (4): exact variance of the chained estimator at frequency `f`.
//! * Eq. (5): the approximate variance `V*` (Eq. (4) at `f = 0`), the
//!   quantity plotted in the paper's Fig. 2.

/// Eq. (1): unbiased estimate of one value's frequency from its support
/// count. `count` is `C(v)`, `n` the number of users.
#[inline]
pub fn frequency_estimate(count: f64, n: f64, p: f64, q: f64) -> f64 {
    (count - n * q) / (n * (p - q))
}

/// Eq. (1) applied to a whole histogram of support counts.
pub fn frequency_estimates(counts: &[f64], n: f64, p: f64, q: f64) -> Vec<f64> {
    counts
        .iter()
        .map(|&c| frequency_estimate(c, n, p, q))
        .collect()
}

/// Eq. (3): unbiased estimate under two rounds of sanitization.
///
/// `p1, q1` are the PRR (memoized) parameters, `p2, q2` the IRR (fresh)
/// parameters. Derived by inverting the composition of the two linear
/// response maps.
#[inline]
pub fn chained_frequency_estimate(count: f64, n: f64, p1: f64, q1: f64, p2: f64, q2: f64) -> f64 {
    (count - n * (q1 * (p2 - q2) + q2)) / (n * (p1 - q1) * (p2 - q2))
}

/// Eq. (3) applied to a whole histogram of support counts.
pub fn chained_frequency_estimates(
    counts: &[f64],
    n: f64,
    p1: f64,
    q1: f64,
    p2: f64,
    q2: f64,
) -> Vec<f64> {
    counts
        .iter()
        .map(|&c| chained_frequency_estimate(c, n, p1, q1, p2, q2))
        .collect()
}

/// Eq. (4): the exact variance of the chained estimator for a value with
/// true frequency `f`.
pub fn chained_variance(f: f64, n: f64, p1: f64, q1: f64, p2: f64, q2: f64) -> f64 {
    let gamma = f * (2.0 * p1 * p2 - 2.0 * p1 * q2 + 2.0 * q2 - 1.0) + p2 * q1 + q2 * (1.0 - q1);
    gamma * (1.0 - gamma) / (n * (p1 - q1).powi(2) * (p2 - q2).powi(2))
}

/// Eq. (5): the approximate variance `V*` — Eq. (4) evaluated at `f = 0`.
pub fn chained_variance_approx(n: f64, p1: f64, q1: f64, p2: f64, q2: f64) -> f64 {
    chained_variance(0.0, n, p1, q1, p2, q2)
}

/// The one-round approximate variance `q(1−q) / (n (p−q)²)` (Wang et al.,
/// 2017) — the single-round analogue of Eq. (5).
pub fn single_variance_approx(n: f64, p: f64, q: f64) -> f64 {
    q * (1.0 - q) / (n * (p - q).powi(2))
}

/// Converts raw integer support counts into `f64` (helper for servers).
pub fn counts_to_f64(counts: &[u64]) -> Vec<f64> {
    counts.iter().map(|&c| c as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_inverts_the_expected_count() {
        // If f is the true frequency, E[C] = n (f p + (1-f) q); plugging the
        // expectation back into Eq. (1) must return f exactly.
        let (n, p, q) = (10_000.0, 0.7, 0.2);
        for &f in &[0.0, 0.1, 0.5, 1.0] {
            let expected_count = n * (f * p + (1.0 - f) * q);
            let est = frequency_estimate(expected_count, n, p, q);
            assert!((est - f).abs() < 1e-12, "f={f} est={est}");
        }
    }

    #[test]
    fn eq3_inverts_the_expected_count() {
        // Under PRR∘IRR the per-user report probability for the true value's
        // support is ps = p1 p2 + (1-p1) q2 and for others qs = q1 p2 +
        // (1-q1) q2 (unary view). E[C] = n (f ps + (1-f) qs).
        let (n, p1, q1, p2, q2) = (5_000.0, 0.9, 0.3, 0.8, 0.25);
        let ps = p1 * p2 + (1.0 - p1) * q2;
        let qs = q1 * p2 + (1.0 - q1) * q2;
        for &f in &[0.0, 0.25, 0.9] {
            let expected_count = n * (f * ps + (1.0 - f) * qs);
            let est = chained_frequency_estimate(expected_count, n, p1, q1, p2, q2);
            assert!((est - f).abs() < 1e-12, "f={f} est={est}");
        }
    }

    #[test]
    fn eq3_reduces_to_eq1_with_identity_second_round() {
        // With p2 = 1, q2 = 0 the IRR is the identity channel and Eq. (3)
        // must coincide with Eq. (1).
        let (n, p1, q1) = (1_000.0, 0.75, 0.1);
        for count in [0.0, 100.0, 900.0] {
            let a = chained_frequency_estimate(count, n, p1, q1, 1.0, 0.0);
            let b = frequency_estimate(count, n, p1, q1);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn eq4_at_f0_equals_eq5() {
        let (n, p1, q1, p2, q2) = (10_000.0, 0.8, 0.2, 0.7, 0.3);
        assert_eq!(
            chained_variance(0.0, n, p1, q1, p2, q2),
            chained_variance_approx(n, p1, q1, p2, q2)
        );
    }

    #[test]
    fn variance_scales_inversely_with_n() {
        let (p1, q1, p2, q2) = (0.8, 0.2, 0.7, 0.3);
        let v1 = chained_variance_approx(1_000.0, p1, q1, p2, q2);
        let v2 = chained_variance_approx(2_000.0, p1, q1, p2, q2);
        assert!((v1 / v2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_variance_matches_known_grr_value() {
        // GRR at eps=ln(3), k=2: p = 3/4, q = 1/4, V* = (1/4·3/4)/(n·(1/2)^2).
        let v = single_variance_approx(100.0, 0.75, 0.25);
        assert!((v - (0.25 * 0.75) / (100.0 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn chained_variance_is_positive_for_valid_params() {
        for &f in &[0.0, 0.3, 0.6] {
            let v = chained_variance(f, 500.0, 0.9, 0.1, 0.8, 0.2);
            assert!(v > 0.0);
        }
    }
}
