//! Local Hashing protocols (§2.3.2): BLH (`g = 2`) and OLH (`g = ⌊e^ε+1⌉`).
//!
//! Each user samples a hash function `H : [k] → [g]` from a universal family,
//! hashes their value, perturbs the hashed cell with GRR over `[g]`, and
//! reports `⟨H, y⟩`. The server counts, for every domain value `v`, how many
//! users reported a cell that `v` hashes to (`support`), then applies Eq. (1)
//! with `q' = 1/g`.

use crate::error::ParamError;
use crate::estimator::frequency_estimates;
use crate::grr::Grr;
use crate::params::olh_g;
use ldp_hash::{CarterWegman, Preimages, SeededHash, UniversalFamily};
use rand::RngCore;

/// How the reduced domain size `g` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LhMode {
    /// Binary LH: `g = 2`.
    Binary,
    /// Optimal LH: `g = ⌊e^ε + 1⌉` (Wang et al., 2017).
    Optimal,
    /// A caller-chosen `g ≥ 2`.
    Custom(u32),
}

impl LhMode {
    /// Resolves the concrete `g` for privacy level `eps`.
    pub fn g(&self, eps: f64) -> u32 {
        match *self {
            LhMode::Binary => 2,
            LhMode::Optimal => olh_g(eps),
            LhMode::Custom(g) => g,
        }
    }
}

/// A one-shot LH client: samples a fresh hash function per report.
#[derive(Debug, Clone)]
pub struct LhClient<F: UniversalFamily> {
    family: F,
    grr: Grr,
    k: u64,
}

/// A single LH report: the sampled hash function plus the perturbed cell.
#[derive(Debug, Clone)]
pub struct LhReport<H> {
    /// The hash function the user sampled (sent in the clear).
    pub hash: H,
    /// The GRR-perturbed hash cell in `[0, g)`.
    pub cell: u32,
}

impl<F: UniversalFamily> LhClient<F> {
    /// Creates a client over domain `[0, k)` using `family` (which fixes `g`)
    /// at privacy level `eps`.
    pub fn new(family: F, k: u64, eps: f64) -> Result<Self, ParamError> {
        let g = family.g();
        if g < 2 {
            return Err(ParamError::InvalidG { g });
        }
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let grr = Grr::new(g as u64, eps)?;
        Ok(Self { family, grr, k })
    }

    /// Domain size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Reduced domain size `g`.
    pub fn g(&self) -> u32 {
        self.family.g()
    }

    /// The GRR retention probability over the reduced domain.
    pub fn p(&self) -> f64 {
        self.grr.p()
    }

    /// Produces one ε-LDP report for `value`.
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn report<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> LhReport<F::Hash> {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        let hash = self.family.sample(rng);
        let x = hash.hash(value);
        let cell = self.grr.perturb(x as u64, rng) as u32;
        LhReport { hash, cell }
    }
}

/// Convenience constructor: Binary LH over the Carter–Wegman family.
pub fn blh_client(k: u64, eps: f64) -> Result<LhClient<CarterWegman>, ParamError> {
    let family = CarterWegman::new(2).expect("g = 2 is valid");
    LhClient::new(family, k, eps)
}

/// Convenience constructor: Optimal LH over the Carter–Wegman family.
pub fn olh_client(k: u64, eps: f64) -> Result<LhClient<CarterWegman>, ParamError> {
    let g = olh_g(eps);
    let family = CarterWegman::new(g).ok_or(ParamError::InvalidG { g })?;
    LhClient::new(family, k, eps)
}

/// The LH aggregation server: accumulates support counts and estimates the
/// histogram with Eq. (1) using `q' = 1/g`.
#[derive(Debug, Clone)]
pub struct LhServer {
    k: u64,
    g: u32,
    p: f64,
    n: u64,
    counts: Vec<u64>,
}

impl LhServer {
    /// Creates a server for domain `[0, k)`, reduced domain `g`, level `eps`.
    pub fn new(k: u64, g: u32, eps: f64) -> Result<Self, ParamError> {
        if g < 2 {
            return Err(ParamError::InvalidG { g });
        }
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let grr = Grr::new(g as u64, eps)?;
        Ok(Self {
            k,
            g,
            p: grr.p(),
            n: 0,
            counts: vec![0; k as usize],
        })
    }

    /// Ingests one report: every domain value hashing to the reported cell
    /// gains one unit of support.
    pub fn ingest<H: SeededHash>(&mut self, report: &LhReport<H>) {
        assert_eq!(report.hash.g(), self.g, "report g mismatch");
        let pre = Preimages::build(&report.hash, self.k);
        for &v in pre.cell(report.cell) {
            self.counts[v as usize] += 1;
        }
        self.n += 1;
    }

    /// Number of ingested reports.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Estimates the k-bin histogram (Eq. (1) with `q' = 1/g`).
    pub fn estimate(&self) -> Vec<f64> {
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        frequency_estimates(&counts, self.n as f64, self.p, 1.0 / self.g as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::single_variance_approx;
    use ldp_rand::derive_rng;

    #[test]
    fn constructors_validate() {
        assert!(blh_client(1, 1.0).is_err());
        assert!(blh_client(10, 0.0).is_err());
        assert!(LhServer::new(10, 1, 1.0).is_err());
        assert!(LhServer::new(1, 2, 1.0).is_err());
    }

    #[test]
    fn olh_g_grows_with_eps() {
        assert_eq!(olh_client(100, 0.5).unwrap().g(), 3);
        assert_eq!(olh_client(100, 3.0).unwrap().g(), 21);
    }

    fn end_to_end(client_g: LhMode, eps: f64, seed: u64) -> (Vec<f64>, Vec<f64>, f64) {
        let k = 20u64;
        let n = 30_000usize;
        let g = client_g.g(eps);
        let family = CarterWegman::new(g).unwrap();
        let client = LhClient::new(family, k, eps).unwrap();
        let mut server = LhServer::new(k, g, eps).unwrap();
        let mut rng = derive_rng(seed, 0);
        // Skewed ground truth: value v with weight (v+1).
        let weights: Vec<f64> = (0..k).map(|v| (v + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let truth: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let alias = ldp_rand::AliasTable::new(&weights).unwrap();
        for _ in 0..n {
            let v = alias.sample(&mut rng) as u64;
            let report = client.report(v, &mut rng);
            server.ingest(&report);
        }
        let est = server.estimate();
        let v_star = single_variance_approx(n as f64, client.p(), 1.0 / g as f64);
        (est, truth, v_star)
    }

    #[test]
    fn blh_estimates_are_accurate() {
        let (est, truth, v_star) = end_to_end(LhMode::Binary, 1.0, 310);
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            let tol = 6.0 * v_star.sqrt();
            assert!((e - t).abs() < tol, "v={v}: {e} vs {t} (tol {tol})");
        }
    }

    #[test]
    fn olh_estimates_are_accurate() {
        let (est, truth, v_star) = end_to_end(LhMode::Optimal, 2.0, 311);
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            let tol = 6.0 * v_star.sqrt();
            assert!((e - t).abs() < tol, "v={v}: {e} vs {t} (tol {tol})");
        }
    }

    #[test]
    fn estimates_roughly_sum_to_one() {
        let (est, _, _) = end_to_end(LhMode::Optimal, 1.0, 312);
        let sum: f64 = est.iter().sum();
        assert!((sum - 1.0).abs() < 0.2, "sum {sum}");
    }

    #[test]
    #[should_panic(expected = "g mismatch")]
    fn mismatched_g_report_panics() {
        let client = blh_client(10, 1.0).unwrap();
        let mut server = LhServer::new(10, 4, 1.0).unwrap();
        let mut rng = derive_rng(313, 0);
        let report = client.report(0, &mut rng);
        server.ingest(&report);
    }
}
