//! Perturbation parameter pairs `(p, q)` and the ε they induce.
//!
//! Every protocol in the paper is characterized by a retention probability
//! `p` (a "1" or the true symbol survives) and a noise probability `q` (a
//! "0" flips up, or a different symbol is emitted). The pair determines both
//! the privacy level and the estimator; this module is the single home for
//! that algebra.

use crate::error::ParamError;

/// A validated `(p, q)` perturbation pair with `p ≠ q`, both in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbParams {
    /// Probability that the signal symbol/bit is retained.
    pub p: f64,
    /// Probability that a non-signal symbol/bit is emitted.
    pub q: f64,
}

impl PerturbParams {
    /// Validates and wraps a `(p, q)` pair.
    pub fn new(p: f64, q: f64) -> Result<Self, ParamError> {
        let valid = p.is_finite()
            && q.is_finite()
            && (0.0..=1.0).contains(&p)
            && (0.0..=1.0).contains(&q)
            && p != q;
        if valid {
            Ok(Self { p, q })
        } else {
            Err(ParamError::InvalidProbability { p, q })
        }
    }

    /// The ε-LDP level of an independent-bit mechanism with these
    /// parameters: `ε = ln(p(1−q) / ((1−p)q))` (Wang et al., 2017).
    ///
    /// Returns `+∞` when `q = 0` or `p = 1` (a noiseless channel).
    pub fn epsilon_unary(&self) -> f64 {
        ((self.p * (1.0 - self.q)) / ((1.0 - self.p) * self.q)).ln()
    }

    /// The sensitivity denominator `p − q` used by every estimator.
    pub fn gap(&self) -> f64 {
        self.p - self.q
    }
}

/// GRR parameters over a `k`-ary domain at level ε:
/// `p = e^ε / (e^ε + k − 1)`, `q = (1 − p)/(k − 1) = 1 / (e^ε + k − 1)`.
pub fn grr_params(eps: f64, k: u64) -> (f64, f64) {
    let a = eps.exp();
    let p = a / (a + k as f64 - 1.0);
    let q = 1.0 / (a + k as f64 - 1.0);
    (p, q)
}

/// SUE (RAPPOR encoding) parameters at level ε:
/// `p = e^{ε/2} / (e^{ε/2} + 1)`, `q = 1 − p`.
pub fn sue_params(eps: f64) -> (f64, f64) {
    let a = (eps / 2.0).exp();
    let p = a / (a + 1.0);
    (p, 1.0 - p)
}

/// OUE parameters at level ε: `p = 1/2`, `q = 1 / (e^ε + 1)`.
pub fn oue_params(eps: f64) -> (f64, f64) {
    (0.5, 1.0 / (eps.exp() + 1.0))
}

/// The optimal LH reduced-domain size: `g = ⌊e^ε + 1⌉` (Wang et al., 2017),
/// never below 2.
pub fn olh_g(eps: f64) -> u32 {
    let g = (eps.exp() + 1.0).round();
    if g < 2.0 {
        2
    } else if g > u32::MAX as f64 {
        u32::MAX
    } else {
        g as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_pairs() {
        assert!(PerturbParams::new(0.5, 0.5).is_err());
        assert!(PerturbParams::new(1.2, 0.1).is_err());
        assert!(PerturbParams::new(0.5, -0.1).is_err());
        assert!(PerturbParams::new(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn grr_params_satisfy_ratio() {
        for &eps in &[0.1, 0.5, 1.0, 3.0] {
            for &k in &[2u64, 10, 360, 1412] {
                let (p, q) = grr_params(eps, k);
                assert!((p / q - eps.exp()).abs() < 1e-9, "eps={eps} k={k}");
                // Total probability mass: p + (k-1) q = 1.
                assert!((p + (k as f64 - 1.0) * q - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sue_params_symmetric_and_correct_eps() {
        for &eps in &[0.5, 1.0, 2.0, 5.0] {
            let (p, q) = sue_params(eps);
            assert!((p + q - 1.0).abs() < 1e-12);
            let pp = PerturbParams::new(p, q).unwrap();
            assert!((pp.epsilon_unary() - eps).abs() < 1e-9, "eps={eps}");
        }
    }

    #[test]
    fn oue_params_correct_eps() {
        for &eps in &[0.5, 1.0, 2.0, 5.0] {
            let (p, q) = oue_params(eps);
            assert_eq!(p, 0.5);
            let pp = PerturbParams::new(p, q).unwrap();
            assert!((pp.epsilon_unary() - eps).abs() < 1e-9, "eps={eps}");
        }
    }

    #[test]
    fn olh_g_matches_paper_examples() {
        // e^1 + 1 ≈ 3.72 → 4; e^0.5 + 1 ≈ 2.65 → 3; tiny ε floors at 2.
        assert_eq!(olh_g(1.0), 4);
        assert_eq!(olh_g(0.5), 3);
        assert_eq!(olh_g(0.01), 2);
        assert_eq!(olh_g(3.0), 21);
    }

    #[test]
    fn epsilon_unary_infinite_for_noiseless() {
        let pp = PerturbParams::new(1.0, 0.25).unwrap();
        assert!(pp.epsilon_unary().is_infinite());
    }
}
