//! Golden-fixture pins for the LOLOHA client snapshot format.
//!
//! `tests/fixtures/` holds known-good snapshot files: the version-1 bytes
//! written before the unified codec (PR 3 era) and the current version-2
//! container. Any drift in either direction fails loudly here:
//!
//! * the v1 file must keep loading through the migration shim, and must
//!   decode to exactly the same client as the v2 file;
//! * re-encoding the decoded v2 fixture must reproduce its bytes —
//!   byte-stability is what makes checkpoint diffs meaningful;
//! * changing the on-disk layout without bumping the format version (and
//!   regenerating the fixture deliberately) is therefore impossible to
//!   merge unnoticed.

use loloha::{load_client, save_client};

fn fixture(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()))
}

#[test]
fn v1_fixture_still_loads_through_the_migration_shim() {
    let client = load_client(&fixture("loloha_client_v1.ckpt")).expect("v1 file must keep loading");
    // The fixture was captured from a g=4, k=50 client that reported
    // values {0, 7, 13, 49}; pin the semantic content, not just success.
    assert_eq!(client.k(), 50);
    assert_eq!(client.params().g(), 4);
    assert!(client.distinct_cells() >= 1);
}

#[test]
fn v2_fixture_reencodes_byte_stably() {
    let bytes = fixture("loloha_client_v2.ckpt");
    let client = load_client(&bytes).expect("current-version fixture must load");
    assert_eq!(
        save_client(&client),
        bytes,
        "re-encode drifted: the format changed without a version bump"
    );
}

#[test]
fn v1_and_v2_fixtures_decode_to_the_same_client() {
    let old = load_client(&fixture("loloha_client_v1.ckpt")).unwrap();
    let new = load_client(&fixture("loloha_client_v2.ckpt")).unwrap();
    assert_eq!(old.k(), new.k());
    assert_eq!(old.params(), new.params());
    assert_eq!(old.privacy_spent(), new.privacy_spent());
    for cell in 0..old.params().g() {
        assert_eq!(old.memoized_symbol(cell), new.memoized_symbol(cell));
    }
    // Migrating the old file yields exactly the new file.
    assert_eq!(save_client(&old), fixture("loloha_client_v2.ckpt"));
}
