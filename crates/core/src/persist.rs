//! Client-state persistence.
//!
//! Memoization is only a privacy mechanism if the memoized PRR state
//! *survives restarts*: a client that forgets its memo table re-randomizes
//! on the next report and silently degrades into the fresh-noise regime the
//! averaging attack breaks (§2.4). A real deployment therefore must persist
//! the client across sessions. This module provides a compact, versioned,
//! dependency-free binary encoding of [`LolohaClient`] state — hash
//! coefficients, budgets, memo table and accountant — with checked decoding
//! (every failure mode returns [`PersistError`], never a panic).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LLHA" | version u16 | g u32 | k u64 | eps_inf f64 | eps_first f64
//! | hash a u64 | hash b u64 | memo: g × u16 (u16::MAX = empty)
//! ```
//!
//! The accountant is reconstructed from the memo table (a cell is charged
//! iff it is memoized), so the two can never disagree.

use crate::client::LolohaClient;
use crate::params::LolohaParams;
use ldp_hash::CwHash;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"LLHA";
const VERSION: u16 = 1;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer is shorter than the fixed header or the declared layout.
    Truncated,
    /// The magic bytes do not match.
    BadMagic,
    /// The version is not supported by this build.
    UnsupportedVersion(u16),
    /// A decoded field is outside its domain (corrupt snapshot).
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::BadMagic => write!(f, "snapshot has wrong magic bytes"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "snapshot version {v} is not supported")
            }
            PersistError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
        }
    }
}

impl Error for PersistError {}

/// Serializes a client into a fresh byte buffer.
pub fn save_client(client: &LolohaClient<CwHash>) -> Vec<u8> {
    let params = client.params();
    let g = params.g();
    let (a, b) = client.hash_fn().parts();
    let mut out = Vec::with_capacity(4 + 2 + 4 + 8 + 8 + 8 + 8 + 8 + 2 * g as usize);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&g.to_le_bytes());
    out.extend_from_slice(&client.k().to_le_bytes());
    out.extend_from_slice(&params.eps_inf().to_le_bytes());
    out.extend_from_slice(&params.eps_first().to_le_bytes());
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
    for cell in 0..g {
        let sym = client.memoized_symbol(cell).unwrap_or(u16::MAX);
        out.extend_from_slice(&sym.to_le_bytes());
    }
    out
}

/// Restores a client from a snapshot produced by [`save_client`].
pub fn load_client(bytes: &[u8]) -> Result<LolohaClient<CwHash>, PersistError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u16::from_le_bytes(r.array()?);
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let g = u32::from_le_bytes(r.array()?);
    let k = u64::from_le_bytes(r.array()?);
    let eps_inf = f64::from_le_bytes(r.array()?);
    let eps_first = f64::from_le_bytes(r.array()?);
    let a = u64::from_le_bytes(r.array()?);
    let b = u64::from_le_bytes(r.array()?);
    let params = LolohaParams::with_g(g, eps_inf, eps_first)
        .map_err(|_| PersistError::Corrupt("invalid budgets"))?;
    let hash =
        CwHash::from_parts(a, b, g).ok_or(PersistError::Corrupt("invalid hash coefficients"))?;
    let mut client = LolohaClient::with_hash(hash, k, params)
        .map_err(|_| PersistError::Corrupt("invalid domain"))?;
    for cell in 0..g {
        let sym = u16::from_le_bytes(r.array()?);
        if sym != u16::MAX {
            if sym as u32 >= g {
                return Err(PersistError::Corrupt("memoized symbol out of range"));
            }
            client.restore_memo(cell, sym);
        }
    }
    Ok(client)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        Ok(self.take(N)?.try_into().expect("exact length"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_hash::CarterWegman;
    use ldp_rand::derive_rng;

    fn make_client(seed: u64) -> LolohaClient<CwHash> {
        let params = LolohaParams::with_g(4, 2.0, 1.0).unwrap();
        let family = CarterWegman::new(4).unwrap();
        let mut rng = derive_rng(seed, 0);
        let mut c = LolohaClient::new(&family, 50, params, &mut rng).unwrap();
        // Populate some memo state.
        for v in [0u64, 7, 13, 49] {
            let _ = c.report(v, &mut rng);
        }
        c
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let client = make_client(1000);
        let bytes = save_client(&client);
        let restored = load_client(&bytes).unwrap();
        assert_eq!(restored.k(), client.k());
        assert_eq!(restored.params(), client.params());
        assert_eq!(restored.privacy_spent(), client.privacy_spent());
        assert_eq!(restored.distinct_cells(), client.distinct_cells());
        for cell in 0..4u32 {
            assert_eq!(restored.memoized_symbol(cell), client.memoized_symbol(cell));
        }
        // The hash function is identical.
        for v in 0..50u64 {
            assert_eq!(
                ldp_hash::SeededHash::hash(restored.hash_fn(), v),
                ldp_hash::SeededHash::hash(client.hash_fn(), v)
            );
        }
    }

    #[test]
    fn restored_client_reports_consistently() {
        // After restore, repeated values still reuse the memoized PRR —
        // i.e. no extra budget is spent (the attack-resistance property).
        let client = make_client(1001);
        let spent = client.privacy_spent();
        let mut restored = load_client(&save_client(&client)).unwrap();
        let mut rng = derive_rng(1002, 0);
        for v in [0u64, 7, 13, 49] {
            let _ = restored.report(v, &mut rng);
        }
        assert_eq!(restored.privacy_spent(), spent, "restart must not re-spend");
    }

    #[test]
    fn rejects_truncated() {
        let bytes = save_client(&make_client(1003));
        for cut in [0usize, 3, 5, 20, bytes.len() - 1] {
            assert_eq!(
                load_client(&bytes[..cut]).err(),
                Some(PersistError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = save_client(&make_client(1004));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(load_client(&bad).err(), Some(PersistError::BadMagic));
        bytes[4] = 9; // version 9
        assert!(matches!(
            load_client(&bytes),
            Err(PersistError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn rejects_corrupt_memo_symbol() {
        let client = make_client(1005);
        let mut bytes = save_client(&client);
        // Overwrite the first memo entry with an out-of-range symbol (g=4).
        let memo_start = bytes.len() - 2 * 4;
        bytes[memo_start] = 200;
        bytes[memo_start + 1] = 0;
        assert_eq!(
            load_client(&bytes).err(),
            Some(PersistError::Corrupt("memoized symbol out of range"))
        );
    }

    #[test]
    fn rejects_corrupt_budgets() {
        let client = make_client(1006);
        let mut bytes = save_client(&client);
        // eps_inf field starts at 4 + 2 + 4 + 8 = 18; NaN it.
        bytes[18..26].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            load_client(&bytes).err(),
            Some(PersistError::Corrupt("invalid budgets"))
        );
    }
}
