//! Client-state persistence.
//!
//! Memoization is only a privacy mechanism if the memoized PRR state
//! *survives restarts*: a client that forgets its memo table re-randomizes
//! on the next report and silently degrades into the fresh-noise regime the
//! averaging attack breaks (§2.4). A real deployment therefore must persist
//! the client across sessions. This module provides a compact, versioned,
//! dependency-free binary encoding of [`LolohaClient`] state — hash
//! coefficients, budgets, memo table and accountant — with checked decoding
//! (every failure mode returns [`PersistError`], never a panic).
//!
//! Since format version 2 the snapshot is one instance of the workspace's
//! unified checkpoint container ([`ldp_primitives::codec`]; the normative
//! byte-level spec is `docs/CHECKPOINT_FORMAT.md`), so it carries the
//! shared `magic | version | fingerprint` header and FNV-1a checksum
//! trailer. The payload is:
//!
//! ```text
//! g u32 | k u64 | eps_inf f64 | eps_first f64
//! | hash a u64 | hash b u64 | memo: g × u16 (u16::MAX = empty)
//! ```
//!
//! and the fingerprint pins the parameterization (`g`, `k`, both
//! budgets). Version-1 snapshots — written before the container existed,
//! without a checksum — still load through a migration shim; saving
//! always writes the current version.
//!
//! The accountant is reconstructed from the memo table (a cell is charged
//! iff it is memoized), so the two can never disagree.

use crate::client::LolohaClient;
use crate::params::LolohaParams;
use ldp_hash::CwHash;
use ldp_obs::{Counter, Histogram, MetricsRegistry, Span};
use ldp_primitives::codec::{self, CodecReader, CodecWriter};
use std::sync::OnceLock;

const MAGIC: &[u8; 4] = b"LLHA";
const VERSION: u16 = 2;

/// Encode/decode telemetry (`ldp.core.persist.*`), registered once in the
/// process-wide registry. The free functions here have no instance to hang
/// per-call registries off, so they always report globally; the recorded
/// quantities are durations and byte totals only — memo contents never
/// reach an instrument (`ldp_lint` rule P004 enforces this).
struct PersistObs {
    save_ns: Histogram,
    load_ns: Histogram,
    bytes_written: Counter,
}

fn persist_obs() -> &'static PersistObs {
    static OBS: OnceLock<PersistObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = MetricsRegistry::global();
        PersistObs {
            save_ns: reg.histogram("ldp.core.persist.save_ns"),
            load_ns: reg.histogram("ldp.core.persist.load_ns"),
            bytes_written: reg.counter("ldp.core.persist.bytes_written"),
        }
    })
}

/// Why a snapshot failed to decode — the workspace-wide checkpoint error
/// type (see [`ldp_primitives::codec::CodecError`]).
pub type PersistError = codec::CodecError;

/// The configuration fingerprint a snapshot's header carries: FNV-1a over
/// the little-endian `g | k | eps_inf | eps_first` prefix.
fn fingerprint(g: u32, k: u64, eps_inf: f64, eps_first: f64) -> u64 {
    let mut cfg = Vec::with_capacity(4 + 8 + 8 + 8);
    cfg.extend_from_slice(&g.to_le_bytes());
    cfg.extend_from_slice(&k.to_le_bytes());
    cfg.extend_from_slice(&eps_inf.to_le_bytes());
    cfg.extend_from_slice(&eps_first.to_le_bytes());
    codec::fnv1a(&cfg)
}

/// Serializes a client into a fresh byte buffer.
pub fn save_client(client: &LolohaClient<CwHash>) -> Vec<u8> {
    let obs = persist_obs();
    let _timed = Span::enter(&obs.save_ns);
    let params = client.params();
    let g = params.g();
    let (a, b) = client.hash_fn().parts();
    let fp = fingerprint(g, client.k(), params.eps_inf(), params.eps_first());
    let mut w =
        CodecWriter::with_capacity(MAGIC, VERSION, fp, 4 + 8 + 8 + 8 + 8 + 8 + 2 * g as usize);
    w.put_u32(g);
    w.put_u64(client.k());
    w.put_f64(params.eps_inf());
    w.put_f64(params.eps_first());
    w.put_u64(a);
    w.put_u64(b);
    for cell in 0..g {
        w.put_u16(client.memoized_symbol(cell).unwrap_or(u16::MAX));
    }
    let bytes = w.finish();
    obs.bytes_written.inc_by(bytes.len() as u64);
    bytes
}

/// Restores a client from a snapshot produced by [`save_client`] (current
/// or any older supported format version).
pub fn load_client(bytes: &[u8]) -> Result<LolohaClient<CwHash>, PersistError> {
    let _timed = Span::enter(&persist_obs().load_ns);
    match codec::sniff_version(bytes, MAGIC)? {
        1 => load_v1(bytes),
        VERSION => {
            let mut r = CodecReader::open(bytes, MAGIC, VERSION)?;
            let g = r.get_u32()?;
            let k = r.get_u64()?;
            let eps_inf = r.get_f64()?;
            let eps_first = r.get_f64()?;
            r.expect_fingerprint(
                fingerprint(g, k, eps_inf, eps_first),
                "fingerprint disagrees with the snapshot parameters",
            )?;
            let client = decode_body(&mut r, g, k, eps_inf, eps_first)?;
            r.finish()?;
            Ok(client)
        }
        v => Err(PersistError::UnsupportedVersion(v)),
    }
}

/// Migration shim for version-1 snapshots (PR-era format: same payload,
/// no fingerprint, no checksum trailer).
fn load_v1(bytes: &[u8]) -> Result<LolohaClient<CwHash>, PersistError> {
    let mut r = CodecReader::raw(bytes);
    let _ = r.take(6)?; // magic + version, already sniffed
    let g = r.get_u32()?;
    let k = r.get_u64()?;
    let eps_inf = r.get_f64()?;
    let eps_first = r.get_f64()?;
    let client = decode_body(&mut r, g, k, eps_inf, eps_first)?;
    r.finish()?;
    Ok(client)
}

/// The version-independent payload tail: hash coefficients plus the dense
/// memo table.
fn decode_body(
    r: &mut CodecReader<'_>,
    g: u32,
    k: u64,
    eps_inf: f64,
    eps_first: f64,
) -> Result<LolohaClient<CwHash>, PersistError> {
    let a = r.get_u64()?;
    let b = r.get_u64()?;
    let params = LolohaParams::with_g(g, eps_inf, eps_first)
        .map_err(|_| PersistError::Corrupt("invalid budgets"))?;
    let hash =
        CwHash::from_parts(a, b, g).ok_or(PersistError::Corrupt("invalid hash coefficients"))?;
    let mut client = LolohaClient::with_hash(hash, k, params)
        .map_err(|_| PersistError::Corrupt("invalid domain"))?;
    for cell in 0..g {
        let sym = r.get_u16()?;
        if sym != u16::MAX {
            if sym as u32 >= g {
                return Err(PersistError::Corrupt("memoized symbol out of range"));
            }
            client.restore_memo(cell, sym);
        }
    }
    Ok(client)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_hash::CarterWegman;
    use ldp_rand::derive_rng;

    fn make_client(seed: u64) -> LolohaClient<CwHash> {
        let params = LolohaParams::with_g(4, 2.0, 1.0).unwrap();
        let family = CarterWegman::new(4).unwrap();
        let mut rng = derive_rng(seed, 0);
        let mut c = LolohaClient::new(&family, 50, params, &mut rng).unwrap();
        // Populate some memo state.
        for v in [0u64, 7, 13, 49] {
            let _ = c.report(v, &mut rng);
        }
        c
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let client = make_client(1000);
        let bytes = save_client(&client);
        let restored = load_client(&bytes).unwrap();
        assert_eq!(restored.k(), client.k());
        assert_eq!(restored.params(), client.params());
        assert_eq!(restored.privacy_spent(), client.privacy_spent());
        assert_eq!(restored.distinct_cells(), client.distinct_cells());
        for cell in 0..4u32 {
            assert_eq!(restored.memoized_symbol(cell), client.memoized_symbol(cell));
        }
        // The hash function is identical.
        for v in 0..50u64 {
            assert_eq!(
                ldp_hash::SeededHash::hash(restored.hash_fn(), v),
                ldp_hash::SeededHash::hash(client.hash_fn(), v)
            );
        }
    }

    #[test]
    fn restored_client_reports_consistently() {
        // After restore, repeated values still reuse the memoized PRR —
        // i.e. no extra budget is spent (the attack-resistance property).
        let client = make_client(1001);
        let spent = client.privacy_spent();
        let mut restored = load_client(&save_client(&client)).unwrap();
        let mut rng = derive_rng(1002, 0);
        for v in [0u64, 7, 13, 49] {
            let _ = restored.report(v, &mut rng);
        }
        assert_eq!(restored.privacy_spent(), spent, "restart must not re-spend");
    }

    #[test]
    fn rejects_truncated() {
        let bytes = save_client(&make_client(1003));
        for cut in [0usize, 3, 5, 20, bytes.len() - 1] {
            let err = load_client(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated | PersistError::ChecksumMismatch
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = save_client(&make_client(1004));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(load_client(&bad).err(), Some(PersistError::BadMagic));
        bytes[4] = 9; // version 9
        assert!(matches!(
            load_client(&bytes),
            Err(PersistError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn any_single_bit_flip_in_the_body_is_detected() {
        // Since v2 the container checksum catches arbitrary body
        // corruption, not just the structurally-checked fields.
        let bytes = save_client(&make_client(1005));
        for i in 6..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(load_client(&bad).is_err(), "byte {i} flip accepted");
        }
    }

    #[test]
    fn rejects_corrupt_memo_symbol_with_a_fixed_checksum() {
        // Re-seal the trailer after the edit so the *structural* check is
        // exercised, not the checksum.
        let client = make_client(1005);
        let bytes = save_client(&client);
        let mut body = bytes[..bytes.len() - 8].to_vec();
        // Overwrite the first memo entry with an out-of-range symbol (g=4).
        let memo_start = body.len() - 2 * 4;
        body[memo_start] = 200;
        body[memo_start + 1] = 0;
        let sum = codec::fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            load_client(&body).err(),
            Some(PersistError::Corrupt("memoized symbol out of range"))
        );
    }

    #[test]
    fn rejects_corrupt_budgets_with_a_fixed_checksum() {
        // NaN budgets must be rejected structurally. The fingerprint is
        // recomputed over the corrupted prefix so the budget check itself
        // (not the fingerprint comparison) fires.
        let client = make_client(1006);
        let bytes = save_client(&client);
        let mut body = bytes[..bytes.len() - 8].to_vec();
        // Payload starts at 14 (header); eps_inf sits after g u32 + k u64.
        let eps_at = 14 + 4 + 8;
        body[eps_at..eps_at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let fp = super::fingerprint(4, 50, f64::NAN, 1.0);
        body[6..14].copy_from_slice(&fp.to_le_bytes());
        let sum = codec::fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            load_client(&body).err(),
            Some(PersistError::Corrupt("invalid budgets"))
        );
    }

    #[test]
    fn rejects_a_forged_fingerprint() {
        let bytes = save_client(&make_client(1007));
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body[6..14].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        let sum = codec::fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(load_client(&body), Err(PersistError::Mismatch(_))));
    }
}
