//! The optimal reduced domain size `g` (Eq. (6) and Fig. 1).
//!
//! OLOLOHA picks the `g` minimizing the approximate variance `V*` of the
//! server-side estimator (Eq. (5) with `q'1 = 1/g`). The paper derives the
//! closed form (with `a = e^{ε∞}`, `b = e^{ε1}`):
//!
//! ```text
//! g = 1 + max(1, ⌊(1 − a² + √(a⁴ − 14a² + 12ab(1 − ab) + 12a³b + 1)) / (6(a − b))⌉)
//! ```
//!
//! [`optimal_g_bruteforce`] minimizes Eq. (5) directly; a test pins the two
//! to agree within the ±1 slack inherent in the closed form's rounding.

use ldp_primitives::estimator::chained_variance_approx;

/// Eq. (6): the closed-form optimal `g` for budgets `(ε∞, ε1)`.
///
/// Returns at least 2. For high-privacy regimes (small ε) this *is* 2,
/// i.e. OLOLOHA degenerates to BiLOLOHA — the paper's Fig. 1.
pub fn optimal_g(eps_inf: f64, eps_first: f64) -> u32 {
    let a = eps_inf.exp();
    let b = eps_first.exp();
    let disc = a.powi(4) - 14.0 * a * a + 12.0 * a * b * (1.0 - a * b) + 12.0 * a.powi(3) * b + 1.0;
    // The discriminant is positive for all 0 < ε1 < ε∞ of practical
    // interest; clamp defensively so NaN can never escape.
    let root = disc.max(0.0).sqrt();
    let inner = (1.0 - a * a + root) / (6.0 * (a - b));
    let rounded = inner.round().max(1.0);
    1 + rounded as u32
}

/// Brute-force minimizer of the LOLOHA approximate variance over
/// `g ∈ [2, g_max]` (ties break toward smaller `g`).
pub fn optimal_g_bruteforce(eps_inf: f64, eps_first: f64, g_max: u32) -> u32 {
    let a = eps_inf.exp();
    let b = eps_first.exp();
    let eps_irr = ((a * b - 1.0) / (a - b)).ln();
    let c = eps_irr.exp();
    let mut best = (2u32, f64::INFINITY);
    for g in 2..=g_max.max(2) {
        let gf = g as f64;
        let p1 = a / (a + gf - 1.0);
        let q1s = 1.0 / gf;
        let p2 = c / (c + gf - 1.0);
        let q2 = 1.0 / (c + gf - 1.0);
        let v = chained_variance_approx(1.0, p1, q1s, p2, q2);
        if v < best.1 {
            best = (g, v);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_privacy_regime_is_binary() {
        // Fig. 1: for small ε∞ the optimal g is 2 at every α.
        for &alpha in &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
            let g = optimal_g(0.5, alpha * 0.5);
            assert_eq!(g, 2, "α={alpha}");
        }
    }

    #[test]
    fn low_privacy_regime_grows() {
        // Fig. 1: at ε∞ = 5, α = 0.6 the optimal g is well above 2.
        let g = optimal_g(5.0, 3.0);
        assert!(g >= 10, "g = {g}");
        // And it grows monotonically with α at fixed ε∞.
        let g_small = optimal_g(5.0, 0.5);
        assert!(g_small <= g);
    }

    #[test]
    fn closed_form_matches_bruteforce_within_rounding() {
        for &ei in &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0] {
            for &alpha in &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
                let e1 = alpha * ei;
                let closed = optimal_g(ei, e1);
                let brute = optimal_g_bruteforce(ei, e1, 64);
                assert!(
                    closed.abs_diff(brute) <= 1,
                    "ε∞={ei} α={alpha}: closed {closed} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn never_below_two() {
        for &ei in &[0.1, 0.5, 1.0] {
            assert!(optimal_g(ei, 0.05 * ei) >= 2);
        }
    }

    #[test]
    fn monotone_in_eps_inf_at_fixed_alpha() {
        // Fig. 1 shows each α-curve non-decreasing in ε∞.
        for &alpha in &[0.3, 0.5, 0.6] {
            let mut prev = 0;
            for i in 1..=10 {
                let ei = 0.5 * i as f64;
                let g = optimal_g(ei, alpha * ei);
                assert!(g >= prev, "α={alpha} ε∞={ei}: {g} < {prev}");
                prev = g;
            }
        }
    }
}
