//! LOLOHA parameterization: the (g, ε∞, ε1) triple and everything derived
//! from it.
//!
//! * PRR (memoized) GRR over `[g]` at ε∞:
//!   `p1 = e^{ε∞}/(e^{ε∞}+g−1)`, `q1 = 1/(e^{ε∞}+g−1)`.
//! * IRR (fresh) GRR over `[g]` at
//!   `ε_IRR = ln((e^{ε∞+ε1} − 1)/(e^{ε∞} − e^{ε1}))` (Algorithm 1, line 3).
//! * The server estimates with `q'1 = 1/g` (Algorithm 2): support counting
//!   over hash preimages replaces the PRR's `q1`, exactly as in one-shot LH.

use crate::optimal_g::optimal_g;
use ldp_primitives::error::{check_epsilon_order, ParamError};
use ldp_primitives::estimator::chained_variance_approx;
use ldp_primitives::params::PerturbParams;

/// A fully resolved LOLOHA parameterization (copyable; clients and servers
/// each keep their own).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LolohaParams {
    g: u32,
    eps_inf: f64,
    eps_first: f64,
    eps_irr: f64,
    prr: PerturbParams,
    irr: PerturbParams,
}

impl LolohaParams {
    /// **BiLOLOHA**: `g = 2`, the strongest longitudinal protection.
    pub fn bi(eps_inf: f64, eps_first: f64) -> Result<Self, ParamError> {
        Self::with_g(2, eps_inf, eps_first)
    }

    /// **OLOLOHA**: `g` chosen by the closed form of Eq. (6) to minimize the
    /// approximate variance.
    pub fn optimal(eps_inf: f64, eps_first: f64) -> Result<Self, ParamError> {
        check_epsilon_order(eps_first, eps_inf)?;
        Self::with_g(optimal_g(eps_inf, eps_first), eps_inf, eps_first)
    }

    /// LOLOHA with an explicit reduced domain size `g ≥ 2`.
    pub fn with_g(g: u32, eps_inf: f64, eps_first: f64) -> Result<Self, ParamError> {
        check_epsilon_order(eps_first, eps_inf)?;
        if g < 2 {
            return Err(ParamError::InvalidG { g });
        }
        let a = eps_inf.exp();
        let b = eps_first.exp();
        let eps_irr = ((a * b - 1.0) / (a - b)).ln();
        let c = eps_irr.exp();
        let gf = g as f64;
        let prr = PerturbParams::new(a / (a + gf - 1.0), 1.0 / (a + gf - 1.0))?;
        let irr = PerturbParams::new(c / (c + gf - 1.0), 1.0 / (c + gf - 1.0))?;
        Ok(Self {
            g,
            eps_inf,
            eps_first,
            eps_irr,
            prr,
            irr,
        })
    }

    /// The reduced domain size `g`.
    pub fn g(&self) -> u32 {
        self.g
    }

    /// The longitudinal (PRR) budget ε∞.
    pub fn eps_inf(&self) -> f64 {
        self.eps_inf
    }

    /// The first-report budget ε1.
    pub fn eps_first(&self) -> f64 {
        self.eps_first
    }

    /// The IRR budget ε_IRR (Algorithm 1, line 3).
    pub fn eps_irr(&self) -> f64 {
        self.eps_irr
    }

    /// PRR pair `(p1, q1)` over `[g]`.
    pub fn prr(&self) -> PerturbParams {
        self.prr
    }

    /// IRR pair `(p2, q2)` over `[g]`.
    pub fn irr(&self) -> PerturbParams {
        self.irr
    }

    /// The server-side PRR noise term `q'1 = 1/g` used by Algorithm 2's
    /// support-count estimator.
    pub fn q1_server(&self) -> f64 {
        1.0 / self.g as f64
    }

    /// Eq. (5) with the server parameters `(p1, q'1, p2, q2)`: the
    /// approximate variance `V*` for `n` users — the quantity of Fig. 2.
    pub fn variance_approx(&self, n: f64) -> f64 {
        chained_variance_approx(n, self.prr.p, self.q1_server(), self.irr.p, self.irr.q)
    }

    /// Theorem 3.5: the worst-case longitudinal budget `g·ε∞` on the user's
    /// values.
    pub fn budget_cap(&self) -> f64 {
        self.g as f64 * self.eps_inf
    }

    /// The *exact* single-report leakage of the hash+PRR+IRR composition
    /// over `[g]`: `ln((e^{ε∞}·e^{ε_IRR} + g − 1)/(e^{ε∞} + e^{ε_IRR} + g − 2))`.
    ///
    /// Theorem 3.4 proves this is at most ε1; equality holds at `g = 2`,
    /// and for `g > 2` the paper's ε_IRR is slightly conservative (the
    /// realized leakage is below ε1). Pinned by tests.
    pub fn effective_first_report_eps(&self) -> f64 {
        let a = self.eps_inf.exp();
        let c = self.eps_irr.exp();
        let gf = self.g as f64;
        ((a * c + gf - 1.0) / (a + c + gf - 2.0)).ln()
    }

    /// Communication cost per report in bits: `⌈log2 g⌉` (Table 1).
    pub fn comm_bits(&self) -> u32 {
        32 - (self.g - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_configurations() {
        assert!(LolohaParams::with_g(1, 1.0, 0.5).is_err());
        assert!(LolohaParams::with_g(4, 1.0, 1.0).is_err());
        assert!(LolohaParams::with_g(4, 1.0, 1.5).is_err());
        assert!(LolohaParams::with_g(4, 0.0, 0.0).is_err());
        assert!(LolohaParams::bi(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn prr_encodes_eps_inf() {
        for &g in &[2u32, 4, 16] {
            let p = LolohaParams::with_g(g, 2.0, 1.0).unwrap();
            let ratio = p.prr().p / p.prr().q;
            assert!((ratio.ln() - 2.0).abs() < 1e-9, "g={g}");
        }
    }

    #[test]
    fn irr_encodes_eps_irr() {
        let p = LolohaParams::bi(2.0, 1.0).unwrap();
        let ratio = p.irr().p / p.irr().q;
        assert!((ratio.ln() - p.eps_irr()).abs() < 1e-9);
    }

    #[test]
    fn first_report_eps_exact_at_g2() {
        for &(ei, e1) in &[(1.0, 0.4), (2.0, 1.0), (5.0, 3.0)] {
            let p = LolohaParams::bi(ei, e1).unwrap();
            assert!(
                (p.effective_first_report_eps() - e1).abs() < 1e-9,
                "ε∞={ei} ε1={e1}: effective {}",
                p.effective_first_report_eps()
            );
        }
    }

    #[test]
    fn first_report_eps_conservative_for_larger_g() {
        for &g in &[3u32, 8, 32] {
            let p = LolohaParams::with_g(g, 3.0, 1.5).unwrap();
            let eff = p.effective_first_report_eps();
            assert!(eff <= 1.5 + 1e-9, "g={g}: {eff}");
            assert!(eff > 0.0);
        }
    }

    #[test]
    fn eps_irr_exceeds_eps_first() {
        // The IRR alone is weaker (higher ε) than the composed first report:
        // the PRR supplies the rest of the protection.
        let p = LolohaParams::bi(2.0, 1.0).unwrap();
        assert!(p.eps_irr() > p.eps_first());
    }

    #[test]
    fn budget_cap_is_g_eps_inf() {
        let p = LolohaParams::with_g(5, 1.5, 0.5).unwrap();
        assert!((p.budget_cap() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn comm_bits_is_ceil_log2_g() {
        assert_eq!(LolohaParams::with_g(2, 1.0, 0.5).unwrap().comm_bits(), 1);
        assert_eq!(LolohaParams::with_g(3, 1.0, 0.5).unwrap().comm_bits(), 2);
        assert_eq!(LolohaParams::with_g(4, 1.0, 0.5).unwrap().comm_bits(), 2);
        assert_eq!(LolohaParams::with_g(5, 1.0, 0.5).unwrap().comm_bits(), 3);
        assert_eq!(LolohaParams::with_g(16, 1.0, 0.5).unwrap().comm_bits(), 4);
        assert_eq!(LolohaParams::with_g(17, 1.0, 0.5).unwrap().comm_bits(), 5);
    }

    #[test]
    fn variance_decreases_with_n() {
        let p = LolohaParams::optimal(2.0, 1.0).unwrap();
        assert!(p.variance_approx(20_000.0) < p.variance_approx(10_000.0));
    }

    #[test]
    fn bi_is_g2_and_optimal_matches_eq6() {
        assert_eq!(LolohaParams::bi(1.0, 0.5).unwrap().g(), 2);
        let p = LolohaParams::optimal(5.0, 3.0).unwrap();
        assert_eq!(p.g(), optimal_g(5.0, 3.0));
    }
}
