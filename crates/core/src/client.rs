//! Client-side of LOLOHA (Algorithm 1).
//!
//! ```text
//! 1: H ←R  𝓗                      (once, sent to the server)
//! 3: ε_IRR ← ln((e^{ε∞+ε1}−1)/(e^{ε∞}−e^{ε1}))
//! 5: x ← H(v_t)                    (hash step)
//! 6-11: x' ← memoized M_GRR(x; ε∞) (PRR step, once per distinct cell)
//! 12: x''_t ← M_GRR(x'; ε_IRR)     (IRR step, fresh per report)
//! ```

use crate::params::LolohaParams;
use ldp_hash::{SeededHash, UniversalFamily};
use ldp_longitudinal::accountant::BudgetAccountant;
use ldp_longitudinal::memo::SymbolMemo;
use ldp_primitives::error::ParamError;
use ldp_primitives::Grr;
use rand::RngCore;

/// One user's LOLOHA state: the fixed hash function, the PRR memo table,
/// and the longitudinal budget accountant.
#[derive(Debug, Clone)]
pub struct LolohaClient<H: SeededHash> {
    params: LolohaParams,
    k: u64,
    hash: H,
    prr: Grr,
    irr: Grr,
    memo: SymbolMemo,
    accountant: BudgetAccountant,
}

impl<H: SeededHash + Clone> LolohaClient<H> {
    /// Creates a client over domain `[0, k)`, sampling the user's hash
    /// function from `family` (Algorithm 1, lines 1–2).
    pub fn new<F, R>(
        family: &F,
        k: u64,
        params: LolohaParams,
        rng: &mut R,
    ) -> Result<Self, ParamError>
    where
        F: UniversalFamily<Hash = H>,
        R: RngCore + ?Sized,
    {
        if family.g() != params.g() {
            return Err(ParamError::InvalidG { g: family.g() });
        }
        Self::with_hash(family.sample(rng), k, params)
    }

    /// Creates a client with an explicitly chosen hash function (e.g. when
    /// restoring state).
    pub fn with_hash(hash: H, k: u64, params: LolohaParams) -> Result<Self, ParamError> {
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        if hash.g() != params.g() {
            return Err(ParamError::InvalidG { g: hash.g() });
        }
        let g = params.g();
        let prr = Grr::new(g as u64, params.eps_inf())?;
        let irr = Grr::new(g as u64, params.eps_irr())?;
        Ok(Self {
            params,
            k,
            hash,
            prr,
            irr,
            memo: SymbolMemo::new(g),
            accountant: BudgetAccountant::new(params.eps_inf(), g),
        })
    }

    /// The user's hash function — registered with the server once
    /// (Algorithm 1, line 2: "Send H").
    pub fn hash_fn(&self) -> &H {
        &self.hash
    }

    /// The parameterization in use.
    pub fn params(&self) -> LolohaParams {
        self.params
    }

    /// Domain size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Produces the sanitized report `x''_t ∈ [0, g)` for this step's value
    /// (Algorithm 1, lines 5–13).
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn report<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) -> u32 {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        let x = self.hash.hash(value);
        self.accountant.observe(x);
        let memoized = match self.memo.get(x) {
            Some(s) => s as u64,
            None => {
                let s = self.prr.perturb(x as u64, rng);
                self.memo.insert(x, s as u16);
                s
            }
        };
        self.irr.perturb(memoized, rng) as u32
    }

    /// The memoized PRR symbol for hash cell `cell`, if any (used by the
    /// persistence layer).
    pub fn memoized_symbol(&self, cell: u32) -> Option<u16> {
        self.memo.get(cell)
    }

    /// Restores a memoized PRR symbol when rebuilding a client from a
    /// snapshot, charging the accountant for the cell as the original
    /// memoization did.
    ///
    /// # Panics
    /// Panics if the cell already holds a different symbol (memoization is
    /// write-once) or `symbol >= g`.
    pub fn restore_memo(&mut self, cell: u32, symbol: u16) {
        assert!((symbol as u32) < self.params.g(), "symbol outside [0, g)");
        self.memo.insert(cell, symbol);
        self.accountant.observe(cell);
    }

    /// The accumulated longitudinal privacy loss ε̌ (Eq. (8)): ε∞ per
    /// distinct *hash cell* used, never exceeding `g·ε∞` (Theorem 3.5).
    pub fn privacy_spent(&self) -> f64 {
        self.accountant.spent()
    }

    /// Number of distinct hash cells memoized so far (≤ g).
    pub fn distinct_cells(&self) -> u32 {
        self.accountant.classes_seen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_hash::{CarterWegman, MixFamily};
    use ldp_rand::derive_rng;

    fn params() -> LolohaParams {
        LolohaParams::bi(2.0, 1.0).unwrap()
    }

    #[test]
    fn rejects_mismatched_family_g() {
        let mut rng = derive_rng(600, 0);
        let family = CarterWegman::new(4).unwrap(); // params say g = 2
        assert!(LolohaClient::new(&family, 10, params(), &mut rng).is_err());
    }

    #[test]
    fn rejects_tiny_domain() {
        let mut rng = derive_rng(601, 0);
        let family = CarterWegman::new(2).unwrap();
        assert!(LolohaClient::new(&family, 1, params(), &mut rng).is_err());
    }

    #[test]
    fn reports_stay_in_reduced_domain() {
        let mut rng = derive_rng(602, 0);
        let family = MixFamily::new(2).unwrap();
        let mut c = LolohaClient::new(&family, 100, params(), &mut rng).unwrap();
        for v in 0..100u64 {
            assert!(c.report(v, &mut rng) < 2);
        }
    }

    #[test]
    fn budget_capped_at_g_eps_inf_despite_churn() {
        // The defining property: a user can change value arbitrarily often,
        // yet the accountant never exceeds g·ε∞ (Theorem 3.5).
        let mut rng = derive_rng(603, 0);
        let family = CarterWegman::new(2).unwrap();
        let mut c = LolohaClient::new(&family, 360, params(), &mut rng).unwrap();
        for t in 0..1000u64 {
            let _ = c.report(t % 360, &mut rng);
        }
        assert!(c.distinct_cells() <= 2);
        assert!(c.privacy_spent() <= c.params().budget_cap() + 1e-12);
    }

    #[test]
    fn colliding_values_share_memoized_state() {
        // Two values with the same hash must never spend extra budget.
        let mut rng = derive_rng(604, 0);
        let family = CarterWegman::new(2).unwrap();
        let mut c = LolohaClient::new(&family, 1000, params(), &mut rng).unwrap();
        let h = *c.hash_fn();
        let v0 = 0u64;
        let collider = (1..1000).find(|&v| h.hash(v) == h.hash(v0)).unwrap();
        let _ = c.report(v0, &mut rng);
        let spent = c.privacy_spent();
        let _ = c.report(collider, &mut rng);
        assert_eq!(c.privacy_spent(), spent, "collision must be free");
    }

    #[test]
    fn memoized_cell_is_stable_but_reports_vary() {
        let mut rng = derive_rng(605, 0);
        let p = LolohaParams::with_g(8, 3.0, 0.5).unwrap();
        let family = CarterWegman::new(8).unwrap();
        let mut c = LolohaClient::new(&family, 50, p, &mut rng).unwrap();
        let reports: Vec<u32> = (0..50).map(|_| c.report(7, &mut rng)).collect();
        assert_eq!(c.distinct_cells(), 1);
        // With ε_IRR finite the reports cannot all be identical (prob ≈ 0).
        assert!(reports.iter().any(|&r| r != reports[0]));
    }

    #[test]
    fn with_hash_restores_deterministic_function() {
        let mut rng = derive_rng(606, 0);
        let family = CarterWegman::new(2).unwrap();
        let c = LolohaClient::new(&family, 10, params(), &mut rng).unwrap();
        let h = *c.hash_fn();
        let c2 = LolohaClient::with_hash(h, 10, params()).unwrap();
        for v in 0..10 {
            assert_eq!(
                ldp_hash::SeededHash::hash(c.hash_fn(), v),
                ldp_hash::SeededHash::hash(c2.hash_fn(), v)
            );
        }
    }
}
