//! PRR-only LOLOHA: memoized local hashing *without* the IRR round.
//!
//! §4 of the paper: "A proper comparison with dBitFlipPM would be only
//! considering the PRR step of our LOLOHA protocols" — dBitFlipPM has a
//! single round of sanitization, so comparing it against full LOLOHA
//! conflates two design choices (domain reduction strategy and double
//! randomization). This module isolates the first choice:
//!
//! * like dBitFlipPM, the memoized response is reported **verbatim** every
//!   round — better utility (no IRR noise), deterministic repeats;
//! * like LOLOHA, the domain reduction is a *universal hash* rather than
//!   an equal-width bucketing — any two values collide with probability
//!   1/g, so even abrupt value changes keep plausible deniability, whereas
//!   bucketing only protects near-misses.
//!
//! The trade-offs inherited from dropping the IRR:
//!
//! * every report is ε∞-LDP (there is no separate first-report ε1);
//! * hash-cell changes are exposed exactly like dBitFlipPM bucket changes
//!   (`ldp-attack::change::prr_only_change_exposure` gives the closed
//!   form: a report change *is* a memoized-cell change);
//! * the longitudinal cap is unchanged: `g·ε∞` (Theorem 3.5 only uses the
//!   PRR step).
//!
//! The `ablation_prr_only` bench binary runs this head-to-head with
//! dBitFlipPM at `d = b` and with full LOLOHA.

use crate::params::LolohaParams;
use ldp_hash::{Preimages, SeededHash, UniversalFamily};
use ldp_longitudinal::accountant::BudgetAccountant;
use ldp_longitudinal::memo::SymbolMemo;
use ldp_primitives::error::{check_epsilon, ParamError};
use ldp_primitives::estimator::frequency_estimates;
use ldp_primitives::Grr;
use rand::RngCore;

/// A PRR-only client: hash once, memoize one GRR response per hash cell,
/// report it verbatim.
#[derive(Debug, Clone)]
pub struct PrrOnlyClient<H: SeededHash> {
    k: u64,
    eps_inf: f64,
    hash: H,
    prr: Grr,
    memo: SymbolMemo,
    accountant: BudgetAccountant,
}

impl<H: SeededHash + Clone> PrrOnlyClient<H> {
    /// Creates a client over domain `[0, k)`, sampling the hash from
    /// `family` (`g = family.g()`), with longitudinal budget `eps_inf`.
    pub fn new<F, R>(family: &F, k: u64, eps_inf: f64, rng: &mut R) -> Result<Self, ParamError>
    where
        F: UniversalFamily<Hash = H>,
        R: RngCore + ?Sized,
    {
        Self::with_hash(family.sample(rng), k, eps_inf)
    }

    /// Creates a client with an explicit hash function.
    pub fn with_hash(hash: H, k: u64, eps_inf: f64) -> Result<Self, ParamError> {
        check_epsilon(eps_inf)?;
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        let g = hash.g();
        if g < 2 {
            return Err(ParamError::InvalidG { g });
        }
        Ok(Self {
            k,
            eps_inf,
            prr: Grr::new(g as u64, eps_inf)?,
            memo: SymbolMemo::new(g),
            accountant: BudgetAccountant::new(eps_inf, g),
            hash,
        })
    }

    /// The user's hash function (registered with the server once).
    pub fn hash_fn(&self) -> &H {
        &self.hash
    }

    /// Domain size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The longitudinal budget ε∞ (also the per-report level: there is no
    /// IRR round to weaken single reports).
    pub fn eps_inf(&self) -> f64 {
        self.eps_inf
    }

    /// Produces this step's report: the memoized PRR cell, verbatim.
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn report<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) -> u32 {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        let x = self.hash.hash(value);
        self.accountant.observe(x);
        match self.memo.get(x) {
            Some(s) => s as u32,
            None => {
                let s = self.prr.perturb(x as u64, rng);
                self.memo.insert(x, s as u16);
                s as u32
            }
        }
    }

    /// Longitudinal privacy spent so far (≤ `g·ε∞`, Theorem 3.5).
    pub fn privacy_spent(&self) -> f64 {
        self.accountant.spent()
    }

    /// Number of distinct hash cells memoized so far.
    pub fn distinct_cells(&self) -> u32 {
        self.accountant.classes_seen()
    }

    /// The worst-case longitudinal cap `g·ε∞`.
    pub fn budget_cap(&self) -> f64 {
        self.hash.g() as f64 * self.eps_inf
    }
}

/// The PRR-only aggregation server: support counting over hash preimages
/// plus the one-round estimator Eq. (1) with `p = e^{ε∞}/(e^{ε∞}+g−1)`,
/// `q' = 1/g`.
#[derive(Debug, Clone)]
pub struct PrrOnlyServer {
    k: u64,
    g: u32,
    p: f64,
    preimages: Vec<Preimages>,
    counts: Vec<u64>,
    n_step: u64,
}

impl PrrOnlyServer {
    /// Creates a server for domain `[0, k)`, reduced domain `g`, budget
    /// `eps_inf`.
    pub fn new(k: u64, g: u32, eps_inf: f64) -> Result<Self, ParamError> {
        check_epsilon(eps_inf)?;
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        if g < 2 {
            return Err(ParamError::InvalidG { g });
        }
        let grr = Grr::new(g as u64, eps_inf)?;
        Ok(Self {
            k,
            g,
            p: grr.p(),
            preimages: Vec::new(),
            counts: vec![0; k as usize],
            n_step: 0,
        })
    }

    /// Registers a user's hash function; returns their id.
    pub fn register_user<H: SeededHash>(&mut self, hash: &H) -> usize {
        assert_eq!(hash.g(), self.g, "hash g mismatch");
        self.preimages.push(Preimages::build(hash, self.k));
        self.preimages.len() - 1
    }

    /// Ingests one report for a registered user.
    pub fn ingest(&mut self, user: usize, cell: u32) {
        for &v in self.preimages[user].cell(cell) {
            self.counts[v as usize] += 1;
        }
        self.n_step += 1;
    }

    /// Reports ingested this round.
    pub fn n_step(&self) -> u64 {
        self.n_step
    }

    /// Finishes the round: the k-bin estimate via Eq. (1).
    pub fn estimate_and_reset(&mut self) -> Vec<f64> {
        let n = self.n_step.max(1) as f64;
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let est = frequency_estimates(&counts, n, self.p, 1.0 / self.g as f64);
        self.counts.fill(0);
        self.n_step = 0;
        est
    }

    /// Eq. (5)-style approximate variance of this one-round estimator:
    /// `q'(1−q') / (n (p−q')²)` with `q' = 1/g`.
    pub fn variance_approx(&self, n: f64) -> f64 {
        ldp_primitives::estimator::single_variance_approx(n, self.p, 1.0 / self.g as f64)
    }
}

/// Convenience: PRR-only with the BiLOLOHA reduction (`g = 2`).
pub fn bi_prr_only_server(k: u64, eps_inf: f64) -> Result<PrrOnlyServer, ParamError> {
    PrrOnlyServer::new(k, 2, eps_inf)
}

/// The full-LOLOHA parameters whose PRR step this protocol matches, for
/// side-by-side reporting (the IRR fields are simply unused here).
pub fn matching_params(g: u32, eps_inf: f64) -> Result<LolohaParams, ParamError> {
    // ε1 is irrelevant to the PRR step; any valid value resolves the same
    // PRR pair. Use ε∞/2 conventionally.
    LolohaParams::with_g(g, eps_inf, eps_inf / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_hash::CarterWegman;
    use ldp_rand::{derive_rng, uniform_u64};

    #[test]
    fn reports_are_deterministic_per_cell() {
        let mut rng = derive_rng(700, 0);
        let family = CarterWegman::new(4).unwrap();
        let mut c = PrrOnlyClient::new(&family, 50, 1.0, &mut rng).unwrap();
        let first = c.report(7, &mut rng);
        for _ in 0..20 {
            assert_eq!(c.report(7, &mut rng), first, "memoized report must repeat");
        }
        // Any value in the same hash cell produces the identical report.
        let h = *c.hash_fn();
        let sibling = (0..50).find(|&v| v != 7 && h.hash(v) == h.hash(7));
        if let Some(v) = sibling {
            assert_eq!(c.report(v, &mut rng), first);
        }
    }

    #[test]
    fn budget_capped_at_g_eps_inf_under_churn() {
        let mut rng = derive_rng(701, 0);
        let family = CarterWegman::new(2).unwrap();
        let mut c = PrrOnlyClient::new(&family, 100, 1.5, &mut rng).unwrap();
        for _ in 0..500 {
            c.report(uniform_u64(&mut rng, 100), &mut rng);
        }
        assert!(c.privacy_spent() <= c.budget_cap() + 1e-9);
        assert!((c.budget_cap() - 3.0).abs() < 1e-12);
        assert!(c.distinct_cells() <= 2);
    }

    #[test]
    fn estimates_converge_on_known_histogram() {
        let k = 40u64;
        let eps = 2.0;
        let g = 4u32;
        let family = CarterWegman::new(g).unwrap();
        let mut server = PrrOnlyServer::new(k, g, eps).unwrap();
        let mut rng = derive_rng(702, 0);
        let n = 30_000;
        for _ in 0..n {
            let mut c = PrrOnlyClient::new(&family, k, eps, &mut rng).unwrap();
            let id = server.register_user(c.hash_fn());
            // 60% hold value 3, the rest uniform.
            let v = if uniform_u64(&mut rng, 10) < 6 {
                3
            } else {
                uniform_u64(&mut rng, k)
            };
            server.ingest(id, c.report(v, &mut rng));
        }
        let est = server.estimate_and_reset();
        assert!((est[3] - 0.61).abs() < 0.05, "estimate {}", est[3]);
        assert!(est[20].abs() < 0.05);
    }

    #[test]
    fn utility_beats_full_loloha_at_same_eps_inf() {
        // No IRR noise → strictly smaller variance than the chained
        // estimator at the same (g, ε∞). This is the dBitFlipPM-style
        // utility edge the §4 comparison isolates.
        let (k, g, eps) = (40u64, 2u32, 1.0);
        let server = PrrOnlyServer::new(k, g, eps).unwrap();
        let full = LolohaParams::with_g(g, eps, 0.5).unwrap();
        let n = 10_000.0;
        assert!(server.variance_approx(n) < full.variance_approx(n));
    }

    #[test]
    fn report_change_implies_cell_change() {
        // The privacy cost of dropping the IRR: a changed report is a
        // certain signal that the memoized cell changed.
        let mut rng = derive_rng(703, 0);
        let family = CarterWegman::new(8).unwrap();
        for _ in 0..200 {
            let mut c = PrrOnlyClient::new(&family, 64, 1.0, &mut rng).unwrap();
            let v1 = uniform_u64(&mut rng, 64);
            let v2 = uniform_u64(&mut rng, 64);
            let r1 = c.report(v1, &mut rng);
            let r2 = c.report(v2, &mut rng);
            let h = c.hash_fn();
            if r1 != r2 {
                assert_ne!(h.hash(v1), h.hash(v2), "report change without cell change");
            }
        }
    }

    #[test]
    fn server_rejects_invalid_parameters() {
        assert!(PrrOnlyServer::new(1, 2, 1.0).is_err());
        assert!(PrrOnlyServer::new(10, 1, 1.0).is_err());
        assert!(PrrOnlyServer::new(10, 2, 0.0).is_err());
        let family = CarterWegman::new(2).unwrap();
        let mut rng = derive_rng(704, 0);
        assert!(PrrOnlyClient::new(&family, 1, 1.0, &mut rng).is_err());
        assert!(PrrOnlyClient::new(&family, 10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn matching_params_share_the_prr_pair() {
        let p = matching_params(4, 2.0).unwrap();
        let grr = Grr::new(4, 2.0).unwrap();
        assert!((p.prr().p - grr.p()).abs() < 1e-12);
        assert!((p.prr().q - grr.q()).abs() < 1e-12);
    }
}
