//! # LOLOHA — LOngitudinal LOcal HAshing
//!
//! A from-scratch Rust implementation of the LOLOHA protocol family for
//! frequency estimation of evolving data under local differential privacy
//! (Arcolezi, Pinzón, Palamidessi & Gambs, EDBT 2023).
//!
//! LOLOHA composes two ideas:
//!
//! 1. **Domain reduction by local hashing** — each user samples one hash
//!    function `H : [k] → [g]` from a universal family and keeps it forever.
//!    Because ~`k/g` values collide onto each hash cell, a memoized response
//!    supports *many* plausible inputs, and the worst-case longitudinal
//!    budget drops from `k·ε∞` (RAPPOR) to `g·ε∞` (Theorem 3.5).
//! 2. **Double randomization** — the hashed cell is permanently randomized
//!    once per distinct cell (PRR, GRR over `[g]` at ε∞) and the memoized
//!    cell is freshly re-randomized on every report (IRR, GRR over `[g]` at
//!    ε_IRR), making the first report ε1-LDP (Theorem 3.4) and hiding when
//!    the underlying value changes.
//!
//! Two named configurations from the paper:
//!
//! * [`LolohaParams::bi`] — **BiLOLOHA**, `g = 2`, strongest longitudinal
//!   protection (`2·ε∞` worst case).
//! * [`LolohaParams::optimal`] — **OLOLOHA**, `g` from the closed form of
//!   Eq. (6), minimizing the approximate variance `V*`.
//!
//! ## Quickstart
//!
//! ```
//! use ldp_hash::CarterWegman;
//! use loloha::{LolohaClient, LolohaParams, LolohaServer};
//!
//! let k = 100; // domain size
//! let params = LolohaParams::bi(1.0, 0.5).unwrap(); // ε∞ = 1, ε1 = 0.5
//! let family = CarterWegman::new(params.g()).unwrap();
//! let mut server = LolohaServer::new(k, params).unwrap();
//!
//! let mut rng = ldp_rand::derive_rng(42, 0);
//! // One client per user; the hash function is registered once.
//! let mut clients: Vec<_> = (0..1000)
//!     .map(|_| LolohaClient::new(&family, k, params, &mut rng).unwrap())
//!     .collect();
//! let ids: Vec<_> = clients.iter().map(|c| server.register_user(c.hash_fn())).collect();
//!
//! // One collection round: everyone holds value 7.
//! for (client, &id) in clients.iter_mut().zip(&ids) {
//!     let cell = client.report(7, &mut rng);
//!     server.ingest(id, cell);
//! }
//! let estimate = server.estimate_and_reset();
//! assert!(estimate[7] > 0.5); // value 7 dominates the estimated histogram
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod monitor;
pub mod optimal_g;
pub mod params;
pub mod persist;
pub mod prr_only;
pub mod server;
pub mod theory;

pub use client::LolohaClient;
pub use monitor::{FrequencyMonitor, RoundEstimate};
pub use optimal_g::{optimal_g, optimal_g_bruteforce};
pub use params::LolohaParams;
pub use persist::{load_client, save_client, PersistError};
pub use prr_only::{PrrOnlyClient, PrrOnlyServer};
pub use server::{LolohaServer, UserId};
