//! Machine-checkable forms of the paper's §3 theory.
//!
//! * Theorem 3.1 — LDP is unsatisfiable as τ → ∞: any longitudinal
//!   mechanism whose per-step channel leaks at least α cannot be ε-LDP once
//!   τ ≥ ε/α. [`theorem_3_1_min_tau`] returns that breaking horizon.
//! * Theorem 3.3 — the hash+PRR composition is ε∞-LDP:
//!   [`prr_ratio`] computes the exact single-report ratio `p1/q1 = e^{ε∞}`.
//! * Theorem 3.4 — hash+PRR+IRR is ε1-LDP: [`full_report_ratio`] computes
//!   the exact two-round ratio (tight at g = 2, conservative above).
//! * Theorem 3.5 — the client is `g·ε∞`-LDP on the user's values:
//!   [`LolohaParams::budget_cap`].
//! * Proposition 3.6 — the asymptotic utility guarantee:
//!   [`utility_bound`] returns the radius `r` such that
//!   `max_v |f̂(v) − f(v)| < r` with probability ≥ 1 − β.

use crate::params::LolohaParams;

/// Theorem 3.1: the smallest number of steps after which a longitudinal
/// mechanism with per-step leakage ≥ `alpha` cannot satisfy ε-LDP.
///
/// This is the paper's impossibility horizon τ ≥ ε/α, rounded up.
pub fn theorem_3_1_min_tau(epsilon: f64, alpha: f64) -> u64 {
    assert!(epsilon > 0.0 && alpha > 0.0, "budgets must be positive");
    (epsilon / alpha).ceil() as u64
}

/// Theorem 3.3: the exact likelihood ratio of the hash+PRR step for any two
/// inputs — `e^{ε∞}` by construction.
pub fn prr_ratio(params: &LolohaParams) -> f64 {
    params.prr().p / params.prr().q
}

/// Theorem 3.4: the exact likelihood ratio of the full hash+PRR+IRR report.
///
/// Over `[g]`, `Pr[x'' = H(v)] = p1·p2 + (g−1)·q1·q2` and for any other
/// cell `p1·q2 + q1·p2 + (g−2)·q1·q2`; the ratio simplifies to
/// `(e^{ε∞}·e^{ε_IRR} + g − 1)/(e^{ε∞} + e^{ε_IRR} + g − 2)`.
pub fn full_report_ratio(params: &LolohaParams) -> f64 {
    params.effective_first_report_eps().exp()
}

/// Proposition 3.6: with probability at least `1 − beta`,
/// `max_v |f̂(v) − f(v)| < sqrt(k / (4·n·β·(p1 − q'1)·(p2 − q2)))`.
pub fn utility_bound(params: &LolohaParams, n: u64, k: u64, beta: f64) -> f64 {
    assert!((0.0..1.0).contains(&beta) && beta > 0.0, "beta in (0,1)");
    let gap1 = params.prr().p - params.q1_server();
    let gap2 = params.irr().p - params.irr().q;
    (k as f64 / (4.0 * n as f64 * beta * gap1 * gap2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LolohaClient;
    use crate::server::LolohaServer;
    use ldp_hash::CarterWegman;
    use ldp_rand::derive_rng;

    #[test]
    fn min_tau_matches_paper_statement() {
        assert_eq!(theorem_3_1_min_tau(1.0, 0.1), 10);
        assert_eq!(theorem_3_1_min_tau(1.0, 0.3), 4);
        assert_eq!(theorem_3_1_min_tau(5.0, 5.0), 1);
    }

    #[test]
    fn theorem_3_3_prr_is_eps_inf_ldp() {
        for &g in &[2u32, 4, 16] {
            let p = LolohaParams::with_g(g, 2.0, 1.0).unwrap();
            assert!((prr_ratio(&p).ln() - 2.0).abs() < 1e-9, "g={g}");
        }
    }

    #[test]
    fn theorem_3_4_first_report_is_eps1_ldp() {
        for &g in &[2u32, 3, 8] {
            let p = LolohaParams::with_g(g, 2.0, 1.0).unwrap();
            let ratio = full_report_ratio(&p);
            assert!(ratio.ln() <= 1.0 + 1e-9, "g={g}: {}", ratio.ln());
        }
        // Tight at g = 2.
        let p2 = LolohaParams::bi(2.0, 1.0).unwrap();
        assert!((full_report_ratio(&p2).ln() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_3_4_empirical_channel_matches_analytic() {
        // Estimate Pr[x'' = cell | hash cell] by Monte Carlo and compare the
        // peak/off-peak ratio with the analytic expression.
        let params = LolohaParams::with_g(4, 2.0, 1.0).unwrap();
        let family = CarterWegman::new(4).unwrap();
        let mut rng = derive_rng(620, 0);
        let trials = 200_000;
        let mut peak = 0usize;
        for _ in 0..trials {
            // Fresh client each trial: the first report's distribution.
            let mut c = LolohaClient::new(&family, 50, params, &mut rng).unwrap();
            let v = 3u64;
            let cell_true = ldp_hash::SeededHash::hash(c.hash_fn(), v);
            if c.report(v, &mut rng) == cell_true {
                peak += 1;
            }
        }
        let p_peak = peak as f64 / trials as f64;
        let a = params.eps_inf().exp();
        let cexp = params.eps_irr().exp();
        let g = 4.0;
        let expected_peak = (a * cexp + g - 1.0) / ((a + g - 1.0) * (cexp + g - 1.0));
        assert!(
            (p_peak - expected_peak).abs() < 0.005,
            "peak {p_peak} vs analytic {expected_peak}"
        );
    }

    #[test]
    fn theorem_3_5_budget_never_exceeded_empirically() {
        let params = LolohaParams::with_g(3, 1.0, 0.5).unwrap();
        let family = CarterWegman::new(3).unwrap();
        let mut rng = derive_rng(621, 0);
        for _ in 0..20 {
            let mut c = LolohaClient::new(&family, 500, params, &mut rng).unwrap();
            for t in 0..2000u64 {
                let _ = c.report(t * 7 % 500, &mut rng);
            }
            assert!(c.privacy_spent() <= params.budget_cap() + 1e-12);
        }
    }

    #[test]
    fn proposition_3_6_bound_holds_empirically() {
        // Run a one-step collection and check the max-error bound at
        // β = 0.05 over repeated trials: violations should be rare (≤ β
        // with slack).
        let params = LolohaParams::bi(3.0, 1.5).unwrap();
        let family = CarterWegman::new(2).unwrap();
        let k = 10u64;
        let n = 4000usize;
        let beta = 0.05;
        let bound = utility_bound(&params, n as u64, k, beta);
        let trials = 40;
        let mut violations = 0;
        for t in 0..trials {
            let mut rng = derive_rng(622, t);
            let mut server = LolohaServer::new(k, params).unwrap();
            let mut max_err: f64 = 0.0;
            let mut clients: Vec<_> = (0..n)
                .map(|_| LolohaClient::new(&family, k, params, &mut rng).unwrap())
                .collect();
            let ids: Vec<_> = clients
                .iter()
                .map(|c| server.register_user(c.hash_fn()))
                .collect();
            for (u, (client, &id)) in clients.iter_mut().zip(&ids).enumerate() {
                let v = (u as u64) % k; // uniform ground truth
                let cell = client.report(v, &mut rng);
                server.ingest(id, cell);
            }
            let est = server.estimate_and_reset();
            for (v, &e) in est.iter().enumerate() {
                let f = 1.0 / k as f64;
                max_err = max_err.max((e - f).abs());
                let _ = v;
            }
            if max_err >= bound {
                violations += 1;
            }
        }
        // β = 5% of 40 trials = 2 expected; allow generous slack (≤ 6).
        assert!(violations <= 6, "{violations}/{trials} exceeded the bound");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn min_tau_rejects_zero_alpha() {
        let _ = theorem_3_1_min_tau(1.0, 0.0);
    }
}
