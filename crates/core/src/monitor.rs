//! High-level monitoring API: what a deployment actually runs on top of
//! Algorithm 2.
//!
//! [`FrequencyMonitor`] wraps the LOLOHA server with the operations the
//! paper's motivating applications need round after round: closing a
//! collection round into a [`RoundEstimate`], ranking heavy hitters,
//! attaching the Proposition 3.6 confidence radius, estimating means of
//! counter-valued domains (the dBitFlipPM telemetry use-case), and tracking
//! drift between rounds.

use crate::params::LolohaParams;
use crate::server::{LolohaServer, UserId};
use crate::theory::utility_bound;
use ldp_hash::SeededHash;
use ldp_primitives::error::ParamError;

/// A LOLOHA server plus round bookkeeping.
#[derive(Debug, Clone)]
pub struct FrequencyMonitor {
    server: LolohaServer,
    params: LolohaParams,
    k: u64,
    rounds_closed: u64,
    previous: Option<Vec<f64>>,
}

impl FrequencyMonitor {
    /// Creates a monitor for domain `[0, k)`.
    pub fn new(k: u64, params: LolohaParams) -> Result<Self, ParamError> {
        Ok(Self {
            server: LolohaServer::new(k, params)?,
            params,
            k,
            rounds_closed: 0,
            previous: None,
        })
    }

    /// Registers a user's hash function (once per user).
    pub fn register<H: SeededHash>(&mut self, hash: &H) -> UserId {
        self.server.register_user(hash)
    }

    /// Ingests one sanitized report for the current round.
    pub fn submit(&mut self, user: UserId, cell: u32) {
        self.server.ingest(user, cell);
    }

    /// Number of reports collected in the current (open) round.
    pub fn pending_reports(&self) -> u64 {
        self.server.n_step()
    }

    /// Number of rounds closed so far.
    pub fn rounds_closed(&self) -> u64 {
        self.rounds_closed
    }

    /// Closes the current round: estimates the histogram, resets the
    /// counters, and remembers the estimate for drift tracking.
    pub fn close_round(&mut self) -> RoundEstimate {
        let n = self.server.n_step();
        let histogram = self.server.estimate_and_reset();
        self.rounds_closed += 1;
        let drift = self.previous.as_ref().map(|prev| {
            histogram
                .iter()
                .zip(prev)
                .map(|(&a, &b)| (a - b).abs())
                .sum::<f64>()
                / 2.0
        });
        self.previous = Some(histogram.clone());
        RoundEstimate {
            histogram,
            n,
            params: self.params,
            k: self.k,
            drift,
        }
    }
}

/// One closed collection round.
#[derive(Debug, Clone)]
pub struct RoundEstimate {
    /// The estimated k-bin histogram (unbiased; entries may dip below 0 or
    /// exceed 1 by noise).
    pub histogram: Vec<f64>,
    /// Number of reports aggregated.
    pub n: u64,
    /// The protocol parameterization that produced it.
    pub params: LolohaParams,
    k: u64,
    /// Total-variation distance to the previous round's estimate, if any —
    /// a plug-in drift signal.
    pub drift: Option<f64>,
}

impl RoundEstimate {
    /// The `top` values by estimated frequency, descending (heavy hitters).
    pub fn top_k(&self, top: usize) -> Vec<(u64, f64)> {
        let mut ranked: Vec<(u64, f64)> = self
            .histogram
            .iter()
            .enumerate()
            .map(|(v, &f)| (v as u64, f))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
        ranked.truncate(top);
        ranked
    }

    /// Proposition 3.6: the radius `r` such that every bin of this estimate
    /// is within `r` of the truth with probability ≥ `1 − beta`.
    pub fn confidence_radius(&self, beta: f64) -> f64 {
        utility_bound(&self.params, self.n.max(1), self.k, beta)
    }

    /// The histogram clamped to `[0, 1]` and renormalized — a proper
    /// probability distribution for consumers that need one (post-processing
    /// keeps the LDP guarantee intact).
    pub fn normalized(&self) -> Vec<f64> {
        let clipped: Vec<f64> = self.histogram.iter().map(|&f| f.max(0.0)).collect();
        let total: f64 = clipped.iter().sum();
        if total <= 0.0 {
            vec![1.0 / self.k as f64; self.k as usize]
        } else {
            clipped.into_iter().map(|f| f / total).collect()
        }
    }

    /// Plug-in mean of a counter-valued domain: `Σ_v value(v)·f̂(v)` —
    /// the paper's telemetry motivation ("number of seconds an application
    /// is used") reads the mean straight off the histogram.
    pub fn mean_of(&self, value: impl Fn(u64) -> f64) -> f64 {
        self.histogram
            .iter()
            .enumerate()
            .map(|(v, &f)| value(v as u64) * f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LolohaClient;
    use ldp_hash::CarterWegman;
    use ldp_rand::{derive_rng, uniform_u64};

    fn collect_round(
        monitor: &mut FrequencyMonitor,
        values: &[u64],
        seed: u64,
        k: u64,
        params: LolohaParams,
    ) -> RoundEstimate {
        let family = CarterWegman::new(params.g()).unwrap();
        let mut rng = derive_rng(seed, 0);
        for &v in values {
            let mut c = LolohaClient::new(&family, k, params, &mut rng).unwrap();
            let id = monitor.register(c.hash_fn());
            monitor.submit(id, c.report(v, &mut rng));
        }
        monitor.close_round()
    }

    #[test]
    fn top_k_finds_the_heavy_hitter() {
        let k = 20u64;
        let params = LolohaParams::bi(3.0, 1.5).unwrap();
        let mut monitor = FrequencyMonitor::new(k, params).unwrap();
        // 70% of users hold value 4, the rest uniform.
        let mut rng = derive_rng(800, 0);
        let values: Vec<u64> = (0..8000)
            .map(|i| {
                if i % 10 < 7 {
                    4
                } else {
                    uniform_u64(&mut rng, k)
                }
            })
            .collect();
        let est = collect_round(&mut monitor, &values, 801, k, params);
        let top = est.top_k(3);
        assert_eq!(top[0].0, 4, "top: {top:?}");
        assert!(top[0].1 > 0.5);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn confidence_radius_shrinks_with_n() {
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let small = RoundEstimate {
            histogram: vec![0.0; 10],
            n: 100,
            params,
            k: 10,
            drift: None,
        };
        let large = RoundEstimate {
            n: 100_000,
            ..small.clone()
        };
        assert!(large.confidence_radius(0.05) < small.confidence_radius(0.05));
    }

    #[test]
    fn normalized_is_a_distribution() {
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let est = RoundEstimate {
            histogram: vec![-0.05, 0.3, 0.8, -0.1],
            n: 1000,
            params,
            k: 4,
            drift: None,
        };
        let norm = est.normalized();
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(norm.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert_eq!(norm[0], 0.0, "negative estimates clip to zero");
    }

    #[test]
    fn normalized_degenerate_all_negative_falls_back_to_uniform() {
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let est = RoundEstimate {
            histogram: vec![-0.2, -0.1],
            n: 10,
            params,
            k: 2,
            drift: None,
        };
        assert_eq!(est.normalized(), vec![0.5, 0.5]);
    }

    #[test]
    fn mean_of_recovers_a_known_mean() {
        let k = 10u64;
        let params = LolohaParams::bi(4.0, 2.0).unwrap();
        let mut monitor = FrequencyMonitor::new(k, params).unwrap();
        // Everyone holds value 6 → mean of identity must be ≈ 6.
        let values = vec![6u64; 20_000];
        let est = collect_round(&mut monitor, &values, 802, k, params);
        let mean = est.mean_of(|v| v as f64);
        assert!((mean - 6.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn drift_is_none_then_small_for_static_data() {
        let k = 12u64;
        let params = LolohaParams::bi(3.0, 1.5).unwrap();
        let mut monitor = FrequencyMonitor::new(k, params).unwrap();
        let values: Vec<u64> = (0..6000).map(|i| (i % 12) as u64).collect();
        let first = collect_round(&mut monitor, &values, 803, k, params);
        assert!(first.drift.is_none());
        let second = collect_round(&mut monitor, &values, 804, k, params);
        let drift = second.drift.unwrap();
        assert!(drift < 0.2, "static data drift {drift}");
        assert_eq!(monitor.rounds_closed(), 2);
    }
}
