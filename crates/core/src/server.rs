//! Server-side of LOLOHA (Algorithm 2).
//!
//! Per time step and per value `v`, the server computes the support count
//! `C(v) = |{u : H_u(v) = x''_u}|` and applies Eq. (3) with the PRR noise
//! term replaced by `q'1 = 1/g` — exactly as in one-shot local hashing,
//! because a universal hash sends any *non-reported* value to the reported
//! cell with probability 1/g.
//!
//! Counting walks pre-computed hash preimages: registering a user inverts
//! their hash once (O(k)); each subsequent report costs O(k/g) increments.

use crate::params::LolohaParams;
use ldp_hash::{Preimages, SeededHash};
use ldp_primitives::error::ParamError;
use ldp_primitives::estimator::chained_frequency_estimates;

/// Identifies a registered user within a [`LolohaServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserId(usize);

/// The LOLOHA aggregation server.
#[derive(Debug, Clone)]
pub struct LolohaServer {
    k: u64,
    params: LolohaParams,
    preimages: Vec<Preimages>,
    counts: Vec<u64>,
    n_step: u64,
}

impl LolohaServer {
    /// Creates a server for domain `[0, k)`.
    pub fn new(k: u64, params: LolohaParams) -> Result<Self, ParamError> {
        if k < 2 {
            return Err(ParamError::DomainTooSmall { k, min: 2 });
        }
        Ok(Self {
            k,
            params,
            preimages: Vec::new(),
            counts: vec![0; k as usize],
            n_step: 0,
        })
    }

    /// Registers a user's hash function (Algorithm 1's "Send H"), inverting
    /// it over the domain once.
    ///
    /// # Panics
    /// Panics if the hash's `g` differs from the server parameterization.
    pub fn register_user<H: SeededHash>(&mut self, hash: &H) -> UserId {
        assert_eq!(hash.g(), self.params.g(), "hash g mismatch");
        self.preimages.push(Preimages::build(hash, self.k));
        UserId(self.preimages.len() - 1)
    }

    /// Number of registered users.
    pub fn users(&self) -> usize {
        self.preimages.len()
    }

    /// Ingests one report for the current step: every value hashing to the
    /// reported cell gains support.
    ///
    /// # Panics
    /// Panics if the user id is unknown or the cell is out of range.
    pub fn ingest(&mut self, user: UserId, cell: u32) {
        assert!(cell < self.params.g(), "cell {cell} out of range");
        let pre = &self.preimages[user.0];
        for &v in pre.cell(cell) {
            self.counts[v as usize] += 1;
        }
        self.n_step += 1;
    }

    /// Merges pre-aggregated support counts (thread-local aggregation in
    /// the simulator).
    pub fn ingest_counts(&mut self, counts: &[u64], n: u64) {
        assert_eq!(counts.len(), self.k as usize, "count length mismatch");
        for (acc, &c) in self.counts.iter_mut().zip(counts) {
            *acc += c;
        }
        self.n_step += n;
    }

    /// Number of reports ingested this step.
    pub fn n_step(&self) -> u64 {
        self.n_step
    }

    /// Estimates this step's k-bin histogram (Algorithm 2, line 5) and
    /// resets the counters for the next step.
    pub fn estimate_and_reset(&mut self) -> Vec<f64> {
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let est = chained_frequency_estimates(
            &counts,
            self.n_step as f64,
            self.params.prr().p,
            self.params.q1_server(),
            self.params.irr().p,
            self.params.irr().q,
        );
        self.counts.fill(0);
        self.n_step = 0;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LolohaClient;
    use ldp_hash::CarterWegman;
    use ldp_rand::{derive_rng, AliasTable};

    fn run_collection(
        params: LolohaParams,
        k: u64,
        n: usize,
        tau: usize,
        seed: u64,
    ) -> (Vec<f64>, Vec<f64>) {
        let family = CarterWegman::new(params.g()).unwrap();
        let mut server = LolohaServer::new(k, params).unwrap();
        let mut rng = derive_rng(seed, 0);
        let weights: Vec<f64> = (0..k).map(|v| (v % 7 + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let truth: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let alias = AliasTable::new(&weights).unwrap();
        let mut clients: Vec<_> = (0..n)
            .map(|_| LolohaClient::new(&family, k, params, &mut rng).unwrap())
            .collect();
        let ids: Vec<UserId> = clients
            .iter()
            .map(|c| server.register_user(c.hash_fn()))
            .collect();
        let mut values: Vec<u64> = (0..n).map(|_| alias.sample(&mut rng) as u64).collect();
        let mut est = vec![0.0; k as usize];
        for _ in 0..tau {
            for ((client, &id), value) in clients.iter_mut().zip(&ids).zip(&mut values) {
                // 20% of users change value each step (evolving data).
                if ldp_rand::uniform_f64(&mut rng) < 0.2 {
                    *value = alias.sample(&mut rng) as u64;
                }
                let cell = client.report(*value, &mut rng);
                server.ingest(id, cell);
            }
            est = server.estimate_and_reset();
        }
        (est, truth)
    }

    #[test]
    fn biloloha_end_to_end_accuracy() {
        let params = LolohaParams::bi(3.0, 1.5).unwrap();
        let n = 15_000;
        let (est, truth) = run_collection(params, 15, n, 3, 610);
        let tol = 6.0 * params.variance_approx(n as f64).sqrt();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            assert!((e - t).abs() < tol, "v={v}: {e} vs {t} (tol {tol})");
        }
    }

    #[test]
    fn ololoha_end_to_end_accuracy() {
        let params = LolohaParams::optimal(4.0, 2.4).unwrap();
        assert!(params.g() > 2, "this regime should pick g > 2");
        let n = 15_000;
        let (est, truth) = run_collection(params, 15, n, 3, 611);
        let tol = 6.0 * params.variance_approx(n as f64).sqrt();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            assert!((e - t).abs() < tol, "v={v}: {e} vs {t} (tol {tol})");
        }
    }

    #[test]
    fn estimates_roughly_sum_to_one() {
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let (est, _) = run_collection(params, 20, 10_000, 2, 612);
        let sum: f64 = est.iter().sum();
        assert!((sum - 1.0).abs() < 0.25, "sum {sum}");
    }

    #[test]
    fn ingest_counts_matches_ingest() {
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let family = CarterWegman::new(2).unwrap();
        let mut rng = derive_rng(613, 0);
        let mut a = LolohaServer::new(10, params).unwrap();
        let mut b = LolohaServer::new(10, params).unwrap();
        let client = LolohaClient::new(&family, 10, params, &mut rng).unwrap();
        let id = a.register_user(client.hash_fn());
        a.ingest(id, 1);
        // Manually compute the same support counts for b.
        let pre = Preimages::build(client.hash_fn(), 10);
        let mut counts = vec![0u64; 10];
        for &v in pre.cell(1) {
            counts[v as usize] += 1;
        }
        b.ingest_counts(&counts, 1);
        assert_eq!(a.estimate_and_reset(), b.estimate_and_reset());
    }

    #[test]
    #[should_panic(expected = "hash g mismatch")]
    fn register_rejects_wrong_g() {
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let mut server = LolohaServer::new(10, params).unwrap();
        let family = CarterWegman::new(4).unwrap();
        let mut rng = derive_rng(614, 0);
        let h = ldp_hash::UniversalFamily::sample(&family, &mut rng);
        server.register_user(&h);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ingest_rejects_bad_cell() {
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let family = CarterWegman::new(2).unwrap();
        let mut rng = derive_rng(615, 0);
        let mut server = LolohaServer::new(10, params).unwrap();
        let client = LolohaClient::new(&family, 10, params, &mut rng).unwrap();
        let id = server.register_user(client.hash_fn());
        server.ingest(id, 2);
    }
}
