//! The pipeline's determinism contract, property-tested: for every
//! `Method` and worker count ∈ {1, 2, 4, 8}, concurrent ingestion is
//! bit-identical to a single-threaded `ShardedAggregator` replay.

use ldp_ingest::IngestPipeline;
use ldp_rand::{derive_rng, uniform_u64};
use ldp_runtime::{AggregateSnapshot, Method, ShardedAggregator};
use proptest::prelude::*;

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Rappor),
        Just(Method::LOsue),
        Just(Method::LOue),
        Just(Method::LSoue),
        Just(Method::LGrr),
        Just(Method::BiLoloha),
        Just(Method::OLoloha),
        Just(Method::OneBitFlip),
        Just(Method::BBitFlip),
    ]
}

/// Deterministic pseudo-random report supports over `[0, dim)`.
fn synth_reports(dim: usize, n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = derive_rng(seed, 0x1A6E);
    (0..n)
        .map(|_| {
            let len = 1 + uniform_u64(&mut rng, 4) as usize;
            (0..len)
                .map(|_| uniform_u64(&mut rng, dim as u64) as usize)
                .collect()
        })
        .collect()
}

fn assert_bit_identical(a: &AggregateSnapshot, b: &AggregateSnapshot, ctx: &str) {
    assert_eq!(a.counts, b.counts, "{ctx}: merged counts");
    assert_eq!(a.reports, b.reports, "{ctx}: report totals");
    assert_eq!(a.estimate.len(), b.estimate.len(), "{ctx}: estimate length");
    for (i, (x, y)) in a.estimate.iter().zip(&b.estimate).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: estimate bin {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipeline rounds are bit-identical to the single-threaded aggregator
    /// for every method and worker count, over two consecutive rounds (the
    /// second round also proves workers reset cleanly).
    #[test]
    fn pipeline_equals_single_thread_for_all_methods(
        method in arb_method(),
        k in 6u64..20,
        n in 0usize..50,
        seed in any::<u64>(),
    ) {
        let mut single = ShardedAggregator::for_method(method, k, 2.0, 1.0, 1).expect("valid");
        let dim = single.dim();
        for workers in [1usize, 2, 4, 8] {
            let mut pipe = IngestPipeline::for_method(method, k, 2.0, 1.0, workers)
                .expect("valid");
            for round in 0..2u64 {
                let reports = synth_reports(dim, n, seed ^ round);
                for (i, support) in reports.iter().enumerate() {
                    single.push_report(0, support.iter().copied());
                    pipe.submit(i as u64, support.iter().copied()).expect("submit");
                }
                let want = single.finish_round();
                let got = pipe.finish_round().expect("workers alive");
                assert_bit_identical(
                    &want,
                    &got,
                    &format!("{method:?}, {workers} workers, round {round}"),
                );
            }
        }
    }

    /// The batched transport is bit-identical to per-report submission for
    /// every method, worker count, and batch size — including 1 (every
    /// submit flushes) and sizes that do not divide the round (a partial
    /// final batch rides the finish flush).
    #[test]
    fn batched_transport_equals_per_report_for_all_methods(
        method in arb_method(),
        k in 6u64..20,
        n in 0usize..50,
        batch in 1usize..70,
        seed in any::<u64>(),
    ) {
        let mut single = ShardedAggregator::for_method(method, k, 2.0, 1.0, 1).expect("valid");
        let dim = single.dim();
        for workers in [1usize, 2, 4] {
            let mut pipe = IngestPipeline::for_method(method, k, 2.0, 1.0, workers)
                .expect("valid");
            let reports = synth_reports(dim, n, seed);
            let mut sub = pipe.handle().batching(batch);
            for (i, support) in reports.iter().enumerate() {
                single.push_report(0, support.iter().copied());
                sub.submit(i as u64, support.iter().copied()).expect("submit");
            }
            sub.finish().expect("workers alive");
            let want = single.finish_round();
            let got = pipe.finish_round().expect("workers alive");
            assert_bit_identical(
                &want,
                &got,
                &format!("{method:?}, {workers} workers, batch {batch}"),
            );
        }
    }

    /// Mid-round snapshots agree with a single-threaded replay of the same
    /// submission prefix.
    #[test]
    fn mid_round_snapshot_equals_single_thread_prefix(
        method in arb_method(),
        k in 6u64..16,
        seed in any::<u64>(),
    ) {
        let mut single = ShardedAggregator::for_method(method, k, 2.0, 1.0, 1).expect("valid");
        let dim = single.dim();
        let reports = synth_reports(dim, 30, seed);
        let mut pipe = IngestPipeline::for_method(method, k, 2.0, 1.0, 4).expect("valid");
        for (i, support) in reports.iter().take(15).enumerate() {
            single.push_report(0, support.iter().copied());
            pipe.submit(i as u64, support.iter().copied()).expect("submit");
        }
        let want = single.snapshot();
        let got = pipe.snapshot().expect("workers alive");
        assert_bit_identical(&want, &got, &format!("{method:?} mid-round"));
        // Ingestion continues unharmed after the snapshot.
        for (i, support) in reports.iter().enumerate().skip(15) {
            single.push_report(0, support.iter().copied());
            pipe.submit(i as u64, support.iter().copied()).expect("submit");
        }
        let want = single.finish_round();
        let got = pipe.finish_round().expect("workers alive");
        assert_bit_identical(&want, &got, &format!("{method:?} full round"));
    }

    /// Routing mode (stable key hash, round-robin, pre-aggregated batches)
    /// never changes the merged result — only shard placement.
    #[test]
    fn routing_mode_does_not_change_results(
        k in 6u64..16,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let method = Method::BiLoloha;
        let mut by_key = IngestPipeline::for_method(method, k, 2.0, 1.0, 3).expect("valid");
        let mut by_order = IngestPipeline::for_method(method, k, 2.0, 1.0, 5).expect("valid");
        let mut by_batch = IngestPipeline::for_method(method, k, 2.0, 1.0, 2).expect("valid");
        let dim = by_key.dim();
        let reports = synth_reports(dim, n, seed);
        let mut batch = vec![0u64; dim];
        for (i, support) in reports.iter().enumerate() {
            by_key.submit(i as u64, support.iter().copied()).expect("submit");
            by_order.submit_next(support.iter().copied()).expect("submit");
            for &idx in support {
                batch[idx] += 1;
            }
        }
        by_batch.submit_batch(batch, n as u64).expect("submit");
        let a = by_key.finish_round().expect("workers alive");
        let b = by_order.finish_round().expect("workers alive");
        let c = by_batch.finish_round().expect("workers alive");
        assert_bit_identical(&a, &b, "key vs round-robin");
        assert_bit_identical(&a, &c, "key vs pre-aggregated batch");
    }
}
