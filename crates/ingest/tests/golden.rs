//! Golden-fixture pins for the shard checkpoint format.
//!
//! `tests/fixtures/` holds known-good checkpoint files: the version-1
//! bytes written by PR 3's private codec and the current version-2
//! unified container. The v1 file must keep loading through the
//! migration shim and agree with the v2 decode; the v2 file must
//! re-encode byte-for-byte, so any accidental layout change fails here.

use ldp_ingest::{decode_checkpoint, encode_checkpoint, ShardState};

fn fixture(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()))
}

#[test]
fn v1_fixture_still_loads_through_the_migration_shim() {
    let cp = decode_checkpoint(&fixture("shards_v1.ckpt")).expect("v1 file must keep loading");
    // Pin the exact content the fixture was captured from.
    assert_eq!(cp.dim, 5);
    assert_eq!(
        cp.shards,
        vec![
            ShardState {
                counts: vec![1, 0, 3, 0, 7],
                reports: 4,
            },
            ShardState {
                counts: vec![0, 2, 0, 9, 1],
                reports: 6,
            },
        ]
    );
}

#[test]
fn v2_fixture_reencodes_byte_stably() {
    let bytes = fixture("shards_v2.ckpt");
    let cp = decode_checkpoint(&bytes).expect("current-version fixture must load");
    assert_eq!(
        encode_checkpoint(&cp),
        bytes,
        "re-encode drifted: the format changed without a version bump"
    );
}

#[test]
fn v1_and_v2_fixtures_decode_identically() {
    let old = decode_checkpoint(&fixture("shards_v1.ckpt")).unwrap();
    let new = decode_checkpoint(&fixture("shards_v2.ckpt")).unwrap();
    assert_eq!(old, new);
    // Migrating the old file yields exactly the new file.
    assert_eq!(encode_checkpoint(&old), fixture("shards_v2.ckpt"));
}
