//! Durability properties: a round interrupted by `save → restore` must
//! finish bit-identically to an uninterrupted run, through the real file
//! store; corrupt and foreign files must be rejected with typed errors.

use ldp_ingest::{IngestPipeline, ShardStore, ShardStoreError};
use ldp_rand::{derive_rng, uniform_u64};
use ldp_runtime::Method;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Rappor),
        Just(Method::LOsue),
        Just(Method::LOue),
        Just(Method::LSoue),
        Just(Method::LGrr),
        Just(Method::BiLoloha),
        Just(Method::OLoloha),
        Just(Method::OneBitFlip),
        Just(Method::BBitFlip),
    ]
}

fn synth_reports(dim: usize, n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = derive_rng(seed, 0xC4EC);
    (0..n)
        .map(|_| {
            let len = 1 + uniform_u64(&mut rng, 3) as usize;
            (0..len)
                .map(|_| uniform_u64(&mut rng, dim as u64) as usize)
                .collect()
        })
        .collect()
}

/// A unique scratch file per call so parallel test threads never collide.
fn scratch_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ldp_ingest_ckpt_{}_{id}.bin", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// save → (new pipeline, possibly different worker count) → restore →
    /// finish_round ≡ an uninterrupted run, for every method.
    #[test]
    fn file_checkpoint_resume_matches_uninterrupted_run(
        method in arb_method(),
        k in 6u64..16,
        n in 2usize..40,
        cut_frac in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut uninterrupted =
            IngestPipeline::for_method(method, k, 2.0, 1.0, 3).expect("valid");
        let mut before_crash =
            IngestPipeline::for_method(method, k, 2.0, 1.0, 3).expect("valid");
        let dim = uninterrupted.dim();
        let reports = synth_reports(dim, n, seed);
        let cut = ((n as f64 * cut_frac) as usize).clamp(1, n - 1);

        for (i, support) in reports.iter().take(cut).enumerate() {
            uninterrupted.submit(i as u64, support.iter().copied()).expect("submit");
            before_crash.submit(i as u64, support.iter().copied()).expect("submit");
        }
        let path = scratch_path();
        let store = ShardStore::new(&path);
        store.save(&before_crash.checkpoint().expect("quiesce")).expect("save");
        drop(before_crash); // the "crash"

        let mut resumed =
            IngestPipeline::for_method(method, k, 2.0, 1.0, 5).expect("valid");
        resumed.restore(&store.load().expect("load")).expect("restore");
        std::fs::remove_file(&path).ok();

        for (i, support) in reports.iter().enumerate().skip(cut) {
            uninterrupted.submit(i as u64, support.iter().copied()).expect("submit");
            resumed.submit(i as u64, support.iter().copied()).expect("submit");
        }
        let want = uninterrupted.finish_round().expect("workers alive");
        let got = resumed.finish_round().expect("workers alive");
        prop_assert_eq!(&want.counts, &got.counts);
        prop_assert_eq!(want.reports, got.reports);
        for (x, y) in want.estimate.iter().zip(&got.estimate) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn corrupt_file_is_rejected_with_a_typed_error() {
    let mut pipe = IngestPipeline::for_method(Method::BiLoloha, 10, 2.0, 1.0, 2).unwrap();
    for i in 0..20u64 {
        pipe.submit(i, [(i % 10) as usize]).unwrap();
    }
    let path = scratch_path();
    let store = ShardStore::new(&path);
    store.save(&pipe.checkpoint().unwrap()).unwrap();

    // Flip a byte in the middle of the file: checksum must catch it.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(store.load().err(), Some(ShardStoreError::ChecksumMismatch));

    std::fs::remove_file(&path).ok();
}

#[test]
fn old_or_foreign_files_are_rejected_not_panicked() {
    let path = scratch_path();
    let store = ShardStore::new(&path);

    // A foreign file (wrong magic).
    std::fs::write(&path, b"definitely not a checkpoint").unwrap();
    assert_eq!(store.load().err(), Some(ShardStoreError::BadMagic));

    // A future format version with an otherwise plausible layout.
    let mut pipe = IngestPipeline::for_method(Method::LGrr, 6, 2.0, 1.0, 2).unwrap();
    pipe.submit(0, [1usize]).unwrap();
    store.save(&pipe.checkpoint().unwrap()).unwrap();
    let good = std::fs::read(&path).unwrap();
    let mut bytes = good.clone();
    bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        store.load().err(),
        Some(ShardStoreError::UnsupportedVersion(9))
    );

    // Truncation below the fixed header.
    std::fs::write(&path, &good[..10]).unwrap();
    assert_eq!(store.load().err(), Some(ShardStoreError::Truncated));

    std::fs::remove_file(&path).ok();
}
