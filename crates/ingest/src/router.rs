//! Deterministic report → worker routing.
//!
//! The pipeline's determinism contract does **not** depend on which worker
//! a report lands on — merged results are an order-independent sum — but
//! checkpoints capture *per-shard* state, so replaying the same submission
//! sequence must fill the same shards. Both routing modes guarantee that:
//!
//! * **Stable hash**: a report carrying a routing key (user id, report
//!   index, stream offset) always maps to `mix(key) % workers`, independent
//!   of submission timing or the submitting thread.
//! * **Round-robin**: keyless reports cycle through the workers in
//!   submission order (only meaningful from a single submitting thread;
//!   multi-threaded submitters should route by key).

use ldp_rand::mix;

/// Deterministic router over a fixed worker count.
#[derive(Debug, Clone)]
pub struct Router {
    workers: usize,
    cursor: usize,
}

impl Router {
    /// Creates a router over `workers` workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            cursor: 0,
        }
    }

    /// The worker count routes are drawn from.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Routes a keyed report: a stable hash of `key`, independent of
    /// submission order and thread.
    #[inline]
    pub fn route_key(&self, key: u64) -> usize {
        (mix(key) % self.workers as u64) as usize
    }

    /// Routes a keyless report round-robin on submission order.
    pub fn route_next(&mut self) -> usize {
        let w = self.cursor;
        self.cursor = (self.cursor + 1) % self.workers;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_routing_is_stable_and_in_range() {
        let r = Router::new(4);
        for key in 0..1000u64 {
            let w = r.route_key(key);
            assert!(w < 4);
            assert_eq!(w, r.route_key(key), "same key, same worker");
        }
    }

    #[test]
    fn key_routing_spreads_over_all_workers() {
        let r = Router::new(8);
        let mut hit = [false; 8];
        for key in 0..256u64 {
            hit[r.route_key(key)] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 keys must touch all 8 workers");
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(3);
        let seq: Vec<usize> = (0..7).map(|_| r.route_next()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let mut r = Router::new(0);
        assert_eq!(r.workers(), 1);
        assert_eq!(r.route_key(99), 0);
        assert_eq!(r.route_next(), 0);
    }
}
