//! Durable shard-state checkpoints.
//!
//! A long-running collection round loses everything on a crash unless the
//! per-shard partial counts survive restarts. This module persists a
//! pipeline's shard states as one instance of the workspace's unified
//! checkpoint container ([`ldp_primitives::codec`]; byte-level spec in
//! `docs/CHECKPOINT_FORMAT.md`), via a file-backed [`ShardStore`] that
//! writes atomically (temp file + rename) so a crash mid-checkpoint never
//! corrupts the previous checkpoint.
//!
//! Container payload (little-endian), under the shared
//! `magic "LDPS" | version | fingerprint` header and FNV-1a trailer:
//!
//! ```text
//! dim u64 | shard_count u32
//! | per shard: reports u64 | len u64 | len × u64 counts
//! ```
//!
//! The fingerprint is FNV-1a over the little-endian `dim`, so a checkpoint
//! can be identified as belonging to a differently-sized aggregation
//! before its body is even parsed. Version-1 files (PR 3's pre-container
//! format, without the fingerprint field) still load through a migration
//! shim; saving always writes the current version.
//!
//! Every failure mode returns a typed [`ShardStoreError`], never a panic:
//! truncation, foreign files, future format versions, bit-flips (caught by
//! the checksum), and structurally valid but inconsistent layouts.

use crate::pipeline::ShardState;
use ldp_obs::{Counter, Histogram, MetricsRegistry, Span};
use ldp_primitives::codec::{self, CodecReader, CodecWriter};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"LDPS";
const VERSION: u16 = 2;

/// A point-in-time capture of a pipeline's shard states, produced by
/// [`crate::IngestPipeline::checkpoint`] and consumed by
/// [`crate::IngestPipeline::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// The aggregation dimension every shard's counts share.
    pub dim: usize,
    /// One state per shard worker, in worker-index order.
    pub shards: Vec<ShardState>,
}

impl ShardCheckpoint {
    /// Total reports captured across all shards.
    pub fn reports(&self) -> u64 {
        self.shards.iter().map(|s| s.reports).sum()
    }
}

/// Why a checkpoint failed to decode or a file operation failed — the
/// workspace-wide checkpoint error type
/// (see [`ldp_primitives::codec::CodecError`]).
pub type ShardStoreError = codec::CodecError;

/// The header fingerprint of a shard checkpoint: FNV-1a over the
/// little-endian aggregation dimension.
fn fingerprint(dim: u64) -> u64 {
    codec::fnv1a(&dim.to_le_bytes())
}

/// Serializes a checkpoint into a fresh byte buffer.
pub fn encode_checkpoint(cp: &ShardCheckpoint) -> Vec<u8> {
    let per_shard: usize = cp.shards.iter().map(|s| 16 + 8 * s.counts.len()).sum();
    let mut w = CodecWriter::with_capacity(
        MAGIC,
        VERSION,
        fingerprint(cp.dim as u64),
        8 + 4 + per_shard,
    );
    w.put_u64(cp.dim as u64);
    w.put_u32(u32::try_from(cp.shards.len()).expect("shard count fits u32"));
    for shard in &cp.shards {
        w.put_u64(shard.reports);
        w.put_u64(shard.counts.len() as u64);
        for &c in &shard.counts {
            w.put_u64(c);
        }
    }
    w.finish()
}

/// Restores a checkpoint from a buffer produced by [`encode_checkpoint`]
/// (current or any older supported format version).
pub fn decode_checkpoint(bytes: &[u8]) -> Result<ShardCheckpoint, ShardStoreError> {
    match codec::sniff_version(bytes, MAGIC)? {
        1 => {
            // Migration shim: the PR 3 layout had no fingerprint field —
            // `magic | version | payload | checksum`.
            let body = codec::split_checksummed(bytes)?;
            let mut r = CodecReader::raw(body);
            let _ = r.take(6)?; // magic + version, already sniffed
            decode_body(&mut r, None)
        }
        VERSION => {
            let mut r = CodecReader::open(bytes, MAGIC, VERSION)?;
            let fp = r.fingerprint();
            decode_body(&mut r, Some(fp))
        }
        v => Err(ShardStoreError::UnsupportedVersion(v)),
    }
}

/// The version-independent payload: `dim | shard_count | shards`, with the
/// declared layout proven against the buffer size before any allocation.
fn decode_body(
    r: &mut CodecReader<'_>,
    fingerprint_to_check: Option<u64>,
) -> Result<ShardCheckpoint, ShardStoreError> {
    let dim64 = r.get_u64()?;
    let dim = usize::try_from(dim64).map_err(|_| ShardStoreError::Corrupt("dim overflow"))?;
    if let Some(fp) = fingerprint_to_check {
        if fp != fingerprint(dim64) {
            return Err(ShardStoreError::Mismatch(
                "fingerprint disagrees with the checkpoint dimension",
            ));
        }
    }
    let shard_count = r.get_u32()?;
    // The checksum is forgeable (FNV, not cryptographic), so the declared
    // layout must be proven against the actual buffer size *before* any
    // allocation sized from it — a crafted dim/shard_count must yield a
    // typed error, never an OOM or capacity-overflow panic.
    let payload = r.remaining() as u64;
    let per_shard = 8u64
        .checked_add(8)
        .and_then(|fixed| dim64.checked_mul(8).and_then(|c| fixed.checked_add(c)))
        .ok_or(ShardStoreError::Corrupt("shard size overflow"))?;
    if u64::from(shard_count)
        .checked_mul(per_shard)
        .is_none_or(|total| total != payload)
    {
        return Err(ShardStoreError::Corrupt("layout disagrees with file size"));
    }
    let mut shards = Vec::with_capacity(shard_count as usize);
    for _ in 0..shard_count {
        let reports = r.get_u64()?;
        let len = r.get_u64()?;
        if len != dim64 {
            return Err(ShardStoreError::Corrupt("shard length differs from dim"));
        }
        let mut counts = Vec::with_capacity(dim);
        for _ in 0..dim {
            counts.push(r.get_u64()?);
        }
        shards.push(ShardState { counts, reports });
    }
    r.finish()?;
    Ok(ShardCheckpoint { dim, shards })
}

/// A file-backed checkpoint location with atomic writes.
#[derive(Debug, Clone)]
pub struct ShardStore {
    path: PathBuf,
    save_ns: Histogram,
    load_ns: Histogram,
    bytes_written: Counter,
}

impl ShardStore {
    /// Creates a store writing to / reading from `path`, reporting
    /// checkpoint telemetry (`ldp.ingest.store.*`) to the process-wide
    /// [`MetricsRegistry::global`]; use [`Self::with_obs`] to direct it
    /// elsewhere.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::with_obs(path, &MetricsRegistry::global())
    }

    /// [`Self::new`] with an explicit telemetry registry.
    pub fn with_obs(path: impl Into<PathBuf>, obs: &MetricsRegistry) -> Self {
        Self {
            path: path.into(),
            save_ns: obs.histogram("ldp.ingest.store.save_ns"),
            load_ns: obs.histogram("ldp.ingest.store.load_ns"),
            bytes_written: obs.counter("ldp.ingest.store.bytes_written"),
        }
    }

    /// The checkpoint file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a checkpoint file currently exists at the store's path.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Durably writes `cp`, replacing any previous checkpoint atomically
    /// (via [`codec::write_atomic`]), so a crash mid-write never leaves a
    /// half checkpoint.
    pub fn save(&self, cp: &ShardCheckpoint) -> Result<(), ShardStoreError> {
        let _timed = Span::enter(&self.save_ns);
        let bytes = encode_checkpoint(cp);
        codec::write_atomic(&self.path, &bytes)?;
        self.bytes_written.inc_by(bytes.len() as u64);
        Ok(())
    }

    /// Reads and decodes the checkpoint at the store's path.
    pub fn load(&self) -> Result<ShardCheckpoint, ShardStoreError> {
        let _timed = Span::enter(&self.load_ns);
        decode_checkpoint(&codec::read_file(&self.path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardCheckpoint {
        ShardCheckpoint {
            dim: 5,
            shards: vec![
                ShardState {
                    counts: vec![1, 0, 3, 0, 7],
                    reports: 4,
                },
                ShardState {
                    counts: vec![0, 2, 0, 9, 1],
                    reports: 6,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let cp = sample();
        let restored = decode_checkpoint(&encode_checkpoint(&cp)).unwrap();
        assert_eq!(restored, cp);
        assert_eq!(restored.reports(), 10);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let cp = ShardCheckpoint {
            dim: 3,
            shards: vec![],
        };
        assert_eq!(decode_checkpoint(&encode_checkpoint(&cp)).unwrap(), cp);
    }

    #[test]
    fn rejects_shard_length_disagreeing_with_dim() {
        // Hand-craft a size-consistent checkpoint (one shard, three counts)
        // whose shard nonetheless declares len ≠ dim, with a valid
        // checksum, so the structural check itself is exercised.
        let mut w = CodecWriter::new(MAGIC, VERSION, fingerprint(3));
        w.put_u64(3); // dim = 3
        w.put_u32(1); // one shard
        w.put_u64(5); // reports
        w.put_u64(2); // len = 2 ≠ dim
        w.put_u64(1);
        w.put_u64(2);
        w.put_u64(3);
        assert_eq!(
            decode_checkpoint(&w.finish()).err(),
            Some(ShardStoreError::Corrupt("shard length differs from dim"))
        );
    }

    #[test]
    fn rejects_trailing_garbage_with_valid_checksum() {
        let mut body = encode_checkpoint(&sample());
        body.truncate(body.len() - 8); // strip checksum
        body.extend_from_slice(&[0u8; 4]); // garbage
        let sum = codec::fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_checkpoint(&body).err(),
            Some(ShardStoreError::Corrupt("layout disagrees with file size"))
        );
    }

    #[test]
    fn rejects_a_fingerprint_for_a_different_dimension() {
        let mut w = CodecWriter::new(MAGIC, VERSION, fingerprint(7)); // claims dim 7
        w.put_u64(3); // actual dim 3
        w.put_u32(0);
        assert!(matches!(
            decode_checkpoint(&w.finish()),
            Err(ShardStoreError::Mismatch(_))
        ));
    }

    #[test]
    fn huge_declared_sizes_with_forged_checksum_never_panic_or_allocate() {
        // FNV is forgeable, so an attacker-controlled file can carry any
        // dim/shard_count with a valid trailer; decoding must reject it
        // with a typed error before sizing any allocation from it.
        for (dim, shard_count) in [
            (1u64 << 61, 1u32),
            (u64::MAX, 1),
            (4, u32::MAX),
            (u64::MAX / 8, u32::MAX),
        ] {
            let mut w = CodecWriter::new(MAGIC, VERSION, fingerprint(dim));
            w.put_u64(dim);
            w.put_u32(shard_count);
            w.put_u64(0); // a little payload
            assert!(
                matches!(
                    decode_checkpoint(&w.finish()),
                    Err(ShardStoreError::Corrupt(_))
                ),
                "dim {dim}, shards {shard_count}"
            );
        }
    }

    #[test]
    fn file_store_roundtrips_and_replaces_atomically() {
        let path =
            std::env::temp_dir().join(format!("ldp_ingest_store_test_{}.ckpt", std::process::id()));
        let store = ShardStore::new(&path);
        assert!(!store.exists());
        store.save(&sample()).unwrap();
        assert!(store.exists());
        assert_eq!(store.load().unwrap(), sample());
        // Overwrite with a different checkpoint; the new content wins.
        let other = ShardCheckpoint {
            dim: 5,
            shards: vec![ShardState {
                counts: vec![9; 5],
                reports: 1,
            }],
        };
        store.save(&other).unwrap();
        assert_eq!(store.load().unwrap(), other);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let store = ShardStore::new("/nonexistent/dir/never.ckpt");
        assert!(matches!(store.load(), Err(ShardStoreError::Io(_))));
    }

    #[test]
    fn store_telemetry_counts_operations_and_bytes() {
        let path = std::env::temp_dir().join(format!(
            "ldp_ingest_store_obs_test_{}.ckpt",
            std::process::id()
        ));
        let reg = MetricsRegistry::new();
        let store = ShardStore::with_obs(&path, &reg);
        store.save(&sample()).unwrap();
        store.save(&sample()).unwrap();
        store.load().unwrap();
        std::fs::remove_file(&path).ok();

        let snap = reg.snapshot();
        assert_eq!(snap.hist_count("ldp.ingest.store.save_ns"), 2);
        assert_eq!(snap.hist_count("ldp.ingest.store.load_ns"), 1);
        assert_eq!(
            snap.counter_total("ldp.ingest.store.bytes_written"),
            2 * encode_checkpoint(&sample()).len() as u64
        );
    }
}
