//! Durable shard-state checkpoints.
//!
//! A long-running collection round loses everything on a crash unless the
//! per-shard partial counts survive restarts. This module provides a
//! compact, versioned, dependency-free binary encoding of a pipeline's
//! shard states — the same codec idiom as the client-side
//! `loloha::persist` module — plus a file-backed [`ShardStore`] that writes
//! atomically (temp file + rename) so a crash mid-checkpoint never corrupts
//! the previous checkpoint.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LDPS" | version u16 | dim u64 | shard_count u32
//! | per shard: reports u64 | len u64 | len × u64 counts
//! | checksum u64 (FNV-1a over every preceding byte)
//! ```
//!
//! Every failure mode returns a typed [`ShardStoreError`], never a panic:
//! truncation, foreign files, future format versions, bit-flips (caught by
//! the checksum), and structurally valid but inconsistent layouts.

use crate::pipeline::ShardState;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"LDPS";
const VERSION: u16 = 1;

/// A point-in-time capture of a pipeline's shard states, produced by
/// [`crate::IngestPipeline::checkpoint`] and consumed by
/// [`crate::IngestPipeline::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// The aggregation dimension every shard's counts share.
    pub dim: usize,
    /// One state per shard worker, in worker-index order.
    pub shards: Vec<ShardState>,
}

impl ShardCheckpoint {
    /// Total reports captured across all shards.
    pub fn reports(&self) -> u64 {
        self.shards.iter().map(|s| s.reports).sum()
    }
}

/// Why a checkpoint failed to decode or a file operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStoreError {
    /// The buffer is shorter than the declared layout.
    Truncated,
    /// The magic bytes do not match (not a shard checkpoint).
    BadMagic,
    /// The version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The trailing checksum does not match the content (bit rot or a
    /// partial overwrite).
    ChecksumMismatch,
    /// A decoded field is outside its domain (corrupt checkpoint).
    Corrupt(&'static str),
    /// An underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for ShardStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardStoreError::Truncated => write!(f, "checkpoint is truncated"),
            ShardStoreError::BadMagic => write!(f, "checkpoint has wrong magic bytes"),
            ShardStoreError::UnsupportedVersion(v) => {
                write!(f, "checkpoint version {v} is not supported by this build")
            }
            ShardStoreError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (corrupt file)")
            }
            ShardStoreError::Corrupt(what) => write!(f, "checkpoint is corrupt: {what}"),
            ShardStoreError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl Error for ShardStoreError {}

/// FNV-1a, 64-bit: tiny, dependency-free corruption detection. Not a
/// cryptographic integrity guarantee — the checkpoint trusts its storage.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes a checkpoint into a fresh byte buffer.
pub fn encode_checkpoint(cp: &ShardCheckpoint) -> Vec<u8> {
    let per_shard: usize = cp.shards.iter().map(|s| 16 + 8 * s.counts.len()).sum();
    let mut out = Vec::with_capacity(4 + 2 + 8 + 4 + per_shard + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(cp.dim as u64).to_le_bytes());
    out.extend_from_slice(&(cp.shards.len() as u32).to_le_bytes());
    for shard in &cp.shards {
        out.extend_from_slice(&shard.reports.to_le_bytes());
        out.extend_from_slice(&(shard.counts.len() as u64).to_le_bytes());
        for &c in &shard.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Restores a checkpoint from a buffer produced by [`encode_checkpoint`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<ShardCheckpoint, ShardStoreError> {
    // Fixed header (magic + version + dim + shard_count) plus the checksum.
    const MIN: usize = 4 + 2 + 8 + 4 + 8;
    if bytes.len() < MIN {
        return Err(ShardStoreError::Truncated);
    }
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ShardStoreError::BadMagic);
    }
    let version = u16::from_le_bytes(r.array()?);
    if version != VERSION {
        return Err(ShardStoreError::UnsupportedVersion(version));
    }
    // Verify the trailer before trusting any length field.
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a(body) != declared {
        return Err(ShardStoreError::ChecksumMismatch);
    }
    let dim64 = u64::from_le_bytes(r.array()?);
    let dim = usize::try_from(dim64).map_err(|_| ShardStoreError::Corrupt("dim overflow"))?;
    let shard_count = u32::from_le_bytes(r.array()?);
    // The checksum is forgeable (FNV, not cryptographic), so the declared
    // layout must be proven against the actual buffer size *before* any
    // allocation sized from it — a crafted dim/shard_count must yield a
    // typed error, never an OOM or capacity-overflow panic.
    let payload = (body.len() - r.pos) as u64;
    let per_shard = 8u64
        .checked_add(8)
        .and_then(|fixed| dim64.checked_mul(8).and_then(|c| fixed.checked_add(c)))
        .ok_or(ShardStoreError::Corrupt("shard size overflow"))?;
    if u64::from(shard_count)
        .checked_mul(per_shard)
        .is_none_or(|total| total != payload)
    {
        return Err(ShardStoreError::Corrupt("layout disagrees with file size"));
    }
    let mut shards = Vec::with_capacity(shard_count as usize);
    for _ in 0..shard_count {
        let reports = u64::from_le_bytes(r.array()?);
        let len = u64::from_le_bytes(r.array()?);
        if len != dim64 {
            return Err(ShardStoreError::Corrupt("shard length differs from dim"));
        }
        let mut counts = Vec::with_capacity(dim);
        for _ in 0..dim {
            counts.push(u64::from_le_bytes(r.array()?));
        }
        shards.push(ShardState { counts, reports });
    }
    debug_assert_eq!(r.pos, body.len(), "layout check guarantees exact parse");
    Ok(ShardCheckpoint { dim, shards })
}

/// A file-backed checkpoint location with atomic writes.
#[derive(Debug, Clone)]
pub struct ShardStore {
    path: PathBuf,
}

impl ShardStore {
    /// Creates a store writing to / reading from `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The checkpoint file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a checkpoint file currently exists at the store's path.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Durably writes `cp`, replacing any previous checkpoint atomically:
    /// the bytes land in a sibling temp file first and are renamed over the
    /// destination, so a crash mid-write never leaves a half checkpoint.
    pub fn save(&self, cp: &ShardCheckpoint) -> Result<(), ShardStoreError> {
        let bytes = encode_checkpoint(cp);
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &bytes).map_err(|e| ShardStoreError::Io(e.to_string()))?;
        fs::rename(&tmp, &self.path).map_err(|e| ShardStoreError::Io(e.to_string()))
    }

    /// Reads and decodes the checkpoint at the store's path.
    pub fn load(&self) -> Result<ShardCheckpoint, ShardStoreError> {
        let bytes = fs::read(&self.path).map_err(|e| ShardStoreError::Io(e.to_string()))?;
        decode_checkpoint(&bytes)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ShardStoreError> {
        let end = self.pos.checked_add(n).ok_or(ShardStoreError::Truncated)?;
        // The last 8 bytes are the checksum trailer, not shard payload.
        if end + 8 > self.bytes.len() {
            return Err(ShardStoreError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], ShardStoreError> {
        Ok(self.take(N)?.try_into().expect("exact length"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardCheckpoint {
        ShardCheckpoint {
            dim: 5,
            shards: vec![
                ShardState {
                    counts: vec![1, 0, 3, 0, 7],
                    reports: 4,
                },
                ShardState {
                    counts: vec![0, 2, 0, 9, 1],
                    reports: 6,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let cp = sample();
        let restored = decode_checkpoint(&encode_checkpoint(&cp)).unwrap();
        assert_eq!(restored, cp);
        assert_eq!(restored.reports(), 10);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let cp = ShardCheckpoint {
            dim: 3,
            shards: vec![],
        };
        assert_eq!(decode_checkpoint(&encode_checkpoint(&cp)).unwrap(), cp);
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let bytes = encode_checkpoint(&sample());
        for cut in 0..bytes.len() {
            let err = decode_checkpoint(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ShardStoreError::Truncated | ShardStoreError::ChecksumMismatch
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_checkpoint(&sample());
        bytes[0] = b'X';
        assert_eq!(
            decode_checkpoint(&bytes).err(),
            Some(ShardStoreError::BadMagic)
        );
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = encode_checkpoint(&sample());
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        assert_eq!(
            decode_checkpoint(&bytes).err(),
            Some(ShardStoreError::UnsupportedVersion(7))
        );
    }

    #[test]
    fn any_single_bit_flip_in_the_body_is_detected() {
        let bytes = encode_checkpoint(&sample());
        // Flip one bit in every body byte past the version field; each must
        // be rejected (checksum, or a structural check for length fields).
        for i in 6..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_checkpoint(&bad).is_err(), "byte {i} flip accepted");
        }
    }

    #[test]
    fn rejects_shard_length_disagreeing_with_dim() {
        // Hand-craft a size-consistent checkpoint (one shard, three counts)
        // whose shard nonetheless declares len ≠ dim, with a valid
        // checksum, so the structural check itself is exercised.
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&VERSION.to_le_bytes());
        body.extend_from_slice(&3u64.to_le_bytes()); // dim = 3
        body.extend_from_slice(&1u32.to_le_bytes()); // one shard
        body.extend_from_slice(&5u64.to_le_bytes()); // reports
        body.extend_from_slice(&2u64.to_le_bytes()); // len = 2 ≠ dim
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&3u64.to_le_bytes());
        let sum = fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_checkpoint(&body).err(),
            Some(ShardStoreError::Corrupt("shard length differs from dim"))
        );
    }

    #[test]
    fn rejects_trailing_garbage_with_valid_checksum() {
        let mut body = encode_checkpoint(&sample());
        body.truncate(body.len() - 8); // strip checksum
        body.extend_from_slice(&[0u8; 4]); // garbage
        let sum = fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_checkpoint(&body).err(),
            Some(ShardStoreError::Corrupt("layout disagrees with file size"))
        );
    }

    #[test]
    fn huge_declared_sizes_with_forged_checksum_never_panic_or_allocate() {
        // FNV is forgeable, so an attacker-controlled file can carry any
        // dim/shard_count with a valid trailer; decoding must reject it
        // with a typed error before sizing any allocation from it.
        for (dim, shard_count) in [
            (1u64 << 61, 1u32),
            (u64::MAX, 1),
            (4, u32::MAX),
            (u64::MAX / 8, u32::MAX),
        ] {
            let mut body = Vec::new();
            body.extend_from_slice(MAGIC);
            body.extend_from_slice(&VERSION.to_le_bytes());
            body.extend_from_slice(&dim.to_le_bytes());
            body.extend_from_slice(&shard_count.to_le_bytes());
            body.extend_from_slice(&0u64.to_le_bytes()); // a little payload
            let sum = fnv1a(&body);
            body.extend_from_slice(&sum.to_le_bytes());
            assert!(
                matches!(decode_checkpoint(&body), Err(ShardStoreError::Corrupt(_))),
                "dim {dim}, shards {shard_count}"
            );
        }
    }

    #[test]
    fn file_store_roundtrips_and_replaces_atomically() {
        let path =
            std::env::temp_dir().join(format!("ldp_ingest_store_test_{}.ckpt", std::process::id()));
        let store = ShardStore::new(&path);
        assert!(!store.exists());
        store.save(&sample()).unwrap();
        assert!(store.exists());
        assert_eq!(store.load().unwrap(), sample());
        // Overwrite with a different checkpoint; the new content wins.
        let other = ShardCheckpoint {
            dim: 5,
            shards: vec![ShardState {
                counts: vec![9; 5],
                reports: 1,
            }],
        };
        store.save(&other).unwrap();
        assert_eq!(store.load().unwrap(), other);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let store = ShardStore::new("/nonexistent/dir/never.ckpt");
        assert!(matches!(store.load(), Err(ShardStoreError::Io(_))));
    }
}
