//! The worker-per-shard concurrent ingestion pipeline.
//!
//! An [`IngestPipeline`] owns N OS threads, each draining a bounded
//! `mpsc` channel of report envelopes into its own [`Shard`]. Submission
//! (routing + channel send) is cheap; expansion and accumulation happen on
//! the worker. Backpressure is the channel bound: when a worker falls
//! behind, submitters block instead of buffering without limit.
//!
//! # Determinism contract
//!
//! Every result the pipeline produces is **bit-identical to a
//! single-threaded replay of the same reports**, for any worker count and
//! any thread interleaving, because both halves of the path are
//! order-independent sums:
//!
//! 1. a shard's state is `(Σ support counts, Σ reports)` over the
//!    envelopes routed to it — addition commutes, so arrival order within
//!    a worker's queue is irrelevant;
//! 2. the merge is an index-wise sum over shards
//!    ([`ShardedAggregator::merged_counts`]), so *which* worker held a
//!    report is irrelevant too.
//!
//! The [`Router`] adds a stronger, orthogonal guarantee for
//! durability: keyed submission always fills the *same* shard for the same
//! key, so a checkpoint taken at a given submission prefix is reproducible.
//!
//! # Quiescence points
//!
//! [`IngestPipeline::snapshot`], [`IngestPipeline::checkpoint`] and
//! [`IngestPipeline::finish_round`] are barriers: each worker answers only
//! after draining everything enqueued before the barrier message (channel
//! FIFO order). Reports submitted through a cloned [`IngestHandle`] on
//! another thread are included iff their send happened before the barrier.
//! A [`BatchSubmitter`] buffers reports *submitter-side* until its batch
//! fills; those buffered reports belong to the submitter, not the
//! pipeline, until [`BatchSubmitter::flush`] sends them — so a barrier
//! observes every batched report iff the submitter flushed (or finished,
//! or dropped — drop flushes best-effort) before the barrier, the same
//! shape as the existing drop-all-handles-first contract that scoped
//! submitter threads enforce structurally.

use crate::batch::{BufferPool, ReportBatch, MAX_BATCH_INDICES};
use crate::router::Router;
use crate::store::ShardCheckpoint;
use ldp_obs::{Counter, Histogram, MetricsRegistry, Span};
use ldp_primitives::error::ParamError;
use ldp_runtime::{AggregateSnapshot, Method, Shard, ShardedAggregator};
use loloha::LolohaParams;
use std::error::Error;
use std::fmt;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// Default bound of each worker's envelope channel. Deep enough to absorb
/// submission bursts, shallow enough that a stalled worker exerts
/// backpressure within ~a thousand envelopes.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

/// One shard's accumulated state, as captured at a quiescence point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardState {
    /// Partial support counts (length = aggregation dimension).
    pub counts: Vec<u64>,
    /// Reports folded into these counts.
    pub reports: u64,
}

impl ShardState {
    fn of(shard: &Shard) -> Self {
        Self {
            counts: shard.counts().to_vec(),
            reports: shard.reports(),
        }
    }
}

/// Why a pipeline operation was rejected.
#[derive(Debug)]
pub enum IngestError {
    /// A report's support set names an index outside the aggregation
    /// dimension.
    SupportOutOfRange {
        /// The offending index.
        index: usize,
        /// The pipeline's aggregation dimension.
        dim: usize,
    },
    /// A pre-aggregated batch's length differs from the aggregation
    /// dimension.
    BatchLenMismatch {
        /// The batch's length.
        got: usize,
        /// The pipeline's aggregation dimension.
        dim: usize,
    },
    /// A checkpoint's dimension differs from the pipeline's.
    CheckpointDimMismatch {
        /// The checkpoint's dimension.
        got: usize,
        /// The pipeline's aggregation dimension.
        dim: usize,
    },
    /// A worker thread is gone (it panicked on a poisoned task); the
    /// pipeline can no longer guarantee complete rounds.
    WorkerLost,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::SupportOutOfRange { index, dim } => {
                write!(
                    f,
                    "support index {index} outside aggregation dimension {dim}"
                )
            }
            IngestError::BatchLenMismatch { got, dim } => {
                write!(
                    f,
                    "batch length {got} differs from aggregation dimension {dim}"
                )
            }
            IngestError::CheckpointDimMismatch { got, dim } => {
                write!(
                    f,
                    "checkpoint dimension {got} differs from pipeline dimension {dim}"
                )
            }
            IngestError::WorkerLost => write!(f, "a shard worker thread terminated unexpectedly"),
        }
    }
}

impl Error for IngestError {}

/// What travels to a shard worker.
enum Envelope {
    /// One report's validated support set.
    Report(Vec<usize>),
    /// A flushed [`BatchSubmitter`] accumulator: many whole reports packed
    /// as flat `u32` indices + per-report end offsets. The worker drains
    /// it in one slice pass and recycles the buffer through the free-list.
    Reports(ReportBatch),
    /// A pre-aggregated partial histogram covering `u64` reports.
    Batch(Vec<u64>, u64),
    /// Work expanded on the worker (e.g. hash-preimage enumeration), so
    /// submission stays cheap while the O(k) part parallelizes.
    Task(Box<dyn FnOnce(&mut Shard) + Send>),
    /// Barrier: reply with the current state, keep accumulating.
    Flush(SyncSender<ShardState>),
    /// Barrier: reply with the current state, then reset for a new round.
    EndRound(SyncSender<ShardState>),
    /// Terminate the worker after draining everything enqueued before
    /// this message, even while cloned [`IngestHandle`] senders are still
    /// alive (a plain channel-closed exit would wait on them forever).
    Shutdown,
}

/// The pipeline's instrument handles (see `docs/OBS_FORMAT.md`). Shared
/// between the pipeline and every cloned [`IngestHandle`], so submissions
/// are accounted identically regardless of which side sends.
#[derive(Clone)]
struct PipelineObs {
    /// Per-shard reports routed (`index` = shard); a flushed report batch
    /// adds its whole report count, so the total is envelope-shape
    /// independent.
    routed: Vec<Counter>,
    batch_reports: Counter,
    batch_size: Histogram,
    /// Flushed [`BatchSubmitter`] envelopes.
    batches_flushed: Counter,
    /// Reports per flushed batch (count = batches, sum = reports).
    batch_fill: Histogram,
    send_blocked: Counter,
    send_blocked_ns: Histogram,
    env_report: Counter,
    env_reports: Counter,
    env_batch: Counter,
    env_task: Counter,
    env_flush: Counter,
    env_end_round: Counter,
}

impl PipelineObs {
    fn new(obs: &MetricsRegistry, workers: usize) -> Self {
        const ENVELOPES: &str = "ldp.ingest.pipeline.envelopes";
        Self {
            routed: (0..workers)
                .map(|w| obs.counter_indexed("ldp.ingest.pipeline.reports_routed", w as u32))
                .collect(),
            batch_reports: obs.counter("ldp.ingest.pipeline.batch_reports"),
            batch_size: obs.histogram("ldp.ingest.pipeline.batch_size"),
            batches_flushed: obs.counter("ldp.ingest.pipeline.batches_flushed"),
            batch_fill: obs.histogram("ldp.ingest.pipeline.batch_fill"),
            send_blocked: obs.counter("ldp.ingest.pipeline.send_blocked"),
            send_blocked_ns: obs.histogram("ldp.ingest.pipeline.send_blocked_ns"),
            env_report: obs.counter_labeled(ENVELOPES, "report"),
            env_reports: obs.counter_labeled(ENVELOPES, "report_batch"),
            env_batch: obs.counter_labeled(ENVELOPES, "batch"),
            env_task: obs.counter_labeled(ENVELOPES, "task"),
            env_flush: obs.counter_labeled(ENVELOPES, "flush"),
            env_end_round: obs.counter_labeled(ENVELOPES, "end_round"),
        }
    }
}

/// The single send funnel: accounts the envelope, then tries a
/// non-blocking send first so the send-block counter and the blocked-time
/// histogram capture exactly the submissions that hit backpressure. The
/// blocking fallback preserves per-sender FIFO order (same channel, same
/// thread), so the quiescence contract is unchanged.
fn send_tracked(
    obs: &PipelineObs,
    worker: usize,
    tx: &SyncSender<Envelope>,
    envelope: Envelope,
) -> Result<(), IngestError> {
    match &envelope {
        Envelope::Report(_) => {
            obs.env_report.inc();
            obs.routed[worker].inc();
        }
        Envelope::Reports(batch) => {
            let reports = batch.report_count() as u64;
            obs.env_reports.inc();
            obs.batches_flushed.inc();
            obs.batch_fill.record(reports);
            obs.routed[worker].inc_by(reports);
        }
        Envelope::Batch(_, reports) => {
            obs.env_batch.inc();
            obs.batch_reports.inc_by(*reports);
            obs.batch_size.record(*reports);
        }
        Envelope::Task(_) => obs.env_task.inc(),
        Envelope::Flush(_) => obs.env_flush.inc(),
        Envelope::EndRound(_) => obs.env_end_round.inc(),
        Envelope::Shutdown => {}
    }
    match tx.try_send(envelope) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(envelope)) => {
            obs.send_blocked.inc();
            let _blocked = Span::enter(&obs.send_blocked_ns);
            tx.send(envelope).map_err(|_| IngestError::WorkerLost)
        }
        Err(TrySendError::Disconnected(_)) => Err(IngestError::WorkerLost),
    }
}

fn worker_loop(dim: usize, rx: Receiver<Envelope>, pool: BufferPool) {
    let mut shard = Shard::with_dim(dim);
    while let Ok(msg) = rx.recv() {
        match msg {
            Envelope::Report(support) => shard.add_report(support),
            Envelope::Reports(mut batch) => {
                shard.add_report_batch(batch.indices(), batch.report_count() as u64);
                batch.clear();
                pool.give(batch);
            }
            Envelope::Batch(counts, reports) => shard.add_batch(&counts, reports),
            Envelope::Task(task) => task(&mut shard),
            Envelope::Flush(reply) => {
                let _ = reply.send(ShardState::of(&shard));
            }
            Envelope::EndRound(reply) => {
                let state = ShardState::of(&shard);
                shard.reset();
                let _ = reply.send(state);
            }
            Envelope::Shutdown => break,
        }
    }
}

/// A cloneable, thread-safe submission handle onto a pipeline's workers.
///
/// Handles route **by key only** (stable hashing): round-robin from
/// multiple threads would make shard contents depend on thread timing,
/// which the checkpoint layer forbids. Drop all handles before calling
/// [`IngestPipeline::finish_round`] if the round must include everything
/// the submitting threads produced (scoped threads enforce this shape).
///
/// A handle may safely outlive its pipeline: dropping the pipeline shuts
/// the workers down regardless of live handles, whose subsequent submits
/// then fail with [`IngestError::WorkerLost`].
#[derive(Clone)]
pub struct IngestHandle {
    txs: Vec<SyncSender<Envelope>>,
    router: Router,
    dim: usize,
    obs: PipelineObs,
    pool: BufferPool,
}

impl IngestHandle {
    /// Submits one report's support set, routed by a stable hash of `key`
    /// — the same [`Router::route_key`] mapping the owning pipeline uses,
    /// so handle and pipeline submissions fill identical shards. Blocks
    /// when the target worker's channel is full (backpressure).
    pub fn submit<I>(&self, key: u64, support: I) -> Result<(), IngestError>
    where
        I: IntoIterator<Item = usize>,
    {
        let support = validate_support(support, self.dim)?;
        let worker = self.router.route_key(key);
        send_tracked(
            &self.obs,
            worker,
            &self.txs[worker],
            Envelope::Report(support),
        )
    }

    /// Wraps this handle in batching mode: reports accumulate in one
    /// recycled per-shard [`ReportBatch`] and cross the channel as a
    /// single envelope every `batch_reports` reports (clamped to ≥ 1),
    /// amortizing allocation and channel traffic ~`1/batch_reports`.
    /// Routing and shard contents are identical to per-report submission
    /// — the shard fold is an order-independent sum, so results stay
    /// bit-identical for every batch size.
    ///
    /// Buffered reports are invisible to pipeline barriers until flushed;
    /// call [`BatchSubmitter::finish`] (or rely on the drop flush) before
    /// a snapshot/checkpoint/`finish_round` that must include them.
    pub fn batching(&self, batch_reports: usize) -> BatchSubmitter {
        BatchSubmitter {
            acc: self.txs.iter().map(|_| None).collect(),
            handle: self.clone(),
            capacity: batch_reports.max(1),
        }
    }
}

/// A batching submitter over an [`IngestHandle`] (see
/// [`IngestHandle::batching`]). Not `Clone`: each submitter owns its
/// accumulators; clone the underlying handle for more submitter threads.
pub struct BatchSubmitter {
    handle: IngestHandle,
    capacity: usize,
    /// One lazily pool-acquired accumulator per shard.
    acc: Vec<Option<ReportBatch>>,
}

impl BatchSubmitter {
    /// Packs one report's support set into the target shard's
    /// accumulator, flushing that accumulator first if full. Only a
    /// flush touches the channel, so this usually neither blocks nor
    /// allocates. Rejecting an out-of-range index leaves the accumulator
    /// exactly as it was (the partial report is rolled back).
    pub fn submit<I>(&mut self, key: u64, support: I) -> Result<(), IngestError>
    where
        I: IntoIterator<Item = usize>,
    {
        let worker = self.handle.router.route_key(key);
        let full = self.acc[worker].as_ref().is_some_and(|b| {
            b.report_count() >= self.capacity || b.index_count() >= MAX_BATCH_INDICES
        });
        if full {
            self.flush_shard(worker)?;
        }
        let dim = self.handle.dim;
        let batch = self.acc[worker].get_or_insert_with(|| self.handle.pool.take());
        let start = batch.index_count();
        for index in support {
            if index >= dim {
                batch.truncate_indices(start);
                return Err(IngestError::SupportOutOfRange { index, dim });
            }
            batch.push_index(index);
        }
        batch.seal_report();
        Ok(())
    }

    /// Sends every non-empty accumulator as a batch envelope, in shard
    /// order. After a flush the pipeline's barriers observe everything
    /// submitted so far.
    pub fn flush(&mut self) -> Result<(), IngestError> {
        for worker in 0..self.acc.len() {
            self.flush_shard(worker)?;
        }
        Ok(())
    }

    /// Flushes and consumes the submitter, surfacing any send failure the
    /// drop flush would swallow.
    pub fn finish(mut self) -> Result<(), IngestError> {
        self.flush()
    }

    fn flush_shard(&mut self, worker: usize) -> Result<(), IngestError> {
        let Some(batch) = self.acc[worker].take() else {
            return Ok(());
        };
        if batch.is_empty() {
            self.handle.pool.give(batch);
            return Ok(());
        }
        send_tracked(
            &self.handle.obs,
            worker,
            &self.handle.txs[worker],
            Envelope::Reports(batch),
        )
    }
}

impl Drop for BatchSubmitter {
    fn drop(&mut self) {
        // Best-effort: never lose buffered reports silently on the happy
        // path. A dead worker is unreportable here; `finish` exists for
        // callers that need the error.
        let _ = self.flush();
    }
}

fn validate_support<I>(support: I, dim: usize) -> Result<Vec<usize>, IngestError>
where
    I: IntoIterator<Item = usize>,
{
    let it = support.into_iter();
    let mut out = Vec::with_capacity(it.size_hint().0);
    for index in it {
        if index >= dim {
            return Err(IngestError::SupportOutOfRange { index, dim });
        }
        out.push(index);
    }
    Ok(out)
}

/// The concurrent shard-parallel ingestion pipeline.
///
/// See the [module docs](self) for the threading model and the determinism
/// contract. Workers persist across rounds: [`IngestPipeline::finish_round`]
/// resets their shards without tearing the threads down.
pub struct IngestPipeline {
    agg: ShardedAggregator,
    router: Router,
    txs: Vec<SyncSender<Envelope>>,
    joins: Vec<JoinHandle<()>>,
    obs: PipelineObs,
    pool: BufferPool,
}

impl fmt::Debug for IngestPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestPipeline")
            .field("workers", &self.txs.len())
            .field("dim", &self.agg.dim())
            .field("k", &self.agg.k())
            .finish()
    }
}

impl IngestPipeline {
    /// Creates a pipeline for `method` (same parameter resolution as
    /// [`ShardedAggregator::for_method`]) with `workers` shard workers
    /// (clamped to ≥ 1) and the default channel capacity.
    pub fn for_method(
        method: Method,
        k: u64,
        eps_inf: f64,
        eps_first: f64,
        workers: usize,
    ) -> Result<Self, ParamError> {
        Self::for_method_obs(
            method,
            k,
            eps_inf,
            eps_first,
            workers,
            &MetricsRegistry::global(),
        )
    }

    /// [`Self::for_method`] with an explicit telemetry registry (the
    /// default constructors instrument into the process-wide one).
    pub fn for_method_obs(
        method: Method,
        k: u64,
        eps_inf: f64,
        eps_first: f64,
        workers: usize,
        obs: &MetricsRegistry,
    ) -> Result<Self, ParamError> {
        let agg = ShardedAggregator::for_method_obs(method, k, eps_inf, eps_first, workers, obs)?;
        Ok(Self::from_aggregator_obs(
            agg,
            DEFAULT_CHANNEL_CAPACITY,
            obs,
        ))
    }

    /// Creates a LOLOHA pipeline from explicit parameters.
    pub fn for_loloha(k: u64, params: LolohaParams, workers: usize) -> Result<Self, ParamError> {
        Self::for_loloha_obs(k, params, workers, &MetricsRegistry::global())
    }

    /// [`Self::for_loloha`] with an explicit telemetry registry.
    pub fn for_loloha_obs(
        k: u64,
        params: LolohaParams,
        workers: usize,
        obs: &MetricsRegistry,
    ) -> Result<Self, ParamError> {
        let agg = ShardedAggregator::for_loloha_obs(k, params, workers, obs)?;
        Ok(Self::from_aggregator_obs(
            agg,
            DEFAULT_CHANNEL_CAPACITY,
            obs,
        ))
    }

    /// Wraps an existing aggregator: one worker per aggregator shard, each
    /// envelope channel bounded at `capacity` (clamped to ≥ 1). The
    /// aggregator should be freshly reset; its shards hold merged round
    /// state between [`Self::finish_round`] calls.
    pub fn from_aggregator(agg: ShardedAggregator, capacity: usize) -> Self {
        Self::from_aggregator_obs(agg, capacity, &MetricsRegistry::global())
    }

    /// [`Self::from_aggregator`] with an explicit telemetry registry for
    /// the *pipeline* instruments (the aggregator keeps the registry it
    /// was constructed with).
    pub fn from_aggregator_obs(
        mut agg: ShardedAggregator,
        capacity: usize,
        obs: &MetricsRegistry,
    ) -> Self {
        agg.begin_round();
        let workers = agg.shard_count();
        let dim = agg.dim();
        let capacity = capacity.max(1);
        let pool = BufferPool::new(obs);
        let mut txs = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::sync_channel(capacity);
            txs.push(tx);
            let worker_pool = pool.clone();
            joins.push(std::thread::spawn(move || {
                worker_loop(dim, rx, worker_pool)
            }));
        }
        Self {
            agg,
            router: Router::new(workers),
            txs,
            joins,
            obs: PipelineObs::new(obs, workers),
            pool,
        }
    }

    /// The aggregation dimension (`k`, or `b` for bucketized dBitFlipPM).
    pub fn dim(&self) -> usize {
        self.agg.dim()
    }

    /// The input domain size the pipeline was built for.
    pub fn k(&self) -> u64 {
        self.agg.k()
    }

    /// Number of shard workers.
    pub fn worker_count(&self) -> usize {
        self.txs.len()
    }

    /// The underlying aggregator's method metadata (reduced domain,
    /// k-binnedness, LOLOHA params, dBitFlip config).
    pub fn aggregator(&self) -> &ShardedAggregator {
        &self.agg
    }

    /// A cloneable submission handle for concurrent producers.
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            txs: self.txs.clone(),
            router: self.router.clone(),
            dim: self.agg.dim(),
            obs: self.obs.clone(),
            pool: self.pool.clone(),
        }
    }

    fn send(&self, worker: usize, envelope: Envelope) -> Result<(), IngestError> {
        send_tracked(&self.obs, worker, &self.txs[worker], envelope)
    }

    /// Submits one report's support set, routed by a stable hash of `key`
    /// (e.g. the user id). Blocks on backpressure.
    pub fn submit<I>(&mut self, key: u64, support: I) -> Result<(), IngestError>
    where
        I: IntoIterator<Item = usize>,
    {
        let support = validate_support(support, self.agg.dim())?;
        self.send(self.router.route_key(key), Envelope::Report(support))
    }

    /// Submits one report's support set round-robin on submission order.
    pub fn submit_next<I>(&mut self, support: I) -> Result<(), IngestError>
    where
        I: IntoIterator<Item = usize>,
    {
        let support = validate_support(support, self.agg.dim())?;
        let worker = self.router.route_next();
        self.send(worker, Envelope::Report(support))
    }

    /// Submits a pre-aggregated partial histogram covering `reports`
    /// reports, round-robin on submission order.
    pub fn submit_batch(&mut self, counts: Vec<u64>, reports: u64) -> Result<(), IngestError> {
        if counts.len() != self.agg.dim() {
            return Err(IngestError::BatchLenMismatch {
                got: counts.len(),
                dim: self.agg.dim(),
            });
        }
        let worker = self.router.route_next();
        self.send(worker, Envelope::Batch(counts, reports))
    }

    /// Submits work that expands *on the worker* — e.g. enumerating hash
    /// preimages before counting — routed by a stable hash of `key`. The
    /// task must only add to the shard it is given; a panicking task kills
    /// its worker and surfaces as [`IngestError::WorkerLost`] later.
    pub fn submit_task<F>(&mut self, key: u64, task: F) -> Result<(), IngestError>
    where
        F: FnOnce(&mut Shard) + Send + 'static,
    {
        self.send(self.router.route_key(key), Envelope::Task(Box::new(task)))
    }

    /// Collects one reply per worker after a barrier envelope.
    fn barrier<B>(&self, make: B) -> Result<Vec<ShardState>, IngestError>
    where
        B: Fn(SyncSender<ShardState>) -> Envelope,
    {
        let mut replies = Vec::with_capacity(self.txs.len());
        for worker in 0..self.txs.len() {
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            self.send(worker, make(reply_tx))?;
            replies.push(reply_rx);
        }
        replies
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| IngestError::WorkerLost))
            .collect()
    }

    /// Non-destructive streaming view: merges and estimates everything
    /// enqueued before the call, leaving worker state untouched.
    pub fn snapshot(&self) -> Result<AggregateSnapshot, IngestError> {
        let states = self.barrier(Envelope::Flush)?;
        let mut agg = self.agg.clone();
        agg.begin_round();
        for (i, s) in states.iter().enumerate() {
            agg.push_batch(i, &s.counts, s.reports);
        }
        Ok(agg.snapshot())
    }

    /// Captures the current per-shard states for durable persistence (see
    /// [`crate::ShardStore`]). Non-destructive; ingestion continues after.
    pub fn checkpoint(&self) -> Result<ShardCheckpoint, IngestError> {
        let states = self.barrier(Envelope::Flush)?;
        Ok(ShardCheckpoint {
            dim: self.agg.dim(),
            shards: states,
        })
    }

    /// Folds a previously captured checkpoint back in, resuming its round
    /// mid-fill. The checkpoint may come from a run with a *different*
    /// worker count: saved shard states are redistributed round-robin, and
    /// the order-independent merge makes the final round bit-identical
    /// either way.
    pub fn restore(&mut self, cp: &ShardCheckpoint) -> Result<(), IngestError> {
        if cp.dim != self.agg.dim() {
            return Err(IngestError::CheckpointDimMismatch {
                got: cp.dim,
                dim: self.agg.dim(),
            });
        }
        for state in &cp.shards {
            if state.counts.len() != cp.dim {
                return Err(IngestError::BatchLenMismatch {
                    got: state.counts.len(),
                    dim: cp.dim,
                });
            }
            self.submit_batch(state.counts.clone(), state.reports)?;
        }
        Ok(())
    }

    /// Closes the round: drains every worker, merges, estimates, and
    /// resets the workers' shards for the next round. The worker threads
    /// stay alive.
    pub fn finish_round(&mut self) -> Result<AggregateSnapshot, IngestError> {
        let states = self.barrier(Envelope::EndRound)?;
        self.agg.begin_round();
        for (i, s) in states.iter().enumerate() {
            self.agg.push_batch(i, &s.counts, s.reports);
        }
        Ok(self.agg.finish_round())
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        // An explicit shutdown envelope (not just closing our senders)
        // ends each worker loop even when cloned `IngestHandle`s are still
        // alive somewhere — otherwise this join would wait on them
        // forever. Failed sends mean the worker is already gone.
        for tx in &self.txs {
            let _ = tx.send(Envelope::Shutdown);
        }
        self.txs.clear();
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(dim_reports: &[(Vec<usize>, u64)], method: Method, k: u64) -> AggregateSnapshot {
        let mut agg = ShardedAggregator::for_method(method, k, 2.0, 1.0, 1).unwrap();
        for (support, _) in dim_reports {
            agg.push_report(0, support.iter().copied());
        }
        agg.finish_round()
    }

    fn assert_snap_eq(a: &AggregateSnapshot, b: &AggregateSnapshot, ctx: &str) {
        assert_eq!(a.counts, b.counts, "{ctx}: counts");
        assert_eq!(a.reports, b.reports, "{ctx}: reports");
        assert_eq!(a.estimate.len(), b.estimate.len(), "{ctx}: estimate len");
        for (i, (x, y)) in a.estimate.iter().zip(&b.estimate).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: estimate[{i}]");
        }
    }

    #[test]
    fn pipeline_matches_single_thread_for_every_worker_count() {
        let reports: Vec<(Vec<usize>, u64)> = (0..60u64)
            .map(|i| (vec![(i % 8) as usize, ((i * 3) % 8) as usize], i))
            .collect();
        let want = reference(&reports, Method::LGrr, 8);
        for workers in [1usize, 2, 4, 8] {
            let mut pipe = IngestPipeline::for_method(Method::LGrr, 8, 2.0, 1.0, workers).unwrap();
            for (support, key) in &reports {
                pipe.submit(*key, support.iter().copied()).unwrap();
            }
            let got = pipe.finish_round().unwrap();
            assert_snap_eq(&want, &got, &format!("{workers} workers"));
        }
    }

    #[test]
    fn workers_persist_across_rounds() {
        let mut pipe = IngestPipeline::for_method(Method::Rappor, 6, 2.0, 1.0, 3).unwrap();
        for round in 0..3u64 {
            for i in 0..20u64 {
                pipe.submit(i, [((i + round) % 6) as usize]).unwrap();
            }
            let snap = pipe.finish_round().unwrap();
            assert_eq!(snap.reports, 20, "round {round}");
        }
    }

    #[test]
    fn snapshot_is_non_destructive_and_ordered() {
        let mut pipe = IngestPipeline::for_method(Method::LGrr, 5, 2.0, 1.0, 2).unwrap();
        pipe.submit(1, [2usize]).unwrap();
        pipe.submit(2, [4usize]).unwrap();
        let snap = pipe.snapshot().unwrap();
        assert_eq!(snap.reports, 2);
        assert_eq!(snap.counts[2], 1);
        assert_eq!(snap.counts[4], 1);
        pipe.submit(3, [2usize]).unwrap();
        let fin = pipe.finish_round().unwrap();
        assert_eq!(fin.reports, 3);
        assert_eq!(fin.counts[2], 2);
    }

    #[test]
    fn handle_submission_from_many_threads_matches_single_thread() {
        let reports: Vec<Vec<usize>> = (0..200u64)
            .map(|i| vec![(i % 10) as usize, ((i * 7) % 10) as usize])
            .collect();
        let as_pairs: Vec<(Vec<usize>, u64)> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| (r.clone(), i as u64))
            .collect();
        let want = reference(&as_pairs, Method::Rappor, 10);
        let mut pipe = IngestPipeline::for_method(Method::Rappor, 10, 2.0, 1.0, 4).unwrap();
        let handle = pipe.handle();
        std::thread::scope(|s| {
            for (t, chunk) in reports.chunks(50).enumerate() {
                let h = handle.clone();
                s.spawn(move || {
                    for (j, support) in chunk.iter().enumerate() {
                        let key = (t * 50 + j) as u64;
                        h.submit(key, support.iter().copied()).unwrap();
                    }
                });
            }
        });
        drop(handle);
        let got = pipe.finish_round().unwrap();
        assert_snap_eq(&want, &got, "4 submitter threads");
    }

    #[test]
    fn backpressure_capacity_one_still_completes() {
        let agg = ShardedAggregator::for_method(Method::LGrr, 4, 2.0, 1.0, 2).unwrap();
        let mut pipe = IngestPipeline::from_aggregator(agg, 1);
        for i in 0..500u64 {
            pipe.submit(i, [(i % 4) as usize]).unwrap();
        }
        let snap = pipe.finish_round().unwrap();
        assert_eq!(snap.reports, 500);
    }

    #[test]
    fn out_of_range_support_is_rejected_before_send() {
        let mut pipe = IngestPipeline::for_method(Method::LGrr, 4, 2.0, 1.0, 2).unwrap();
        let err = pipe.submit(0, [7usize]).unwrap_err();
        assert!(matches!(
            err,
            IngestError::SupportOutOfRange { index: 7, dim: 4 }
        ));
        // The pipeline is still healthy.
        pipe.submit(0, [3usize]).unwrap();
        assert_eq!(pipe.finish_round().unwrap().reports, 1);
    }

    #[test]
    fn batch_length_mismatch_is_rejected() {
        let mut pipe = IngestPipeline::for_method(Method::LGrr, 4, 2.0, 1.0, 2).unwrap();
        let err = pipe.submit_batch(vec![0; 3], 1).unwrap_err();
        assert!(matches!(
            err,
            IngestError::BatchLenMismatch { got: 3, dim: 4 }
        ));
    }

    #[test]
    fn restore_rejects_dim_mismatch() {
        let mut pipe = IngestPipeline::for_method(Method::LGrr, 4, 2.0, 1.0, 2).unwrap();
        let cp = ShardCheckpoint {
            dim: 9,
            shards: vec![],
        };
        assert!(matches!(
            pipe.restore(&cp).unwrap_err(),
            IngestError::CheckpointDimMismatch { got: 9, dim: 4 }
        ));
    }

    #[test]
    fn checkpoint_restore_resumes_mid_round() {
        let mut uninterrupted =
            IngestPipeline::for_method(Method::BiLoloha, 12, 2.0, 1.0, 3).unwrap();
        let mut first = IngestPipeline::for_method(Method::BiLoloha, 12, 2.0, 1.0, 3).unwrap();
        for i in 0..40u64 {
            uninterrupted.submit(i, [(i % 12) as usize]).unwrap();
            first.submit(i, [(i % 12) as usize]).unwrap();
        }
        // "Crash" after 40 reports; resume on a pipeline with a different
        // worker count.
        let cp = first.checkpoint().unwrap();
        drop(first);
        let mut resumed = IngestPipeline::for_method(Method::BiLoloha, 12, 2.0, 1.0, 5).unwrap();
        resumed.restore(&cp).unwrap();
        for i in 40..90u64 {
            uninterrupted.submit(i, [(i % 12) as usize]).unwrap();
            resumed.submit(i, [(i % 12) as usize]).unwrap();
        }
        let want = uninterrupted.finish_round().unwrap();
        let got = resumed.finish_round().unwrap();
        assert_snap_eq(&want, &got, "checkpoint resume");
    }

    #[test]
    fn tasks_expand_on_the_worker() {
        let mut pipe = IngestPipeline::for_method(Method::LGrr, 6, 2.0, 1.0, 2).unwrap();
        for i in 0..30u64 {
            pipe.submit_task(i, move |shard| {
                shard.add_report([(i % 6) as usize]);
            })
            .unwrap();
        }
        let snap = pipe.finish_round().unwrap();
        assert_eq!(snap.reports, 30);
        assert_eq!(snap.counts.iter().sum::<u64>(), 30);
    }

    #[test]
    fn dropping_the_pipeline_with_a_live_handle_does_not_hang() {
        let pipe = IngestPipeline::for_method(Method::LGrr, 4, 2.0, 1.0, 2).unwrap();
        let handle = pipe.handle();
        handle.submit(0, [1usize]).unwrap();
        drop(pipe); // must join the workers despite the live handle
        let err = handle.submit(1, [2usize]).unwrap_err();
        assert!(matches!(err, IngestError::WorkerLost));
    }

    #[test]
    fn worker_count_clamps_to_one() {
        let pipe = IngestPipeline::for_method(Method::LGrr, 4, 2.0, 1.0, 0).unwrap();
        assert_eq!(pipe.worker_count(), 1);
    }

    #[test]
    fn telemetry_accounts_every_submission_and_stays_unblocked_when_unconstrained() {
        let reg = MetricsRegistry::new();
        let agg = ShardedAggregator::for_method_obs(Method::LGrr, 4, 2.0, 1.0, 2, &reg).unwrap();
        let mut pipe = IngestPipeline::from_aggregator_obs(agg, DEFAULT_CHANNEL_CAPACITY, &reg);
        for i in 0..100u64 {
            pipe.submit(i, [(i % 4) as usize]).unwrap();
        }
        pipe.submit_batch(vec![1, 0, 0, 0], 5).unwrap();
        assert_eq!(pipe.finish_round().unwrap().reports, 105);

        let snap = reg.snapshot();
        // Routed counts sum exactly to the Report-envelope submissions.
        assert_eq!(
            snap.counter_total("ldp.ingest.pipeline.reports_routed"),
            100
        );
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.batch_reports"), 5);
        assert_eq!(snap.hist_count("ldp.ingest.pipeline.batch_size"), 1);
        // Envelope counts by kind: 100 reports, 1 batch, 2 end_round
        // barriers (one per worker).
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.envelopes"), 103);
        // A ~1k-deep channel never fills at this scale: the backpressure
        // signal must stay exactly zero in the unconstrained case.
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.send_blocked"), 0);
        assert_eq!(snap.hist_count("ldp.ingest.pipeline.send_blocked_ns"), 0);
    }

    #[test]
    fn batched_submission_matches_per_report_for_every_batch_size() {
        let reports: Vec<(Vec<usize>, u64)> = (0..60u64)
            .map(|i| (vec![(i % 8) as usize, ((i * 3) % 8) as usize], i))
            .collect();
        let want = reference(&reports, Method::LGrr, 8);
        // Batch sizes spanning degenerate (1), non-divisor (7), and
        // larger-than-round (full buffering until the finish flush).
        for batch in [1usize, 7, 64, 4096] {
            for workers in [1usize, 3] {
                let mut pipe =
                    IngestPipeline::for_method(Method::LGrr, 8, 2.0, 1.0, workers).unwrap();
                let mut sub = pipe.handle().batching(batch);
                for (support, key) in &reports {
                    sub.submit(*key, support.iter().copied()).unwrap();
                }
                sub.finish().unwrap();
                let got = pipe.finish_round().unwrap();
                assert_snap_eq(&want, &got, &format!("batch {batch}, {workers} workers"));
            }
        }
    }

    #[test]
    fn unflushed_batches_drain_on_drop() {
        let mut pipe = IngestPipeline::for_method(Method::LGrr, 4, 2.0, 1.0, 2).unwrap();
        let mut sub = pipe.handle().batching(1024);
        for i in 0..10u64 {
            sub.submit(i, [(i % 4) as usize]).unwrap();
        }
        drop(sub); // never filled, never explicitly flushed
        assert_eq!(pipe.finish_round().unwrap().reports, 10);
    }

    #[test]
    fn batched_out_of_range_support_rolls_back_the_partial_report() {
        let mut pipe = IngestPipeline::for_method(Method::LGrr, 4, 2.0, 1.0, 1).unwrap();
        let mut sub = pipe.handle().batching(16);
        sub.submit(0, [1usize]).unwrap();
        let err = sub.submit(0, [2usize, 9]).unwrap_err();
        assert!(matches!(
            err,
            IngestError::SupportOutOfRange { index: 9, dim: 4 }
        ));
        // The rejected report left no trace; the submitter still works.
        sub.submit(0, [3usize]).unwrap();
        sub.finish().unwrap();
        let snap = pipe.finish_round().unwrap();
        assert_eq!(snap.reports, 2);
        assert_eq!(snap.counts, vec![0, 1, 0, 1]);
    }

    #[test]
    fn batched_telemetry_accounts_reports_batches_and_recycling() {
        let reg = MetricsRegistry::new();
        let agg = ShardedAggregator::for_method_obs(Method::LGrr, 4, 2.0, 1.0, 1, &reg).unwrap();
        let mut pipe = IngestPipeline::from_aggregator_obs(agg, DEFAULT_CHANNEL_CAPACITY, &reg);
        let mut sub = pipe.handle().batching(10);
        for i in 0..25u64 {
            sub.submit(i, [(i % 4) as usize]).unwrap();
        }
        sub.finish().unwrap();
        assert_eq!(pipe.finish_round().unwrap().reports, 25);

        let snap = reg.snapshot();
        // Every report is visible in the routed counters regardless of
        // envelope shape: 25 reports over 3 flushes (10 + 10 + 5).
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.reports_routed"), 25);
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.batches_flushed"), 3);
        assert_eq!(snap.hist_count("ldp.ingest.pipeline.batch_fill"), 3);
        assert_eq!(snap.hist_sum("ldp.ingest.pipeline.batch_fill"), 25);
        // 3 report_batch envelopes + 1 end_round barrier.
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.envelopes"), 4);
        // One shard: first take is a miss, the two refills hit the
        // free-list once the worker recycles a drained buffer.
        assert!(snap.counter_total("ldp.ingest.pipeline.bufpool") >= 3);
    }

    #[test]
    fn batched_submission_trips_the_backpressure_instruments() {
        // Same shape as the per-report test below: one worker parked on a
        // gate behind a capacity-1 channel, so the second flushed batch
        // deterministically finds the queue full.
        let reg = MetricsRegistry::new();
        let agg = ShardedAggregator::for_method_obs(Method::LGrr, 4, 2.0, 1.0, 1, &reg).unwrap();
        let mut pipe = IngestPipeline::from_aggregator_obs(agg, 1, &reg);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pipe.submit_task(0, move |_| {
            let _ = gate_rx.recv();
        })
        .unwrap();
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            let _ = gate_tx.send(());
        });
        let mut sub = pipe.handle().batching(1);
        sub.submit(1, [0usize]).unwrap();
        sub.submit(2, [1usize]).unwrap();
        sub.submit(3, [2usize]).unwrap();
        sub.finish().unwrap();
        releaser.join().unwrap();
        assert_eq!(pipe.finish_round().unwrap().reports, 3);

        let snap = reg.snapshot();
        let blocked = snap.counter_total("ldp.ingest.pipeline.send_blocked");
        assert!(blocked >= 1, "blocked {blocked} sends, expected at least 1");
        assert_eq!(
            snap.hist_count("ldp.ingest.pipeline.send_blocked_ns"),
            blocked
        );
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.reports_routed"), 3);
    }

    #[test]
    fn mid_batch_checkpoint_loses_and_duplicates_nothing() {
        // 40 reports at batch 16: flushes land at 16 and 32, leaving 8
        // buffered submitter-side. A checkpoint taken there must see
        // exactly the flushed prefix; resuming from it and resubmitting
        // the unacknowledged suffix reproduces the uninterrupted round —
        // no buffered report lost, none double-counted.
        let mut uninterrupted =
            IngestPipeline::for_method(Method::BiLoloha, 12, 2.0, 1.0, 3).unwrap();
        for i in 0..90u64 {
            uninterrupted.submit(i, [(i % 12) as usize]).unwrap();
        }
        let want = uninterrupted.finish_round().unwrap();

        // One worker on the crashing side: every report routes to the
        // same accumulator, so the flushed prefix is exactly 32 (flushes
        // at submits 17 and 33, leaving reports 32..40 buffered).
        let first = IngestPipeline::for_method(Method::BiLoloha, 12, 2.0, 1.0, 1).unwrap();
        let mut sub = first.handle().batching(16);
        for i in 0..40u64 {
            sub.submit(i, [(i % 12) as usize]).unwrap();
        }
        let cp = first.checkpoint().unwrap();
        let acknowledged: u64 = cp.shards.iter().map(|s| s.reports).sum();
        assert_eq!(acknowledged, 32, "checkpoint sees only flushed batches");
        drop(sub); // the 8 buffered reports die with the "crash"
        drop(first);

        let mut resumed = IngestPipeline::for_method(Method::BiLoloha, 12, 2.0, 1.0, 5).unwrap();
        resumed.restore(&cp).unwrap();
        let mut sub = resumed.handle().batching(16);
        // The client resubmits everything past the acknowledged prefix.
        for i in acknowledged..90u64 {
            sub.submit(i, [(i % 12) as usize]).unwrap();
        }
        sub.finish().unwrap();
        let got = resumed.finish_round().unwrap();
        assert_snap_eq(&want, &got, "mid-batch checkpoint resume");
    }

    #[test]
    fn tiny_channel_bound_trips_the_backpressure_instruments() {
        // One worker, capacity-1 channel. The first envelope is a task
        // that parks the worker on a gate; with the worker parked, at
        // most one more envelope fits in the channel, so by the third
        // submission `try_send` deterministically observes a full queue.
        let reg = MetricsRegistry::new();
        let agg = ShardedAggregator::for_method_obs(Method::LGrr, 4, 2.0, 1.0, 1, &reg).unwrap();
        let mut pipe = IngestPipeline::from_aggregator_obs(agg, 1, &reg);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pipe.submit_task(0, move |_| {
            let _ = gate_rx.recv();
        })
        .unwrap();
        // Opens the gate 40ms from now, while the main thread sits in the
        // blocking send below.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            let _ = gate_tx.send(());
        });
        pipe.submit(1, [0usize]).unwrap();
        pipe.submit(2, [1usize]).unwrap();
        releaser.join().unwrap();
        assert_eq!(pipe.finish_round().unwrap().reports, 2);

        let snap = reg.snapshot();
        let blocked = snap.counter_total("ldp.ingest.pipeline.send_blocked");
        assert!(blocked >= 1, "blocked {blocked} sends, expected at least 1");
        assert_eq!(
            snap.hist_count("ldp.ingest.pipeline.send_blocked_ns"),
            blocked
        );
        assert!(snap.hist_sum("ldp.ingest.pipeline.send_blocked_ns") > 0);
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.reports_routed"), 2);
    }
}
