//! The zero-alloc batched report transport.
//!
//! Per-report submission pays one heap allocation and one channel message
//! per report — at population scale the transport constant factors, not
//! the protocol math, dominate ingest cost. This module amortizes both:
//! a [`ReportBatch`] packs many whole reports into one flat `u32` index
//! buffer (plus per-report end offsets), a
//! [`BatchSubmitter`](crate::BatchSubmitter) accumulates one batch per
//! shard and flushes a single envelope when the batch fills, and a
//! free-list (`BufferPool`) recycles the drained buffers back to
//! submitters so steady-state ingestion allocates nothing.
//!
//! # Index width invariant
//!
//! Transport indices are `u32` — half the copy bandwidth of `usize` on
//! 64-bit hosts. Every index is validated against the aggregation
//! dimension before it is narrowed, and the narrowing itself is a checked
//! `u32::try_from` (never a silent `as` cast): a dimension beyond
//! `u32::MAX` — far past any domain in the paper or the roadmap — fails
//! loudly instead of corrupting counts. Batch end offsets stay in `u32`
//! range because a batch flushes long before it can accumulate
//! `MAX_BATCH_INDICES` indices.

use ldp_obs::{Counter, MetricsRegistry};
use std::sync::{Arc, Mutex};

/// Default number of reports a [`BatchSubmitter`](crate::BatchSubmitter)
/// packs per shard before
/// flushing an envelope. Deep enough to amortize the channel send and the
/// buffer hand-off ~1/256 per report, shallow enough that a batch stays
/// well inside a cache-friendly footprint at paper-scale support sizes.
pub const DEFAULT_BATCH_REPORTS: usize = 256;

/// A full accumulator additionally flushes once its flat index buffer
/// reaches this many entries, so `u32` end offsets cannot overflow even
/// with enormous per-report supports (documented invariant: offsets are
/// only pushed while `indices.len() < MAX_BATCH_INDICES + dim ≪ u32::MAX`).
pub(crate) const MAX_BATCH_INDICES: usize = 1 << 20;

/// Buffers the free-list keeps for reuse; returns beyond the cap are
/// dropped so an ingestion burst cannot pin its peak memory forever.
const POOL_CAP: usize = 64;

/// A packed batch of whole reports: the concatenation of each report's
/// validated support indices in transport width (`u32`), plus one end
/// offset per report delimiting its slice of the flat buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportBatch {
    indices: Vec<u32>,
    ends: Vec<u32>,
}

impl ReportBatch {
    /// An empty batch with no capacity (submitters normally take
    /// recycled, pre-grown buffers from the pipeline's free list
    /// instead).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of whole reports packed in this batch.
    #[inline]
    pub fn report_count(&self) -> usize {
        self.ends.len()
    }

    /// Total support indices across all packed reports.
    #[inline]
    pub fn index_count(&self) -> usize {
        self.indices.len()
    }

    /// Whether the batch holds no reports.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The flat validated support indices, all reports concatenated.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Per-report end offsets into [`Self::indices`] (report `i` spans
    /// `ends[i-1]..ends[i]`, with `ends[-1]` read as 0).
    pub fn ends(&self) -> &[u32] {
        &self.ends
    }

    /// Iterates the packed reports as index slices, in submission order.
    pub fn reports(&self) -> impl Iterator<Item = &[u32]> {
        self.ends.iter().scan(0usize, |start, &end| {
            let slice = &self.indices[*start..end as usize];
            *start = end as usize;
            Some(slice)
        })
    }

    /// Empties the batch, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.ends.clear();
    }

    /// Reassembles a batch from its flat parts (the wire shape `ldp_netd`
    /// ships: indices plus per-report end offsets). Rejects structurally
    /// inconsistent inputs — offsets must be nondecreasing and the last
    /// offset must delimit exactly the index buffer — so a decoded batch
    /// upholds the same invariants a locally packed one does.
    pub fn from_parts(indices: Vec<u32>, ends: Vec<u32>) -> Result<Self, &'static str> {
        let mut prev = 0u32;
        for &end in &ends {
            if end < prev {
                return Err("batch end offsets must be nondecreasing");
            }
            prev = end;
        }
        if prev as usize != indices.len() {
            return Err("last end offset must equal the index count");
        }
        Ok(Self { indices, ends })
    }

    /// Disassembles the batch into its flat parts (`indices`, `ends`),
    /// the inverse of [`Self::from_parts`].
    pub fn into_parts(self) -> (Vec<u32>, Vec<u32>) {
        (self.indices, self.ends)
    }

    /// Packs one whole report of transport-width indices. The caller has
    /// already validated every index against the aggregation dimension
    /// and bounds the batch size (the wire layer flushes long before the
    /// `u32` offset invariant could be threatened).
    pub fn push_report<I: IntoIterator<Item = u32>>(&mut self, support: I) {
        self.indices.extend(support);
        self.seal_report();
    }

    /// Appends one validated index to the report currently being packed.
    /// The caller ([`crate::pipeline::BatchSubmitter`]) has already
    /// range-checked `index < dim`; the width narrowing is still a typed
    /// conversion so a `> u32::MAX` dimension fails loudly (see the
    /// module docs) instead of silently truncating.
    #[inline]
    pub(crate) fn push_index(&mut self, index: usize) {
        self.indices
            .push(u32::try_from(index).expect("transport invariant: dim fits u32"));
    }

    /// Rolls back a partially packed report (validation failed mid-way).
    #[inline]
    pub(crate) fn truncate_indices(&mut self, len: usize) {
        self.indices.truncate(len);
    }

    /// Seals the report packed since the previous seal. The offset fits
    /// `u32` by the [`MAX_BATCH_INDICES`] flush invariant.
    #[inline]
    pub(crate) fn seal_report(&mut self) {
        self.ends.push(
            u32::try_from(self.indices.len()).expect("transport invariant: batch offsets fit u32"),
        );
    }
}

/// The shared free-list recycling drained [`ReportBatch`] buffers from
/// shard workers back to submitters. Cloning shares the same pool.
#[derive(Debug, Clone)]
pub(crate) struct BufferPool {
    slots: Arc<Mutex<Vec<ReportBatch>>>,
    hits: Counter,
    misses: Counter,
}

impl BufferPool {
    pub(crate) fn new(obs: &MetricsRegistry) -> Self {
        const BUFPOOL: &str = "ldp.ingest.pipeline.bufpool";
        Self {
            slots: Arc::new(Mutex::new(Vec::new())),
            hits: obs.counter_labeled(BUFPOOL, "hit"),
            misses: obs.counter_labeled(BUFPOOL, "miss"),
        }
    }

    fn slots(&self) -> std::sync::MutexGuard<'_, Vec<ReportBatch>> {
        // A poisoned lock only means another thread panicked mid-push;
        // the Vec itself is always in a valid state.
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pops a recycled buffer, or allocates a fresh empty one (a miss —
    /// steady state after warm-up should be all hits).
    pub(crate) fn take(&self) -> ReportBatch {
        match self.slots().pop() {
            Some(batch) => {
                self.hits.inc();
                batch
            }
            None => {
                self.misses.inc();
                ReportBatch::new()
            }
        }
    }

    /// Returns an emptied buffer for reuse (dropped beyond the cap).
    pub(crate) fn give(&self, batch: ReportBatch) {
        debug_assert!(batch.is_empty(), "recycled buffers must be cleared");
        let mut slots = self.slots();
        if slots.len() < POOL_CAP {
            slots.push(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_reports_as_flat_indices_with_end_offsets() {
        let mut b = ReportBatch::new();
        for report in [&[0usize, 3, 5][..], &[1][..], &[][..]] {
            let start = b.index_count();
            for &i in report {
                b.push_index(i);
            }
            assert!(start <= b.index_count());
            b.seal_report();
        }
        assert_eq!(b.report_count(), 3);
        assert_eq!(b.index_count(), 4);
        assert_eq!(b.indices(), &[0, 3, 5, 1]);
        assert_eq!(b.ends(), &[3, 4, 4]);
        let unpacked: Vec<Vec<u32>> = b.reports().map(<[u32]>::to_vec).collect();
        assert_eq!(unpacked, vec![vec![0, 3, 5], vec![1], vec![]]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.index_count(), 0);
    }

    #[test]
    fn truncate_rolls_back_a_partial_report() {
        let mut b = ReportBatch::new();
        b.push_index(7);
        b.seal_report();
        let start = b.index_count();
        b.push_index(1);
        b.push_index(2);
        b.truncate_indices(start);
        assert_eq!(b.report_count(), 1);
        assert_eq!(b.indices(), &[7]);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_inconsistency() {
        let mut packed = ReportBatch::new();
        packed.push_report([0u32, 3, 5]);
        packed.push_report([1u32]);
        packed.push_report(std::iter::empty());
        let (indices, ends) = packed.clone().into_parts();
        let rebuilt = ReportBatch::from_parts(indices, ends).unwrap();
        assert_eq!(rebuilt, packed);

        assert!(ReportBatch::from_parts(vec![1, 2], vec![2, 1]).is_err());
        assert!(ReportBatch::from_parts(vec![1, 2], vec![1]).is_err());
        assert!(ReportBatch::from_parts(vec![], vec![]).unwrap().is_empty());
    }

    #[test]
    fn pool_recycles_and_counts_hits_and_misses() {
        let reg = MetricsRegistry::new();
        let pool = BufferPool::new(&reg);
        let mut a = pool.take(); // miss: pool starts empty
        a.push_index(3);
        a.seal_report();
        a.clear();
        pool.give(a);
        let _b = pool.take(); // hit: the recycled buffer
        let _c = pool.take(); // miss again
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("ldp.ingest.pipeline.bufpool"), 3);
    }
}
