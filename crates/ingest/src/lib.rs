//! Concurrent shard-parallel ingestion with durable shard-state
//! checkpoints.
//!
//! `ldp_runtime` gives the workspace *sharded* aggregation — independent
//! partial histograms with a deterministic, order-independent merge — but
//! filling those shards was still the caller's job, on the caller's
//! thread. This crate adds the missing collector half for population-scale
//! deployments:
//!
//! * [`IngestPipeline`] — a worker-per-shard thread pool over bounded
//!   `mpsc` channels: report envelopes (single supports, packed report
//!   batches, pre-aggregated histograms, or expand-on-worker tasks) are
//!   routed to a worker, drained into its own [`ldp_runtime::Shard`], and
//!   merged at round close. Bounded channels give backpressure instead of
//!   unbounded buffering.
//! * [`BatchSubmitter`] / [`ReportBatch`] — the zero-alloc batched
//!   transport: reports pack into recycled per-shard `u32` index buffers
//!   and cross the channel ~`1/`[`DEFAULT_BATCH_REPORTS`] as often as
//!   per-report submission, bit-identically (see the [`batch`] module).
//! * [`Router`] — deterministic report → shard placement (stable key hash
//!   or round-robin), so replays fill the same shards.
//! * [`ShardStore`] / [`ShardCheckpoint`] — a versioned, length-prefixed,
//!   checksummed binary snapshot of per-shard counts + report totals with
//!   atomic file replacement, so a collection round can resume *mid-fill*
//!   after a restart. Decoding failures are typed [`ShardStoreError`]s,
//!   never panics.
//!
//! # Determinism contract
//!
//! Concurrent runs are bit-identical to single-threaded replay for any
//! worker count: shard accumulation and the cross-shard merge are both
//! order-independent sums, and routing is a pure function of the report
//! key (or submission index). See the [`pipeline`] module docs for the
//! precise argument, and `tests/` for the property suite that pins it
//! across every [`Method`](ldp_runtime::Method) and worker counts
//! {1, 2, 4, 8}.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod pipeline;
pub mod router;
pub mod store;

pub use batch::{ReportBatch, DEFAULT_BATCH_REPORTS};
pub use pipeline::{
    BatchSubmitter, IngestError, IngestHandle, IngestPipeline, ShardState, DEFAULT_CHANNEL_CAPACITY,
};
pub use router::Router;
pub use store::{
    decode_checkpoint, encode_checkpoint, ShardCheckpoint, ShardStore, ShardStoreError,
};
