//! Property-based tests for the hash substrate.

use ldp_hash::{
    BucketMapper, CarterWegman, CwHash, MixFamily, MixHash, Preimages, SeededHash, UniversalFamily,
};
use ldp_rand::derive_rng;
use proptest::prelude::*;

proptest! {
    /// Both families always hash into [0, g) and are pure functions.
    #[test]
    fn hashes_in_range_and_pure(seed in any::<u64>(), g in 2u32..64, v in any::<u64>()) {
        let mut rng = derive_rng(seed, 0);
        let cw = CarterWegman::new(g).unwrap().sample(&mut rng);
        let mix = MixFamily::new(g).unwrap().sample(&mut rng);
        for h in [&cw as &dyn SeededHash, &mix] {
            let x = h.hash(v);
            prop_assert!(x < g);
            prop_assert_eq!(x, h.hash(v));
        }
    }

    /// Reconstructed hash functions agree with the originals everywhere.
    #[test]
    fn hash_functions_serialize(seed in any::<u64>(), g in 2u32..32, vs in prop::collection::vec(any::<u64>(), 8)) {
        let mut rng = derive_rng(seed, 1);
        let cw = CarterWegman::new(g).unwrap().sample(&mut rng);
        let (a, b) = cw.parts();
        let cw2 = CwHash::from_parts(a, b, g).unwrap();
        let mix = MixFamily::new(g).unwrap().sample(&mut rng);
        let mix2 = MixHash::from_seed(mix.seed(), g).unwrap();
        for &v in &vs {
            prop_assert_eq!(cw.hash(v), cw2.hash(v));
            prop_assert_eq!(mix.hash(v), mix2.hash(v));
        }
    }

    /// Preimages always partition the domain, for any sampled function.
    #[test]
    fn preimages_partition(seed in any::<u64>(), g in 2u32..16, k in 1u64..2_000) {
        let mut rng = derive_rng(seed, 2);
        let h = CarterWegman::new(g).unwrap().sample(&mut rng);
        let pre = Preimages::build(&h, k);
        let total: usize = (0..g).map(|c| pre.cell(c).len()).sum();
        prop_assert_eq!(total as u64, k);
        for c in 0..g {
            for &v in pre.cell(c) {
                prop_assert_eq!(h.hash(v as u64), c);
            }
        }
    }

    /// Bucket mapping is monotone, surjective onto [0, b), and its ranges
    /// tile the domain.
    #[test]
    fn bucket_mapper_invariants(k in 1u64..10_000, b_frac in 0.0f64..=1.0) {
        let b = ((k as f64 * b_frac) as u32).clamp(1, k.min(u32::MAX as u64) as u32);
        let m = BucketMapper::new(k, b).unwrap();
        let mut prev = 0u32;
        let mut seen_last = false;
        let step = (k / 512).max(1);
        for v in (0..k).step_by(step as usize) {
            let bu = m.bucket(v);
            prop_assert!(bu < b);
            prop_assert!(bu >= prev, "not monotone at {v}");
            prev = bu;
            seen_last |= bu == b - 1;
        }
        prop_assert_eq!(m.bucket(k - 1), b - 1);
        let _ = seen_last;
        // Ranges tile.
        prop_assert_eq!(m.range_of(0).0, 0);
        prop_assert_eq!(m.range_of(b - 1).1, k);
        for c in 1..b.min(64) {
            prop_assert_eq!(m.range_of(c - 1).1, m.range_of(c).0);
        }
    }

    /// Distinct Carter–Wegman samples almost surely differ somewhere on a
    /// modest domain (the family is rich).
    #[test]
    fn family_is_not_degenerate(seed in any::<u64>()) {
        let fam = CarterWegman::new(8).unwrap();
        let mut rng = derive_rng(seed, 3);
        let h1 = fam.sample(&mut rng);
        let h2 = fam.sample(&mut rng);
        prop_assume!(h1.parts() != h2.parts());
        let differs = (0..4096u64).any(|v| h1.hash(v) != h2.hash(v));
        prop_assert!(differs);
    }
}
