//! CSR-layout preimage tables for server-side support counting.
//!
//! An LH/LOLOHA server must compute, at every time step, the support count
//! `C(v) = |{u : H_u(v) = x_u}|` for every `v`. Walking the hash forward is
//! O(n·k) hash evaluations per step. Instead we invert each user's hash once
//! at registration: `Preimages` stores, for every cell `x ∈ [g)`, the list of
//! domain values hashing to `x`. A report `x_u` then contributes one
//! increment per preimage (k/g on average), with no hashing on the hot path.

use crate::SeededHash;

/// The inverse image of a hash function over a finite domain `[0, k)`,
/// stored in compressed sparse row layout (one contiguous value buffer plus
/// `g + 1` offsets).
#[derive(Debug, Clone)]
pub struct Preimages {
    /// Domain values grouped by hash cell.
    values: Vec<u32>,
    /// `offsets[x]..offsets[x+1]` delimits the values hashing to `x`.
    offsets: Vec<u32>,
}

impl Preimages {
    /// Builds the preimage table of `hash` over the domain `[0, k)`.
    ///
    /// # Panics
    /// Panics if `k` exceeds `u32::MAX` (domains here are ≤ a few thousand).
    pub fn build<H: SeededHash>(hash: &H, k: u64) -> Self {
        assert!(k <= u32::MAX as u64, "domain too large for preimage table");
        let g = hash.g() as usize;
        let mut counts = vec![0u32; g + 1];
        let cells: Vec<u32> = (0..k).map(|v| hash.hash(v)).collect();
        for &c in &cells {
            counts[c as usize + 1] += 1;
        }
        for i in 0..g {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut values = vec![0u32; k as usize];
        for (v, &c) in cells.iter().enumerate() {
            let slot = cursor[c as usize];
            values[slot as usize] = v as u32;
            cursor[c as usize] += 1;
        }
        Self { values, offsets }
    }

    /// The number of hash cells `g`.
    pub fn g(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// The domain size `k`.
    pub fn k(&self) -> u64 {
        self.values.len() as u64
    }

    /// The domain values hashing to cell `x`.
    #[inline]
    pub fn cell(&self, x: u32) -> &[u32] {
        let lo = self.offsets[x as usize] as usize;
        let hi = self.offsets[x as usize + 1] as usize;
        &self.values[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CarterWegman, MixFamily, UniversalFamily};
    use ldp_rand::derive_rng;

    fn check_partition<H: SeededHash>(h: &H, k: u64) {
        let pre = Preimages::build(h, k);
        assert_eq!(pre.k(), k);
        assert_eq!(pre.g(), h.g());
        let mut seen = vec![false; k as usize];
        for x in 0..h.g() {
            for &v in pre.cell(x) {
                assert_eq!(h.hash(v as u64), x, "value {v} in wrong cell {x}");
                assert!(!seen[v as usize], "value {v} appears twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition misses values");
    }

    #[test]
    fn partitions_domain_exactly_carter_wegman() {
        let fam = CarterWegman::new(5).unwrap();
        let mut rng = derive_rng(220, 0);
        for _ in 0..5 {
            let h = fam.sample(&mut rng);
            check_partition(&h, 360);
        }
    }

    #[test]
    fn partitions_domain_exactly_mix() {
        let fam = MixFamily::new(2).unwrap();
        let mut rng = derive_rng(221, 0);
        for _ in 0..5 {
            let h = fam.sample(&mut rng);
            check_partition(&h, 97);
        }
    }

    #[test]
    fn cells_have_expected_average_size() {
        let fam = CarterWegman::new(4).unwrap();
        let mut rng = derive_rng(222, 0);
        let h = fam.sample(&mut rng);
        let pre = Preimages::build(&h, 1000);
        let sizes: Vec<usize> = (0..4).map(|x| pre.cell(x).len()).collect();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 1000);
        for &s in &sizes {
            // Expected 250 per cell; a universal hash keeps cells within a
            // few standard deviations.
            assert!((s as f64 - 250.0).abs() < 100.0, "cell size {s}");
        }
    }

    #[test]
    fn empty_domain_builds() {
        let fam = CarterWegman::new(3).unwrap();
        let mut rng = derive_rng(223, 0);
        let h = fam.sample(&mut rng);
        let pre = Preimages::build(&h, 0);
        assert_eq!(pre.k(), 0);
        for x in 0..3 {
            assert!(pre.cell(x).is_empty());
        }
    }
}
