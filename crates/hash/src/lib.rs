//! Universal hash families and domain generalization for local-hashing LDP.
//!
//! Local Hashing protocols (BLH/OLH, and LOLOHA on top of them) require each
//! user to pick a hash function `H : [k] → [g]` uniformly from a *universal*
//! family: for any fixed pair `v1 ≠ v2`, `Pr_H[H(v1) = H(v2)] ≤ 1/g`. This
//! crate provides:
//!
//! * [`CarterWegman`] — the provably 2-universal family
//!   `h(x) = ((a·x + b) mod p) mod g` with `p = 2^61 − 1`. Default choice:
//!   the privacy argument of LOLOHA leans on the universal property.
//! * [`MixFamily`] — a faster heuristic family built from the SplitMix64
//!   finalizer (the moral equivalent of the seeded xxhash used by the
//!   paper's Python reference implementation).
//! * [`BucketMapper`] — the equal-width domain generalization
//!   `bucket : [k] → [b]` used by dBitFlipPM.
//! * [`Preimages`] — a CSR-layout inverse table `[g] → {v : H(v) = x}`,
//!   which turns server-side support counting from O(k) hash evaluations
//!   per user into an O(k/g) list walk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod carter_wegman;
mod mix;
mod preimage;

pub use bucket::BucketMapper;
pub use carter_wegman::{CarterWegman, CwHash, MERSENNE_P};
pub use mix::{MixFamily, MixHash};
pub use preimage::Preimages;

use rand::RngCore;

/// A sampled member of a universal hash family, mapping `u64` inputs to
/// `[0, g)`.
pub trait SeededHash {
    /// The reduced domain size `g ≥ 2`.
    fn g(&self) -> u32;

    /// Hashes `value` into `[0, g)`. Must be deterministic.
    fn hash(&self, value: u64) -> u32;
}

/// A universal family of hash functions `[k] → [g]`.
pub trait UniversalFamily {
    /// The concrete hash type produced by [`Self::sample`].
    type Hash: SeededHash + Clone + Send + Sync + 'static;

    /// The reduced domain size `g ≥ 2` shared by all members.
    fn g(&self) -> u32;

    /// Draws one hash function uniformly from the family.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Hash;
}

/// Measures the empirical pairwise collision rate of a family: the fraction
/// of sampled hash functions under which `v1` and `v2` collide. Used by
/// tests and by the documentation examples to demonstrate universality.
pub fn empirical_collision_rate<F, R>(
    family: &F,
    v1: u64,
    v2: u64,
    trials: usize,
    rng: &mut R,
) -> f64
where
    F: UniversalFamily,
    R: RngCore + ?Sized,
{
    let mut collisions = 0usize;
    for _ in 0..trials {
        let h = family.sample(rng);
        if h.hash(v1) == h.hash(v2) {
            collisions += 1;
        }
    }
    collisions as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    fn check_universality<F: UniversalFamily>(family: &F, g: u32, seed: u64) {
        let mut rng = derive_rng(seed, 0);
        // A handful of adversarial-ish pairs: adjacent, far apart, powers of
        // two, and the degenerate 0 input.
        let pairs = [(0u64, 1u64), (1, 2), (0, 1 << 40), (123, 456), (999, 1000)];
        let trials = 40_000;
        for &(a, b) in &pairs {
            let rate = empirical_collision_rate(family, a, b, trials, &mut rng);
            let bound = 1.0 / g as f64;
            // Allow 5-sigma binomial noise above the 1/g bound.
            let tol = 5.0 * (bound * (1.0 - bound) / trials as f64).sqrt();
            assert!(
                rate <= bound + tol,
                "pair ({a},{b}): collision rate {rate} exceeds 1/{g} + {tol}"
            );
        }
    }

    #[test]
    fn carter_wegman_is_universal_g2() {
        check_universality(&CarterWegman::new(2).unwrap(), 2, 100);
    }

    #[test]
    fn carter_wegman_is_universal_g7() {
        check_universality(&CarterWegman::new(7).unwrap(), 7, 101);
    }

    #[test]
    fn mix_family_is_universal_g2() {
        check_universality(&MixFamily::new(2).unwrap(), 2, 102);
    }

    #[test]
    fn mix_family_is_universal_g16() {
        check_universality(&MixFamily::new(16).unwrap(), 16, 103);
    }
}
