//! A fast heuristic hash family built from the SplitMix64 finalizer.
//!
//! `h(x) = lemire_reduce(mix(seed ⊕ x·φ64), g)` where `mix` is the SplitMix64
//! avalanche and `φ64` the 64-bit golden-ratio constant. Not provably
//! universal, but its empirical pairwise collision rate is indistinguishable
//! from 1/g (asserted in tests), matching how the paper's Python code uses
//! seeded xxhash. Roughly 2× faster than [`crate::CarterWegman`] because it
//! avoids the 128-bit modular reduction.

use crate::{SeededHash, UniversalFamily};
use ldp_rand::SplitMix64;
use rand::RngCore;

/// The SplitMix-finalizer family with a fixed reduced domain size `g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixFamily {
    g: u32,
}

impl MixFamily {
    /// Creates the family. Requires `g ≥ 2`.
    pub fn new(g: u32) -> Option<Self> {
        (g >= 2).then_some(Self { g })
    }
}

impl UniversalFamily for MixFamily {
    type Hash = MixHash;

    fn g(&self) -> u32 {
        self.g
    }

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> MixHash {
        MixHash {
            seed: rng.next_u64(),
            g: self.g,
        }
    }
}

/// One sampled SplitMix-finalizer hash function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixHash {
    seed: u64,
    g: u32,
}

impl MixHash {
    /// Builds a hash function directly from a seed (server-side replay).
    pub fn from_seed(seed: u64, g: u32) -> Option<Self> {
        (g >= 2).then_some(Self { seed, g })
    }

    /// The seed identifying this function within the family.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

const PHI64: u64 = 0x9E37_79B9_7F4A_7C15;

impl SeededHash for MixHash {
    #[inline]
    fn g(&self) -> u32 {
        self.g
    }

    #[inline]
    fn hash(&self, value: u64) -> u32 {
        let mut sm = SplitMix64::new(self.seed ^ value.wrapping_mul(PHI64));
        let word = sm.next_u64();
        // Lemire multiply-shift reduction: unbiased up to 2^-64, branch-free.
        (((word as u128) * (self.g as u128)) >> 64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    #[test]
    fn rejects_g_below_two() {
        assert!(MixFamily::new(1).is_none());
        assert!(MixHash::from_seed(1, 0).is_none());
    }

    #[test]
    fn deterministic_and_in_range() {
        let fam = MixFamily::new(9).unwrap();
        let mut rng = derive_rng(210, 0);
        let h = fam.sample(&mut rng);
        for v in 0..2000u64 {
            let x = h.hash(v);
            assert!(x < 9);
            assert_eq!(x, h.hash(v));
        }
    }

    #[test]
    fn from_seed_roundtrip() {
        let fam = MixFamily::new(4).unwrap();
        let mut rng = derive_rng(211, 0);
        let h = fam.sample(&mut rng);
        let h2 = MixHash::from_seed(h.seed(), 4).unwrap();
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(h.hash(v), h2.hash(v));
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_functions() {
        let a = MixHash::from_seed(1, 16).unwrap();
        let b = MixHash::from_seed(2, 16).unwrap();
        let differing = (0..64u64).filter(|&v| a.hash(v) != b.hash(v)).count();
        assert!(differing > 32, "only {differing}/64 outputs differ");
    }

    #[test]
    fn balanced_over_sequential_inputs() {
        let fam = MixFamily::new(4).unwrap();
        let mut rng = derive_rng(212, 0);
        let h = fam.sample(&mut rng);
        let n = 40_000u64;
        let mut counts = [0usize; 4];
        for v in 0..n {
            counts[h.hash(v) as usize] += 1;
        }
        let expected = n as f64 / 4.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05);
        }
    }
}
