//! Equal-width domain generalization for dBitFlipPM.
//!
//! dBitFlipPM partitions the original domain `[k]` into `b ≤ k` buckets so
//! that *close* values land in the same bucket (the source of both its
//! information loss and its longitudinal budget reduction). The paper uses
//! equal-width buckets; so do we.

/// Maps the ordered domain `[0, k)` onto `b` equal-width buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketMapper {
    k: u64,
    b: u32,
}

impl BucketMapper {
    /// Creates a mapper from a domain of size `k` onto `b` buckets.
    ///
    /// # Errors
    /// Returns `None` unless `1 ≤ b ≤ k` and `k > 0`.
    pub fn new(k: u64, b: u32) -> Option<Self> {
        if k == 0 || b == 0 || b as u64 > k {
            return None;
        }
        Some(Self { k, b })
    }

    /// The original domain size.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The number of buckets.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// Maps a value to its bucket in `[0, b)`.
    ///
    /// # Panics
    /// Panics if `value >= k` (a domain violation is a caller bug).
    #[inline]
    pub fn bucket(&self, value: u64) -> u32 {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        // floor(value · b / k): monotone, covers all buckets, widths differ
        // by at most one element.
        ((value as u128 * self.b as u128) / self.k as u128) as u32
    }

    /// The half-open range of original values `[lo, hi)` covered by `bucket`.
    pub fn range_of(&self, bucket: u32) -> (u64, u64) {
        assert!(bucket < self.b, "bucket {bucket} out of range");
        let lo = ceil_div(bucket as u128 * self.k as u128, self.b as u128);
        let hi = ceil_div((bucket as u128 + 1) * self.k as u128, self.b as u128);
        (lo as u64, hi as u64)
    }
}

#[inline]
fn ceil_div(a: u128, b: u128) -> u128 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(BucketMapper::new(0, 1).is_none());
        assert!(BucketMapper::new(4, 0).is_none());
        assert!(BucketMapper::new(4, 5).is_none());
    }

    #[test]
    fn identity_when_b_equals_k() {
        let m = BucketMapper::new(10, 10).unwrap();
        for v in 0..10 {
            assert_eq!(m.bucket(v), v as u32);
        }
    }

    #[test]
    fn single_bucket_when_b_is_one() {
        let m = BucketMapper::new(100, 1).unwrap();
        for v in 0..100 {
            assert_eq!(m.bucket(v), 0);
        }
    }

    #[test]
    fn is_monotone_and_covers_all_buckets() {
        let m = BucketMapper::new(360, 90).unwrap();
        let mut prev = 0;
        let mut seen = [false; 90];
        for v in 0..360 {
            let b = m.bucket(v);
            assert!(b >= prev, "not monotone at {v}");
            assert!(b < 90);
            seen[b as usize] = true;
            prev = b;
        }
        assert!(seen.iter().all(|&s| s), "some bucket is empty");
    }

    #[test]
    fn widths_differ_by_at_most_one() {
        let m = BucketMapper::new(1412, 353).unwrap(); // DB_MT with b = k/4
        let mut widths = vec![0u64; 353];
        for v in 0..1412 {
            widths[m.bucket(v) as usize] += 1;
        }
        let min = *widths.iter().min().unwrap();
        let max = *widths.iter().max().unwrap();
        assert!(max - min <= 1, "widths range [{min}, {max}]");
    }

    #[test]
    fn range_of_is_consistent_with_bucket() {
        let m = BucketMapper::new(97, 7).unwrap();
        for b in 0..7u32 {
            let (lo, hi) = m.range_of(b);
            assert!(lo < hi);
            for v in lo..hi {
                assert_eq!(m.bucket(v), b);
            }
        }
        // Ranges tile the domain exactly.
        assert_eq!(m.range_of(0).0, 0);
        assert_eq!(m.range_of(6).1, 97);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_value_panics() {
        let m = BucketMapper::new(10, 2).unwrap();
        let _ = m.bucket(10);
    }
}
