//! The Carter–Wegman 2-universal family `h(x) = ((a·x + b) mod p) mod g`.
//!
//! With `p = 2^61 − 1` (a Mersenne prime far above every domain size used in
//! the paper) and `a ~ U[1, p)`, `b ~ U[0, p)`, the family is 2-universal:
//! for `x ≠ y < p`, `Pr[h(x) = h(y)] ≤ 1/g` (up to the ⌈p/g⌉/⌊p/g⌋ rounding,
//! which is below 2^-57 here). This is the textbook construction LOLOHA's
//! privacy analysis assumes.

use crate::{SeededHash, UniversalFamily};
use ldp_rand::uniform_u64;
use rand::RngCore;

/// The Mersenne prime 2^61 − 1.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// The Carter–Wegman family with a fixed reduced domain size `g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarterWegman {
    g: u32,
}

impl CarterWegman {
    /// Creates the family. Requires `g ≥ 2`.
    pub fn new(g: u32) -> Option<Self> {
        (g >= 2).then_some(Self { g })
    }
}

impl UniversalFamily for CarterWegman {
    type Hash = CwHash;

    fn g(&self) -> u32 {
        self.g
    }

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> CwHash {
        let a = 1 + uniform_u64(rng, MERSENNE_P - 1); // a ∈ [1, p)
        let b = uniform_u64(rng, MERSENNE_P); // b ∈ [0, p)
        CwHash { a, b, g: self.g }
    }
}

/// One sampled Carter–Wegman hash function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CwHash {
    a: u64,
    b: u64,
    g: u32,
}

impl CwHash {
    /// Reconstructs a hash function from its coefficients (used when a
    /// server replays a client-registered function).
    ///
    /// # Errors
    /// Returns `None` if the coefficients are outside the family
    /// (`a ∈ [1, p)`, `b ∈ [0, p)`, `g ≥ 2`).
    pub fn from_parts(a: u64, b: u64, g: u32) -> Option<Self> {
        if a == 0 || a >= MERSENNE_P || b >= MERSENNE_P || g < 2 {
            return None;
        }
        Some(Self { a, b, g })
    }

    /// The `(a, b)` coefficients identifying this function within the family.
    pub fn parts(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

/// Reduction modulo 2^61 − 1 of a 122-bit product, using the Mersenne
/// structure: `x mod (2^61−1) = (x & p) + (x >> 61)`, folded twice.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    let p = MERSENNE_P as u128;
    let folded = (x & p) + (x >> 61);
    let folded = (folded & p) + (folded >> 61);
    let mut r = folded as u64;
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

impl SeededHash for CwHash {
    #[inline]
    fn g(&self) -> u32 {
        self.g
    }

    #[inline]
    fn hash(&self, value: u64) -> u32 {
        // Reduce the input below p first: domains in this workspace are tiny
        // compared to p, so this is a no-op in practice but keeps the
        // function total over u64.
        let x = (value % MERSENNE_P) as u128;
        let ax_b = (self.a as u128) * x + self.b as u128;
        (mod_mersenne(ax_b) % self.g as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    #[test]
    fn rejects_g_below_two() {
        assert!(CarterWegman::new(0).is_none());
        assert!(CarterWegman::new(1).is_none());
    }

    #[test]
    fn mod_mersenne_matches_naive() {
        let cases = [
            0u128,
            1,
            MERSENNE_P as u128 - 1,
            MERSENNE_P as u128,
            MERSENNE_P as u128 + 1,
            u64::MAX as u128,
            (MERSENNE_P as u128) * (MERSENNE_P as u128) - 1,
            (u128::from(u64::MAX) * u128::from(u64::MAX)) >> 6,
        ];
        for &x in &cases {
            assert_eq!(mod_mersenne(x) as u128, x % MERSENNE_P as u128, "x = {x}");
        }
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let fam = CarterWegman::new(5).unwrap();
        let mut rng = derive_rng(200, 0);
        let h = fam.sample(&mut rng);
        for v in 0..1000u64 {
            let x = h.hash(v);
            assert!(x < 5);
            assert_eq!(x, h.hash(v));
        }
    }

    #[test]
    fn from_parts_roundtrip_and_validation() {
        let fam = CarterWegman::new(4).unwrap();
        let mut rng = derive_rng(201, 0);
        let h = fam.sample(&mut rng);
        let (a, b) = h.parts();
        let h2 = CwHash::from_parts(a, b, 4).unwrap();
        for v in [0u64, 17, 123_456_789] {
            assert_eq!(h.hash(v), h2.hash(v));
        }
        assert!(CwHash::from_parts(0, 0, 4).is_none());
        assert!(CwHash::from_parts(MERSENNE_P, 0, 4).is_none());
        assert!(CwHash::from_parts(1, MERSENNE_P, 4).is_none());
        assert!(CwHash::from_parts(1, 0, 1).is_none());
    }

    #[test]
    fn outputs_cover_all_cells() {
        // One sampled function over a large input range should hit every
        // residue of a small g.
        let fam = CarterWegman::new(3).unwrap();
        let mut rng = derive_rng(202, 0);
        let h = fam.sample(&mut rng);
        let mut seen = [false; 3];
        for v in 0..100u64 {
            seen[h.hash(v) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn output_distribution_is_balanced_over_inputs() {
        let fam = CarterWegman::new(8).unwrap();
        let mut rng = derive_rng(203, 0);
        let h = fam.sample(&mut rng);
        let n = 80_000u64;
        let mut counts = [0usize; 8];
        for v in 0..n {
            counts[h.hash(v) as usize] += 1;
        }
        let expected = n as f64 / 8.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05);
        }
    }
}
