//! Longitudinal heavy-hitter tracking with hysteresis.
//!
//! The paper's setting produces one histogram estimate per round; an
//! operator usually wants the *stable set* of heavy values and a log of
//! when values entered or left it. Feeding raw per-round top-k into alerts
//! flaps: a value sitting near the threshold crosses it every other round
//! by estimator noise alone. The tracker uses two thresholds —
//! `enter > exit` — so a value must climb above `enter` to join the set
//! and fall below `exit` to leave it; noise inside the band `[exit, enter]`
//! causes no events.

use ldp_primitives::error::ParamError;
use std::collections::BTreeSet;

/// A change in the tracked heavy-hitter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HitterEvent {
    /// `value` rose above the enter threshold at `round`.
    Entered {
        /// The domain value.
        value: u64,
        /// The round index (as counted by the tracker).
        round: u64,
        /// The estimate that triggered the event.
        estimate: f64,
    },
    /// `value` fell below the exit threshold at `round`.
    Exited {
        /// The domain value.
        value: u64,
        /// The round index.
        round: u64,
        /// The estimate that triggered the event.
        estimate: f64,
    },
}

/// Tracks the heavy-hitter set across rounds.
#[derive(Debug, Clone)]
pub struct HitterTracker {
    enter: f64,
    exit: f64,
    active: BTreeSet<u64>,
    round: u64,
}

impl HitterTracker {
    /// Creates a tracker with hysteresis thresholds `enter > exit ≥ 0`.
    ///
    /// A sensible `enter` is the alerting frequency plus the estimator's
    /// confidence radius; `exit` the frequency minus it.
    pub fn new(enter: f64, exit: f64) -> Result<Self, ParamError> {
        let valid =
            enter.is_finite() && exit.is_finite() && enter > exit && exit >= 0.0 && enter <= 1.0;
        if !valid {
            return Err(ParamError::InvalidProbability { p: enter, q: exit });
        }
        Ok(Self {
            enter,
            exit,
            active: BTreeSet::new(),
            round: 0,
        })
    }

    /// Ingests one round's histogram estimate and returns the events it
    /// triggered (sorted by value; enters before exits is not guaranteed).
    pub fn update(&mut self, estimate: &[f64]) -> Vec<HitterEvent> {
        let round = self.round;
        self.round += 1;
        let mut events = Vec::new();
        for (v, &e) in estimate.iter().enumerate() {
            let value = v as u64;
            if e > self.enter && !self.active.contains(&value) {
                self.active.insert(value);
                events.push(HitterEvent::Entered {
                    value,
                    round,
                    estimate: e,
                });
            } else if e < self.exit && self.active.contains(&value) {
                self.active.remove(&value);
                events.push(HitterEvent::Exited {
                    value,
                    round,
                    estimate: e,
                });
            }
        }
        // Values beyond the estimate's length (domain shrank?) are dropped.
        let len = estimate.len() as u64;
        let stale: Vec<u64> = self.active.iter().copied().filter(|&v| v >= len).collect();
        for value in stale {
            self.active.remove(&value);
            events.push(HitterEvent::Exited {
                value,
                round,
                estimate: 0.0,
            });
        }
        events
    }

    /// The currently active heavy-hitter set (ascending).
    pub fn active(&self) -> impl Iterator<Item = u64> + '_ {
        self.active.iter().copied()
    }

    /// Whether `value` is currently tracked as heavy.
    pub fn is_active(&self, value: u64) -> bool {
        self.active.contains(&value)
    }

    /// Rounds ingested so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HitterTracker {
        HitterTracker::new(0.2, 0.1).unwrap()
    }

    #[test]
    fn value_enters_once_and_exits_once() {
        let mut t = tracker();
        assert!(t.update(&[0.05, 0.25]).len() == 1);
        assert!(t.is_active(1));
        // Stays active with no new event while above exit.
        assert!(t.update(&[0.05, 0.15]).is_empty());
        assert!(t.is_active(1));
        let events = t.update(&[0.05, 0.05]);
        assert_eq!(
            events,
            vec![HitterEvent::Exited {
                value: 1,
                round: 2,
                estimate: 0.05
            }]
        );
        assert!(!t.is_active(1));
    }

    #[test]
    fn hysteresis_band_does_not_flap() {
        let mut t = tracker();
        t.update(&[0.25]);
        // Oscillate inside (0.1, 0.2): no events.
        for &e in &[0.19, 0.11, 0.15, 0.12, 0.18] {
            assert!(t.update(&[e]).is_empty(), "estimate {e} flapped");
        }
        assert!(t.is_active(0));
    }

    #[test]
    fn naive_threshold_would_flap_where_tracker_does_not() {
        // The motivating comparison: count naive crossings vs tracker events
        // on a noisy series hovering around 0.15.
        let series = [0.16, 0.14, 0.17, 0.13, 0.18, 0.12, 0.19, 0.11];
        let naive_events = series
            .windows(2)
            .filter(|w| (w[0] > 0.15) != (w[1] > 0.15))
            .count();
        assert!(naive_events >= 6, "series chosen to flap: {naive_events}");
        let mut t = tracker();
        let total: usize = series.iter().map(|&e| t.update(&[e]).len()).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn multiple_values_tracked_independently() {
        let mut t = tracker();
        let events = t.update(&[0.3, 0.05, 0.4]);
        assert_eq!(events.len(), 2);
        assert!(t.is_active(0) && t.is_active(2) && !t.is_active(1));
        assert_eq!(t.active().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn shrinking_domain_expires_stale_values() {
        let mut t = tracker();
        t.update(&[0.1, 0.3]);
        assert!(t.is_active(1));
        let events = t.update(&[0.1]);
        assert_eq!(
            events,
            vec![HitterEvent::Exited {
                value: 1,
                round: 1,
                estimate: 0.0
            }]
        );
    }

    #[test]
    fn thresholds_validated() {
        assert!(HitterTracker::new(0.1, 0.2).is_err()); // enter < exit
        assert!(HitterTracker::new(0.2, 0.2).is_err()); // no band
        assert!(HitterTracker::new(0.2, -0.1).is_err());
        assert!(HitterTracker::new(1.5, 0.1).is_err());
        assert!(HitterTracker::new(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn rounds_counter_advances() {
        let mut t = tracker();
        assert_eq!(t.rounds(), 0);
        t.update(&[0.0]);
        t.update(&[0.0]);
        assert_eq!(t.rounds(), 2);
    }
}
