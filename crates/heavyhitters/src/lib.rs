//! Heavy-hitter identification on top of the workspace's frequency oracles.
//!
//! Frequency oracles answer "how common is value v?"; heavy-hitter
//! protocols answer "*which* values are common?" without enumerating an
//! intractable domain. The paper cites this as the flagship application of
//! its building blocks (\[8, 9\] in §2.3/§6); this crate supplies three
//! layers:
//!
//! * [`topk`] — significance-aware top-k extraction from any estimated
//!   histogram: attach a confidence radius (Proposition 3.6), split the
//!   ranking into *significant* hitters and noise-level entries, and test
//!   pairwise separations.
//! * [`pem`] — the Prefix Extending Method for huge bit-string domains
//!   (`k = 2^bits`): user groups report progressively longer prefixes
//!   through the OLH oracle, and the server grows a candidate set level by
//!   level, querying only `O(candidates · 2^step)` estimates instead of
//!   `2^bits`.
//! * [`tracker`] — longitudinal heavy-hitter tracking with hysteresis:
//!   consume one histogram estimate per round (e.g. from the LOLOHA
//!   monitor) and emit enter/exit events without flapping on estimator
//!   noise.
//!
//! ## Quickstart
//!
//! ```
//! use ldp_heavyhitters::{top_k_with_radius, HitterTracker};
//!
//! // A per-round LDP estimate with its Prop. 3.6 confidence radius.
//! let estimate = vec![0.02, 0.45, -0.01, 0.30, 0.21];
//! let top = top_k_with_radius(&estimate, 2, 0.05);
//! assert_eq!(top[0].value, 1);
//! assert!(top[0].significant());           // 0.45 − 0.05 > 0
//! assert!(top[0].separated_from(&top[1])); // 0.40 > 0.35
//!
//! // Track the heavy set across rounds without alert flapping.
//! let mut tracker = HitterTracker::new(0.2, 0.1).unwrap();
//! let events = tracker.update(&estimate);
//! assert_eq!(events.len(), 3); // values 1, 3, 4 entered
//! assert!(tracker.update(&estimate).is_empty()); // steady state: silent
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pem;
pub mod topk;
pub mod tracker;

pub use pem::{Pem, PemOutcome};
pub use topk::{significant_hitters, top_k_with_radius, HeavyHitter};
pub use tracker::{HitterEvent, HitterTracker};
