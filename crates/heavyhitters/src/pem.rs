//! PEM — the Prefix Extending Method over bit-string domains.
//!
//! For domains too large to estimate bin by bin (URLs, typed strings —
//! `k = 2^bits`), PEM (Wang et al., and the succinct-histogram line
//! \[8, 9\] the paper cites) identifies the heavy values without touching
//! most of the domain:
//!
//! 1. Users are partitioned round-robin into `L` groups, one per prefix
//!    level `γ, γ+η, …, bits`.
//! 2. A group-`ℓ` user reports OLH of the first `γ + ℓ·η` bits of their
//!    value — one ε-LDP report per user in total, no budget splitting.
//! 3. The server starts from all `2^γ` stubs and, level by level, keeps
//!    the candidates whose estimated frequency clears a threshold, then
//!    extends each survivor by `η` bits (×`2^η` children).
//!
//! The server's work is `O(reports · candidates)` per level because OLH
//! supports *point queries*: a candidate's support under one report is
//! just "does the report's hash map the candidate to the reported cell".
//!
//! The final level's survivors are the heavy hitters, with their estimated
//! frequencies (computed over that level's group only).

use ldp_hash::{CwHash, SeededHash};
use ldp_primitives::error::ParamError;
use ldp_primitives::estimator::frequency_estimate;
use ldp_primitives::lh::{olh_client, LhReport};
use rand::RngCore;

/// Configuration of one PEM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pem {
    /// Domain bit width: values live in `[0, 2^bits)`.
    pub bits: u32,
    /// Starting prefix length γ (level 0 enumerates all `2^γ` stubs).
    pub start_bits: u32,
    /// Bits added per level η ≥ 1.
    pub step_bits: u32,
    /// The per-user privacy level ε (each user reports once, at one level).
    pub eps: f64,
    /// Frequency threshold a candidate must clear to survive a level.
    pub threshold: f64,
    /// Hard cap on surviving candidates per level (guards server memory
    /// against a threshold set too low).
    pub max_candidates: usize,
}

/// Outcome of a PEM run.
#[derive(Debug, Clone, PartialEq)]
pub struct PemOutcome {
    /// Identified heavy values with their last-level frequency estimates,
    /// sorted by descending estimate.
    pub hitters: Vec<(u64, f64)>,
    /// Number of prefix levels walked.
    pub levels: usize,
    /// Total candidates whose frequency was queried, across levels — the
    /// work actually done, to compare against the 2^bits full scan.
    pub candidates_queried: usize,
}

impl Pem {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ParamError> {
        ldp_primitives::error::check_epsilon(self.eps)?;
        if self.bits == 0 || self.bits > 62 || self.start_bits == 0 || self.start_bits > self.bits {
            return Err(ParamError::DomainTooSmall {
                k: self.bits as u64,
                min: 1,
            });
        }
        if self.step_bits == 0 {
            return Err(ParamError::DomainTooSmall { k: 0, min: 1 });
        }
        if self.max_candidates == 0 || !(0.0..1.0).contains(&self.threshold) {
            return Err(ParamError::InvalidProbability {
                p: self.threshold,
                q: 0.0,
            });
        }
        Ok(())
    }

    /// The prefix lengths walked, from `start_bits` to `bits`.
    pub fn levels(&self) -> Vec<u32> {
        let mut lens = Vec::new();
        let mut len = self.start_bits;
        loop {
            lens.push(len.min(self.bits));
            if len >= self.bits {
                break;
            }
            len += self.step_bits;
        }
        lens
    }

    /// Runs the full protocol over the users' true `values` (each in
    /// `[0, 2^bits)`), sanitizing on their behalf with `rng`.
    ///
    /// Group assignment is round-robin (`user % L`), so results are
    /// deterministic given the RNG stream.
    pub fn identify<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
    ) -> Result<PemOutcome, ParamError> {
        self.validate()?;
        let lens = self.levels();
        let l = lens.len();
        // Sanitize: group ℓ user reports OLH of their len_ℓ-bit prefix.
        let mut group_reports: Vec<Vec<LhReport<CwHash>>> = vec![Vec::new(); l];
        let mut clients = Vec::with_capacity(l);
        for &len in &lens {
            clients.push(olh_client(1u64 << len, self.eps)?);
        }
        for (u, &v) in values.iter().enumerate() {
            assert!(
                v >> self.bits == 0,
                "value {v} outside the {}-bit domain",
                self.bits
            );
            let grp = u % l;
            let prefix = v >> (self.bits - lens[grp]);
            group_reports[grp].push(clients[grp].report(prefix, rng));
        }

        // Walk the levels, extending survivors.
        let mut candidates: Vec<u64> = (0..(1u64 << self.start_bits)).collect();
        let mut queried = 0usize;
        let mut survivors: Vec<(u64, f64)> = Vec::new();
        for (grp, &len) in lens.iter().enumerate() {
            let reports = &group_reports[grp];
            let n = reports.len() as f64;
            let p = clients[grp].p();
            let g = clients[grp].g() as f64;
            queried += candidates.len();
            survivors = candidates
                .iter()
                .map(|&c| {
                    let support =
                        reports.iter().filter(|r| r.hash.hash(c) == r.cell).count() as f64;
                    (c, frequency_estimate(support, n, p, 1.0 / g))
                })
                .filter(|&(_, est)| est >= self.threshold)
                .collect();
            survivors.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            survivors.truncate(self.max_candidates);
            if grp + 1 < l {
                let extend = lens[grp + 1] - len;
                candidates = survivors
                    .iter()
                    .flat_map(|&(c, _)| {
                        (0..(1u64 << extend)).map(move |suffix| (c << extend) | suffix)
                    })
                    .collect();
            }
        }
        Ok(PemOutcome {
            hitters: survivors,
            levels: l,
            candidates_queried: queried,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::{derive_rng, uniform_f64, uniform_u64};

    fn base_config() -> Pem {
        Pem {
            bits: 12,
            start_bits: 4,
            step_bits: 4,
            eps: 3.0,
            threshold: 0.05,
            max_candidates: 16,
        }
    }

    #[test]
    fn levels_cover_start_to_full_width() {
        assert_eq!(base_config().levels(), vec![4, 8, 12]);
        let uneven = Pem {
            bits: 10,
            start_bits: 4,
            step_bits: 4,
            ..base_config()
        };
        assert_eq!(uneven.levels(), vec![4, 8, 10]);
        let single = Pem {
            bits: 4,
            start_bits: 4,
            ..base_config()
        };
        assert_eq!(single.levels(), vec![4]);
    }

    #[test]
    fn pem_finds_planted_heavy_hitters() {
        let cfg = base_config();
        let mut rng = derive_rng(500, 0);
        let heavy = [0xABCu64, 0x123, 0xF0F];
        let n = 30_000;
        let values: Vec<u64> = (0..n)
            .map(|_| {
                let r = uniform_f64(&mut rng);
                if r < 0.25 {
                    heavy[0]
                } else if r < 0.45 {
                    heavy[1]
                } else if r < 0.60 {
                    heavy[2]
                } else {
                    uniform_u64(&mut rng, 1 << 12)
                }
            })
            .collect();
        let outcome = cfg.identify(&values, &mut rng).unwrap();
        let found: Vec<u64> = outcome.hitters.iter().map(|&(v, _)| v).collect();
        for h in heavy {
            assert!(
                found.contains(&h),
                "missing hitter {h:#x}; found {found:x?}"
            );
        }
        // The dominant value should rank first with a sane estimate.
        assert_eq!(outcome.hitters[0].0, 0xABC);
        assert!(
            (outcome.hitters[0].1 - 0.25).abs() < 0.08,
            "est {}",
            outcome.hitters[0].1
        );
    }

    #[test]
    fn pem_queries_far_fewer_candidates_than_the_domain() {
        let cfg = base_config();
        let mut rng = derive_rng(501, 0);
        let values: Vec<u64> = (0..6_000).map(|_| 0x0AAu64).collect();
        let outcome = cfg.identify(&values, &mut rng).unwrap();
        assert!(
            outcome.candidates_queried < (1 << 12) / 4,
            "queried {} of {} values",
            outcome.candidates_queried,
            1 << 12
        );
        assert_eq!(outcome.hitters[0].0, 0x0AA);
    }

    #[test]
    fn uniform_noise_produces_no_confident_hitters() {
        let cfg = Pem {
            threshold: 0.1,
            ..base_config()
        };
        let mut rng = derive_rng(502, 0);
        let values: Vec<u64> = (0..8_000).map(|_| uniform_u64(&mut rng, 1 << 12)).collect();
        let outcome = cfg.identify(&values, &mut rng).unwrap();
        assert!(
            outcome.hitters.len() <= 2,
            "uniform data should clear almost nothing: {:?}",
            outcome.hitters
        );
    }

    #[test]
    fn max_candidates_caps_survivors() {
        let cfg = Pem {
            max_candidates: 2,
            threshold: 0.0,
            ..base_config()
        };
        let mut rng = derive_rng(503, 0);
        let values: Vec<u64> = (0..4_000)
            .map(|u| if u % 2 == 0 { 0x111 } else { 0x999 })
            .collect();
        let outcome = cfg.identify(&values, &mut rng).unwrap();
        assert!(outcome.hitters.len() <= 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(Pem {
            eps: 0.0,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            bits: 0,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            bits: 63,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            start_bits: 0,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            start_bits: 13,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            step_bits: 0,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            max_candidates: 0,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            threshold: 1.0,
            ..base_config()
        }
        .validate()
        .is_err());
        assert!(Pem {
            threshold: -0.1,
            ..base_config()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "outside the 12-bit domain")]
    fn out_of_domain_value_panics() {
        let cfg = base_config();
        let mut rng = derive_rng(504, 0);
        let _ = cfg.identify(&[1 << 13], &mut rng);
    }
}
