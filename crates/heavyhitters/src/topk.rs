//! Significance-aware top-k extraction.
//!
//! A raw LDP estimate ranks *noise* alongside signal: with per-value
//! standard deviation σ ≈ √V*, any value whose estimate is within a few σ
//! of zero may be a phantom. This module pairs each ranked value with a
//! uniform confidence interval (the radius of Proposition 3.6, or any
//! other), so consumers can distinguish "definitely heavy" from "might be
//! nothing".

/// One ranked value with its estimate and confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The domain value.
    pub value: u64,
    /// Its estimated frequency.
    pub estimate: f64,
    /// Lower end of the confidence interval (may be negative).
    pub lower: f64,
    /// Upper end of the confidence interval.
    pub upper: f64,
}

impl HeavyHitter {
    /// Whether the interval excludes zero — the value is significantly
    /// present at the interval's confidence level.
    pub fn significant(&self) -> bool {
        self.lower > 0.0
    }

    /// Whether this hitter is separated from `other`: its lower bound
    /// clears the other's upper bound, so the ranking between the two is
    /// statistically meaningful.
    pub fn separated_from(&self, other: &HeavyHitter) -> bool {
        self.lower > other.upper
    }
}

/// Ranks the `top` largest estimates, attaching a ± `radius` interval to
/// each. Ties rank by value for determinism. `radius` must be
/// non-negative; pass the Proposition 3.6 radius (`loloha::theory::
/// utility_bound`) for simultaneous coverage of all bins.
pub fn top_k_with_radius(estimate: &[f64], top: usize, radius: f64) -> Vec<HeavyHitter> {
    let radius = radius.max(0.0);
    let mut order: Vec<usize> = (0..estimate.len()).collect();
    order.sort_by(|&a, &b| {
        estimate[b]
            .partial_cmp(&estimate[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
        .into_iter()
        .take(top)
        .map(|v| HeavyHitter {
            value: v as u64,
            estimate: estimate[v],
            lower: estimate[v] - radius,
            upper: estimate[v] + radius,
        })
        .collect()
}

/// Returns every value whose estimate is significantly above `threshold`
/// at the given radius: `estimate − radius > threshold`. With
/// `threshold = 0` this is the set of certainly-present values.
pub fn significant_hitters(estimate: &[f64], radius: f64, threshold: f64) -> Vec<HeavyHitter> {
    let radius = radius.max(0.0);
    let mut out: Vec<HeavyHitter> = estimate
        .iter()
        .enumerate()
        .filter(|(_, &e)| e - radius > threshold)
        .map(|(v, &e)| HeavyHitter {
            value: v as u64,
            estimate: e,
            lower: e - radius,
            upper: e + radius,
        })
        .collect();
    out.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.value.cmp(&b.value))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EST: [f64; 6] = [0.02, 0.45, -0.01, 0.30, 0.21, 0.03];

    #[test]
    fn top_k_orders_by_estimate() {
        let top = top_k_with_radius(&EST, 3, 0.05);
        let values: Vec<u64> = top.iter().map(|h| h.value).collect();
        assert_eq!(values, vec![1, 3, 4]);
        assert_eq!(top[0].estimate, 0.45);
        assert!((top[0].lower - 0.40).abs() < 1e-12);
        assert!((top[0].upper - 0.50).abs() < 1e-12);
    }

    #[test]
    fn top_k_larger_than_domain_returns_all() {
        let top = top_k_with_radius(&EST, 100, 0.0);
        assert_eq!(top.len(), EST.len());
    }

    #[test]
    fn significance_requires_clearing_the_radius() {
        let top = top_k_with_radius(&EST, 6, 0.05);
        assert!(top[0].significant()); // 0.45 ± 0.05
        let small = top.iter().find(|h| h.value == 0).unwrap(); // 0.02 ± 0.05
        assert!(!small.significant());
    }

    #[test]
    fn separation_test_is_strict() {
        let top = top_k_with_radius(&EST, 3, 0.05);
        assert!(top[0].separated_from(&top[1])); // 0.40 > 0.35
        assert!(!top[1].separated_from(&top[2])); // 0.25 < 0.26
    }

    #[test]
    fn significant_hitters_filters_and_sorts() {
        let hitters = significant_hitters(&EST, 0.05, 0.1);
        let values: Vec<u64> = hitters.iter().map(|h| h.value).collect();
        assert_eq!(values, vec![1, 3, 4]); // 0.45, 0.30, 0.21 all clear 0.15
        let none = significant_hitters(&EST, 0.5, 0.0);
        assert!(none.is_empty());
    }

    #[test]
    fn ties_rank_by_value() {
        let est = [0.3, 0.3, 0.3];
        let top = top_k_with_radius(&est, 2, 0.0);
        assert_eq!(top[0].value, 0);
        assert_eq!(top[1].value, 1);
    }

    #[test]
    fn negative_radius_is_clamped() {
        let top = top_k_with_radius(&EST, 1, -1.0);
        assert_eq!(top[0].lower, top[0].estimate);
        assert_eq!(top[0].upper, top[0].estimate);
    }

    #[test]
    fn empty_estimate_yields_empty_ranking() {
        assert!(top_k_with_radius(&[], 3, 0.1).is_empty());
        assert!(significant_hitters(&[], 0.1, 0.0).is_empty());
    }
}
