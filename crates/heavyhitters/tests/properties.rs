//! Property tests for top-k extraction, PEM level structure, and the
//! hysteresis tracker.

use ldp_heavyhitters::{significant_hitters, top_k_with_radius, HitterTracker, Pem};
use proptest::prelude::*;

fn estimates(k: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-0.2f64..0.8, k..=k)
}

proptest! {
    /// The top-k ranking is sorted, within-domain, and contains the true
    /// arg-max.
    #[test]
    fn top_k_is_sorted_and_complete(est in estimates(12), top in 1usize..15) {
        let ranked = top_k_with_radius(&est, top, 0.05);
        prop_assert_eq!(ranked.len(), top.min(est.len()));
        for w in ranked.windows(2) {
            prop_assert!(w[0].estimate >= w[1].estimate);
        }
        let argmax = est
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as u64;
        prop_assert_eq!(ranked[0].value, argmax);
        for h in &ranked {
            prop_assert!((h.value as usize) < est.len());
            prop_assert!((h.upper - h.lower - 0.1).abs() < 1e-12, "interval width 2·radius");
        }
    }

    /// Significant hitters are exactly the entries clearing threshold +
    /// radius — no more, no fewer.
    #[test]
    fn significant_set_matches_definition(
        est in estimates(10),
        radius in 0.0f64..0.3,
        threshold in 0.0f64..0.4,
    ) {
        let got: Vec<u64> =
            significant_hitters(&est, radius, threshold).iter().map(|h| h.value).collect();
        let expected: Vec<u64> = (0..est.len() as u64)
            .filter(|&v| est[v as usize] - radius > threshold)
            .collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    /// PEM's level plan always starts at `start_bits`, ends exactly at
    /// `bits`, and advances by at most `step_bits`.
    #[test]
    fn pem_levels_well_formed(
        bits in 2u32..40,
        start_frac in 0.1f64..1.0,
        step in 1u32..8,
    ) {
        let start = ((bits as f64 * start_frac) as u32).clamp(1, bits);
        let pem = Pem {
            bits,
            start_bits: start,
            step_bits: step,
            eps: 1.0,
            threshold: 0.05,
            max_candidates: 8,
        };
        let levels = pem.levels();
        prop_assert_eq!(levels[0], start);
        prop_assert_eq!(*levels.last().unwrap(), bits);
        for w in levels.windows(2) {
            prop_assert!(w[1] > w[0]);
            prop_assert!(w[1] - w[0] <= step);
        }
    }

    /// The tracker's active set is always consistent with its event log:
    /// replaying enters minus exits reproduces the set, and no value ever
    /// enters twice without an exit in between.
    #[test]
    fn tracker_events_reconstruct_active_set(
        rounds in proptest::collection::vec(estimates(6), 1..20),
    ) {
        let mut tracker = HitterTracker::new(0.3, 0.1).unwrap();
        let mut replay = std::collections::BTreeSet::new();
        for est in &rounds {
            for event in tracker.update(est) {
                match event {
                    ldp_heavyhitters::HitterEvent::Entered { value, .. } => {
                        prop_assert!(replay.insert(value), "double enter of {value}");
                    }
                    ldp_heavyhitters::HitterEvent::Exited { value, .. } => {
                        prop_assert!(replay.remove(&value), "exit without enter of {value}");
                    }
                }
            }
            let active: Vec<u64> = tracker.active().collect();
            prop_assert_eq!(active, replay.iter().copied().collect::<Vec<_>>());
        }
    }

    /// Hysteresis invariant: every active value once exceeded `enter`, and
    /// its latest estimate is at least `exit`.
    #[test]
    fn tracker_active_values_respect_thresholds(
        rounds in proptest::collection::vec(estimates(5), 1..15),
    ) {
        let (enter, exit) = (0.35, 0.15);
        let mut tracker = HitterTracker::new(enter, exit).unwrap();
        let mut peak = [f64::NEG_INFINITY; 5];
        for est in &rounds {
            tracker.update(est);
            for (v, &e) in est.iter().enumerate() {
                peak[v] = peak[v].max(e);
            }
            for v in tracker.active() {
                prop_assert!(peak[v as usize] > enter, "active {v} never crossed enter");
                prop_assert!(est[v as usize] >= exit, "active {v} below exit");
            }
        }
    }
}
