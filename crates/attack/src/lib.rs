//! Adversarial analysis of the workspace's LDP protocols.
//!
//! The paper motivates LOLOHA's design with three adversarial observations:
//!
//! 1. **Averaging attacks** (§2.4): repeating a one-shot protocol with fresh
//!    noise lets the server average the noise away — the reason memoization
//!    exists at all.
//! 2. **Data-change detection** (§5.2, Table 2): dBitFlipPM's memoized
//!    one-round reports expose bucket changes deterministically; LOLOHA's
//!    IRR round masks them.
//! 3. **Bayesian report inversion** (§6, citing Gursoy et al. and Arcolezi
//!    et al.): local-hashing protocols are the *least attackable* family
//!    under a Bayesian adversary because hash collisions keep many inputs
//!    plausible.
//!
//! This crate turns each observation into executable, testable analysis:
//!
//! * [`channel`] — exact discrete channels (input × output transition
//!   matrices) with the realized LDP ε and the MAP adversary's success
//!   rate; builders for GRR, chained GRR, and hash-composed (LOLOHA-style)
//!   value channels.
//! * [`bayes`] — closed-form / exact attack success rates (ASR) per
//!   protocol family, including the unary-encoding MAP adversary in closed
//!   form.
//! * [`averaging`] — the averaging (mode) attack across τ rounds against
//!   fresh-noise GRR vs. memoized PRR+IRR chains, with an exact binary
//!   closed form.
//! * [`linkability`] — the hash-function-as-pseudonym observation (§5.3
//!   limitation) and a report-sequence matching game quantifying how fast
//!   sequences become linkable.
//! * [`change`] — closed-form change-exposure probabilities: the Table 2
//!   phenomenon for dBitFlipPM and the corresponding (much smaller)
//!   per-round statistical advantage against LOLOHA and L-UE.
//!
//! Everything closed-form is cross-validated by Monte Carlo tests.
//!
//! ## Quickstart
//!
//! ```
//! use ldp_attack::{asr_grr, asr_loloha_first_report};
//! use loloha::LolohaParams;
//!
//! // How much better than random guessing does the optimal single-report
//! // adversary do against GRR vs a LOLOHA first report, k = 100?
//! let grr = asr_grr(100, 1.0).unwrap();
//! let params = LolohaParams::bi(2.0, 1.0).unwrap(); // first report is 1.0-LDP
//! let mut rng = ldp_rand::derive_rng(42, 0);
//! let lol = asr_loloha_first_report(100, params, 8, &mut rng).unwrap();
//! assert!(lol.asr < grr.asr); // hash collisions cap the adversary
//! assert!(lol.lift() < grr.lift());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod averaging;
pub mod bayes;
pub mod change;
pub mod channel;
pub mod linkability;

pub use averaging::{mode_attack_fresh_grr, mode_attack_memoized, rr_majority_success_binary};
pub use bayes::{asr_grr, asr_lgrr_first_report, asr_loloha_first_report, asr_ue, AsrEstimate};
pub use change::{
    dbitflip_change_detection, loloha_change_exposure, lue_change_exposure,
    prr_only_change_exposure, ChangeExposure, MemoStyle,
};
pub use channel::Channel;
pub use linkability::{
    linkage_accuracy_dbitflip, linkage_accuracy_loloha, pseudonym_collision_probability,
};
