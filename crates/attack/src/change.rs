//! Closed-form change-exposure analysis (the Table 2 phenomenon).
//!
//! A *data change* at the user replaces input class c by c′. The attacker
//! watches consecutive reports and asks: did the report stream's behaviour
//! change? Three protocols, three answers:
//!
//! * **dBitFlipPM** ([`dbitflip_change_detection`]) — reports are memoized
//!   *deterministically* per class, so a class change is exposed exactly
//!   when the two memoized vectors differ; the probability is in closed
//!   form, and is near 1 for `d = b` (Table 2's 100% row) and near 0 for
//!   `d = 1`.
//! * **LOLOHA** ([`loloha_change_exposure`]) — three shields stack: the
//!   hash may collide (`H(v) = H(v′)`), the PRR may memoize the same cell,
//!   and the IRR re-randomizes every round so even differing memoized
//!   cells only shift the report *distribution* by `p2 − q2`.
//! * **L-UE / RAPPOR** ([`lue_change_exposure`]) — a value change redraws
//!   the whole memoized bit vector, raising the expected number of bit
//!   flips between consecutive reports by a computable margin.
//!
//! Every closed form is validated against Monte Carlo in the tests.

use ldp_longitudinal::chain::ChainParams;
use ldp_primitives::error::ParamError;
use ldp_primitives::params::sue_params;
use ldp_rand::ln_factorial;
use loloha::LolohaParams;

/// How the client memoizes its sanitized vectors, which determines what a
/// bucket change can expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoStyle {
    /// One memoized vector per *input class* — the `d` sampled buckets plus
    /// a single shared "not sampled" class. This is what this workspace's
    /// `DBitFlipClient` implements: changes between two non-sampled buckets
    /// reuse the same memo and are **never** exposed.
    PerClass,
    /// One memoized vector per *bucket*, as the paper describes the
    /// protocol: two non-sampled buckets hold independent Bern(q)^d draws,
    /// so even their changes can surface. Exposure *decreases* with ε∞
    /// here (q → 0 makes all background vectors identically zero), which is
    /// exactly the Table 2 trend for `d = 1`.
    PerBucket,
}

/// Exposure of a dBitFlipPM bucket change β → β′, split by how many of the
/// two involved buckets were among the user's `d` sampled positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeExposure {
    /// `prob_m[j]` — probability that exactly `j ∈ {0,1,2}` of {β, β′} are
    /// sampled (hypergeometric over the random sample of `d` of `b`).
    pub prob_m: [f64; 3],
    /// `detect_given_m[j]` — probability the memoized report differs given
    /// `j` involved buckets are sampled.
    pub detect_given_m: [f64; 3],
    /// Total detection probability `Σ_j prob_m[j] · detect_given_m[j]`.
    pub expected: f64,
}

/// Closed-form probability that a dBitFlipPM bucket change is visible in
/// the memoized report (`b` buckets, `d` sampled, budget ε∞).
///
/// Given `m` of the two buckets sampled, the memoized vectors differ with
/// probability `1 − (pq + (1−p)(1−q))^m · (q² + (1−q)²)^{d−m}` where
/// `(p, q)` are the SUE pair at ε∞. Under [`MemoStyle::PerClass`] the
/// `m = 0` case is identically invisible (shared memo); under
/// [`MemoStyle::PerBucket`] it exposes through the independent background
/// draws.
pub fn dbitflip_change_detection(
    b: u32,
    d: u32,
    eps_inf: f64,
    style: MemoStyle,
) -> Result<ChangeExposure, ParamError> {
    ldp_primitives::error::check_epsilon(eps_inf)?;
    if d == 0 || d > b || b < 2 {
        return Err(ParamError::InvalidBuckets { b, d, k: b as u64 });
    }
    let (p, q) = sue_params(eps_inf);
    let same_signal = p * q + (1.0 - p) * (1.0 - q); // sampled bucket bit agrees
    let same_noise = q * q + (1.0 - q) * (1.0 - q); // background bit agrees
    let mut prob_m = [0.0; 3];
    for (j, pm) in prob_m.iter_mut().enumerate() {
        *pm = hypergeometric(b, 2, d, j as u32);
    }
    let mut detect_given_m = [0.0; 3];
    for (m, slot) in detect_given_m.iter_mut().enumerate() {
        if m == 0 && style == MemoStyle::PerClass {
            continue; // shared memo class: invisible by construction
        }
        if d as usize >= m {
            *slot = 1.0 - same_signal.powi(m as i32) * same_noise.powi(d as i32 - m as i32);
        }
    }
    let expected = prob_m
        .iter()
        .zip(&detect_given_m)
        .map(|(pm, dm)| pm * dm)
        .sum();
    Ok(ChangeExposure {
        prob_m,
        detect_given_m,
        expected,
    })
}

/// `P(X = j)` for `X` ~ Hypergeometric(population `b`, successes `s`,
/// draws `d`).
fn hypergeometric(b: u32, s: u32, d: u32, j: u32) -> f64 {
    if j > s || j > d || d - j > b - s {
        return 0.0;
    }
    let ln_c = |n: u32, r: u32| -> f64 {
        ln_factorial(n as u64) - ln_factorial(r as u64) - ln_factorial((n - r) as u64)
    };
    (ln_c(s, j) + ln_c(b - s, d - j) - ln_c(b, d)).exp()
}

/// Per-round exposure of a LOLOHA value change v → v′ (v ≠ v′).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LolohaExposure {
    /// Probability the hash separates the two values (`1 − 1/g` for an
    /// exactly-universal family; collisions hide the change completely).
    pub cells_differ: f64,
    /// Probability the two memoized PRR outputs differ, given the hash
    /// cells differ: `1 − 2·p1·q1 − (g−2)·q1²`.
    pub memo_differ_given_cells: f64,
    /// Per-round total-variation distance between the report distributions
    /// given the memoized cells differ: `p2 − q2`. The attacker's one-round
    /// distinguishing advantage is at most
    /// `cells_differ · memo_differ_given_cells · (p2 − q2)`.
    pub tv_given_memo: f64,
    /// The *observable* flip-rate advantage: how much more likely two
    /// consecutive reports are to differ when the memoized cell changed:
    /// `cells_differ · memo_differ_given_cells · (p2 − q2)²`.
    pub flip_advantage: f64,
}

impl LolohaExposure {
    /// The one-round distinguishing-advantage upper bound (product of the
    /// three shields).
    pub fn tv_advantage(&self) -> f64 {
        self.cells_differ * self.memo_differ_given_cells * self.tv_given_memo
    }
}

/// Closed-form LOLOHA change exposure for a parameterization.
pub fn loloha_change_exposure(params: LolohaParams) -> LolohaExposure {
    let g = params.g() as f64;
    let p1 = params.prr().p;
    let q1 = params.prr().q;
    let p2 = params.irr().p;
    let q2 = params.irr().q;
    let cells_differ = 1.0 - 1.0 / g;
    let memo_differ = 1.0 - 2.0 * p1 * q1 - (g - 2.0) * q1 * q1;
    let tv = p2 - q2;
    LolohaExposure {
        cells_differ,
        memo_differ_given_cells: memo_differ,
        tv_given_memo: tv,
        flip_advantage: cells_differ * memo_differ * tv * tv,
    }
}

/// Per-change exposure of **PRR-only LOLOHA** (memoized local hashing with
/// no IRR round — the §4 "proper comparison with dBitFlipPM"): a report
/// change happens iff the hash separates the values *and* the two memoized
/// GRR draws differ, and it is then a *certain* signal (no IRR noise to
/// hide behind):
///
/// ```text
/// P(exposed) = (1 − 1/g) · (1 − 2·p1·q1 − (g−2)·q1²)
/// ```
pub fn prr_only_change_exposure(g: u32, eps_inf: f64) -> Result<f64, ParamError> {
    ldp_primitives::error::check_epsilon(eps_inf)?;
    if g < 2 {
        return Err(ParamError::InvalidG { g });
    }
    let gf = g as f64;
    let a = eps_inf.exp();
    let p1 = a / (a + gf - 1.0);
    let q1 = 1.0 / (a + gf - 1.0);
    Ok((1.0 - 1.0 / gf) * (1.0 - 2.0 * p1 * q1 - (gf - 2.0) * q1 * q1))
}

/// Expected *additional* bit flips between consecutive L-UE (RAPPOR-family)
/// reports caused by a value change v → v′ over a `k`-ary domain.
///
/// A change redraws the whole memoized vector: the two signal bits move
/// between Bern(p1) and Bern(q1), and the remaining `k − 2` bits are
/// redrawn i.i.d. Bern(q1) (independent instead of shared). Summing the
/// per-bit flip-rate differences gives the detection effect size the
/// attacker can threshold on.
pub fn lue_change_exposure(chain: &ChainParams, k: u64) -> Result<f64, ParamError> {
    if k < 2 {
        return Err(ParamError::DomainTooSmall { k, min: 2 });
    }
    let p1 = chain.prr.p;
    let q1 = chain.prr.q;
    let p2 = chain.irr.p;
    let q2 = chain.irr.q;
    let signal = bit_flip_advantage(p1, q1, p2, q2);
    let noise = bit_flip_advantage(q1, q1, p2, q2);
    Ok(2.0 * signal + (k - 2) as f64 * noise)
}

/// Flip-rate advantage of one UE bit whose memoized distribution is
/// Bern(`before`) in round t and Bern(`after`) in round t+1 — *shared* draw
/// when the value did not change, *independent* draws when it did.
fn bit_flip_advantage(before: f64, after: f64, p2: f64, q2: f64) -> f64 {
    // P(two reports differ | memo bits m1, m2): r(m) = p2 if m else q2.
    let flip = |m1: bool, m2: bool| -> f64 {
        let r1 = if m1 { p2 } else { q2 };
        let r2 = if m2 { p2 } else { q2 };
        r1 * (1.0 - r2) + r2 * (1.0 - r1)
    };
    // Change: m1 ~ Bern(before), m2 ~ Bern(after), independent.
    let changed = before * after * flip(true, true)
        + before * (1.0 - after) * flip(true, false)
        + (1.0 - before) * after * flip(false, true)
        + (1.0 - before) * (1.0 - after) * flip(false, false);
    // No change: the *same* memoized vector is reused. Both rounds see the
    // round-t memo m ~ Bern(before).
    let unchanged = before * flip(true, true) + (1.0 - before) * flip(false, false);
    changed - unchanged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_longitudinal::chain::{ue_chain_params, UeChain};
    use ldp_longitudinal::{DBitFlipClient, LongitudinalUeClient};
    use ldp_primitives::BitVec;
    use ldp_rand::derive_rng;

    #[test]
    fn hypergeometric_sums_to_one() {
        for &(b, d) in &[(10u32, 3u32), (16, 16), (100, 1)] {
            let total: f64 = (0..=2).map(|j| hypergeometric(b, 2, d, j)).sum();
            assert!((total - 1.0).abs() < 1e-9, "b={b} d={d}: {total}");
        }
    }

    #[test]
    fn d_equals_b_detection_is_near_one() {
        for style in [MemoStyle::PerClass, MemoStyle::PerBucket] {
            let e = dbitflip_change_detection(90, 90, 1.0, style).unwrap();
            assert!((e.prob_m[2] - 1.0).abs() < 1e-9, "all buckets sampled");
            assert!(e.expected > 0.99, "{style:?} expected {}", e.expected);
        }
    }

    #[test]
    fn d_one_detection_is_small_per_class() {
        let e = dbitflip_change_detection(90, 1, 1.0, MemoStyle::PerClass).unwrap();
        // Only when the single sampled bit is one of the two involved
        // buckets (prob 2/90) can anything be seen.
        assert!(e.prob_m[0] > 0.95);
        assert_eq!(e.detect_given_m[0], 0.0);
        assert!(e.expected < 0.02, "expected {}", e.expected);
    }

    #[test]
    fn per_bucket_detection_decreases_with_eps_at_d1() {
        // The paper's Table 2 trend for d = 1: higher ε∞ → the single
        // background bit is almost surely 0 for every bucket → the same
        // report repeats → fewer exposures. Only the per-bucket memo style
        // exhibits this; the per-class style hides m = 0 changes entirely.
        let lo = dbitflip_change_detection(64, 1, 0.5, MemoStyle::PerBucket)
            .unwrap()
            .expected;
        let hi = dbitflip_change_detection(64, 1, 5.0, MemoStyle::PerBucket)
            .unwrap()
            .expected;
        assert!(hi < lo, "eps 5 {hi} should expose less than eps 0.5 {lo}");
    }

    #[test]
    fn per_class_is_never_more_exposed_than_per_bucket() {
        for &(b, d, eps) in &[(16u32, 1u32, 1.0f64), (32, 8, 2.0), (64, 64, 0.5)] {
            let pc = dbitflip_change_detection(b, d, eps, MemoStyle::PerClass)
                .unwrap()
                .expected;
            let pb = dbitflip_change_detection(b, d, eps, MemoStyle::PerBucket)
                .unwrap()
                .expected;
            assert!(pc <= pb + 1e-12, "b={b} d={d}: class {pc} vs bucket {pb}");
        }
    }

    #[test]
    fn dbitflip_closed_form_matches_monte_carlo() {
        // The Monte Carlo exercises this workspace's client, which memoizes
        // per class.
        let (k, b, d, eps) = (64u64, 16u32, 8u32, 1.5);
        let exact = dbitflip_change_detection(b, d, eps, MemoStyle::PerClass)
            .unwrap()
            .expected;
        let mut rng = derive_rng(300, 0);
        let trials = 4_000;
        let mut detected = 0u32;
        for _ in 0..trials {
            let mut client = DBitFlipClient::new(k, b, d, eps, &mut rng).unwrap();
            // Pick two values in different buckets uniformly.
            let v1 = ldp_rand::uniform_u64(&mut rng, k);
            let v2 = loop {
                let c = ldp_rand::uniform_u64(&mut rng, k);
                if client.bucket_of(c) != client.bucket_of(v1) {
                    break c;
                }
            };
            let r1 = client.report(v1, &mut rng);
            let r2 = client.report(v2, &mut rng);
            if r1.bits != r2.bits {
                detected += 1;
            }
        }
        let mc = detected as f64 / trials as f64;
        assert!((mc - exact).abs() < 0.03, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn loloha_exposure_factors_are_probabilities() {
        for &(g, ei, e1) in &[(2u32, 1.0, 0.5), (8, 4.0, 2.0), (16, 5.0, 3.0)] {
            let params = LolohaParams::with_g(g, ei, e1).unwrap();
            let e = loloha_change_exposure(params);
            assert!((0.0..=1.0).contains(&e.cells_differ), "g={g}");
            assert!((0.0..=1.0).contains(&e.memo_differ_given_cells), "g={g}");
            assert!((0.0..=1.0).contains(&e.tv_given_memo), "g={g}");
            assert!(e.tv_advantage() <= 1.0);
            assert!(e.flip_advantage <= e.tv_advantage());
        }
    }

    #[test]
    fn loloha_flip_advantage_matches_monte_carlo() {
        // Simulate the observable: P(consecutive reports differ | change) −
        // P(… | no change) for a fixed client whose value changes once.
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let exact = loloha_change_exposure(params).flip_advantage;
        let mut rng = derive_rng(301, 0);
        let k = 50u64;
        let family = ldp_hash::CarterWegman::new(params.g()).unwrap();
        let trials = 60_000;
        let (mut flips_change, mut flips_same) = (0u32, 0u32);
        for _ in 0..trials {
            let mut client = loloha::LolohaClient::new(&family, k, params, &mut rng).unwrap();
            let v1 = ldp_rand::uniform_u64(&mut rng, k);
            let v2 = loop {
                let c = ldp_rand::uniform_u64(&mut rng, k);
                if c != v1 {
                    break c;
                }
            };
            let a = client.report(v1, &mut rng);
            let b = client.report(v1, &mut rng);
            let c = client.report(v2, &mut rng);
            if a != b {
                flips_same += 1;
            }
            if b != c {
                flips_change += 1;
            }
        }
        let mc = (flips_change as f64 - flips_same as f64) / trials as f64;
        assert!((mc - exact).abs() < 0.02, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn loloha_exposure_far_below_dbitflip_at_d_b() {
        let params = LolohaParams::bi(1.0, 0.5).unwrap();
        let lo = loloha_change_exposure(params).tv_advantage();
        let db = dbitflip_change_detection(64, 64, 1.0, MemoStyle::PerClass)
            .unwrap()
            .expected;
        assert!(lo < db / 5.0, "LOLOHA {lo} vs bBitFlipPM {db}");
    }

    #[test]
    fn prr_only_exposure_between_loloha_and_certainty() {
        // Dropping the IRR strictly raises the exposure relative to full
        // LOLOHA (whose TV advantage multiplies by p2 − q2 < 1) and the
        // hash/PRR shields still keep it below 1.
        for &(g, eps) in &[(2u32, 1.0f64), (4, 2.0), (8, 5.0)] {
            let prr = prr_only_change_exposure(g, eps).unwrap();
            let full = loloha_change_exposure(LolohaParams::with_g(g, eps, 0.5 * eps).unwrap())
                .tv_advantage();
            assert!(prr > full, "g={g}: prr {prr} vs full {full}");
            assert!(prr < 1.0);
        }
    }

    #[test]
    fn prr_only_exposure_matches_monte_carlo() {
        use loloha::prr_only::PrrOnlyClient;
        let (g, eps, k) = (4u32, 1.5, 48u64);
        let exact = prr_only_change_exposure(g, eps).unwrap();
        let family = ldp_hash::CarterWegman::new(g).unwrap();
        let mut rng = derive_rng(310, 0);
        let trials = 30_000;
        let mut exposed = 0u32;
        for _ in 0..trials {
            let mut c = PrrOnlyClient::new(&family, k, eps, &mut rng).unwrap();
            let v1 = ldp_rand::uniform_u64(&mut rng, k);
            let v2 = loop {
                let v = ldp_rand::uniform_u64(&mut rng, k);
                if v != v1 {
                    break v;
                }
            };
            if c.report(v1, &mut rng) != c.report(v2, &mut rng) {
                exposed += 1;
            }
        }
        let mc = exposed as f64 / trials as f64;
        // The closed form assumes exact 1/g collisions; Carter–Wegman over
        // a finite domain deviates slightly, hence the tolerance.
        assert!((mc - exact).abs() < 0.02, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn prr_only_rejects_bad_parameters() {
        assert!(prr_only_change_exposure(1, 1.0).is_err());
        assert!(prr_only_change_exposure(4, 0.0).is_err());
    }

    #[test]
    fn lue_exposure_positive_and_grows_with_domain() {
        // A value change redraws the whole memoized vector, so the expected
        // flip surplus grows linearly with k — large domains make RAPPOR
        // changes *more* visible, not less.
        let chain = ue_chain_params(UeChain::SueSue, 2.0, 1.0).unwrap();
        let small = lue_change_exposure(&chain, 16).unwrap();
        let large = lue_change_exposure(&chain, 256).unwrap();
        assert!(small > 0.0);
        assert!(large > small * 4.0, "k=256 {large} vs k=16 {small}");
    }

    #[test]
    fn lue_exposure_noise_term_shrinks_with_eps() {
        // Counter-intuitive but real: at low ε∞ the memoized bits are
        // near-coin-flips, so a full redraw flips many of them — RAPPOR
        // changes are MORE visible in flip counts at high privacy. Pinned
        // here so the behaviour is documented, not accidental.
        let k = 32;
        let weak = ue_chain_params(UeChain::SueSue, 1.0, 0.5).unwrap();
        let strong = ue_chain_params(UeChain::SueSue, 4.0, 2.0).unwrap();
        let a = lue_change_exposure(&weak, k).unwrap();
        let b = lue_change_exposure(&strong, k).unwrap();
        assert!(a > 0.0 && b > 0.0);
        assert!(b < a, "low-ε chain flips more on change: {a} vs {b}");
    }

    #[test]
    fn lue_exposure_matches_monte_carlo() {
        let k = 16u64;
        let (ei, e1) = (2.0, 1.0);
        let chain = ue_chain_params(UeChain::SueSue, ei, e1).unwrap();
        let exact = lue_change_exposure(&chain, k).unwrap();
        let mut rng = derive_rng(302, 0);
        let trials = 30_000;
        let (mut flips_change, mut flips_same) = (0.0f64, 0.0f64);
        let mut bits_a = BitVec::zeros(k as usize);
        let mut bits_b = BitVec::zeros(k as usize);
        let mut bits_c = BitVec::zeros(k as usize);
        for _ in 0..trials {
            let mut client = LongitudinalUeClient::new(UeChain::SueSue, k, ei, e1).unwrap();
            client.report_into(3, &mut rng, &mut bits_a);
            client.report_into(3, &mut rng, &mut bits_b);
            client.report_into(9, &mut rng, &mut bits_c);
            flips_same += hamming(&bits_a, &bits_b) as f64;
            flips_change += hamming(&bits_b, &bits_c) as f64;
        }
        let mc = (flips_change - flips_same) / trials as f64;
        assert!((mc - exact).abs() < 0.1, "MC {mc} vs exact {exact}");
    }

    fn hamming(a: &BitVec, b: &BitVec) -> u32 {
        let mut d = 0;
        for i in 0..a.len() {
            if a.get(i) != b.get(i) {
                d += 1;
            }
        }
        d
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(dbitflip_change_detection(8, 0, 1.0, MemoStyle::PerClass).is_err());
        assert!(dbitflip_change_detection(8, 9, 1.0, MemoStyle::PerClass).is_err());
        assert!(dbitflip_change_detection(8, 4, 0.0, MemoStyle::PerBucket).is_err());
        let chain = ue_chain_params(UeChain::SueSue, 1.0, 0.5).unwrap();
        assert!(lue_change_exposure(&chain, 1).is_err());
    }
}
