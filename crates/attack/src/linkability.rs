//! Linkability of longitudinal report sequences.
//!
//! §5.3 of the paper concedes a limitation: the user's fixed hash function
//! acts as a *pseudonym* — the server can trivially link all of a user's
//! rounds through `H` (the LDP model assumes user identities are known
//! anyway; the shuffle extension removes the link). This module quantifies
//! two related questions:
//!
//! 1. **How identifying is the hash function itself?**
//!    [`pseudonym_collision_probability`] — the probability two independent
//!    users draw the same Carter–Wegman seed, i.e. the pseudonym's
//!    anonymity-set "birthday" rate.
//! 2. **How identifying are the reports alone?** The matching game
//!    ([`linkage_accuracy_loloha`] / [`linkage_accuracy_dbitflip`]): given a
//!    user's first τ reports and two candidate continuation sequences (one
//!    from the same user, one from a fresh user), the attacker must say
//!    which continuation matches. dBitFlipPM's memoized reports are
//!    constant, so the game is near-trivially won; LOLOHA's IRR round
//!    re-randomizes every report, forcing the attacker to estimate the
//!    memoized cell through noise — accuracy decays toward ½ as ε_IRR
//!    shrinks or τ shrinks.

use ldp_hash::MERSENNE_P;
use ldp_longitudinal::DBitFlipClient;
use ldp_primitives::error::ParamError;
use ldp_primitives::Grr;
use ldp_rand::uniform_u64;
use loloha::LolohaParams;
use rand::RngCore;

/// The probability that two independent users sample the same Carter–Wegman
/// hash function: `1 / (p·(p−1))` with `p = 2^61 − 1` — about `1.9 × 10⁻³⁷`.
///
/// In other words the hash *is* a unique persistent pseudonym; protocols
/// that register `H` with the server (LOLOHA, one-shot LH) must treat
/// unlinkability as out of scope or adopt the shuffle model (`ldp-shuffle`).
pub fn pseudonym_collision_probability() -> f64 {
    let p = MERSENNE_P as f64;
    1.0 / (p * (p - 1.0))
}

/// Outcome of the sequence-matching game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkageAccuracy {
    /// Fraction of trials where the attacker picked the true continuation.
    pub accuracy: f64,
    /// Number of trials played.
    pub trials: u32,
}

/// Plays the matching game against LOLOHA's *report stream* (ignoring the
/// hash pseudonym): the attacker sees τ reports from user A, then two fresh
/// τ-report sequences — one from A (same memoized PRR state), one from a
/// fresh user B — and links by nearest report-histogram (L1).
///
/// All users hold a constant (but per-user random) value, the setting where
/// memoized reports are most linkable.
pub fn linkage_accuracy_loloha<R: RngCore + ?Sized>(
    k: u64,
    params: LolohaParams,
    tau: u32,
    trials: u32,
    rng: &mut R,
) -> Result<LinkageAccuracy, ParamError> {
    if k < 2 {
        return Err(ParamError::DomainTooSmall { k, min: 2 });
    }
    let g = params.g() as u64;
    let prr = Grr::new(g, params.eps_inf())?;
    let irr = Grr::new(g, params.eps_irr())?;
    let mut correct = 0u32;
    for _ in 0..trials {
        // The memoized PRR cell stands in for the whole client state: with a
        // constant value the report stream is IRR(x′) i.i.d.
        let cell_a = prr.perturb(uniform_u64(rng, g), rng);
        let cell_b = prr.perturb(uniform_u64(rng, g), rng);
        let ref_hist = report_histogram(&irr, cell_a, tau, g, rng);
        let cont_same = report_histogram(&irr, cell_a, tau, g, rng);
        let cont_other = report_histogram(&irr, cell_b, tau, g, rng);
        let d_same = l1(&ref_hist, &cont_same);
        let d_other = l1(&ref_hist, &cont_other);
        if d_same < d_other || (d_same == d_other && coin(rng)) {
            correct += 1;
        }
    }
    Ok(LinkageAccuracy {
        accuracy: correct as f64 / trials as f64,
        trials,
    })
}

/// Plays the same matching game against dBitFlipPM: memoized one-round
/// reports are *deterministic* per bucket, so two sequences from the same
/// user are identical and the attacker wins almost always (losing only to
/// the rare event that B's memoized vector coincides with A's).
pub fn linkage_accuracy_dbitflip<R: RngCore + ?Sized>(
    k: u64,
    b: u32,
    d: u32,
    eps_inf: f64,
    tau: u32,
    trials: u32,
    rng: &mut R,
) -> Result<LinkageAccuracy, ParamError> {
    let mut correct = 0u32;
    for _ in 0..trials {
        let mut user_a = DBitFlipClient::new(k, b, d, eps_inf, rng)?;
        let mut user_b = DBitFlipClient::new(k, b, d, eps_inf, rng)?;
        let value_a = uniform_u64(rng, k);
        let value_b = uniform_u64(rng, k);
        let reference: Vec<_> = (0..tau)
            .map(|_| user_a.report(value_a, rng).bits.clone())
            .collect();
        let cont_same: Vec<_> = (0..tau)
            .map(|_| user_a.report(value_a, rng).bits.clone())
            .collect();
        let cont_other: Vec<_> = (0..tau)
            .map(|_| user_b.report(value_b, rng).bits.clone())
            .collect();
        // Memoized reports are constant; compare the last reference report
        // to each continuation's first (exact-match linker).
        let anchor = reference.last().expect("tau >= 1");
        let same_match = cont_same.iter().filter(|r| *r == anchor).count();
        let other_match = cont_other.iter().filter(|r| *r == anchor).count();
        if same_match > other_match || (same_match == other_match && coin(rng)) {
            correct += 1;
        }
    }
    Ok(LinkageAccuracy {
        accuracy: correct as f64 / trials as f64,
        trials,
    })
}

fn report_histogram<R: RngCore + ?Sized>(
    irr: &Grr,
    memoized: u64,
    tau: u32,
    g: u64,
    rng: &mut R,
) -> Vec<f64> {
    let mut hist = vec![0.0; g as usize];
    for _ in 0..tau {
        hist[irr.perturb(memoized, rng) as usize] += 1.0;
    }
    for h in &mut hist {
        *h /= tau.max(1) as f64;
    }
    hist
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn coin<R: RngCore + ?Sized>(rng: &mut R) -> bool {
    rng.next_u64() & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    #[test]
    fn pseudonym_collision_is_negligible() {
        let p = pseudonym_collision_probability();
        assert!(p > 0.0);
        assert!(p < 1e-36);
    }

    #[test]
    fn dbitflip_sequences_are_trivially_linkable() {
        let mut rng = derive_rng(200, 0);
        let acc = linkage_accuracy_dbitflip(64, 16, 16, 2.0, 8, 400, &mut rng).unwrap();
        assert!(acc.accuracy > 0.9, "accuracy {}", acc.accuracy);
    }

    #[test]
    fn loloha_linkage_weaker_than_dbitflip() {
        let mut rng = derive_rng(201, 0);
        let params = LolohaParams::bi(2.0, 0.8).unwrap();
        let lo = linkage_accuracy_loloha(64, params, 8, 600, &mut rng).unwrap();
        let db = linkage_accuracy_dbitflip(64, 16, 16, 2.0, 8, 600, &mut rng).unwrap();
        assert!(
            lo.accuracy < db.accuracy,
            "LOLOHA {} should be below dBitFlip {}",
            lo.accuracy,
            db.accuracy
        );
    }

    #[test]
    fn loloha_linkage_grows_with_tau() {
        // More rounds → better histogram separation → easier linking. This
        // is the honest caveat: IRR slows linkage, it does not erase it.
        let params = LolohaParams::bi(3.0, 1.5).unwrap();
        let mut rng = derive_rng(202, 0);
        let short = linkage_accuracy_loloha(32, params, 2, 1_500, &mut rng).unwrap();
        let long = linkage_accuracy_loloha(32, params, 64, 1_500, &mut rng).unwrap();
        assert!(
            long.accuracy > short.accuracy + 0.05,
            "short {} long {}",
            short.accuracy,
            long.accuracy
        );
    }

    #[test]
    fn loloha_linkage_bounded_below_by_chance() {
        let params = LolohaParams::bi(1.0, 0.5).unwrap();
        let mut rng = derive_rng(203, 0);
        let acc = linkage_accuracy_loloha(16, params, 4, 2_000, &mut rng).unwrap();
        assert!(acc.accuracy > 0.45, "chance floor: {}", acc.accuracy);
        assert!(acc.accuracy < 1.0);
    }

    #[test]
    fn small_domain_is_rejected() {
        let params = LolohaParams::bi(1.0, 0.5).unwrap();
        let mut rng = derive_rng(204, 0);
        assert!(linkage_accuracy_loloha(1, params, 4, 10, &mut rng).is_err());
    }
}
