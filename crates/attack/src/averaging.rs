//! The averaging (mode) attack across τ rounds.
//!
//! §2.4 of the paper: if a user re-randomizes the *same* true value with
//! fresh noise every round, the server can take the mode of the τ reports
//! and recover the value with probability → 1. Memoization (PRR) defeats
//! this: the mode converges to the *memoized* symbol, whose identity leaks
//! only the one-time PRR draw (probability `p1` of being the truth),
//! regardless of τ.
//!
//! * [`rr_majority_success_binary`] — exact closed form for `k = 2`
//!   (binary randomized response, majority vote).
//! * [`mode_attack_fresh_grr`] — Monte Carlo for general `k`.
//! * [`mode_attack_memoized`] — Monte Carlo against a PRR+IRR chain,
//!   demonstrating the plateau at `p1`.

use ldp_primitives::error::ParamError;
use ldp_primitives::params::grr_params;
use ldp_primitives::Grr;
use ldp_rand::uniform_u64;
use rand::RngCore;

/// Exact success probability of the majority-vote attack against τ rounds
/// of *fresh* binary randomized response at level ε (ties broken by a fair
/// coin).
///
/// With `p = e^ε/(e^ε+1)` and `C ~ Bin(τ, p)` correct reports:
/// `P(win) = P(C > τ/2) + ½·P(C = τ/2)`.
pub fn rr_majority_success_binary(eps: f64, tau: u32) -> Result<f64, ParamError> {
    if !eps.is_finite() || eps <= 0.0 {
        return Err(ParamError::InvalidEpsilon { value: eps });
    }
    let (p, _) = grr_params(eps, 2);
    // Binomial pmf by stable recurrence: pmf(0) = (1-p)^τ,
    // pmf(c+1) = pmf(c) · (τ-c)/(c+1) · p/(1-p).
    let tau_f = tau as f64;
    let ratio = p / (1.0 - p);
    let mut pmf = (1.0 - p).powi(tau as i32);
    let mut win = 0.0;
    for c in 0..=tau {
        let cf = c as f64;
        if 2.0 * cf > tau_f {
            win += pmf;
        } else if 2.0 * cf == tau_f {
            win += 0.5 * pmf;
        }
        if c < tau {
            pmf *= (tau_f - cf) / (cf + 1.0) * ratio;
        }
    }
    Ok(win.min(1.0))
}

/// Monte Carlo success rate of the mode attack against τ rounds of fresh
/// GRR over a `k`-ary domain (`trials` independent users, value fixed at 0
/// WLOG by symmetry; mode ties broken uniformly).
pub fn mode_attack_fresh_grr<R: RngCore + ?Sized>(
    k: u64,
    eps: f64,
    tau: u32,
    trials: u32,
    rng: &mut R,
) -> Result<f64, ParamError> {
    let grr = Grr::new(k, eps)?;
    let mut wins = 0.0;
    let mut counts = vec![0u32; k as usize];
    for _ in 0..trials {
        counts.fill(0);
        for _ in 0..tau {
            counts[grr.perturb(0, rng) as usize] += 1;
        }
        wins += mode_win_probability(&counts, 0);
    }
    Ok(wins / trials as f64)
}

/// Monte Carlo success rate of the mode attack against τ rounds of a
/// memoized GRR chain (PRR at ε∞ drawn once, IRR at ε_irr fresh per round),
/// the structure of L-GRR and of LOLOHA's cell reports.
///
/// As τ → ∞ the mode reveals the memoized symbol `x′`, so the success rate
/// plateaus at `P(x′ = v) = p1` instead of approaching 1.
pub fn mode_attack_memoized<R: RngCore + ?Sized>(
    k: u64,
    eps_inf: f64,
    eps_irr: f64,
    tau: u32,
    trials: u32,
    rng: &mut R,
) -> Result<f64, ParamError> {
    let prr = Grr::new(k, eps_inf)?;
    let irr = Grr::new(k, eps_irr)?;
    let mut wins = 0.0;
    let mut counts = vec![0u32; k as usize];
    for _ in 0..trials {
        counts.fill(0);
        let memoized = prr.perturb(0, rng);
        for _ in 0..tau {
            counts[irr.perturb(memoized, rng) as usize] += 1;
        }
        wins += mode_win_probability(&counts, 0);
    }
    Ok(wins / trials as f64)
}

/// The probability the attacker's uniformly tie-broken mode guess equals
/// `truth` given the observed report counts.
fn mode_win_probability(counts: &[u32], truth: usize) -> f64 {
    let best = *counts.iter().max().expect("non-empty domain");
    let ties = counts.iter().filter(|&&c| c == best).count();
    if counts[truth] == best {
        1.0 / ties as f64
    } else {
        0.0
    }
}

/// The asymptotic (τ → ∞) ceiling of the memoized mode attack: `p1`, the
/// probability the PRR preserved the true symbol.
pub fn memoized_attack_ceiling(k: u64, eps_inf: f64) -> f64 {
    grr_params(eps_inf, k).0
}

/// Picks a uniformly random value, used by examples to vary the attacked
/// input (the analysis itself is symmetric in the value).
pub fn random_value<R: RngCore + ?Sized>(k: u64, rng: &mut R) -> u64 {
    uniform_u64(rng, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_rand::derive_rng;

    #[test]
    fn binary_closed_form_matches_monte_carlo() {
        let (eps, tau) = (1.0, 21);
        let exact = rr_majority_success_binary(eps, tau).unwrap();
        let mut rng = derive_rng(100, 0);
        let mc = mode_attack_fresh_grr(2, eps, tau, 40_000, &mut rng).unwrap();
        assert!((exact - mc).abs() < 0.01, "exact {exact} vs MC {mc}");
    }

    #[test]
    fn fresh_noise_success_grows_with_tau() {
        let eps = 0.5;
        let few = rr_majority_success_binary(eps, 5).unwrap();
        let many = rr_majority_success_binary(eps, 101).unwrap();
        assert!(many > few);
        assert!(many > 0.95, "τ=101 at ε=0.5 should be near-certain: {many}");
    }

    #[test]
    fn fresh_noise_single_round_equals_p() {
        let eps = 2.0;
        let (p, _) = grr_params(eps, 2);
        let s = rr_majority_success_binary(eps, 1).unwrap();
        assert!((s - p).abs() < 1e-12);
    }

    #[test]
    fn memoization_caps_the_attack() {
        // Fresh noise at τ = 60 nearly reveals the value; the memoized chain
        // with the same per-round ε stays near its ceiling p1.
        let (k, eps_inf, eps_irr, tau) = (4u64, 1.0, 1.0, 60);
        let mut rng = derive_rng(101, 0);
        let fresh = mode_attack_fresh_grr(k, eps_irr, tau, 8_000, &mut rng).unwrap();
        let memo = mode_attack_memoized(k, eps_inf, eps_irr, tau, 8_000, &mut rng).unwrap();
        let ceiling = memoized_attack_ceiling(k, eps_inf);
        assert!(fresh > 0.9, "fresh {fresh}");
        assert!(memo < ceiling + 0.03, "memo {memo} ceiling {ceiling}");
        assert!(
            memo < fresh - 0.2,
            "memo {memo} should be far below fresh {fresh}"
        );
    }

    #[test]
    fn memoized_attack_approaches_ceiling_from_below_as_tau_grows() {
        let (k, eps_inf, eps_irr) = (4u64, 2.0, 1.0);
        let mut rng = derive_rng(102, 0);
        let long = mode_attack_memoized(k, eps_inf, eps_irr, 120, 8_000, &mut rng).unwrap();
        let ceiling = memoized_attack_ceiling(k, eps_inf);
        assert!(
            (long - ceiling).abs() < 0.03,
            "long {long} vs ceiling {ceiling}"
        );
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        assert!(rr_majority_success_binary(0.0, 5).is_err());
        assert!(rr_majority_success_binary(f64::INFINITY, 5).is_err());
        let mut rng = derive_rng(1, 0);
        assert!(mode_attack_fresh_grr(1, 1.0, 5, 10, &mut rng).is_err());
    }

    #[test]
    fn mode_win_probability_handles_ties() {
        assert_eq!(mode_win_probability(&[3, 3, 1], 0), 0.5);
        assert_eq!(mode_win_probability(&[3, 3, 1], 2), 0.0);
        assert_eq!(mode_win_probability(&[5, 3, 1], 0), 1.0);
        assert_eq!(mode_win_probability(&[1, 1, 1], 1), 1.0 / 3.0);
    }

    #[test]
    fn tau_zero_attack_is_pure_tie_break() {
        // No reports: every count is zero, mode guess is uniform.
        let mut rng = derive_rng(103, 0);
        let s = mode_attack_fresh_grr(5, 1.0, 0, 1_000, &mut rng).unwrap();
        assert!((s - 0.2).abs() < 1e-12);
    }
}
