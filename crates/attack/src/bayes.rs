//! Bayesian single-report attack success rates (ASR) per protocol.
//!
//! The adversary observes one sanitized report and outputs the MAP estimate
//! of the user's input under a uniform prior. The paper (§6) cites the
//! empirical finding of Gursoy et al. (TIFS 2022) and Arcolezi et al. (2022)
//! that local-hashing protocols are the *least attackable* family; this
//! module computes the quantities behind that claim exactly:
//!
//! * [`asr_grr`] / [`asr_lgrr_first_report`] — from the exact transition
//!   channel ([`Channel`]).
//! * [`asr_loloha_first_report`] — the value-level channel composed through
//!   a concrete hash function; averaged over sampled hash functions.
//! * [`asr_ue`] — closed form for the unary-encoding MAP adversary
//!   (derivation below), applicable to one-shot SUE/OUE and, through the
//!   composed per-bit pair `(p_s, q_s)`, to RAPPOR/L-OSUE first reports.
//!
//! ## UE closed form
//!
//! With per-bit parameters `(p, q)`, `p > q`, the log-likelihood of input
//! `v` given report bits `b` is, up to constants, `b_v · ln(p/q) +
//! (1−b_v) · ln((1−p)/(1−q))`; since `p > q` this is maximized exactly by
//! the values whose bit is set (or, when no bit is set, all values tie).
//! With `S ~ Bin(k−1, q)` counting noise bits:
//!
//! ```text
//! ASR = p · E[1/(1+S)] + (1−p) · (1−q)^{k−1} / k
//! E[1/(1+S)] = (1 − (1−q)^k) / (k·q)
//! ```

use crate::channel::{Channel, ChannelError};
use ldp_hash::{CarterWegman, SeededHash, UniversalFamily};
use ldp_longitudinal::chain::lgrr_params;
use ldp_primitives::error::ParamError;
use ldp_primitives::params::grr_params;
use loloha::LolohaParams;
use rand::RngCore;

/// An attack-success estimate together with the random-guess baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsrEstimate {
    /// Probability that the MAP adversary names the exact input value.
    pub asr: f64,
    /// The uninformed baseline `1/k`.
    pub baseline: f64,
}

impl AsrEstimate {
    /// How many times better than random guessing the adversary does.
    pub fn lift(&self) -> f64 {
        self.asr / self.baseline
    }
}

/// Exact ASR of one GRR report over a `k`-ary domain at level ε: equals the
/// retention probability `p = e^ε/(e^ε + k − 1)`.
pub fn asr_grr(k: usize, eps: f64) -> Result<AsrEstimate, ChannelError> {
    let ch = Channel::grr(k, eps)?;
    Ok(AsrEstimate {
        asr: ch.asr_uniform(),
        baseline: 1.0 / k as f64,
    })
}

/// Exact ASR of an L-GRR *first report* (PRR at ε∞ chained with IRR) over a
/// `k`-ary domain, from the composed transition channel.
pub fn asr_lgrr_first_report(
    k: usize,
    eps_inf: f64,
    eps_first: f64,
) -> Result<AsrEstimate, ChannelError> {
    let (prr, irr) = lgrr_params(k as u64, eps_inf, eps_first)?;
    let prr_ch = Channel::symmetric(k, prr.p, prr.q)?;
    let irr_ch = Channel::symmetric(k, irr.p, irr.q)?;
    let composed = prr_ch.compose(&irr_ch)?;
    Ok(AsrEstimate {
        asr: composed.asr_uniform(),
        baseline: 1.0 / k as f64,
    })
}

/// ASR of a LOLOHA *first report* at the value level, averaged over
/// `samples` hash functions drawn from the Carter–Wegman family.
///
/// For each sampled `H : [k] → [g]` the value-level channel has row `v`
/// equal to the composed PRR∘IRR row of cell `H(v)`; hash collisions make
/// rows identical, which is exactly the protection local hashing buys. The
/// result's variance across hash draws is small for `k ≫ g`; `samples = 32`
/// is plenty for two-digit precision.
pub fn asr_loloha_first_report<R: RngCore + ?Sized>(
    k: usize,
    params: LolohaParams,
    samples: usize,
    rng: &mut R,
) -> Result<AsrEstimate, ChannelError> {
    if k < 2 {
        return Err(ParamError::DomainTooSmall {
            k: k as u64,
            min: 2,
        }
        .into());
    }
    if samples == 0 {
        return Err(ChannelError::BadShape {
            expected: 1,
            got: 0,
        });
    }
    let g = params.g() as usize;
    let family = CarterWegman::new(params.g()).ok_or(ParamError::InvalidG { g: params.g() })?;
    let prr = Channel::symmetric(g, params.prr().p, params.prr().q)?;
    let irr = Channel::symmetric(g, params.irr().p, params.irr().q)?;
    let cell_channel = prr.compose(&irr)?;
    let mut total = 0.0;
    let mut map = vec![0u32; k];
    for _ in 0..samples {
        let h = family.sample(rng);
        for (v, m) in map.iter_mut().enumerate() {
            *m = h.hash(v as u64);
        }
        let lifted = Channel::via_mapping(&map, &cell_channel)?;
        total += lifted.asr_uniform();
    }
    Ok(AsrEstimate {
        asr: total / samples as f64,
        baseline: 1.0 / k as f64,
    })
}

/// Closed-form ASR of the unary-encoding MAP adversary with per-bit pair
/// `(p, q)` over a `k`-ary domain (see the module docs for the derivation).
///
/// Pass the one-shot pair for SUE/OUE, or the composed `(p_s, q_s)` of a
/// chain (`ChainParams::composed`) for a RAPPOR / L-OSUE first report.
pub fn asr_ue(k: usize, p: f64, q: f64) -> Result<AsrEstimate, ChannelError> {
    if k < 2 {
        return Err(ParamError::DomainTooSmall {
            k: k as u64,
            min: 2,
        }
        .into());
    }
    if !(0.0..=1.0).contains(&p) || !(0.0..1.0).contains(&q) || p <= q {
        return Err(ParamError::InvalidProbability { p, q }.into());
    }
    let kf = k as f64;
    let none_set = (1.0 - q).powi(k as i32 - 1);
    // E[1/(1+S)] with S ~ Bin(k−1, q).
    let expect_inv = if q == 0.0 {
        1.0
    } else {
        (1.0 - (1.0 - q).powi(k as i32)) / (kf * q)
    };
    let asr = p * expect_inv + (1.0 - p) * none_set / kf;
    Ok(AsrEstimate {
        asr,
        baseline: 1.0 / kf,
    })
}

/// Convenience: the one-shot GRR retention probability (for display next to
/// ASR values, since for GRR they coincide).
pub fn grr_retention(k: usize, eps: f64) -> f64 {
    grr_params(eps, k as u64).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_primitives::params::{oue_params, sue_params};
    use ldp_rand::derive_rng;

    #[test]
    fn grr_asr_is_retention_probability() {
        let a = asr_grr(10, 2.0).unwrap();
        assert!((a.asr - grr_retention(10, 2.0)).abs() < 1e-12);
        assert!((a.baseline - 0.1).abs() < 1e-12);
        assert!(a.lift() > 1.0);
    }

    #[test]
    fn lgrr_first_report_asr_between_baseline_and_grr_at_eps_inf() {
        // The chain at (ε∞, ε1) leaks at most ε1 on the first report, so its
        // ASR must be below one-shot GRR at ε∞ and above random guessing.
        let (k, ei, e1) = (12usize, 3.0, 1.5);
        let chain = asr_lgrr_first_report(k, ei, e1).unwrap();
        let oneshot = asr_grr(k, ei).unwrap();
        assert!(chain.asr < oneshot.asr);
        assert!(chain.asr > 1.0 / k as f64);
    }

    #[test]
    fn lgrr_first_report_asr_close_to_grr_at_eps_first() {
        // The paper's parameterization makes the first report ≈ ε1-LDP (and
        // slightly stronger for k > 2), so its ASR is bounded by GRR at ε1
        // up to the conservativeness slack.
        let (k, ei, e1) = (6usize, 2.0, 1.0);
        let chain = asr_lgrr_first_report(k, ei, e1).unwrap();
        let at_first = asr_grr(k, e1).unwrap();
        assert!(
            chain.asr <= at_first.asr + 1e-9,
            "{} vs {}",
            chain.asr,
            at_first.asr
        );
    }

    #[test]
    fn loloha_asr_far_below_grr_for_large_domains() {
        // The headline §6 claim: hashing collisions cap the adversary near
        // g/k · cell-ASR, orders below GRR's p at the same ε.
        let mut rng = derive_rng(7, 0);
        let k = 200;
        let params = LolohaParams::bi(2.0, 1.0).unwrap();
        let lo = asr_loloha_first_report(k, params, 16, &mut rng).unwrap();
        let grr = asr_grr(k, 1.0).unwrap();
        assert!(lo.asr < grr.asr, "LOLOHA {} vs GRR {}", lo.asr, grr.asr);
        // Analytic cap: picking the MAP cell then a value inside it succeeds
        // with at most cell-ASR · (1 / min preimage size) ≈ g/k modulo
        // imbalance; allow 3× slack for hash imbalance.
        let cap = 3.0 * params.g() as f64 / k as f64;
        assert!(lo.asr < cap, "ASR {} above cap {cap}", lo.asr);
    }

    #[test]
    fn loloha_asr_exceeds_baseline() {
        let mut rng = derive_rng(8, 0);
        let params = LolohaParams::bi(4.0, 2.0).unwrap();
        let a = asr_loloha_first_report(50, params, 16, &mut rng).unwrap();
        assert!(a.asr > a.baseline);
    }

    #[test]
    fn ue_closed_form_matches_monte_carlo() {
        use ldp_rand::uniform_f64;
        let (k, eps) = (16usize, 2.0);
        let (p, q) = oue_params(eps);
        let exact = asr_ue(k, p, q).unwrap().asr;
        let mut rng = derive_rng(9, 1);
        let trials = 60_000;
        let mut hits = 0.0;
        for t in 0..trials {
            let v = t % k;
            // Report bits: bit v ~ Bern(p), others ~ Bern(q).
            let mut set = Vec::new();
            for i in 0..k {
                let pr = if i == v { p } else { q };
                if uniform_f64(&mut rng) < pr {
                    set.push(i);
                }
            }
            // MAP: uniform among set bits; if none, uniform among all.
            let guess_hit = if set.is_empty() {
                1.0 / k as f64
            } else if set.contains(&v) {
                1.0 / set.len() as f64
            } else {
                0.0
            };
            hits += guess_hit;
        }
        let mc = hits / trials as f64;
        assert!((mc - exact).abs() < 0.01, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn sue_asr_below_grr_asr_for_small_k() {
        // For small domains GRR is the stronger signal (it is optimal for
        // small k); UE spreads information across bits.
        let (k, eps) = (4usize, 1.0);
        let (p, q) = sue_params(eps);
        let ue = asr_ue(k, p, q).unwrap();
        let grr = asr_grr(k, eps).unwrap();
        assert!(ue.asr < grr.asr);
    }

    #[test]
    fn ue_asr_decreases_with_domain_size() {
        let (p, q) = oue_params(2.0);
        let small = asr_ue(8, p, q).unwrap().asr;
        let large = asr_ue(256, p, q).unwrap().asr;
        assert!(large < small);
    }

    #[test]
    fn asr_monotone_in_epsilon() {
        let mut last = 0.0;
        for eps in [0.5, 1.0, 2.0, 4.0] {
            let a = asr_grr(20, eps).unwrap().asr;
            assert!(a > last);
            last = a;
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(asr_grr(1, 1.0).is_err());
        assert!(asr_ue(5, 0.2, 0.5).is_err()); // p <= q
        assert!(asr_ue(1, 0.7, 0.2).is_err());
        let params = LolohaParams::bi(1.0, 0.5).unwrap();
        let mut rng = derive_rng(1, 1);
        assert!(asr_loloha_first_report(1, params, 4, &mut rng).is_err());
        assert!(asr_loloha_first_report(10, params, 0, &mut rng).is_err());
    }
}
