//! Exact discrete channels and the MAP adversary.
//!
//! A randomized response mechanism over a finite input domain is fully
//! described by its transition matrix `P(y | x)`. Working with the matrix
//! directly lets tests verify the ε-LDP inequality *numerically* (no trust
//! in the algebra) and lets the Bayesian analysis compute the exact success
//! rate of the optimal (MAP) single-report adversary:
//!
//! ```text
//! ASR = Σ_y max_x  π(x) · P(y | x)        (π = adversary's prior)
//! ```
//!
//! which for the uniform prior reduces to `(1/k) Σ_y max_x P(y|x)`.

use ldp_primitives::error::ParamError;
use ldp_primitives::params::grr_params;
use std::error::Error;
use std::fmt;

/// Errors from channel construction and composition.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A row did not sum to one (within tolerance) or had negative entries.
    NotStochastic {
        /// The offending input row.
        row: usize,
        /// Its sum.
        sum: f64,
    },
    /// The matrix dimensions were inconsistent.
    BadShape {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// Composition `A ∘ B` requires `A.outputs == B.inputs`.
    IncompatibleCompose {
        /// Output count of the first channel.
        outputs: usize,
        /// Input count of the second channel.
        inputs: usize,
    },
    /// A parameter error from an underlying protocol constructor.
    Param(ParamError),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::NotStochastic { row, sum } => {
                write!(f, "row {row} is not a probability distribution (sum {sum})")
            }
            ChannelError::BadShape { expected, got } => {
                write!(f, "matrix has {got} entries, expected {expected}")
            }
            ChannelError::IncompatibleCompose { outputs, inputs } => {
                write!(f, "cannot compose: first channel has {outputs} outputs, second expects {inputs} inputs")
            }
            ChannelError::Param(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ChannelError {}

impl From<ParamError> for ChannelError {
    fn from(e: ParamError) -> Self {
        ChannelError::Param(e)
    }
}

const ROW_SUM_TOL: f64 = 1e-9;

/// A row-stochastic transition matrix `P(y | x)` with `inputs` rows and
/// `outputs` columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    inputs: usize,
    outputs: usize,
    rows: Vec<f64>, // row-major inputs × outputs
}

impl Channel {
    /// Validates and wraps a row-major matrix.
    pub fn new(inputs: usize, outputs: usize, rows: Vec<f64>) -> Result<Self, ChannelError> {
        if rows.len() != inputs * outputs {
            return Err(ChannelError::BadShape {
                expected: inputs * outputs,
                got: rows.len(),
            });
        }
        for (i, row) in rows.chunks_exact(outputs).enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_TOL || row.iter().any(|&p| p < 0.0 || !p.is_finite()) {
                return Err(ChannelError::NotStochastic { row: i, sum });
            }
        }
        Ok(Self {
            inputs,
            outputs,
            rows,
        })
    }

    /// The GRR channel over a `k`-ary domain at privacy level ε.
    pub fn grr(k: usize, eps: f64) -> Result<Self, ChannelError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(ParamError::InvalidEpsilon { value: eps }.into());
        }
        if k < 2 {
            return Err(ParamError::DomainTooSmall {
                k: k as u64,
                min: 2,
            }
            .into());
        }
        let (p, q) = grr_params(eps, k as u64);
        Self::symmetric(k, p, q)
    }

    /// A symmetric k-ary channel: `p` on the diagonal, `q` everywhere else.
    /// Requires `p + (k−1)q = 1`.
    pub fn symmetric(k: usize, p: f64, q: f64) -> Result<Self, ChannelError> {
        let mut rows = vec![q; k * k];
        for x in 0..k {
            rows[x * k + x] = p;
        }
        Self::new(k, k, rows)
    }

    /// Number of input symbols.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output symbols.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Transition probability `P(y | x)`.
    pub fn prob(&self, x: usize, y: usize) -> f64 {
        self.rows[x * self.outputs + y]
    }

    /// Sequential composition `self` then `second`: the channel
    /// `P(z | x) = Σ_y P₂(z | y) · P₁(y | x)`. This is how a memoized PRR
    /// report chained with an IRR round is analyzed as one mechanism.
    pub fn compose(&self, second: &Channel) -> Result<Channel, ChannelError> {
        if self.outputs != second.inputs {
            return Err(ChannelError::IncompatibleCompose {
                outputs: self.outputs,
                inputs: second.inputs,
            });
        }
        let mut rows = vec![0.0; self.inputs * second.outputs];
        for x in 0..self.inputs {
            for y in 0..self.outputs {
                let pxy = self.prob(x, y);
                if pxy == 0.0 {
                    continue;
                }
                for z in 0..second.outputs {
                    rows[x * second.outputs + z] += pxy * second.prob(y, z);
                }
            }
        }
        Channel::new(self.inputs, second.outputs, rows)
    }

    /// Lifts a channel over a reduced domain to the value level through a
    /// deterministic pre-mapping (e.g. a hash function `[k] → [g]`): row `v`
    /// of the result is row `map[v]` of `inner`.
    pub fn via_mapping(map: &[u32], inner: &Channel) -> Result<Channel, ChannelError> {
        let mut rows = Vec::with_capacity(map.len() * inner.outputs);
        for &cell in map {
            let c = cell as usize;
            if c >= inner.inputs {
                return Err(ChannelError::BadShape {
                    expected: inner.inputs,
                    got: c + 1,
                });
            }
            rows.extend_from_slice(&inner.rows[c * inner.outputs..(c + 1) * inner.outputs]);
        }
        Channel::new(map.len(), inner.outputs, rows)
    }

    /// The realized ε of this channel: `max_y ln(max_x P(y|x) / min_x P(y|x))`.
    /// Returns `+∞` if some output has probability zero under one input but
    /// not another.
    pub fn ldp_epsilon(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for y in 0..self.outputs {
            let mut hi = f64::NEG_INFINITY;
            let mut lo = f64::INFINITY;
            for x in 0..self.inputs {
                let p = self.prob(x, y);
                hi = hi.max(p);
                lo = lo.min(p);
            }
            if hi == 0.0 {
                continue; // output never occurs: vacuous
            }
            if lo == 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max((hi / lo).ln());
        }
        worst
    }

    /// Success rate of the MAP adversary under a uniform prior:
    /// `(1/k) Σ_y max_x P(y|x)`.
    pub fn asr_uniform(&self) -> f64 {
        let mut total = 0.0;
        for y in 0..self.outputs {
            let mut best = 0.0f64;
            for x in 0..self.inputs {
                best = best.max(self.prob(x, y));
            }
            total += best;
        }
        total / self.inputs as f64
    }

    /// Success rate of the MAP adversary under an arbitrary prior `π`:
    /// `Σ_y max_x π(x) · P(y|x)`.
    pub fn asr_with_prior(&self, prior: &[f64]) -> Result<f64, ChannelError> {
        if prior.len() != self.inputs {
            return Err(ChannelError::BadShape {
                expected: self.inputs,
                got: prior.len(),
            });
        }
        let mut total = 0.0;
        for y in 0..self.outputs {
            let mut best = 0.0f64;
            for (x, &px) in prior.iter().enumerate() {
                best = best.max(px * self.prob(x, y));
            }
            total += best;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grr_channel_is_stochastic_and_epsilon_tight() {
        for &(k, eps) in &[(2usize, 0.5f64), (4, 1.0), (16, 3.0)] {
            let ch = Channel::grr(k, eps).unwrap();
            assert!((ch.ldp_epsilon() - eps).abs() < 1e-9, "k={k} eps={eps}");
        }
    }

    #[test]
    fn grr_asr_equals_p() {
        // For GRR every output column's max is p, so ASR = p.
        let (k, eps) = (8usize, 2.0);
        let ch = Channel::grr(k, eps).unwrap();
        let (p, _) = grr_params(eps, k as u64);
        assert!((ch.asr_uniform() - p).abs() < 1e-12);
    }

    #[test]
    fn composition_of_grr_channels_weakens_epsilon() {
        // PRR at ε∞ followed by IRR at ε_IRR leaks less than either round
        // alone claims: the composed ε must be below min(ε∞, realized-sum).
        let prr = Channel::grr(4, 3.0).unwrap();
        let irr = Channel::grr(4, 1.0).unwrap();
        let both = prr.compose(&irr).unwrap();
        assert!(both.ldp_epsilon() < prr.ldp_epsilon());
        assert!(both.ldp_epsilon() < irr.ldp_epsilon() + 1e-12 || both.ldp_epsilon() < 3.0);
        // Composition is stochastic by construction (Channel::new validated).
        assert_eq!(both.inputs(), 4);
        assert_eq!(both.outputs(), 4);
    }

    #[test]
    fn compose_shape_mismatch_is_rejected() {
        let a = Channel::grr(3, 1.0).unwrap();
        let b = Channel::grr(4, 1.0).unwrap();
        assert!(matches!(
            a.compose(&b),
            Err(ChannelError::IncompatibleCompose {
                outputs: 3,
                inputs: 4
            })
        ));
    }

    #[test]
    fn via_mapping_repeats_rows() {
        let inner = Channel::grr(2, 1.0).unwrap();
        let map = [0u32, 1, 0, 1, 1];
        let lifted = Channel::via_mapping(&map, &inner).unwrap();
        assert_eq!(lifted.inputs(), 5);
        assert_eq!(lifted.outputs(), 2);
        for (v, &cell) in map.iter().enumerate() {
            for y in 0..2 {
                assert_eq!(lifted.prob(v, y), inner.prob(cell as usize, y));
            }
        }
    }

    #[test]
    fn via_mapping_collisions_reduce_asr() {
        // With all values hashed to the same cell the report carries no
        // information: ASR collapses to the random-guess rate 1/k.
        let inner = Channel::grr(2, 5.0).unwrap();
        let all_same = Channel::via_mapping(&[0, 0, 0, 0], &inner).unwrap();
        assert!((all_same.asr_uniform() - 0.25).abs() < 1e-12);
        // With a balanced 4 → 2 map the adversary can at best pick the
        // right cell (prob ≈ p) and then guess inside it (1/2).
        let balanced = Channel::via_mapping(&[0, 0, 1, 1], &inner).unwrap();
        let p = inner.prob(0, 0);
        assert!((balanced.asr_uniform() - p / 2.0).abs() < 1e-12);
    }

    #[test]
    fn asr_with_prior_uniform_matches_asr_uniform() {
        let ch = Channel::grr(5, 1.5).unwrap();
        let prior = vec![0.2; 5];
        assert!((ch.asr_with_prior(&prior).unwrap() - ch.asr_uniform()).abs() < 1e-12);
    }

    #[test]
    fn skewed_prior_raises_asr() {
        // A concentrated prior makes the adversary's life easier.
        let ch = Channel::grr(4, 1.0).unwrap();
        let skewed = [0.85, 0.05, 0.05, 0.05];
        assert!(ch.asr_with_prior(&skewed).unwrap() > ch.asr_uniform());
    }

    #[test]
    fn non_stochastic_rows_are_rejected() {
        assert!(matches!(
            Channel::new(2, 2, vec![0.5, 0.6, 0.5, 0.5]),
            Err(ChannelError::NotStochastic { row: 0, .. })
        ));
        assert!(Channel::new(2, 2, vec![0.5; 3]).is_err());
        assert!(Channel::new(2, 2, vec![-0.1, 1.1, 0.5, 0.5]).is_err());
    }

    #[test]
    fn ldp_epsilon_infinite_for_deterministic_channel() {
        let ch = Channel::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!(ch.ldp_epsilon().is_infinite());
        assert!((ch.asr_uniform() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grr_rejects_bad_parameters() {
        assert!(Channel::grr(1, 1.0).is_err());
        assert!(Channel::grr(4, 0.0).is_err());
        assert!(Channel::grr(4, f64::NAN).is_err());
    }
}
