//! Property tests for the adversarial-analysis crate.

use ldp_attack::change::{dbitflip_change_detection, loloha_change_exposure};
use ldp_attack::{asr_grr, asr_ue, Channel};
use ldp_primitives::params::{grr_params, oue_params};
use loloha::LolohaParams;
use proptest::prelude::*;

proptest! {
    /// The realized ε of a GRR channel equals the requested ε for any
    /// (k, ε) — i.e. GRR is a tight mechanism.
    #[test]
    fn grr_channel_epsilon_is_tight(k in 2usize..40, eps in 0.1f64..6.0) {
        let ch = Channel::grr(k, eps).unwrap();
        prop_assert!((ch.ldp_epsilon() - eps).abs() < 1e-7);
    }

    /// Composition never increases the realized ε beyond either factor's
    /// (post-processing/composition sanity on exact matrices).
    #[test]
    fn composition_is_no_leakier_than_first_round(
        k in 2usize..12,
        e1 in 0.2f64..4.0,
        e2 in 0.2f64..4.0,
    ) {
        let a = Channel::grr(k, e1).unwrap();
        let b = Channel::grr(k, e2).unwrap();
        let both = a.compose(&b).unwrap();
        prop_assert!(both.ldp_epsilon() <= a.ldp_epsilon() + 1e-9);
        prop_assert!(both.ldp_epsilon() <= e1.min(e2) + 1e-9,
            "composed {} vs min {}", both.ldp_epsilon(), e1.min(e2));
    }

    /// ASR is always within [1/k, 1] and increases with ε.
    #[test]
    fn asr_bounds_and_monotonicity(k in 2usize..50, eps in 0.1f64..5.0) {
        let a = asr_grr(k, eps).unwrap();
        prop_assert!(a.asr >= a.baseline - 1e-12);
        prop_assert!(a.asr <= 1.0);
        let stronger = asr_grr(k, eps + 0.5).unwrap();
        prop_assert!(stronger.asr >= a.asr - 1e-12);
    }

    /// The MAP adversary's ASR from the exact channel is bounded above by
    /// e^ε / (e^ε + k − 1) for ANY ε-LDP mechanism over k symbols — the
    /// known extremal bound, achieved by GRR.
    #[test]
    fn loloha_asr_below_grr_extremal_bound(
        g in 2u32..6,
        eps_inf in 1.0f64..4.0,
        alpha in 0.3f64..0.7,
    ) {
        let eps1 = alpha * eps_inf;
        let params = LolohaParams::with_g(g, eps_inf, eps1).unwrap();
        let mut rng = ldp_rand::derive_rng(42, g as u64);
        let k = 60usize;
        let a = ldp_attack::asr_loloha_first_report(k, params, 4, &mut rng).unwrap();
        // First report is ε1-LDP; apply the extremal MAP bound at ε1.
        let (p, _) = grr_params(eps1, k as u64);
        prop_assert!(a.asr <= p + 1e-9, "ASR {} vs bound {p}", a.asr);
    }

    /// UE closed-form ASR stays within [1/k, 1] and decays with k.
    #[test]
    fn ue_asr_bounds(k in 2usize..200, eps in 0.2f64..5.0) {
        let (p, q) = oue_params(eps);
        let a = asr_ue(k, p, q).unwrap();
        prop_assert!(a.asr >= a.baseline - 1e-12, "{} < {}", a.asr, a.baseline);
        prop_assert!(a.asr <= 1.0);
    }

    /// dBitFlipPM exposure is monotone in d under the per-class memo style:
    /// sampling more bits can only expose more changes.
    #[test]
    fn dbitflip_exposure_monotone_in_d(b in 3u32..40, eps in 0.3f64..4.0) {
        let mut last = 0.0;
        for d in 1..=b {
            let e = dbitflip_change_detection(b, d, eps, ldp_attack::MemoStyle::PerClass)
                .unwrap()
                .expected;
            prop_assert!(e >= last - 1e-9, "d={d}: {e} < {last}");
            prop_assert!((0.0..=1.0).contains(&e));
            last = e;
        }
    }

    /// Under either memo style the exposure stays a probability, and the
    /// per-class style never exceeds the per-bucket style.
    #[test]
    fn dbitflip_styles_ordered(b in 2u32..40, frac in 0.0f64..1.0, eps in 0.3f64..4.0) {
        let d = ((b as f64 * frac) as u32).clamp(1, b);
        let pc = dbitflip_change_detection(b, d, eps, ldp_attack::MemoStyle::PerClass)
            .unwrap().expected;
        let pb = dbitflip_change_detection(b, d, eps, ldp_attack::MemoStyle::PerBucket)
            .unwrap().expected;
        prop_assert!((0.0..=1.0).contains(&pc));
        prop_assert!((0.0..=1.0).contains(&pb));
        prop_assert!(pc <= pb + 1e-12);
    }

    /// LOLOHA's change exposure shrinks as g shrinks (more collisions) and
    /// as ε1 shrinks (stronger IRR noise).
    #[test]
    fn loloha_exposure_monotone(eps_inf in 1.0f64..4.0) {
        let small_g = loloha_change_exposure(
            LolohaParams::with_g(2, eps_inf, 0.5 * eps_inf).unwrap());
        let big_g = loloha_change_exposure(
            LolohaParams::with_g(16, eps_inf, 0.5 * eps_inf).unwrap());
        prop_assert!(small_g.cells_differ < big_g.cells_differ);

        let weak_irr = loloha_change_exposure(
            LolohaParams::with_g(4, eps_inf, 0.2 * eps_inf).unwrap());
        let strong_irr = loloha_change_exposure(
            LolohaParams::with_g(4, eps_inf, 0.8 * eps_inf).unwrap());
        prop_assert!(weak_irr.tv_given_memo <= strong_irr.tv_given_memo + 1e-12,
            "lower ε1 must mean stronger IRR noise");
    }
}
