//! The sharded streaming aggregator — the workspace's single server-side
//! aggregation path.
//!
//! Reports (or pre-aggregated batches of reports) are pushed into *shards*:
//! independent partial support-count histograms that can be filled from
//! disjoint worker threads, network partitions, or arriving stream batches.
//! Because merging is an index-wise sum of `u64` counters, the merged
//! histogram — and therefore every downstream estimate — is bit-identical
//! regardless of how many shards the same reports were spread over.
//!
//! Two usage styles share one engine:
//!
//! * **One-shot / per-round** (the simulator, the CLI): fill the shards for
//!   a collection round, then [`ShardedAggregator::finish_round`] merges,
//!   estimates, and resets for the next round.
//! * **Incremental streaming** (dashboards): keep pushing with
//!   [`ShardedAggregator::push_report`] / [`ShardedAggregator::push_batch`]
//!   and take non-destructive [`ShardedAggregator::snapshot`]s at any point
//!   mid-round.

use crate::method::{dbit_buckets, Method};
use ldp_hash::BucketMapper;
use ldp_longitudinal::chain::ue_chain_params;
use ldp_longitudinal::{DBitFlipServer, LgrrServer, LueServer};
use ldp_obs::{Counter, Gauge, Histogram, MetricsRegistry, Span};
use ldp_primitives::error::ParamError;
use loloha::{LolohaParams, LolohaServer};

/// Aggregator-side telemetry handles (`ldp.runtime.aggregator.*`). Only
/// operational quantities flow through these: stage durations, the merged
/// support-count *total*, and round counts — never per-index counts or
/// estimates.
#[derive(Debug, Clone)]
struct AggObs {
    merge_ns: Histogram,
    estimate_ns: Histogram,
    support_total: Gauge,
    rounds: Counter,
}

impl AggObs {
    fn new(obs: &MetricsRegistry) -> Self {
        Self {
            merge_ns: obs.histogram("ldp.runtime.aggregator.merge_ns"),
            estimate_ns: obs.histogram("ldp.runtime.aggregator.estimate_ns"),
            support_total: obs.gauge("ldp.runtime.aggregator.support_total"),
            rounds: obs.counter("ldp.runtime.aggregator.rounds"),
        }
    }
}

/// The per-method estimation backend behind a [`ShardedAggregator`].
#[derive(Debug, Clone)]
enum Estimator {
    Lue(LueServer),
    Lgrr(LgrrServer),
    Loloha(LolohaServer),
    DBit(DBitFlipServer),
}

impl Estimator {
    fn ingest_counts(&mut self, counts: &[u64], n: u64) {
        match self {
            Estimator::Lue(s) => s.ingest_counts(counts, n),
            Estimator::Lgrr(s) => s.ingest_counts(counts, n),
            Estimator::Loloha(s) => s.ingest_counts(counts, n),
            Estimator::DBit(s) => s.ingest_counts(counts, n),
        }
    }

    fn estimate_and_reset(&mut self) -> Vec<f64> {
        match self {
            Estimator::Lue(s) => s.estimate_and_reset(),
            Estimator::Lgrr(s) => s.estimate_and_reset(),
            Estimator::Loloha(s) => s.estimate_and_reset(),
            Estimator::DBit(s) => s.estimate_and_reset(),
        }
    }
}

/// One shard's accumulation state: a partial support-count histogram plus
/// the number of reports folded into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    counts: Vec<u64>,
    reports: u64,
}

impl Shard {
    fn new(dim: usize) -> Self {
        Self {
            counts: vec![0; dim],
            reports: 0,
        }
    }

    /// Creates an empty shard of aggregation dimension `dim`, for callers
    /// (such as `ldp_ingest` workers) that accumulate shard state outside a
    /// [`ShardedAggregator`] and merge it back in via
    /// [`ShardedAggregator::push_batch`].
    pub fn with_dim(dim: usize) -> Self {
        Self::new(dim)
    }

    /// Folds one report's support set in: every listed index gains a count.
    ///
    /// # Panics
    /// Panics if an index is outside the aggregation dimension.
    pub fn add_report<I>(&mut self, support: I)
    where
        I: IntoIterator<Item = usize>,
    {
        for i in support {
            self.counts[i] += 1;
        }
        self.reports += 1;
    }

    /// Folds a transport batch of whole reports in: `indices` is the
    /// concatenation of `reports` reports' support sets in the ingest
    /// transport width (`u32`), every index already validated against the
    /// aggregation dimension by the submitting side. One flat slice walk —
    /// no per-report envelope or iterator state — which is what lets the
    /// batched ingest path drain a channel message in a single pass.
    ///
    /// # Panics
    /// Panics if an index is outside the aggregation dimension.
    pub fn add_report_batch(&mut self, indices: &[u32], reports: u64) {
        for &i in indices {
            self.counts[i as usize] += 1;
        }
        self.reports += reports;
    }

    /// Folds a pre-aggregated batch of `reports` reports into this shard.
    ///
    /// # Panics
    /// Panics if `counts` length differs from the aggregation dimension.
    pub fn add_batch(&mut self, counts: &[u64], reports: u64) {
        assert_eq!(counts.len(), self.counts.len(), "batch length mismatch");
        for (acc, &c) in self.counts.iter_mut().zip(counts) {
            *acc += c;
        }
        self.reports += reports;
    }

    /// The shard-local partial support counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reports folded into this shard since the round began.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Clears the shard back to the empty state (all-zero counts, zero
    /// reports), retaining its dimension.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.reports = 0;
    }
}

/// A merged view of everything pushed during the current round.
#[derive(Debug, Clone)]
pub struct AggregateSnapshot {
    /// The merged support counts (index-wise sum over the shards).
    pub counts: Vec<u64>,
    /// Total number of reports across all shards.
    pub reports: u64,
    /// The protocol estimator applied to the merged counts. All-zero when
    /// no report has been pushed (there is nothing to normalize by).
    pub estimate: Vec<f64>,
}

/// Sharded streaming aggregation for one longitudinal protocol.
///
/// See the [module docs](self) for the ingestion model. Constructed either
/// from a [`Method`] (resolving the same protocol parameterization the
/// simulator uses) or directly from [`LolohaParams`] for bespoke LOLOHA
/// deployments.
#[derive(Debug, Clone)]
pub struct ShardedAggregator {
    estimator: Estimator,
    shards: Vec<Shard>,
    dim: usize,
    k: u64,
    reduced_domain: Option<u32>,
    k_binned: bool,
    loloha_params: Option<LolohaParams>,
    dbit: Option<(u32, u32)>,
    obs: AggObs,
}

impl ShardedAggregator {
    /// Creates an aggregator for `method` over the domain `[0, k)` at
    /// longitudinal budget `eps_inf` with first-report budget `eps_first`,
    /// spreading ingestion over `shards` shards (clamped to ≥ 1).
    ///
    /// Telemetry lands in the process-wide [`MetricsRegistry::global`];
    /// use [`Self::for_method_obs`] to direct it elsewhere.
    pub fn for_method(
        method: Method,
        k: u64,
        eps_inf: f64,
        eps_first: f64,
        shards: usize,
    ) -> Result<Self, ParamError> {
        Self::for_method_obs(
            method,
            k,
            eps_inf,
            eps_first,
            shards,
            &MetricsRegistry::global(),
        )
    }

    /// [`Self::for_method`] with an explicit telemetry registry (the CLI
    /// and harness pass a fresh one per run for isolation; pass
    /// [`MetricsRegistry::disabled`] to make every instrument a no-op).
    pub fn for_method_obs(
        method: Method,
        k: u64,
        eps_inf: f64,
        eps_first: f64,
        shards: usize,
        obs: &MetricsRegistry,
    ) -> Result<Self, ParamError> {
        let (estimator, dim, reduced_domain, k_binned, loloha_params, dbit) = match method {
            Method::Rappor | Method::LOsue | Method::LOue | Method::LSoue => {
                let chain = method.ue_chain().expect("UE-chained method");
                let chain = ue_chain_params(chain, eps_inf, eps_first)?;
                let est = Estimator::Lue(LueServer::new(k, chain)?);
                (est, k as usize, None, true, None, None)
            }
            Method::LGrr => {
                let est = Estimator::Lgrr(LgrrServer::new(k, eps_inf, eps_first)?);
                (est, k as usize, None, true, None, None)
            }
            Method::BiLoloha | Method::OLoloha => {
                let params = if method == Method::BiLoloha {
                    LolohaParams::bi(eps_inf, eps_first)?
                } else {
                    LolohaParams::optimal(eps_inf, eps_first)?
                };
                let est = Estimator::Loloha(LolohaServer::new(k, params)?);
                (est, k as usize, Some(params.g()), true, Some(params), None)
            }
            Method::OneBitFlip | Method::BBitFlip => {
                let b = dbit_buckets(k);
                let d = if method == Method::OneBitFlip { 1 } else { b };
                BucketMapper::new(k, b).ok_or(ParamError::InvalidBuckets { b, d, k })?;
                let est = Estimator::DBit(DBitFlipServer::new(b, d, eps_inf)?);
                (est, b as usize, Some(b), b as u64 == k, None, Some((b, d)))
            }
        };
        Ok(Self {
            estimator,
            shards: vec![Shard::new(dim); shards.max(1)],
            dim,
            k,
            reduced_domain,
            k_binned,
            loloha_params,
            dbit,
            obs: AggObs::new(obs),
        })
    }

    /// Creates a LOLOHA aggregator from explicit parameters (the CLI's and
    /// examples' path, where `g` was chosen outside the [`Method`] enum).
    ///
    /// Telemetry lands in the process-wide [`MetricsRegistry::global`];
    /// use [`Self::for_loloha_obs`] to direct it elsewhere.
    pub fn for_loloha(k: u64, params: LolohaParams, shards: usize) -> Result<Self, ParamError> {
        Self::for_loloha_obs(k, params, shards, &MetricsRegistry::global())
    }

    /// [`Self::for_loloha`] with an explicit telemetry registry.
    pub fn for_loloha_obs(
        k: u64,
        params: LolohaParams,
        shards: usize,
        obs: &MetricsRegistry,
    ) -> Result<Self, ParamError> {
        Ok(Self {
            estimator: Estimator::Loloha(LolohaServer::new(k, params)?),
            shards: vec![Shard::new(k as usize); shards.max(1)],
            dim: k as usize,
            k,
            reduced_domain: Some(params.g()),
            k_binned: true,
            loloha_params: Some(params),
            dbit: None,
            obs: AggObs::new(obs),
        })
    }

    /// The aggregation dimension: `k` for k-binned protocols, `b` for
    /// bucketized dBitFlipPM.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The input domain size the aggregator was built for.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Number of shards ingestion is spread over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The resolved reduced domain: `g` for LOLOHA, `b` for dBitFlipPM.
    pub fn reduced_domain(&self) -> Option<u32> {
        self.reduced_domain
    }

    /// Whether estimates are k-binned (comparable to a k-bin ground truth).
    /// False only for dBitFlipPM with `b < k`.
    pub fn k_binned(&self) -> bool {
        self.k_binned
    }

    /// The LOLOHA parameterization, when the method is LOLOHA-backed.
    pub fn loloha_params(&self) -> Option<LolohaParams> {
        self.loloha_params
    }

    /// The `(b, d)` bucket configuration, when the method is dBitFlipPM.
    pub fn dbit_config(&self) -> Option<(u32, u32)> {
        self.dbit
    }

    /// Clears every shard, starting a fresh collection round.
    pub fn begin_round(&mut self) {
        for s in &mut self.shards {
            s.reset();
        }
    }

    /// Mutable access to the shards, for worker threads that each own one
    /// (`std::thread::scope` can split this slice into disjoint borrows).
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Pushes a single report's support set into shard `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range or an index exceeds [`Self::dim`].
    pub fn push_report<I>(&mut self, shard: usize, support: I)
    where
        I: IntoIterator<Item = usize>,
    {
        self.shards[shard].add_report(support);
    }

    /// Pushes a pre-aggregated batch of `reports` reports into shard
    /// `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range or the batch length differs from
    /// [`Self::dim`].
    pub fn push_batch(&mut self, shard: usize, counts: &[u64], reports: u64) {
        self.shards[shard].add_batch(counts, reports);
    }

    /// Total reports pushed this round, across all shards.
    pub fn round_reports(&self) -> u64 {
        self.shards.iter().map(Shard::reports).sum()
    }

    /// Merges the shard partials into one histogram. An index-wise sum, so
    /// the result is independent of the shard count and push order.
    pub fn merged_counts(&self) -> Vec<u64> {
        let _timed = Span::enter(&self.obs.merge_ns);
        let mut merged = vec![0u64; self.dim];
        for shard in &self.shards {
            for (m, &c) in merged.iter_mut().zip(&shard.counts) {
                *m += c;
            }
        }
        merged
    }

    fn merge_and_estimate(&mut self) -> AggregateSnapshot {
        let counts = self.merged_counts();
        let reports = self.round_reports();
        self.obs.support_total.set(counts.iter().sum());
        let estimate = if reports == 0 {
            vec![0.0; self.dim]
        } else {
            let _timed = Span::enter(&self.obs.estimate_ns);
            self.estimator.ingest_counts(&counts, reports);
            self.estimator.estimate_and_reset()
        };
        AggregateSnapshot {
            counts,
            reports,
            estimate,
        }
    }

    /// Non-destructive streaming view: merges and estimates everything
    /// pushed so far this round, leaving the shards untouched so ingestion
    /// can continue. (The backing estimator is stateless between rounds —
    /// it resets after every estimate — so a clone serves the snapshot.)
    pub fn snapshot(&self) -> AggregateSnapshot {
        let counts = self.merged_counts();
        let reports = self.round_reports();
        self.obs.support_total.set(counts.iter().sum());
        let estimate = if reports == 0 {
            vec![0.0; self.dim]
        } else {
            let _timed = Span::enter(&self.obs.estimate_ns);
            let mut estimator = self.estimator.clone();
            estimator.ingest_counts(&counts, reports);
            estimator.estimate_and_reset()
        };
        AggregateSnapshot {
            counts,
            reports,
            estimate,
        }
    }

    /// Closes the round: merges, estimates, and resets every shard for the
    /// next round.
    pub fn finish_round(&mut self) -> AggregateSnapshot {
        let out = self.merge_and_estimate();
        self.obs.rounds.inc();
        self.begin_round();
        out
    }

    /// One-shot convenience: starts a fresh round, spreads `batches` over
    /// the shards round-robin, and closes the round in a single call.
    pub fn one_shot(&mut self, batches: &[(&[u64], u64)]) -> AggregateSnapshot {
        self.begin_round();
        let shards = self.shards.len();
        for (i, &(counts, reports)) in batches.iter().enumerate() {
            self.push_batch(i % shards, counts, reports);
        }
        self.finish_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batches(dim: usize, n: usize, seed: u64) -> Vec<(Vec<u64>, u64)> {
        // Deterministic small pseudo-random batches without an RNG dep.
        let mut out = Vec::new();
        let mut state = seed;
        for b in 0..n {
            let mut counts = vec![0u64; dim];
            for (i, c) in counts.iter_mut().enumerate() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = (state >> 33) % (7 + (b + i) as u64 % 5);
            }
            out.push((counts, 10 + b as u64));
        }
        out
    }

    #[test]
    fn add_report_batch_matches_per_report_folds() {
        let reports: Vec<Vec<usize>> = vec![vec![0, 3, 5], vec![1], vec![], vec![5, 5, 2]];
        let mut per_report = Shard::with_dim(6);
        for r in &reports {
            per_report.add_report(r.iter().copied());
        }
        let mut batched = Shard::with_dim(6);
        let flat: Vec<u32> = reports
            .iter()
            .flatten()
            .map(|&i| u32::try_from(i).unwrap())
            .collect();
        batched.add_report_batch(&flat, reports.len() as u64);
        assert_eq!(per_report, batched);
    }

    #[test]
    fn merged_counts_are_shard_count_invariant() {
        let data = batches(12, 9, 42);
        let refs: Vec<(&[u64], u64)> = data.iter().map(|(c, r)| (c.as_slice(), *r)).collect();
        let mut base = None;
        for shards in [1usize, 3, 8] {
            let mut agg =
                ShardedAggregator::for_method(Method::Rappor, 12, 1.0, 0.5, shards).unwrap();
            let snap = agg.one_shot(&refs);
            match &base {
                None => base = Some(snap),
                Some(b) => {
                    assert_eq!(b.counts, snap.counts, "{shards} shards");
                    assert_eq!(b.reports, snap.reports);
                    let same = b
                        .estimate
                        .iter()
                        .zip(&snap.estimate)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(same, "estimate differs at {shards} shards");
                }
            }
        }
    }

    #[test]
    fn snapshot_does_not_disturb_the_round() {
        let mut agg = ShardedAggregator::for_method(Method::LGrr, 8, 2.0, 1.0, 2).unwrap();
        agg.push_report(0, [3usize]);
        agg.push_report(1, [5usize]);
        let snap = agg.snapshot();
        assert_eq!(snap.reports, 2);
        assert_eq!(snap.counts[3], 1);
        // Ingestion continues; finish sees the full round.
        agg.push_report(0, [3usize]);
        let fin = agg.finish_round();
        assert_eq!(fin.reports, 3);
        assert_eq!(fin.counts[3], 2);
        // The round is reset afterwards.
        assert_eq!(agg.round_reports(), 0);
        assert!(agg.merged_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn snapshot_matches_finish_round_estimate() {
        let mut agg = ShardedAggregator::for_method(Method::LOsue, 10, 1.5, 0.6, 3).unwrap();
        for i in 0..50usize {
            agg.push_report(i % 3, [i % 10, (i * 3) % 10]);
        }
        let snap = agg.snapshot();
        let fin = agg.finish_round();
        assert_eq!(snap.counts, fin.counts);
        assert_eq!(snap.reports, fin.reports);
        for (a, b) in snap.estimate.iter().zip(&fin.estimate) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_round_estimates_zero() {
        let mut agg = ShardedAggregator::for_method(Method::BiLoloha, 6, 1.0, 0.5, 2).unwrap();
        let out = agg.finish_round();
        assert_eq!(out.reports, 0);
        assert!(out.estimate.iter().all(|&e| e == 0.0));
        assert_eq!(out.estimate.len(), 6);
    }

    #[test]
    fn dbit_dimension_is_bucket_count() {
        // k = 1412 (DB_MT): b = 353 buckets, not k-binned.
        let agg = ShardedAggregator::for_method(Method::BBitFlip, 1412, 1.0, 0.5, 1).unwrap();
        assert_eq!(agg.dim(), 353);
        assert_eq!(agg.reduced_domain(), Some(353));
        assert!(!agg.k_binned());
        assert_eq!(agg.dbit_config(), Some((353, 353)));
        // Small domain: b = k, comparable.
        let agg = ShardedAggregator::for_method(Method::OneBitFlip, 24, 1.0, 0.5, 1).unwrap();
        assert_eq!(agg.dim(), 24);
        assert!(agg.k_binned());
        assert_eq!(agg.dbit_config(), Some((24, 1)));
    }

    #[test]
    fn loloha_methods_expose_params() {
        let agg = ShardedAggregator::for_method(Method::OLoloha, 100, 4.0, 2.0, 1).unwrap();
        let params = agg.loloha_params().expect("LOLOHA-backed");
        assert_eq!(agg.reduced_domain(), Some(params.g()));
        assert!(agg.k_binned());
        // Direct parameterization agrees with the Method-resolved one.
        let direct = ShardedAggregator::for_loloha(100, params, 4).unwrap();
        assert_eq!(direct.dim(), 100);
        assert_eq!(direct.shard_count(), 4);
        assert_eq!(direct.reduced_domain(), Some(params.g()));
    }

    #[test]
    fn shard_count_clamps_to_one() {
        let agg = ShardedAggregator::for_method(Method::Rappor, 8, 1.0, 0.5, 0).unwrap();
        assert_eq!(agg.shard_count(), 1);
    }

    #[test]
    fn push_batch_and_push_report_agree() {
        let mut by_report = ShardedAggregator::for_method(Method::LGrr, 5, 1.0, 0.4, 2).unwrap();
        by_report.push_report(0, [1usize]);
        by_report.push_report(1, [1usize]);
        by_report.push_report(1, [4usize]);
        let mut by_batch = ShardedAggregator::for_method(Method::LGrr, 5, 1.0, 0.4, 2).unwrap();
        by_batch.push_batch(0, &[0, 2, 0, 0, 1], 3);
        let a = by_report.finish_round();
        let b = by_batch.finish_round();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.reports, b.reports);
        for (x, y) in a.estimate.iter().zip(&b.estimate) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
