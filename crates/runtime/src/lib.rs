//! Sharded streaming aggregation runtime.
//!
//! This crate is the architectural seam between the protocol crates
//! (`loloha`, `ldp_longitudinal`) and every front end that collects reports
//! at scale: the simulator (`ldp_sim`), the CLI, the bench harness, and the
//! repository examples all aggregate through one engine.
//!
//! * [`Method`] — the registry of longitudinal protocols served by the
//!   runtime (the paper's §5 evaluation set plus the chaining extensions).
//! * [`ShardedAggregator`] — batch/streaming ingestion into per-shard
//!   partial support counts with a deterministic merge: the same reports
//!   produce bit-identical estimates for any shard count, so worker
//!   threads, stream partitions, and single-threaded replays agree exactly.
//!
//! The one-shot path (`begin_round` → fill shards → `finish_round`) backs
//! the paper experiments; the incremental path (`push_report` /
//! `push_batch` + `snapshot`) backs streaming dashboards that need
//! mid-round estimates without closing the collection round.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod method;

pub use aggregator::{AggregateSnapshot, Shard, ShardedAggregator};
pub use method::{dbit_buckets, Method};
