//! The longitudinal protocols the aggregation runtime can serve.
//!
//! This is the method registry shared by every front end (simulator, CLI,
//! bench harness): one variant per protocol of the paper's §5 evaluation,
//! plus the paper's bucket-count rule for dBitFlipPM.

use ldp_longitudinal::UeChain;

/// The longitudinal protocols evaluated in the paper (plus the two L-UE
/// chaining extensions from Arcolezi et al. \[5\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// RAPPOR / L-SUE: SUE chained with SUE \[23\].
    Rappor,
    /// L-OSUE: OUE (PRR) chained with SUE (IRR) \[5\].
    LOsue,
    /// L-OUE: OUE chained with OUE (extension).
    LOue,
    /// L-SOUE: SUE chained with OUE (extension).
    LSoue,
    /// L-GRR: GRR chained with GRR \[5\].
    LGrr,
    /// BiLOLOHA: LOLOHA at g = 2 (privacy-tuned).
    BiLoloha,
    /// OLOLOHA: LOLOHA at the Eq. (6) optimal g (utility-tuned).
    OLoloha,
    /// 1BitFlipPM: dBitFlipPM with d = 1 (privacy-tuned) \[13\].
    OneBitFlip,
    /// bBitFlipPM: dBitFlipPM with d = b (utility-tuned) \[13\].
    BBitFlip,
}

impl Method {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Rappor => "RAPPOR",
            Method::LOsue => "L-OSUE",
            Method::LOue => "L-OUE",
            Method::LSoue => "L-SOUE",
            Method::LGrr => "L-GRR",
            Method::BiLoloha => "BiLOLOHA",
            Method::OLoloha => "OLOLOHA",
            Method::OneBitFlip => "1BitFlipPM",
            Method::BBitFlip => "bBitFlipPM",
        }
    }

    /// Parses a method from its registry name, case-insensitively, with
    /// the CLI's historical aliases (`l-sue` for RAPPOR, the bare
    /// `1bitflip`/`bbitflip` forms). Every [`Method::name`] round-trips.
    pub fn from_name(name: &str) -> Option<Method> {
        Some(match name.to_ascii_lowercase().as_str() {
            "rappor" | "l-sue" => Method::Rappor,
            "l-osue" => Method::LOsue,
            "l-oue" => Method::LOue,
            "l-soue" => Method::LSoue,
            "l-grr" => Method::LGrr,
            "biloloha" => Method::BiLoloha,
            "ololoha" => Method::OLoloha,
            "1bitflip" | "1bitflippm" => Method::OneBitFlip,
            "bbitflip" | "bbitflippm" => Method::BBitFlip,
            _ => return None,
        })
    }

    /// The seven methods of Figs. 3–4.
    pub fn paper_set() -> [Method; 7] {
        [
            Method::BBitFlip,
            Method::LOsue,
            Method::OLoloha,
            Method::Rappor,
            Method::BiLoloha,
            Method::OneBitFlip,
            Method::LGrr,
        ]
    }

    /// Every variant, for exhaustive sweeps and invariance tests.
    pub fn all() -> [Method; 9] {
        [
            Method::Rappor,
            Method::LOsue,
            Method::LOue,
            Method::LSoue,
            Method::LGrr,
            Method::BiLoloha,
            Method::OLoloha,
            Method::OneBitFlip,
            Method::BBitFlip,
        ]
    }

    /// Whether the method is single-round (no IRR step): only dBitFlipPM.
    pub fn single_round(&self) -> bool {
        matches!(self, Method::OneBitFlip | Method::BBitFlip)
    }

    /// The UE chain backing this method, if it is a UE-chained protocol.
    pub fn ue_chain(&self) -> Option<UeChain> {
        match self {
            Method::Rappor => Some(UeChain::SueSue),
            Method::LOsue => Some(UeChain::OueSue),
            Method::LOue => Some(UeChain::OueOue),
            Method::LSoue => Some(UeChain::SueOue),
            _ => None,
        }
    }
}

/// The paper's bucket choice for dBitFlipPM: `b = k` when `k ≤ 360`
/// (Syn, Adult), `b = ⌊k/4⌋` for the large census domains.
pub fn dbit_buckets(k: u64) -> u32 {
    if k <= 360 {
        k as u32
    } else {
        (k / 4) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Method::Rappor.name(), "RAPPOR");
        assert_eq!(Method::BBitFlip.name(), "bBitFlipPM");
        assert_eq!(Method::OneBitFlip.name(), "1BitFlipPM");
    }

    #[test]
    fn every_name_parses_back_to_its_method() {
        for m in Method::all() {
            assert_eq!(Method::from_name(m.name()), Some(m), "{m:?}");
        }
        assert_eq!(Method::from_name("l-sue"), Some(Method::Rappor));
        assert_eq!(Method::from_name("1bitflip"), Some(Method::OneBitFlip));
        assert_eq!(Method::from_name("BBITFLIP"), Some(Method::BBitFlip));
        assert_eq!(Method::from_name("nope"), None);
    }

    #[test]
    fn paper_set_has_seven_methods() {
        let set = Method::paper_set();
        assert_eq!(set.len(), 7);
        assert!(!set.contains(&Method::LOue));
    }

    #[test]
    fn all_covers_paper_set_and_extensions() {
        let all = Method::all();
        assert_eq!(all.len(), 9);
        for m in Method::paper_set() {
            assert!(all.contains(&m), "{m:?}");
        }
        assert!(all.contains(&Method::LOue));
        assert!(all.contains(&Method::LSoue));
    }

    #[test]
    fn ue_chains_only_for_ue_methods() {
        assert_eq!(Method::Rappor.ue_chain(), Some(UeChain::SueSue));
        assert_eq!(Method::LOsue.ue_chain(), Some(UeChain::OueSue));
        assert_eq!(Method::LOue.ue_chain(), Some(UeChain::OueOue));
        assert_eq!(Method::LSoue.ue_chain(), Some(UeChain::SueOue));
        for m in [
            Method::LGrr,
            Method::BiLoloha,
            Method::OLoloha,
            Method::OneBitFlip,
            Method::BBitFlip,
        ] {
            assert_eq!(m.ue_chain(), None, "{m:?}");
        }
    }

    #[test]
    fn dbit_bucket_rule() {
        assert_eq!(dbit_buckets(96), 96);
        assert_eq!(dbit_buckets(360), 360);
        assert_eq!(dbit_buckets(1412), 353);
        assert_eq!(dbit_buckets(1234), 308);
    }
}
