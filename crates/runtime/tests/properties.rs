//! Property-based tests for the sharded aggregator: the same report stream
//! must produce bit-identical merged counts and estimates no matter how
//! many shards it is spread over, for every protocol the runtime serves.

use ldp_rand::{derive_rng, uniform_u64};
use ldp_runtime::{Method, ShardedAggregator};
use proptest::prelude::*;

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Rappor),
        Just(Method::LOsue),
        Just(Method::LOue),
        Just(Method::LSoue),
        Just(Method::LGrr),
        Just(Method::BiLoloha),
        Just(Method::OLoloha),
        Just(Method::OneBitFlip),
        Just(Method::BBitFlip),
    ]
}

/// Builds a deterministic synthetic report stream: each report supports a
/// random subset of the aggregation dimension.
fn report_stream(dim: usize, reports: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = derive_rng(seed, 0xA66);
    (0..reports)
        .map(|_| {
            let width = uniform_u64(&mut rng, dim as u64 / 2 + 1) as usize;
            (0..width)
                .map(|_| uniform_u64(&mut rng, dim as u64) as usize)
                .collect()
        })
        .collect()
}

/// Runs one stream through an aggregator with the given shard count,
/// spreading reports round-robin, and returns the closing snapshot.
fn run_stream(
    method: Method,
    k: u64,
    eps_inf: f64,
    eps_first: f64,
    shards: usize,
    stream: &[Vec<usize>],
) -> ldp_runtime::AggregateSnapshot {
    let mut agg = ShardedAggregator::for_method(method, k, eps_inf, eps_first, shards)
        .expect("caller pre-validated the cell");
    for (i, support) in stream.iter().enumerate() {
        agg.push_report(i % agg.shard_count(), support.iter().copied());
    }
    agg.finish_round()
}

proptest! {
    /// 1, 3, and 8 shards agree bit-for-bit on counts, report totals, and
    /// estimates across all protocol variants.
    #[test]
    fn aggregation_is_shard_count_invariant(
        method in arb_method(),
        k in 4u64..48,
        eps_inf in 0.4f64..4.0,
        alpha in 0.2f64..0.8,
        n_reports in 1usize..120,
        seed in any::<u64>(),
    ) {
        let eps_first = alpha * eps_inf;
        // Some cells are invalid by construction (e.g. OUE-style IRR cannot
        // realize eps_first close to eps_inf); skip those, they are covered
        // by the parameter-validation suites.
        let probe = ShardedAggregator::for_method(method, k, eps_inf, eps_first, 1);
        prop_assume!(probe.is_ok());
        let dim = probe.unwrap().dim();

        let stream = report_stream(dim, n_reports, seed);
        let reference = run_stream(method, k, eps_inf, eps_first, 1, &stream);
        prop_assert_eq!(reference.reports, n_reports as u64);
        for shards in [3usize, 8] {
            let got = run_stream(method, k, eps_inf, eps_first, shards, &stream);
            prop_assert_eq!(&reference.counts, &got.counts, "{:?} {} shards", method, shards);
            prop_assert_eq!(reference.reports, got.reports);
            prop_assert_eq!(reference.estimate.len(), got.estimate.len());
            for (a, b) in reference.estimate.iter().zip(&got.estimate) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?} {} shards", method, shards);
            }
        }
    }

    /// A mid-stream snapshot equals a fully finished round over the same
    /// prefix: streaming reads are consistent with one-shot aggregation.
    #[test]
    fn snapshot_is_consistent_with_one_shot(
        method in arb_method(),
        k in 4u64..32,
        eps_inf in 0.5f64..3.0,
        n_reports in 2usize..80,
        seed in any::<u64>(),
    ) {
        let eps_first = 0.5 * eps_inf;
        let probe = ShardedAggregator::for_method(method, k, eps_inf, eps_first, 1);
        prop_assume!(probe.is_ok());
        let dim = probe.unwrap().dim();

        let stream = report_stream(dim, n_reports, seed);
        let prefix = n_reports / 2;

        let mut streaming = ShardedAggregator::for_method(method, k, eps_inf, eps_first, 4)
            .expect("validated above");
        for (i, support) in stream[..prefix].iter().enumerate() {
            streaming.push_report(i % 4, support.iter().copied());
        }
        let snap = streaming.snapshot();
        let one_shot = run_stream(method, k, eps_inf, eps_first, 2, &stream[..prefix]);
        prop_assert_eq!(&snap.counts, &one_shot.counts);
        prop_assert_eq!(snap.reports, one_shot.reports);
        for (a, b) in snap.estimate.iter().zip(&one_shot.estimate) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // The snapshot did not disturb the stream: pushing the remainder
        // and finishing matches the full one-shot run.
        for (i, support) in stream[prefix..].iter().enumerate() {
            streaming.push_report(i % 4, support.iter().copied());
        }
        let full = streaming.finish_round();
        let expected = run_stream(method, k, eps_inf, eps_first, 1, &stream);
        prop_assert_eq!(&full.counts, &expected.counts);
        prop_assert_eq!(full.reports, expected.reports);
        for (a, b) in full.estimate.iter().zip(&expected.estimate) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
