//! The resumable experiment runner.
//!
//! [`ExperimentRunner::run`] executes a [`RunnerConfig`]'s accuracy
//! sweep (checkpointed per cell through the `LDHS` store), measures the
//! three hot paths for every configured method, and writes the
//! `BENCH_<host>_<pr>.json` trajectory file described normatively in
//! `docs/BENCH_FORMAT.md`.
//!
//! Resume semantics (asserted by `tests/resume.rs`):
//!
//! * a killed sweep resumes at the next incomplete cell and produces
//!   results **byte-identical** to an uninterrupted run (cells are
//!   deterministic in the config, never in the interruption pattern);
//! * re-invoking a finished run is a no-op: every cell restores from
//!   the checkpoint, and an existing valid trajectory file is left
//!   untouched (its wall-clock throughput numbers stay from the run
//!   that produced it);
//! * a checkpoint written under a different sweep configuration is a
//!   typed `Mismatch`, never silently recomputed or misread.

use crate::bench::{measure_method, measure_net_ingest, MethodThroughput, NetIngest, PathStats};
use crate::checkpoint::{load_progress, save_progress, CellMetrics, SweepProgress};
use crate::config::RunnerConfig;
use crate::grid::{run_cell, CellResult};
use crate::json::{parse, Json};
use crate::HarnessError;
use ldp_sim::{Method, Summary};
use std::path::PathBuf;

/// Current trajectory-file schema version (`"schema"` field).
pub const BENCH_SCHEMA: u32 = 1;

/// Outcome of the sweep stage.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Every grid cell, in grid order.
    pub cells: Vec<CellResult>,
    /// Cells computed by this invocation.
    pub executed: usize,
    /// Cells restored from the checkpoint.
    pub restored: usize,
}

/// Outcome of a full run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The sweep result.
    pub sweep: SweepOutcome,
    /// Where the trajectory file lives.
    pub bench_path: PathBuf,
    /// Whether this invocation (re)wrote the trajectory file. `false`
    /// means the run was a complete no-op: sweep restored, file valid.
    pub wrote_bench: bool,
}

/// Drives one [`RunnerConfig`] end to end.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    cfg: RunnerConfig,
}

impl ExperimentRunner {
    /// Validates the config and builds a runner for it.
    pub fn new(cfg: RunnerConfig) -> Result<Self, HarnessError> {
        Ok(Self {
            cfg: cfg.validated()?,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.cfg
    }

    /// Runs (or resumes) the accuracy sweep to completion.
    pub fn run_sweep(&self) -> Result<SweepOutcome, HarnessError> {
        self.sweep_up_to(usize::MAX)
    }

    /// Runs (or resumes) the sweep, computing at most `limit` new cells
    /// this invocation. The kill-and-resume drill in `tests/resume.rs`
    /// and operational splitting of long sweeps both use this; the
    /// checkpoint is saved after every cell either way.
    pub fn sweep_up_to(&self, limit: usize) -> Result<SweepOutcome, HarnessError> {
        let datasets = self.cfg.datasets()?;
        let fingerprint = self.cfg.fingerprint();
        let ckpt_path = self.cfg.checkpoint_path();

        // Grid identity, in the fixed sweep order.
        let mut identity: Vec<(usize, Method, f64, f64)> = Vec::new();
        for (di, _) in datasets.iter().enumerate() {
            for &method in &self.cfg.methods {
                for &eps_inf in &self.cfg.eps_grid {
                    for &alpha in &self.cfg.alphas {
                        identity.push((di, method, eps_inf, alpha));
                    }
                }
            }
        }
        let total = u32::try_from(identity.len())
            .map_err(|_| HarnessError::Config("grid exceeds u32 cells".to_string()))?;

        let mut progress = match load_progress(&ckpt_path, fingerprint)? {
            Some(p) => {
                if p.total != total {
                    // The fingerprint pins the grid, so this is
                    // unreachable without a hand-edited file; keep it a
                    // typed error rather than an assert.
                    return Err(HarnessError::Config(format!(
                        "checkpoint grid size {} does not match configured grid {total}",
                        p.total
                    )));
                }
                p
            }
            None => SweepProgress {
                total,
                cells: Vec::new(),
            },
        };

        let restored = progress.cells.len();
        let mut executed = 0usize;
        while progress.cells.len() < identity.len() && executed < limit {
            let (di, method, eps_inf, alpha) = identity[progress.cells.len()];
            let cell = run_cell(
                datasets[di].as_ref(),
                method,
                eps_inf,
                alpha,
                self.cfg.runs,
                self.cfg.threads,
                self.cfg.seed,
                self.cfg.pair_methods,
            );
            progress.cells.push(CellMetrics::of(&cell));
            save_progress(&ckpt_path, fingerprint, &progress)?;
            executed += 1;
        }

        // Reattach identity to the (restored + fresh) metric prefix.
        let cells = identity
            .iter()
            .zip(&progress.cells)
            .map(|(&(di, method, eps_inf, alpha), m)| CellResult {
                dataset: datasets[di].name().to_string(),
                method,
                eps_inf,
                alpha,
                mse: m.mse,
                eps_avg: m.eps_avg,
                detection: m.detection,
                reduced_domain: m.reduced_domain,
            })
            .collect();
        Ok(SweepOutcome {
            cells,
            executed,
            restored,
        })
    }

    /// Full run: sweep (resumable), throughput, trajectory file. A rerun
    /// over a finished sweep with a valid trajectory file on disk is a
    /// no-op.
    pub fn run(&self) -> Result<RunOutcome, HarnessError> {
        let sweep = self.run_sweep()?;
        let bench_path = self.cfg.bench_path();

        if sweep.executed == 0 {
            if let Ok(text) = std::fs::read_to_string(&bench_path) {
                if parse(&text).as_ref().map(validate_bench) == Ok(Ok(())) {
                    return Ok(RunOutcome {
                        sweep,
                        bench_path,
                        wrote_bench: false,
                    });
                }
            }
        }

        let mut throughput = Vec::with_capacity(self.cfg.methods.len());
        for &method in &self.cfg.methods {
            throughput.push(measure_method(
                method,
                self.cfg.bench_users,
                self.cfg.bench_samples,
                self.cfg.threads.max(1),
                self.cfg.seed,
            )?);
        }

        // The wire path is opt-in (`net_ingest = true`): it binds a real
        // loopback listener per method. One full round per timing sample
        // keeps its wall-clock comparable to the in-process paths.
        let net = if self.cfg.net_ingest {
            let mut rows = Vec::with_capacity(self.cfg.methods.len());
            for &method in &self.cfg.methods {
                rows.push(measure_net_ingest(
                    method,
                    self.cfg.bench_users,
                    self.cfg.bench_samples as u64,
                    self.cfg.threads.max(1),
                    self.cfg.seed,
                )?);
            }
            Some(rows)
        } else {
            None
        };

        let doc = self.bench_json(&sweep.cells, &throughput, net.as_deref());
        validate_bench(&doc).map_err(HarnessError::Json)?;
        let text = doc.to_pretty();
        ldp_primitives::codec::write_atomic(&bench_path, text.as_bytes())
            .map_err(|e| HarnessError::Io(format!("{}: {e}", bench_path.display())))?;
        Ok(RunOutcome {
            sweep,
            bench_path,
            wrote_bench: true,
        })
    }

    /// Builds the trajectory document (`docs/BENCH_FORMAT.md`).
    fn bench_json(
        &self,
        cells: &[CellResult],
        throughput: &[MethodThroughput],
        net: Option<&[NetIngest]>,
    ) -> Json {
        let cfg = &self.cfg;
        let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);
        let config = Json::Obj(vec![
            ("name".into(), Json::Str(cfg.name.clone())),
            (
                "dataset".into(),
                cfg.dataset.clone().map_or(Json::Null, Json::Str),
            ),
            (
                "methods".into(),
                Json::Arr(
                    cfg.methods
                        .iter()
                        .map(|m| Json::Str(m.name().to_string()))
                        .collect(),
                ),
            ),
            (
                "eps_grid".into(),
                Json::Arr(cfg.eps_grid.iter().map(|&e| Json::Num(e)).collect()),
            ),
            (
                "alphas".into(),
                Json::Arr(cfg.alphas.iter().map(|&a| Json::Num(a)).collect()),
            ),
            ("runs".into(), Json::Num(cfg.runs as f64)),
            ("n_frac".into(), Json::Num(cfg.n_frac)),
            ("tau_frac".into(), Json::Num(cfg.tau_frac)),
            // u64 seeds can exceed f64's integer range; a decimal string
            // is lossless.
            ("seed".into(), Json::Str(cfg.seed.to_string())),
            ("pair_methods".into(), Json::Bool(cfg.pair_methods)),
            ("bench_users".into(), Json::Num(cfg.bench_users as f64)),
            ("bench_samples".into(), Json::Num(cfg.bench_samples as f64)),
            ("net_ingest".into(), Json::Bool(cfg.net_ingest)),
        ]);
        let throughput = Json::Arr(
            throughput
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mut row = vec![
                        ("method".into(), Json::Str(t.method.name().to_string())),
                        ("sanitize".into(), path_json(&t.sanitize)),
                        ("ingest".into(), path_json(&t.ingest)),
                        ("ingest_noobs".into(), path_json(&t.ingest_noobs)),
                        (
                            "obs".into(),
                            Json::Obj(vec![
                                (
                                    "reports_routed".into(),
                                    Json::Num(t.obs.reports_routed as f64),
                                ),
                                ("send_blocked".into(), Json::Num(t.obs.send_blocked as f64)),
                                (
                                    "send_blocked_ns".into(),
                                    Json::Num(t.obs.send_blocked_ns as f64),
                                ),
                                (
                                    "batches_flushed".into(),
                                    Json::Num(t.obs.batches_flushed as f64),
                                ),
                                (
                                    "batched_reports".into(),
                                    Json::Num(t.obs.batched_reports as f64),
                                ),
                                ("bufpool_hits".into(), Json::Num(t.obs.bufpool_hits as f64)),
                                (
                                    "bufpool_misses".into(),
                                    Json::Num(t.obs.bufpool_misses as f64),
                                ),
                                ("overhead_pct".into(), Json::Num(t.obs_overhead_pct())),
                            ]),
                        ),
                        ("estimate".into(), path_json(&t.estimate)),
                    ];
                    if let Some(n) = net.and_then(|rows| rows.get(i)) {
                        row.push(("net_ingest".into(), net_json(n)));
                    }
                    Json::Obj(row)
                })
                .collect(),
        );
        let accuracy = Json::Arr(cells.iter().map(cell_json).collect());
        Json::Obj(vec![
            ("schema".into(), Json::Num(f64::from(BENCH_SCHEMA))),
            ("suite".into(), Json::Str("loloha".into())),
            ("host".into(), Json::Str(cfg.host.clone())),
            ("pr".into(), Json::Num(f64::from(cfg.pr))),
            (
                "hardware_threads".into(),
                Json::Num(hardware_threads as f64),
            ),
            ("config".into(), config),
            ("throughput".into(), throughput),
            ("accuracy".into(), accuracy),
        ])
    }
}

fn net_json(n: &NetIngest) -> Json {
    Json::Obj(vec![
        ("users".into(), Json::Num(n.users as f64)),
        ("rounds".into(), Json::Num(n.rounds as f64)),
        ("frames".into(), Json::Num(n.frames as f64)),
        ("reports".into(), Json::Num(n.reports as f64)),
        ("retries".into(), Json::Num(n.retries as f64)),
        ("elapsed_ns".into(), Json::Num(n.elapsed.as_nanos() as f64)),
        ("reports_per_sec".into(), Json::Num(n.reports_per_sec)),
    ])
}

fn path_json(p: &PathStats) -> Json {
    let ns = |d: std::time::Duration| Json::Num(d.as_nanos() as f64);
    Json::Obj(vec![
        (
            "reports_per_iter".into(),
            Json::Num(p.reports_per_iter as f64),
        ),
        ("iters".into(), Json::Num(p.stats.iters as f64)),
        ("warmup_iters".into(), Json::Num(p.warmup_iters as f64)),
        ("min_ns".into(), ns(p.stats.min)),
        ("median_ns".into(), ns(p.stats.median)),
        ("mean_ns".into(), ns(p.stats.mean)),
        ("p90_ns".into(), ns(p.stats.p90)),
        ("reports_per_sec".into(), Json::Num(p.reports_per_sec())),
    ])
}

fn summary_json(s: &Summary) -> (Json, Json) {
    // NaN means "not comparable" (dBitFlipPM with b < k); Json::Num
    // emits non-finite values as null, which is exactly the schema's
    // convention — no special-casing needed here.
    (Json::Num(s.mean), Json::Num(s.std))
}

fn cell_json(c: &CellResult) -> Json {
    let (mse_mean, mse_std) = summary_json(&c.mse);
    let (eps_mean, eps_std) = summary_json(&c.eps_avg);
    let (det_mean, det_std) = match &c.detection {
        None => (Json::Null, Json::Null),
        Some(d) => summary_json(d),
    };
    Json::Obj(vec![
        ("dataset".into(), Json::Str(c.dataset.clone())),
        ("method".into(), Json::Str(c.method.name().to_string())),
        ("eps_inf".into(), Json::Num(c.eps_inf)),
        ("alpha".into(), Json::Num(c.alpha)),
        ("runs".into(), Json::Num(c.mse.runs as f64)),
        ("mse_mean".into(), mse_mean),
        ("mse_std".into(), mse_std),
        ("eps_avg_mean".into(), eps_mean),
        ("eps_avg_std".into(), eps_std),
        ("detection_mean".into(), det_mean),
        ("detection_std".into(), det_std),
        (
            "reduced_domain".into(),
            c.reduced_domain
                .map_or(Json::Null, |rd| Json::Num(f64::from(rd))),
        ),
    ])
}

/// Validates a parsed trajectory document against the normative schema
/// (`docs/BENCH_FORMAT.md`). Returns the first violation found.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    let need = |obj: &Json, key: &str| -> Result<Json, String> {
        obj.get(key)
            .cloned()
            .ok_or_else(|| format!("missing key `{key}`"))
    };
    let need_num = |obj: &Json, key: &str| -> Result<f64, String> {
        need(obj, key)?
            .as_f64()
            .ok_or_else(|| format!("`{key}` must be a number"))
    };
    let need_str = |obj: &Json, key: &str| -> Result<(), String> {
        need(obj, key)?
            .as_str()
            .map(|_| ())
            .ok_or_else(|| format!("`{key}` must be a string"))
    };
    let num_or_null = |obj: &Json, key: &str| -> Result<(), String> {
        match need(obj, key)? {
            Json::Num(_) | Json::Null => Ok(()),
            _ => Err(format!("`{key}` must be a number or null")),
        }
    };

    if need_num(doc, "schema")? != f64::from(BENCH_SCHEMA) {
        return Err(format!("schema must be {BENCH_SCHEMA}"));
    }
    if need(doc, "suite")?.as_str() != Some("loloha") {
        return Err("suite must be \"loloha\"".to_string());
    }
    need_str(doc, "host")?;
    need_num(doc, "pr")?;
    need_num(doc, "hardware_threads")?;

    let config = need(doc, "config")?;
    need_str(&config, "name")?;
    need_str(&config, "seed")?;
    for key in ["runs", "n_frac", "tau_frac", "bench_users", "bench_samples"] {
        need_num(&config, key)?;
    }
    for key in ["methods", "eps_grid", "alphas"] {
        if need(&config, key)?.as_arr().is_none_or(<[Json]>::is_empty) {
            return Err(format!("config.{key} must be a non-empty array"));
        }
    }

    let throughput = need(doc, "throughput")?;
    let rows = throughput.as_arr().ok_or("`throughput` must be an array")?;
    if rows.is_empty() {
        return Err("`throughput` must be non-empty".to_string());
    }
    for row in rows {
        need_str(row, "method")?;
        for path in ["sanitize", "ingest", "estimate"] {
            let p = need(row, path)?;
            for key in [
                "reports_per_iter",
                "iters",
                "min_ns",
                "median_ns",
                "mean_ns",
                "p90_ns",
                "reports_per_sec",
            ] {
                need_num(&p, key).map_err(|e| format!("throughput.{path}: {e}"))?;
            }
            // Optional (files predating the warmup prefix stay valid),
            // but numeric when present.
            if let Some(w) = p.get("warmup_iters") {
                w.as_f64()
                    .ok_or_else(|| format!("throughput.{path}: `warmup_iters` must be a number"))?;
            }
        }
        // Telemetry comparison keys are optional (files predating them
        // stay valid) but must be well-formed when present.
        if let Some(p) = row.get("ingest_noobs") {
            for key in ["reports_per_iter", "iters", "mean_ns", "reports_per_sec"] {
                need_num(p, key).map_err(|e| format!("throughput.ingest_noobs: {e}"))?;
            }
        }
        // The network-ingest section is optional (only runs opted into
        // `net_ingest = true` record it) but fully checked when present.
        if let Some(n) = row.get("net_ingest") {
            for key in [
                "users",
                "rounds",
                "frames",
                "reports",
                "retries",
                "elapsed_ns",
                "reports_per_sec",
            ] {
                need_num(n, key).map_err(|e| format!("throughput.net_ingest: {e}"))?;
            }
        }
        if let Some(o) = row.get("obs") {
            for key in [
                "reports_routed",
                "send_blocked",
                "send_blocked_ns",
                "overhead_pct",
            ] {
                need_num(o, key).map_err(|e| format!("throughput.obs: {e}"))?;
            }
            // Batched-transport keys are optional (older files predate
            // the batching transport) but numeric when present.
            for key in [
                "batches_flushed",
                "batched_reports",
                "bufpool_hits",
                "bufpool_misses",
            ] {
                if let Some(v) = o.get(key) {
                    v.as_f64()
                        .ok_or_else(|| format!("throughput.obs: `{key}` must be a number"))?;
                }
            }
        }
    }

    let accuracy = need(doc, "accuracy")?;
    let cells = accuracy.as_arr().ok_or("`accuracy` must be an array")?;
    if cells.is_empty() {
        return Err("`accuracy` must be non-empty".to_string());
    }
    for cell in cells {
        need_str(cell, "dataset")?;
        need_str(cell, "method")?;
        for key in ["eps_inf", "alpha", "runs", "eps_avg_mean", "eps_avg_std"] {
            need_num(cell, key)?;
        }
        for key in [
            "mse_mean",
            "mse_std",
            "detection_mean",
            "detection_std",
            "reduced_domain",
        ] {
            num_or_null(cell, key)?;
        }
    }
    Ok(())
}

/// Parses and validates trajectory-file text in one step (what the
/// tier-1 schema test and the CI smoke run).
pub fn validate_bench_str(text: &str) -> Result<(), String> {
    validate_bench(&parse(text)?)
}
