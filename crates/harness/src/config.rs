//! Named runner configurations.
//!
//! A [`RunnerConfig`] pins everything a sweep depends on — dataset
//! filter, method set, ε∞/α grids, runs, scale fractions, master seed —
//! plus the output identity (`host`, `pr`, `out_dir`) and the throughput
//! measurement scale. It loads from a small `key = value` spec file
//! (`#` comments, comma-separated lists) and/or `--flag value`
//! overrides; both funnel through [`RunnerConfig::apply`], so the CLI
//! and the spec format can never drift apart.
//!
//! The sweep-relevant subset of the config is fingerprinted
//! ([`RunnerConfig::fingerprint`]) into the `LDHS` checkpoint header:
//! resuming under a different grid is a typed `Mismatch`, never a
//! silently misattributed cell. `threads` and the `bench_*` knobs are
//! deliberately outside the fingerprint — results are bit-identical
//! across thread counts (an engine invariant), and throughput scale
//! does not affect accuracy cells.

use crate::HarnessError;
use ldp_datasets::{scaled_datasets, DatasetSpec};
use ldp_primitives::codec::fnv1a;
use ldp_sim::Method;
use std::path::PathBuf;

/// Everything one harness invocation depends on.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnerConfig {
    /// Experiment name; names the checkpoint file (`<name>.sweep.ckpt`).
    pub name: String,
    /// Host label stamped into the `BENCH_<host>_<pr>.json` filename.
    pub host: String,
    /// PR number stamped into the trajectory filename.
    pub pr: u32,
    /// Results directory (checkpoint + trajectory file).
    pub out_dir: PathBuf,
    /// Restrict to one dataset by name (case-insensitive), or all four.
    pub dataset: Option<String>,
    /// Protocols under test.
    pub methods: Vec<Method>,
    /// Longitudinal budgets ε∞.
    pub eps_grid: Vec<f64>,
    /// First-report fractions α.
    pub alphas: Vec<f64>,
    /// Repetitions per grid cell.
    pub runs: usize,
    /// Fraction of each dataset's n, in (0, 1].
    pub n_frac: f64,
    /// Fraction of each dataset's τ, in (0, 1].
    pub tau_frac: f64,
    /// Master seed; per-cell seeds derive from it via [`crate::cell_seed`].
    pub seed: u64,
    /// Worker threads (0 = all cores). Outside the fingerprint: results
    /// are bit-identical for every thread count.
    pub threads: usize,
    /// Common-random-numbers pairing across methods (see [`crate::cell_seed`]).
    pub pair_methods: bool,
    /// Population size for the throughput measurements.
    pub bench_users: usize,
    /// Timing samples per hot path per method.
    pub bench_samples: usize,
    /// Also measure loopback network ingestion (`collectd` + loadgen)
    /// per method and record the optional `net_ingest` trajectory
    /// section. Off by default: it binds a TCP listener, which not every
    /// bench environment allows. Outside the fingerprint, like the other
    /// `bench_*` knobs.
    pub net_ingest: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            name: "default".to_string(),
            host: "local".to_string(),
            pr: 0,
            out_dir: PathBuf::from("."),
            dataset: None,
            methods: Method::paper_set().to_vec(),
            eps_grid: vec![0.5, 2.0, 5.0],
            alphas: vec![0.5],
            runs: 3,
            n_frac: 0.05,
            tau_frac: 0.10,
            seed: 0x1010,
            threads: 0,
            pair_methods: false,
            bench_users: 20_000,
            bench_samples: 15,
            net_ingest: false,
        }
    }
}

/// Parses a method name: either the paper's display name
/// (`BiLOLOHA`, `L-OSUE`, …) or the CLI's lowercase alias.
pub fn parse_method(name: &str) -> Result<Method, HarnessError> {
    let lower = name.trim().to_ascii_lowercase();
    let method = match lower.as_str() {
        "rappor" | "l-sue" => Method::Rappor,
        "l-osue" => Method::LOsue,
        "l-oue" => Method::LOue,
        "l-soue" => Method::LSoue,
        "l-grr" => Method::LGrr,
        "biloloha" => Method::BiLoloha,
        "ololoha" => Method::OLoloha,
        "1bitflip" | "1bitflippm" => Method::OneBitFlip,
        "bbitflip" | "bbitflippm" => Method::BBitFlip,
        _ => {
            return Err(HarnessError::Config(format!(
                "unknown method `{name}` (rappor, l-osue, l-oue, l-soue, l-grr, biloloha, \
                 ololoha, 1bitflip, bbitflip)"
            )))
        }
    };
    Ok(method)
}

fn parse_list<T>(
    key: &str,
    value: &str,
    mut one: impl FnMut(&str) -> Result<T, HarnessError>,
) -> Result<Vec<T>, HarnessError> {
    let items: Vec<&str> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err(HarnessError::Config(format!("{key}: empty list")));
    }
    items.into_iter().map(&mut one).collect()
}

fn parse_scalar<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, HarnessError> {
    value
        .trim()
        .parse()
        .map_err(|_| HarnessError::Config(format!("{key}: invalid value `{value}`")))
}

impl RunnerConfig {
    /// Applies one `key = value` assignment (spec-file line or CLI flag).
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), HarnessError> {
        match key {
            "name" => self.name = value.trim().to_string(),
            "host" => self.host = value.trim().to_string(),
            "pr" => self.pr = parse_scalar(key, value)?,
            "out_dir" => self.out_dir = PathBuf::from(value.trim()),
            "dataset" => {
                self.dataset = match value.trim() {
                    "" | "all" => None,
                    name => Some(name.to_string()),
                }
            }
            "methods" => self.methods = parse_list(key, value, parse_method)?,
            "eps" => self.eps_grid = parse_list(key, value, |s| parse_scalar("eps", s))?,
            "alphas" => self.alphas = parse_list(key, value, |s| parse_scalar("alphas", s))?,
            "runs" => self.runs = parse_scalar(key, value)?,
            "n_frac" => self.n_frac = parse_scalar(key, value)?,
            "tau_frac" => self.tau_frac = parse_scalar(key, value)?,
            "seed" => self.seed = parse_scalar(key, value)?,
            "threads" => self.threads = parse_scalar(key, value)?,
            "pair_methods" => self.pair_methods = parse_scalar(key, value)?,
            "bench_users" => self.bench_users = parse_scalar(key, value)?,
            "bench_samples" => self.bench_samples = parse_scalar(key, value)?,
            "net_ingest" => self.net_ingest = parse_scalar(key, value)?,
            _ => return Err(HarnessError::Config(format!("unknown config key `{key}`"))),
        }
        Ok(())
    }

    /// Parses a spec file: `key = value` lines, `#` comments, blank
    /// lines ignored. Unset keys keep their defaults.
    pub fn from_spec(text: &str) -> Result<Self, HarnessError> {
        let mut cfg = Self::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(HarnessError::Config(format!(
                    "spec line {}: expected `key = value`, got `{line}`",
                    idx + 1
                )));
            };
            cfg.apply(key.trim(), value)
                .map_err(|e| HarnessError::Config(format!("spec line {}: {e}", idx + 1)))?;
        }
        Ok(cfg)
    }

    /// Validates every field; returns `self` for chaining.
    pub fn validated(self) -> Result<Self, HarnessError> {
        let frac_ok = |v: f64| v.is_finite() && v > 0.0 && v <= 1.0;
        let err = |msg: String| Err(HarnessError::Config(msg));
        if self.name.is_empty() || !filename_safe(&self.name) {
            return err(format!(
                "name `{}` must be non-empty [A-Za-z0-9._-]",
                self.name
            ));
        }
        if self.host.is_empty() || !filename_safe(&self.host) {
            return err(format!(
                "host `{}` must be non-empty [A-Za-z0-9._-]",
                self.host
            ));
        }
        if self.runs == 0 {
            return err("runs must be positive".to_string());
        }
        if !frac_ok(self.n_frac) {
            return err(format!("n_frac {} must be in (0, 1]", self.n_frac));
        }
        if !frac_ok(self.tau_frac) {
            return err(format!("tau_frac {} must be in (0, 1]", self.tau_frac));
        }
        if self.methods.is_empty() {
            return err("methods must be non-empty".to_string());
        }
        if self.eps_grid.is_empty() || self.eps_grid.iter().any(|e| !e.is_finite() || *e <= 0.0) {
            return err("eps grid must be non-empty, finite, positive".to_string());
        }
        if self.alphas.is_empty()
            || self
                .alphas
                .iter()
                .any(|a| !a.is_finite() || *a <= 0.0 || *a >= 1.0)
        {
            return err("alphas must be non-empty, each in (0, 1)".to_string());
        }
        if self.bench_users == 0 || self.bench_samples == 0 {
            return err("bench_users and bench_samples must be positive".to_string());
        }
        // The dataset filter is resolved (and rejected if unknown) here
        // rather than at sweep time, so a typo fails before any work.
        self.datasets()?;
        Ok(self)
    }

    /// The datasets selected by the filter, at the configured scale.
    pub fn datasets(&self) -> Result<Vec<Box<dyn DatasetSpec>>, HarnessError> {
        let all = scaled_datasets(self.n_frac, self.tau_frac);
        match &self.dataset {
            None => Ok(all),
            Some(name) => {
                let matched: Vec<_> = all
                    .into_iter()
                    .filter(|d| d.name().eq_ignore_ascii_case(name))
                    .collect();
                if matched.is_empty() {
                    return Err(HarnessError::Config(format!(
                        "unknown dataset `{name}` (Syn, Adult, DB_MT, DB_DE)"
                    )));
                }
                Ok(matched)
            }
        }
    }

    /// Number of grid cells (datasets × methods × ε × α).
    pub fn grid_len(&self) -> Result<usize, HarnessError> {
        Ok(self.datasets()?.len() * self.methods.len() * self.eps_grid.len() * self.alphas.len())
    }

    /// FNV-1a fingerprint over the sweep-relevant configuration (grid,
    /// runs, scale, seed, pairing): the `LDHS` checkpoint header value.
    pub fn fingerprint(&self) -> u64 {
        let mut buf: Vec<u8> = Vec::new();
        let put_str = |buf: &mut Vec<u8>, s: &str| {
            buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        };
        put_str(&mut buf, self.dataset.as_deref().unwrap_or(""));
        buf.extend_from_slice(&(self.methods.len() as u64).to_le_bytes());
        for m in &self.methods {
            put_str(&mut buf, m.name());
        }
        buf.extend_from_slice(&(self.eps_grid.len() as u64).to_le_bytes());
        for e in &self.eps_grid {
            buf.extend_from_slice(&e.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&(self.alphas.len() as u64).to_le_bytes());
        for a in &self.alphas {
            buf.extend_from_slice(&a.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&(self.runs as u64).to_le_bytes());
        buf.extend_from_slice(&self.n_frac.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.tau_frac.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.push(u8::from(self.pair_methods));
        fnv1a(&buf)
    }

    /// Path of the sweep checkpoint this config reads/writes.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.out_dir.join(format!("{}.sweep.ckpt", self.name))
    }

    /// Path of the trajectory file this config writes.
    pub fn bench_path(&self) -> PathBuf {
        self.out_dir
            .join(format!("BENCH_{}_{}.json", self.host, self.pr))
    }
}

fn filename_safe(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let cfg = RunnerConfig::default().validated().unwrap();
        assert_eq!(cfg.methods.len(), 7);
        assert_eq!(cfg.grid_len().unwrap(), 4 * 7 * 3);
    }

    #[test]
    fn spec_file_overrides_defaults() {
        let cfg = RunnerConfig::from_spec(
            "# smoke spec\n\
             name = smoke\n\
             host = ci\n\
             pr = 7\n\
             dataset = syn   # just the synthetic workload\n\
             methods = biloloha, rappor\n\
             eps = 0.5, 2.0\n\
             alphas = 0.5\n\
             runs = 1\n\
             n_frac = 0.02\n\
             tau_frac = 0.05\n\
             pair_methods = true\n",
        )
        .unwrap()
        .validated()
        .unwrap();
        assert_eq!(cfg.name, "smoke");
        assert_eq!(cfg.pr, 7);
        assert_eq!(cfg.methods, vec![Method::BiLoloha, Method::Rappor]);
        assert_eq!(cfg.eps_grid, vec![0.5, 2.0]);
        assert!(cfg.pair_methods);
        assert_eq!(
            cfg.grid_len().unwrap(),
            4,
            "1 dataset × 2 methods × 2 ε × 1 α"
        );
        assert_eq!(
            cfg.bench_path(),
            PathBuf::from("./BENCH_ci_7.json"),
            "trajectory filename carries host and pr"
        );
    }

    #[test]
    fn spec_errors_name_the_line() {
        let err = RunnerConfig::from_spec("name = ok\nbogus line\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = RunnerConfig::from_spec("eps = 1.0, zap\n").unwrap_err();
        assert!(err.to_string().contains("eps"), "{err}");
        let err = RunnerConfig::from_spec("volume = 11\n").unwrap_err();
        assert!(err.to_string().contains("unknown config key"), "{err}");
    }

    #[test]
    fn validation_rejects_out_of_range_fractions_and_grids() {
        for (key, value) in [
            ("n_frac", "0"),
            ("n_frac", "-0.5"),
            ("n_frac", "1.5"),
            ("n_frac", "nan"),
            ("tau_frac", "0.0"),
            ("runs", "0"),
            ("eps", "0.0"),
            ("eps", "-1"),
            ("alphas", "1.0"),
            ("alphas", "0"),
            ("bench_samples", "0"),
            ("dataset", "nosuch"),
            ("host", "a b"),
        ] {
            let mut cfg = RunnerConfig::default();
            cfg.apply(key, value).unwrap();
            assert!(
                cfg.validated().is_err(),
                "{key} = {value} should fail validation"
            );
        }
    }

    #[test]
    fn fingerprint_tracks_sweep_coordinates_only() {
        let base = RunnerConfig::default();
        let fp = base.fingerprint();
        // Sweep-relevant edits move the fingerprint…
        for (key, value) in [
            ("seed", "9"),
            ("runs", "4"),
            ("eps", "0.5, 2.0"),
            ("alphas", "0.4"),
            ("n_frac", "0.04"),
            ("tau_frac", "0.2"),
            ("dataset", "syn"),
            ("methods", "rappor"),
            ("pair_methods", "true"),
        ] {
            let mut cfg = base.clone();
            cfg.apply(key, value).unwrap();
            assert_ne!(cfg.fingerprint(), fp, "{key} should move the fingerprint");
        }
        // …output identity and machine knobs do not.
        for (key, value) in [
            ("host", "ci"),
            ("pr", "9"),
            ("threads", "8"),
            ("bench_users", "64"),
            ("bench_samples", "3"),
            ("net_ingest", "true"),
            ("name", "other"),
            ("out_dir", "/tmp/elsewhere"),
        ] {
            let mut cfg = base.clone();
            cfg.apply(key, value).unwrap();
            assert_eq!(
                cfg.fingerprint(),
                fp,
                "{key} should not move the fingerprint"
            );
        }
    }

    #[test]
    fn method_names_parse_in_both_spellings() {
        assert_eq!(parse_method("BiLOLOHA").unwrap(), Method::BiLoloha);
        assert_eq!(parse_method("l-grr").unwrap(), Method::LGrr);
        assert_eq!(parse_method("bBitFlipPM").unwrap(), Method::BBitFlip);
        assert!(parse_method("quantum").is_err());
    }
}
