//! `ldp_harness` — the resumable experiment harness.
//!
//! Drives the sweep grid (dataset × method × ε∞ × α × runs) over the
//! `ldp_sim` engine with **per-cell seeds derived from the full cell
//! coordinates** ([`cell_seed`]), checkpoints progress after every cell
//! through the `LDHS` codec container (`docs/CHECKPOINT_FORMAT.md` §8),
//! measures the sanitize/ingest/estimate hot paths with the vendored
//! criterion stub, and writes the machine-readable
//! `BENCH_<host>_<pr>.json` perf-trajectory file (`docs/BENCH_FORMAT.md`).
//!
//! Entry point: [`ExperimentRunner::run`] over a validated
//! [`RunnerConfig`]. A killed run resumes at the next incomplete cell
//! with byte-identical results; a finished run re-invoked is a no-op.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod checkpoint;
pub mod config;
pub mod grid;
pub mod json;
pub mod runner;
pub mod seed;

pub use bench::{measure_method, measure_net_ingest, MethodThroughput, NetIngest, PathStats};
pub use checkpoint::{load_progress, save_progress, CellMetrics, SweepProgress};
pub use config::{parse_method, RunnerConfig};
pub use grid::{run_cell, CellResult};
pub use json::Json;
pub use runner::{
    validate_bench, validate_bench_str, ExperimentRunner, RunOutcome, SweepOutcome, BENCH_SCHEMA,
};
pub use seed::cell_seed;

use ldp_primitives::codec::CodecError;

/// Everything that can go wrong driving a harness run.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// Invalid configuration (spec file, flag value, or combination).
    Config(String),
    /// Checkpoint codec failure (corrupt file, foreign config, I/O).
    Codec(CodecError),
    /// Filesystem failure outside the codec (trajectory file write).
    Io(String),
    /// Trajectory document failed schema validation.
    Json(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "config error: {msg}"),
            Self::Codec(e) => write!(f, "checkpoint error: {e}"),
            Self::Io(msg) => write!(f, "io error: {msg}"),
            Self::Json(msg) => write!(f, "trajectory schema error: {msg}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for HarnessError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}
