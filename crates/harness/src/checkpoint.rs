//! The `LDHS` sweep-progress checkpoint.
//!
//! A sweep executes its grid in a fixed order (dataset × method × ε∞ ×
//! α, as enumerated by the runner), so progress is a *prefix*: the
//! checkpoint stores the metrics of the first `done` cells under the
//! config fingerprint, and nothing else. Cell identity is re-derived
//! from the configuration on resume — a checkpoint can never
//! misattribute a metric to the wrong cell without tripping the
//! fingerprint first. Layout (normative): `docs/CHECKPOINT_FORMAT.md`
//! §8. Saved atomically after every completed cell, so a kill loses at
//! most the in-flight cell.

use crate::grid::CellResult;
use ldp_primitives::codec::{self, CodecError, CodecReader, CodecWriter};
use ldp_sim::Summary;
use std::path::Path;

const MAGIC: &[u8; 4] = b"LDHS";
const VERSION: u16 = 1;

/// Minimum encoded size of one cell record: two summaries (8+8+8 each)
/// plus two presence flags. Used to prove a declared cell count against
/// the buffer before sizing an allocation from it.
const MIN_CELL_LEN: usize = 2 * 24 + 2;

/// The metrics of one completed cell, in grid order. Identity
/// (dataset, method, ε∞, α) deliberately lives outside the file.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// MSE_avg summary (mean may be NaN: bit-preserved).
    pub mse: Summary,
    /// ε̌_avg summary.
    pub eps_avg: Summary,
    /// Detection-rate summary (dBitFlipPM only).
    pub detection: Option<Summary>,
    /// Resolved g (LOLOHA) or b (dBitFlipPM).
    pub reduced_domain: Option<u32>,
}

impl CellMetrics {
    /// Strips the grid identity off a finished cell.
    pub fn of(cell: &CellResult) -> Self {
        Self {
            mse: cell.mse,
            eps_avg: cell.eps_avg,
            detection: cell.detection,
            reduced_domain: cell.reduced_domain,
        }
    }
}

/// Sweep progress: `cells` holds the completed prefix of a `total`-cell
/// grid.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepProgress {
    /// Grid size the sweep was started with.
    pub total: u32,
    /// Completed cells, in grid order (`len() ≤ total`).
    pub cells: Vec<CellMetrics>,
}

impl SweepProgress {
    /// Whether every cell has completed.
    pub fn complete(&self) -> bool {
        self.cells.len() == self.total as usize
    }
}

fn encode_summary(w: &mut CodecWriter, s: &Summary) {
    w.put_f64(s.mean);
    w.put_f64(s.std);
    w.put_u64(s.runs as u64);
}

fn decode_summary(r: &mut CodecReader<'_>) -> Result<Summary, CodecError> {
    let mean = r.get_f64()?;
    let std = r.get_f64()?;
    let runs = usize::try_from(r.get_u64()?)
        .map_err(|_| CodecError::Corrupt("summary run count exceeds usize"))?;
    if runs == 0 {
        return Err(CodecError::Corrupt("summary with zero runs"));
    }
    Ok(Summary { mean, std, runs })
}

fn encode_cell(w: &mut CodecWriter, cell: &CellMetrics) {
    encode_summary(w, &cell.mse);
    encode_summary(w, &cell.eps_avg);
    match &cell.detection {
        None => w.put_u8(0),
        Some(det) => {
            w.put_u8(1);
            encode_summary(w, det);
        }
    }
    match cell.reduced_domain {
        None => w.put_u8(0),
        Some(rd) => {
            w.put_u8(1);
            w.put_u32(rd);
        }
    }
}

fn decode_cell(r: &mut CodecReader<'_>) -> Result<CellMetrics, CodecError> {
    let mse = decode_summary(r)?;
    let eps_avg = decode_summary(r)?;
    let detection = match r.get_u8()? {
        0 => None,
        1 => Some(decode_summary(r)?),
        _ => return Err(CodecError::Corrupt("detection flag not 0/1")),
    };
    let reduced_domain = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u32()?),
        _ => return Err(CodecError::Corrupt("reduced-domain flag not 0/1")),
    };
    Ok(CellMetrics {
        mse,
        eps_avg,
        detection,
        reduced_domain,
    })
}

/// Encodes progress into an `LDHS` container under `fingerprint`.
pub fn encode_progress(fingerprint: u64, progress: &SweepProgress) -> Vec<u8> {
    debug_assert!(progress.cells.len() <= progress.total as usize);
    let mut w = CodecWriter::with_capacity(
        MAGIC,
        VERSION,
        fingerprint,
        8 + progress.cells.len() * (MIN_CELL_LEN + 24 + 4),
    );
    w.put_u32(progress.total);
    let done = u32::try_from(progress.cells.len()).expect("grid fits in u32");
    w.put_u32(done);
    for cell in &progress.cells {
        encode_cell(&mut w, cell);
    }
    w.finish()
}

/// Decodes an `LDHS` container, verifying it was written under
/// `fingerprint` (the sweep configuration) before touching the payload.
pub fn decode_progress(bytes: &[u8], fingerprint: u64) -> Result<SweepProgress, CodecError> {
    let mut r = CodecReader::open(bytes, MAGIC, VERSION)?;
    r.expect_fingerprint(fingerprint, "sweep configuration")?;
    let total = r.get_u32()?;
    let done = r.get_u32()?;
    if done > total {
        return Err(CodecError::Corrupt("done cells exceed grid size"));
    }
    let done = done as usize;
    if r.remaining() < done.saturating_mul(MIN_CELL_LEN) {
        return Err(CodecError::Corrupt("cell count exceeds payload"));
    }
    let mut cells = Vec::with_capacity(done);
    for _ in 0..done {
        cells.push(decode_cell(&mut r)?);
    }
    r.finish()?;
    Ok(SweepProgress { total, cells })
}

/// Atomically writes `progress` to `path` (tmp + rename; §2.1).
pub fn save_progress(
    path: &Path,
    fingerprint: u64,
    progress: &SweepProgress,
) -> Result<(), CodecError> {
    codec::write_atomic(path, &encode_progress(fingerprint, progress))
}

/// Loads progress from `path`; a missing file is an empty sweep
/// (`Ok(None)`), anything else must decode cleanly under `fingerprint`.
pub fn load_progress(path: &Path, fingerprint: u64) -> Result<Option<SweepProgress>, CodecError> {
    if !path.exists() {
        return Ok(None);
    }
    let bytes = codec::read_file(path)?;
    decode_progress(&bytes, fingerprint).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64, std: f64, runs: usize) -> Summary {
        Summary { mean, std, runs }
    }

    fn sample() -> SweepProgress {
        SweepProgress {
            total: 4,
            cells: vec![
                CellMetrics {
                    mse: summary(1.5e-4, 2.0e-5, 3),
                    eps_avg: summary(2.25, 0.1, 3),
                    detection: None,
                    reduced_domain: Some(2),
                },
                CellMetrics {
                    mse: summary(f64::NAN, f64::NAN, 2),
                    eps_avg: summary(1.0, 0.0, 2),
                    detection: Some(summary(0.96, 0.01, 2)),
                    reduced_domain: None,
                },
            ],
        }
    }

    fn bits_eq(a: &SweepProgress, b: &SweepProgress) -> bool {
        a.total == b.total
            && a.cells.len() == b.cells.len()
            && a.cells.iter().zip(&b.cells).all(|(x, y)| {
                let s = |p: &Summary, q: &Summary| {
                    p.mean.to_bits() == q.mean.to_bits()
                        && p.std.to_bits() == q.std.to_bits()
                        && p.runs == q.runs
                };
                s(&x.mse, &y.mse)
                    && s(&x.eps_avg, &y.eps_avg)
                    && match (&x.detection, &y.detection) {
                        (None, None) => true,
                        (Some(p), Some(q)) => s(p, q),
                        _ => false,
                    }
                    && x.reduced_domain == y.reduced_domain
            })
    }

    #[test]
    fn roundtrip_preserves_every_bit_including_nan() {
        let p = sample();
        let bytes = encode_progress(7, &p);
        let back = decode_progress(&bytes, 7).unwrap();
        assert!(bits_eq(&p, &back));
        // Byte-stable re-encode.
        assert_eq!(encode_progress(7, &back), bytes);
    }

    #[test]
    fn foreign_fingerprint_is_rejected_before_the_payload() {
        let bytes = encode_progress(7, &sample());
        assert!(matches!(
            decode_progress(&bytes, 8),
            Err(CodecError::Mismatch(_))
        ));
    }

    #[test]
    fn corrupt_declared_counts_are_typed_errors_not_allocations() {
        // done > total.
        let mut w = CodecWriter::new(MAGIC, VERSION, 1);
        w.put_u32(1);
        w.put_u32(2);
        assert!(matches!(
            decode_progress(&w.finish(), 1),
            Err(CodecError::Corrupt(_))
        ));
        // done claims more cells than the payload holds.
        let mut w = CodecWriter::new(MAGIC, VERSION, 1);
        w.put_u32(u32::MAX);
        w.put_u32(u32::MAX);
        assert!(matches!(
            decode_progress(&w.finish(), 1),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_and_bad_flags_are_corrupt() {
        let mut bytes = encode_progress(3, &sample());
        // Append a byte before the checksum: recompute via re-encode of
        // a tampered buffer is awkward, so just extend and expect a
        // checksum failure (any mutation past the trailer is caught).
        bytes.push(0);
        assert!(decode_progress(&bytes, 3).is_err());

        let mut w = CodecWriter::new(MAGIC, VERSION, 1);
        w.put_u32(1);
        w.put_u32(1);
        encode_summary(&mut w, &summary(0.0, 0.0, 1));
        encode_summary(&mut w, &summary(0.0, 0.0, 1));
        w.put_u8(9); // invalid detection flag
        w.put_u8(0);
        assert!(matches!(
            decode_progress(&w.finish(), 1),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_roundtrips_and_missing_file_is_none() {
        let dir = std::env::temp_dir().join(format!("ldhs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.sweep.ckpt");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_progress(&path, 5).unwrap(), None);
        let p = sample();
        save_progress(&path, 5, &p).unwrap();
        let back = load_progress(&path, 5).unwrap().unwrap();
        assert!(bits_eq(&p, &back));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
