//! Per-cell seed derivation for sweep grids.
//!
//! The pre-harness sweep derived each run's seed from `run` alone, so
//! every (dataset × method × ε∞ × α) cell replayed the *same* RNG
//! streams — identical synthetic data and identical perturbation noise
//! across the whole grid. That correlates errors between cells, which
//! the Cormode–Maddock–Maple benchmark study (arXiv:2103.16640) warns
//! distorts method comparisons. Here the seed is a SplitMix-style
//! fingerprint of the **full cell coordinates**, so any two cells that
//! differ in any coordinate get independent streams.
//!
//! One deliberate exception survives as an option: common-random-numbers
//! pairing *across methods only* (`RunnerConfig::pair_methods`). With it,
//! the method name is left out of the fingerprint, so every method sees
//! the same data realization and perturbation stream for a given
//! (dataset, ε∞, α, run) — a variance-reduction technique for paired
//! comparisons. It is off by default and never implicit.

use ldp_primitives::codec::fnv1a;
use ldp_rand::mix;

/// Domain-separation tag mixed in place of a method name when
/// common-random-numbers pairing erases the method coordinate. Prevents
/// a paired stream from colliding with any real method's stream.
const CRN_TAG: u64 = 0x4c44_5048_5f43_524e; // "LDPH_CRN"

/// Derives the RNG master seed for one (dataset, method, ε∞, α, run)
/// grid cell. `method` is `None` under common-random-numbers pairing,
/// which removes only the method coordinate from the fingerprint.
///
/// ε∞ and α enter as IEEE-754 bit patterns, so distinct grid points are
/// distinct inputs even when they round-print identically; every
/// coordinate passes through the SplitMix64 finalizer (`ldp_rand::mix`)
/// so low-entropy inputs (run indices 0, 1, 2, …) still produce
/// well-mixed seeds.
pub fn cell_seed(
    master: u64,
    dataset: &str,
    method: Option<&str>,
    eps_inf: f64,
    alpha: f64,
    run: u64,
) -> u64 {
    let mut z = mix(master ^ fnv1a(dataset.as_bytes()));
    z = mix(z ^ method.map_or(CRN_TAG, |name| fnv1a(name.as_bytes())));
    z = mix(z ^ eps_inf.to_bits());
    z = mix(z ^ alpha.to_bits());
    mix(z ^ run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_cell_in_a_paper_scale_grid_gets_a_distinct_seed() {
        // Regression for the cross-cell seed-reuse bug: the full
        // 4 datasets × 9 methods × 10 ε × 3 α × 5 runs grid (5400
        // cells) must produce 5400 distinct seeds.
        let datasets = ["Syn", "Adult", "DB_MT", "DB_DE"];
        let methods = [
            "RAPPOR",
            "L-OSUE",
            "L-OUE",
            "L-SOUE",
            "L-GRR",
            "BiLOLOHA",
            "OLOLOHA",
            "1BitFlipPM",
            "bBitFlipPM",
        ];
        let eps: Vec<f64> = (1..=10).map(|i| i as f64 * 0.5).collect();
        let alphas = [0.4, 0.5, 0.6];
        let mut seen = HashSet::new();
        for d in datasets {
            for m in methods {
                for &e in &eps {
                    for &a in alphas.iter() {
                        for run in 0..5u64 {
                            assert!(
                                seen.insert(cell_seed(0x1010, d, Some(m), e, a, run)),
                                "seed collision at ({d}, {m}, {e}, {a}, run {run})"
                            );
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), 4 * 9 * 10 * 3 * 5);
    }

    #[test]
    fn crn_pairing_shares_streams_across_methods_only() {
        let paired_a = cell_seed(7, "Syn", None, 1.0, 0.5, 0);
        let paired_b = cell_seed(7, "Syn", None, 1.0, 0.5, 0);
        assert_eq!(paired_a, paired_b, "pairing is deterministic");
        // Unpaired methods differ from each other and from the paired
        // stream; every non-method coordinate still separates.
        assert_ne!(paired_a, cell_seed(7, "Syn", Some("RAPPOR"), 1.0, 0.5, 0));
        assert_ne!(paired_a, cell_seed(7, "Adult", None, 1.0, 0.5, 0));
        assert_ne!(paired_a, cell_seed(7, "Syn", None, 2.0, 0.5, 0));
        assert_ne!(paired_a, cell_seed(7, "Syn", None, 1.0, 0.6, 0));
        assert_ne!(paired_a, cell_seed(7, "Syn", None, 1.0, 0.5, 1));
        assert_ne!(paired_a, cell_seed(8, "Syn", None, 1.0, 0.5, 0));
    }

    #[test]
    fn master_seed_shifts_the_whole_grid() {
        assert_ne!(
            cell_seed(1, "Syn", Some("RAPPOR"), 1.0, 0.5, 0),
            cell_seed(2, "Syn", Some("RAPPOR"), 1.0, 0.5, 0)
        );
    }
}
