//! Hot-path throughput measurement.
//!
//! Three paths, matching the production dataflow (`docs/ARCHITECTURE.md`):
//!
//! * **sanitize** — `ClientPool::sanitize_round_into_shards`: per-user
//!   perturbation straight into aggregator shards (the direct engine
//!   path).
//! * **ingest** — one full piped round: parallel sanitization submitting
//!   envelopes through `IngestPipeline` shard workers plus the
//!   end-of-round merge/estimate (the production collector topology).
//! * **estimate** — `ShardedAggregator::snapshot`: the non-destructive
//!   merge + frequency estimation over filled shards.
//!
//! Timings come from the vendored criterion stub's [`measure_warmup`]
//! (each path discards [`BENCH_WARMUP_ITERS`] untimed iterations first)
//! — the same order statistics (`min`/`median`/`mean`/`p90`/`iters`)
//! the bench binaries print, recorded per method into `BENCH_*.json` so
//! the perf trajectory is reviewable across PRs. Wall-clock numbers are
//! machine-dependent by nature; everything else in the trajectory file
//! is deterministic.

use crate::HarnessError;
use criterion::{measure_warmup, SampleStats};
use ldp_client::{ClientConfig, ClientPool};
use ldp_ingest::IngestPipeline;
use ldp_netd::{run_loadgen, Collectd, DaemonConfig, LoadgenConfig};
use ldp_obs::MetricsRegistry;
use ldp_rand::{derive_rng, uniform_u64};
use ldp_runtime::ShardedAggregator;
use ldp_sim::Method;
use std::time::Duration;

/// Domain size the throughput population reports over. Fixed (not the
/// sweep's dataset domains) so trajectory numbers are comparable across
/// configs.
const BENCH_K: u64 = 128;
const BENCH_EPS_INF: f64 = 1.0;
const BENCH_EPS_FIRST: f64 = 0.5;

/// Untimed iterations discarded before each path's timed samples. The
/// first round pays one-off costs a steady-state collection never sees
/// again — memoization tables filling, allocators growing, caches
/// warming — which at small sample counts skewed `mean_ns` to ~2× the
/// median in earlier trajectory files. Recorded per path as
/// `warmup_iters` in `BENCH_*.json`.
pub const BENCH_WARMUP_ITERS: usize = 2;

/// Timing of one hot path at a known per-iteration workload.
#[derive(Debug, Clone, Copy)]
pub struct PathStats {
    /// Reports processed per timed iteration.
    pub reports_per_iter: usize,
    /// Untimed warmup iterations discarded before the timed samples.
    pub warmup_iters: usize,
    /// Wall-clock order statistics over the iterations.
    pub stats: SampleStats,
}

impl PathStats {
    /// Mean throughput in reports per second.
    pub fn reports_per_sec(&self) -> f64 {
        let secs = self.stats.mean.as_secs_f64();
        if secs > 0.0 {
            self.reports_per_iter as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Telemetry roll-up from the instrumented ingest rounds' registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestObs {
    /// Reports routed to shard workers across all timed rounds.
    pub reports_routed: u64,
    /// Submissions that found their shard channel full.
    pub send_blocked: u64,
    /// Total nanoseconds spent blocked on full channels.
    pub send_blocked_ns: u64,
    /// Batch envelopes flushed by the batched transport.
    pub batches_flushed: u64,
    /// Reports carried inside those batch envelopes (the batch-fill
    /// histogram's sum; mean fill = this / `batches_flushed`).
    pub batched_reports: u64,
    /// Buffer free-list takes that reused a recycled buffer.
    pub bufpool_hits: u64,
    /// Buffer free-list takes that had to allocate fresh.
    pub bufpool_misses: u64,
}

/// The hot-path timings for one method.
#[derive(Debug, Clone, Copy)]
pub struct MethodThroughput {
    /// Protocol measured.
    pub method: Method,
    /// Direct sanitize-into-shards round.
    pub sanitize: PathStats,
    /// Full piped round (sanitize + concurrent shard ingestion), with
    /// `ldp_obs` telemetry recording into a run-local registry — the
    /// production collector configuration.
    pub ingest: PathStats,
    /// The same piped round with telemetry hard-disabled (no-op
    /// handles): the baseline `ingest` is compared against.
    pub ingest_noobs: PathStats,
    /// What the instrumented rounds' registry accumulated.
    pub obs: IngestObs,
    /// Aggregator snapshot (merge + estimate).
    pub estimate: PathStats,
}

impl MethodThroughput {
    /// Mean instrumented-vs-disabled ingest overhead in percent. Can be
    /// negative within measurement noise — the interesting signal is its
    /// magnitude staying in the low single digits.
    pub fn obs_overhead_pct(&self) -> f64 {
        let base = self.ingest_noobs.stats.mean.as_secs_f64();
        if base > 0.0 {
            (self.ingest.stats.mean.as_secs_f64() / base - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// Loopback network-ingestion throughput for one method: a real
/// `collectd` daemon on `127.0.0.1:0` driven by the loadgen over TCP,
/// so the number includes wire encode/decode, framing, acks, and the
/// drain handshake — everything the in-process `ingest` path skips.
/// Recorded as the optional `net_ingest` trajectory section
/// (`docs/BENCH_FORMAT.md`).
#[derive(Debug, Clone, Copy)]
pub struct NetIngest {
    /// Protocol measured.
    pub method: Method,
    /// Users per round.
    pub users: usize,
    /// Full rounds driven over the wire.
    pub rounds: u64,
    /// Submit frames sent and acked.
    pub frames: u64,
    /// Reports submitted and acked (`users × rounds` when healthy).
    pub reports: u64,
    /// Round replays forced by retryable failures (0 on loopback).
    pub retries: u64,
    /// Wall-clock for the whole run, connection setup to drain.
    pub elapsed: Duration,
    /// Acked reports per wall-clock second.
    pub reports_per_sec: f64,
}

/// Measures loopback network ingestion for `method`: starts a fresh
/// daemon, replays `rounds` rounds of `users` deterministic reports
/// through the loadgen, drains in-band, and reports acked throughput.
pub fn measure_net_ingest(
    method: Method,
    users: usize,
    rounds: u64,
    threads: usize,
    seed: u64,
) -> Result<NetIngest, HarnessError> {
    let off = MetricsRegistry::disabled();
    let mut dcfg = DaemonConfig::new(method, BENCH_K, BENCH_EPS_INF, BENCH_EPS_FIRST);
    dcfg.workers = threads.clamp(1, users.max(1));
    let daemon = Collectd::start(dcfg, &off).map_err(|e| HarnessError::Io(e.to_string()))?;
    let mut lcfg = LoadgenConfig::new(
        daemon.local_addr(),
        method,
        BENCH_K,
        BENCH_EPS_INF,
        BENCH_EPS_FIRST,
    );
    lcfg.users = users;
    lcfg.rounds = rounds;
    lcfg.seed = seed;
    lcfg.shutdown = true;
    let report = run_loadgen(&lcfg, &off).map_err(|e| HarnessError::Io(e.to_string()))?;
    daemon.join().map_err(|e| HarnessError::Io(e.to_string()))?;
    Ok(NetIngest {
        method,
        users,
        rounds,
        frames: report.frames,
        reports: report.reports,
        retries: report.retries,
        elapsed: report.elapsed,
        reports_per_sec: report.reports_per_sec,
    })
}

/// Synthetic uniform population values (deterministic in `seed`).
fn bench_values(users: usize, seed: u64) -> Vec<u64> {
    let mut rng = derive_rng(seed, u64::MAX);
    (0..users).map(|_| uniform_u64(&mut rng, BENCH_K)).collect()
}

/// Measures the three hot paths for `method` over a `users`-strong
/// population, `samples` timed rounds each.
pub fn measure_method(
    method: Method,
    users: usize,
    samples: usize,
    threads: usize,
    seed: u64,
) -> Result<MethodThroughput, HarnessError> {
    let workers = threads.clamp(1, users.max(1));
    let values = bench_values(users, seed);
    let mk_pool = |reg: &MetricsRegistry| -> Result<ClientPool, HarnessError> {
        let cfg = ClientConfig::for_method(method, BENCH_K, BENCH_EPS_INF, BENCH_EPS_FIRST)
            .map_err(|e| HarnessError::Config(format!("{method:?}: {e}")))?;
        ClientPool::with_obs(cfg, seed, users, reg).map_err(|e| HarnessError::Config(e.to_string()))
    };
    let off = MetricsRegistry::disabled();

    // Sanitize path: shards accumulate across iterations (counts grow,
    // cost per round does not), memoization reaches steady state after
    // the warmup rounds — which is the regime a long collection runs in.
    // Telemetry stays disabled here: this number is the pure hot path.
    let mut pool = mk_pool(&off)?;
    let mut agg = ShardedAggregator::for_method_obs(
        method,
        BENCH_K,
        BENCH_EPS_INF,
        BENCH_EPS_FIRST,
        workers,
        &off,
    )
    .map_err(|e| HarnessError::Config(e.to_string()))?;
    let sanitize = measure_warmup(samples, BENCH_WARMUP_ITERS, || {
        pool.sanitize_round_into_shards(&values, agg.shards_mut())
    })
    .expect("samples >= 1");

    // Estimate path: snapshot the shards the sanitize loop just filled
    // (non-destructive merge + estimate).
    let estimate =
        measure_warmup(samples, BENCH_WARMUP_ITERS, || agg.snapshot()).expect("samples >= 1");

    // Ingest path, instrumented: the full piped round end to end with a
    // live run-local registry, exactly as `collect --metrics` runs it.
    let reg = MetricsRegistry::new();
    let mut pool = mk_pool(&reg)?;
    let mut pipe = IngestPipeline::for_method_obs(
        method,
        BENCH_K,
        BENCH_EPS_INF,
        BENCH_EPS_FIRST,
        workers,
        &reg,
    )
    .map_err(|e| HarnessError::Config(e.to_string()))?;
    let ingest = measure_warmup(samples, BENCH_WARMUP_ITERS, || {
        pool.sanitize_round(&values, workers, &pipe.handle())
            .expect("ingest workers alive");
        pipe.finish_round().expect("ingest workers alive")
    })
    .expect("samples >= 1");
    let snap = reg.snapshot();
    let obs = IngestObs {
        reports_routed: snap.counter_total("ldp.ingest.pipeline.reports_routed"),
        send_blocked: snap.counter_total("ldp.ingest.pipeline.send_blocked"),
        send_blocked_ns: snap.hist_sum("ldp.ingest.pipeline.send_blocked_ns"),
        batches_flushed: snap.counter_total("ldp.ingest.pipeline.batches_flushed"),
        batched_reports: snap.hist_sum("ldp.ingest.pipeline.batch_fill"),
        bufpool_hits: snap.counter_labeled_total("ldp.ingest.pipeline.bufpool", "hit"),
        bufpool_misses: snap.counter_labeled_total("ldp.ingest.pipeline.bufpool", "miss"),
    };

    // The same piped round with telemetry hard-disabled (every handle a
    // no-op): the pair quantifies the instrumentation overhead.
    let mut pool = mk_pool(&off)?;
    let mut pipe = IngestPipeline::for_method_obs(
        method,
        BENCH_K,
        BENCH_EPS_INF,
        BENCH_EPS_FIRST,
        workers,
        &off,
    )
    .map_err(|e| HarnessError::Config(e.to_string()))?;
    let ingest_noobs = measure_warmup(samples, BENCH_WARMUP_ITERS, || {
        pool.sanitize_round(&values, workers, &pipe.handle())
            .expect("ingest workers alive");
        pipe.finish_round().expect("ingest workers alive")
    })
    .expect("samples >= 1");

    Ok(MethodThroughput {
        method,
        sanitize: PathStats {
            reports_per_iter: users,
            warmup_iters: BENCH_WARMUP_ITERS,
            stats: sanitize,
        },
        ingest: PathStats {
            reports_per_iter: users,
            warmup_iters: BENCH_WARMUP_ITERS,
            stats: ingest,
        },
        ingest_noobs: PathStats {
            reports_per_iter: users,
            warmup_iters: BENCH_WARMUP_ITERS,
            stats: ingest_noobs,
        },
        obs,
        estimate: PathStats {
            // A snapshot folds every report the shards absorbed so far;
            // normalize per shard-resident report at snapshot time is
            // not meaningful across iterations (counts grow), so the
            // workload unit is one population's worth of reports.
            reports_per_iter: users,
            warmup_iters: BENCH_WARMUP_ITERS,
            stats: estimate,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_all_three_paths_for_a_loloha_and_a_ue_method() {
        for method in [Method::BiLoloha, Method::Rappor] {
            let t = measure_method(method, 200, 2, 1, 42).unwrap();
            assert_eq!(t.sanitize.reports_per_iter, 200);
            assert_eq!(t.sanitize.stats.iters, 2);
            assert_eq!(t.ingest.stats.iters, 2);
            assert_eq!(t.ingest_noobs.stats.iters, 2);
            assert_eq!(t.estimate.stats.iters, 2);
            assert!(t.sanitize.reports_per_sec() > 0.0);
            assert!(t.sanitize.stats.min <= t.sanitize.stats.p90);
            // The instrumented rounds' registry saw every routed report:
            // 200 users × (2 timed + BENCH_WARMUP_ITERS untimed) rounds.
            assert_eq!(t.obs.reports_routed, 200 * (2 + BENCH_WARMUP_ITERS) as u64);
            // The piped rounds went through the batched transport:
            // envelopes were flushed, their fills sum to the routed
            // reports, and after the first round the free-list recycles.
            assert!(t.obs.batches_flushed > 0);
            assert_eq!(t.obs.batched_reports, t.obs.reports_routed);
            assert!(t.obs.bufpool_hits > 0);
            assert_eq!(t.sanitize.warmup_iters, BENCH_WARMUP_ITERS);
            assert!(t.obs_overhead_pct().is_finite());
        }
    }

    #[test]
    fn net_ingest_measures_acked_loopback_throughput() {
        let n = measure_net_ingest(Method::BiLoloha, 40, 2, 2, 42).unwrap();
        assert_eq!(n.reports, 80, "every report acked, none replayed twice");
        assert_eq!(n.rounds, 2);
        assert_eq!(n.retries, 0, "loopback runs clean");
        assert!(n.frames > 0);
        assert!(n.reports_per_sec > 0.0);
        assert!(n.elapsed.as_nanos() > 0);
    }
}
