//! A minimal, dependency-free JSON value with a deterministic emitter.
//!
//! `BENCH_*.json` trajectory files are diffed in review and compared
//! byte-for-byte by the resume tests, so the emitter must be a pure
//! function of the value: objects are ordered `Vec`s (insertion order is
//! emission order, never a hash order), and `f64` formatting uses Rust's
//! shortest-roundtrip `Display`. Non-finite numbers have no JSON lexeme
//! and emit as `null` — consumers treat a missing/`null` metric as "not
//! comparable", mirroring the simulator's NaN convention.
//!
//! The parser is strict recursive descent over the same subset (no
//! comments, no trailing commas, `\uXXXX` escapes limited to the BMP) —
//! enough to validate a checked-in trajectory file against the schema in
//! `docs/BENCH_FORMAT.md`.

use std::fmt::Write as _;

/// One JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values emit as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a finite `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Emits the value as pretty-printed JSON (2-space indent, `\n`
    /// line endings, trailing newline) — deterministic byte-for-byte.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out.push('\n');
        out
    }

    fn emit(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is shortest-roundtrip and
                    // never uses exponent notation: a stable lexeme.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.emit(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    emit_string(out, key);
                    out.push_str(": ");
                    value.emit(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; the whole input must be one value.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        let v: f64 = text
            .parse()
            .map_err(|_| format!("invalid number `{text}` at offset {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number `{text}` at offset {start}"));
        }
        Ok(Json::Num(v))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at offset {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Num(1.0)),
            ("name".into(), Json::Str("sm\"oke\n".into())),
            ("nan".into(), Json::Num(f64::NAN)),
            ("flag".into(), Json::Bool(true)),
            (
                "items".into(),
                Json::Arr(vec![Json::Null, Json::Num(-2.5), Json::Str("x".into())]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ])
    }

    #[test]
    fn emit_parse_roundtrip_preserves_structure() {
        let text = sample().to_pretty();
        let back = parse(&text).unwrap();
        // NaN emitted as null: everything else survives.
        assert_eq!(back.get("schema").unwrap().as_f64(), Some(1.0));
        assert_eq!(back.get("name").unwrap().as_str(), Some("sm\"oke\n"));
        assert_eq!(back.get("nan"), Some(&Json::Null));
        assert_eq!(back.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(back.get("items").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(back.get("empty").unwrap().as_obj(), Some(&[][..]));
    }

    #[test]
    fn emission_is_deterministic() {
        assert_eq!(sample().to_pretty(), sample().to_pretty());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            "1e999",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = parse(r#"{"s": "aA\n\\", "n": -1.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("aA\n\\"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-150.0));
    }
}
