//! Grid enumeration and single-cell execution.
//!
//! A sweep is the cross product (dataset × method × ε∞ × α), each cell
//! repeated `runs` times with a [`cell_seed`]-derived seed and
//! aggregated into summaries. Cell *identity* lives here; the `LDHS`
//! checkpoint stores only the metrics, in grid order, under the config
//! fingerprint — identity is re-derived on resume, never parsed from
//! disk.

use crate::seed::cell_seed;
use ldp_datasets::DatasetSpec;
use ldp_sim::{run_experiment, ExperimentConfig, Method, Summary};

/// One aggregated cell of a sweep.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Dataset name.
    pub dataset: String,
    /// Protocol under test.
    pub method: Method,
    /// Longitudinal budget ε∞.
    pub eps_inf: f64,
    /// First-report fraction α.
    pub alpha: f64,
    /// MSE_avg over runs (Eq. (7)); NaN mean when incomparable.
    pub mse: Summary,
    /// ε̌_avg over runs (Eq. (8)).
    pub eps_avg: Summary,
    /// Detection rate over runs (dBitFlipPM only).
    pub detection: Option<Summary>,
    /// Resolved g (LOLOHA) or b (dBitFlipPM).
    pub reduced_domain: Option<u32>,
}

impl CellResult {
    /// Bitwise equality on every metric (NaN-safe), plus identity.
    pub fn bits_eq(&self, other: &CellResult) -> bool {
        fn summary_eq(a: &Summary, b: &Summary) -> bool {
            a.mean.to_bits() == b.mean.to_bits()
                && a.std.to_bits() == b.std.to_bits()
                && a.runs == b.runs
        }
        self.dataset == other.dataset
            && self.method == other.method
            && self.eps_inf.to_bits() == other.eps_inf.to_bits()
            && self.alpha.to_bits() == other.alpha.to_bits()
            && summary_eq(&self.mse, &other.mse)
            && summary_eq(&self.eps_avg, &other.eps_avg)
            && match (&self.detection, &other.detection) {
                (None, None) => true,
                (Some(a), Some(b)) => summary_eq(a, b),
                _ => false,
            }
            && self.reduced_domain == other.reduced_domain
    }
}

/// Runs one grid cell: `runs` repetitions, each seeded from the full
/// cell coordinates (or, under common-random-numbers pairing, from the
/// coordinates minus the method — see [`cell_seed`]).
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    dataset: &dyn DatasetSpec,
    method: Method,
    eps_inf: f64,
    alpha: f64,
    runs: usize,
    threads: usize,
    master_seed: u64,
    pair_methods: bool,
) -> CellResult {
    let mut mses = Vec::with_capacity(runs);
    let mut epss = Vec::with_capacity(runs);
    let mut dets = Vec::with_capacity(runs);
    let mut reduced = None;
    for run in 0..runs {
        let method_tag = if pair_methods {
            None
        } else {
            Some(method.name())
        };
        let seed = cell_seed(
            master_seed,
            dataset.name(),
            method_tag,
            eps_inf,
            alpha,
            run as u64,
        );
        let cfg = ExperimentConfig::new(method, eps_inf, alpha, seed)
            .expect("validated grid")
            .with_threads(threads);
        let m = run_experiment(dataset, &cfg).expect("runnable configuration");
        mses.push(m.mse_avg);
        epss.push(m.eps_avg);
        if let Some(d) = m.detection {
            dets.push(d.rate());
        }
        reduced = m.reduced_domain;
    }
    CellResult {
        dataset: dataset.name().to_string(),
        method,
        eps_inf,
        alpha,
        mse: Summary::of(&mses),
        eps_avg: Summary::of(&epss),
        detection: if dets.is_empty() {
            None
        } else {
            Some(Summary::of(&dets))
        },
        reduced_domain: reduced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::SynDataset;

    fn tiny() -> SynDataset {
        SynDataset::new(16, 120, 3, 0.25)
    }

    #[test]
    fn distinct_cells_produce_distinct_results() {
        // End-to-end regression for the seed-reuse bug: two cells that
        // differ only in ε∞ must not replay the same RNG streams, so
        // their estimates (hence MSEs) must differ.
        let a = run_cell(&tiny(), Method::BiLoloha, 1.0, 0.5, 2, 1, 7, false);
        let b = run_cell(&tiny(), Method::BiLoloha, 2.0, 0.5, 2, 1, 7, false);
        assert_ne!(a.mse.mean.to_bits(), b.mse.mean.to_bits());
        // And the same cell re-run is bit-identical (determinism).
        let a2 = run_cell(&tiny(), Method::BiLoloha, 1.0, 0.5, 2, 1, 7, false);
        assert!(a.bits_eq(&a2));
    }

    #[test]
    fn pairing_shares_the_data_realization_across_methods() {
        // Under CRN pairing every method at a given (dataset, ε∞, α,
        // run) draws the same seed, hence the same data realization.
        // ε̌_avg for a UE chain is ε∞ × (distinct values per user) — a
        // pure function of the data — so two *different* UE chains must
        // agree bitwise when paired.
        let rappor = run_cell(&tiny(), Method::Rappor, 1.0, 0.5, 2, 1, 7, true);
        let losue = run_cell(&tiny(), Method::LOsue, 1.0, 0.5, 2, 1, 7, true);
        assert_eq!(
            rappor.eps_avg.mean.to_bits(),
            losue.eps_avg.mean.to_bits(),
            "paired methods share the data stream"
        );
        // Turning pairing off moves the method name back into the seed
        // fingerprint, so the streams (and the noisy MSE) change.
        let unpaired = run_cell(&tiny(), Method::Rappor, 1.0, 0.5, 2, 1, 7, false);
        assert_ne!(
            rappor.mse.mean.to_bits(),
            unpaired.mse.mean.to_bits(),
            "pairing selects a different stream than the per-method seed"
        );
    }
}
