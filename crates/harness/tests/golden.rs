//! Golden-file compatibility for the `LDHS` sweep checkpoint.
//!
//! The fixture was produced by the v1 encoder; this test proves today's
//! build still reads it bit-for-bit and re-encodes it byte-identically.
//! If the format ever needs to change, bump the version, keep v1
//! readable, and add a new fixture — never regenerate this one silently
//! (see `docs/CHECKPOINT_FORMAT.md` §10).

use ldp_harness::checkpoint::{decode_progress, encode_progress, CellMetrics, SweepProgress};
use ldp_sim::Summary;
use std::path::PathBuf;

/// Fingerprint the fixture was written under (arbitrary but pinned).
const FIXTURE_FP: u64 = 0x4c44_4853_5f76_3101;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sweep_v1.ckpt")
}

/// The exact progress the fixture encodes: a 3-cell prefix of a 6-cell
/// grid exercising every optional field, including a NaN mean.
fn fixture_progress() -> SweepProgress {
    let s = |mean: f64, std: f64, runs: usize| Summary { mean, std, runs };
    SweepProgress {
        total: 6,
        cells: vec![
            CellMetrics {
                mse: s(3.25e-4, 4.5e-5, 3),
                eps_avg: s(2.125, 0.25, 3),
                detection: None,
                reduced_domain: Some(2),
            },
            CellMetrics {
                mse: s(f64::NAN, f64::NAN, 3),
                eps_avg: s(1.0, 0.0, 3),
                detection: Some(s(0.9375, 0.03125, 3)),
                reduced_domain: Some(16),
            },
            CellMetrics {
                mse: s(7.5e-3, 1.25e-3, 3),
                eps_avg: s(0.5, 0.125, 3),
                detection: None,
                reduced_domain: None,
            },
        ],
    }
}

fn bits_eq(a: &SweepProgress, b: &SweepProgress) -> bool {
    let sum = |p: &Summary, q: &Summary| {
        p.mean.to_bits() == q.mean.to_bits()
            && p.std.to_bits() == q.std.to_bits()
            && p.runs == q.runs
    };
    a.total == b.total
        && a.cells.len() == b.cells.len()
        && a.cells.iter().zip(&b.cells).all(|(x, y)| {
            sum(&x.mse, &y.mse)
                && sum(&x.eps_avg, &y.eps_avg)
                && match (&x.detection, &y.detection) {
                    (None, None) => true,
                    (Some(p), Some(q)) => sum(p, q),
                    _ => false,
                }
                && x.reduced_domain == y.reduced_domain
        })
}

#[test]
fn v1_fixture_decodes_and_reencodes_byte_identically() {
    let bytes = std::fs::read(fixture_path()).expect("fixture checked in");
    let decoded = decode_progress(&bytes, FIXTURE_FP).unwrap();
    assert!(
        bits_eq(&decoded, &fixture_progress()),
        "fixture content drifted from the pinned progress"
    );
    assert_eq!(
        encode_progress(FIXTURE_FP, &decoded),
        bytes,
        "encoder no longer byte-stable against the v1 fixture"
    );
}

/// Regenerates the fixture. Run manually after an *intentional*,
/// version-bumped format change:
/// `cargo test -p ldp_harness --test golden -- --ignored`
/// (CI's `--ignored` pass runs only `statistical_tier2`, so this never
/// fires there.)
#[test]
#[ignore = "writes the golden fixture; run only on intentional format changes"]
fn regenerate_fixture() {
    let bytes = encode_progress(FIXTURE_FP, &fixture_progress());
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), bytes).unwrap();
}
