//! Tier-1 gate on the checked-in perf trajectory: every
//! `results/BENCH_<host>_<pr>.json` in the repository must parse and
//! validate against the normative schema (`docs/BENCH_FORMAT.md`), and
//! at least one must exist — the trajectory is only reviewable if each
//! PR actually lands its measurement.

use ldp_harness::validate_bench_str;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[test]
fn checked_in_trajectory_files_validate_against_the_schema() {
    let mut seen = 0;
    let mut names: Vec<String> = std::fs::read_dir(results_dir())
        .expect("results/ directory exists at the repo root")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let path = results_dir().join(&name);
        let text = std::fs::read_to_string(&path).unwrap();
        validate_bench_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        seen += 1;
    }
    assert!(seen >= 1, "at least one BENCH_*.json must be checked in");
}
