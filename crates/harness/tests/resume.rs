//! Kill-and-resume drills for the resumable sweep (ISSUE acceptance:
//! a killed run resumes at the next incomplete cell and ends
//! byte-identical to an uninterrupted run; a finished run re-invoked is
//! a no-op; a checkpoint from a different config is a typed mismatch).

use ldp_harness::{ExperimentRunner, HarnessError, RunnerConfig};
use ldp_primitives::codec::CodecError;
use std::path::PathBuf;

/// Tiny but non-trivial sweep: 1 dataset × 2 methods × 2 ε × 1 α = 4
/// cells, 1 run each, at smoke scale.
fn smoke_config(out_dir: PathBuf) -> RunnerConfig {
    let mut cfg = RunnerConfig::default();
    for (key, value) in [
        ("name", "resume-drill"),
        ("host", "test"),
        ("pr", "7"),
        ("dataset", "syn"),
        ("methods", "biloloha,rappor"),
        ("eps", "0.5,1.0"),
        ("alphas", "0.5"),
        ("runs", "1"),
        ("n_frac", "0.02"),
        ("tau_frac", "0.05"),
        ("threads", "1"),
        ("bench_users", "200"),
        ("bench_samples", "2"),
    ] {
        cfg.apply(key, value).unwrap();
    }
    cfg.out_dir = out_dir;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp_harness_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_run_resumes_byte_identical_to_uninterrupted() {
    let dir_a = temp_dir("uninterrupted");
    let dir_b = temp_dir("interrupted");

    // Reference: one uninterrupted sweep.
    let runner_a = ExperimentRunner::new(smoke_config(dir_a.clone())).unwrap();
    let sweep_a = runner_a.run_sweep().unwrap();
    assert_eq!(sweep_a.executed, 4);
    assert_eq!(sweep_a.restored, 0);

    // "Killed" run: one cell per invocation, fresh runner each time (a
    // real kill loses all in-memory state; only the checkpoint survives).
    let mut invocations = 0;
    loop {
        let runner_b = ExperimentRunner::new(smoke_config(dir_b.clone())).unwrap();
        let step = runner_b.sweep_up_to(1).unwrap();
        invocations += 1;
        assert!(step.executed <= 1);
        if step.executed == 0 {
            assert_eq!(step.restored, 4, "final invocation restores every cell");
            break;
        }
        assert!(
            invocations <= 5,
            "sweep must converge in grid-size + 1 steps"
        );
    }
    assert_eq!(invocations, 5, "4 computing invocations + 1 no-op");

    // Same cells, bit for bit…
    let runner_b = ExperimentRunner::new(smoke_config(dir_b.clone())).unwrap();
    let sweep_b = runner_b.run_sweep().unwrap();
    assert_eq!(sweep_b.cells.len(), sweep_a.cells.len());
    for (a, b) in sweep_a.cells.iter().zip(&sweep_b.cells) {
        assert!(
            a.bits_eq(b),
            "{}/{:?} diverged across the kill",
            a.dataset,
            a.method
        );
    }
    // …and the same checkpoint bytes on disk.
    let ckpt_a = std::fs::read(runner_a.config().checkpoint_path()).unwrap();
    let ckpt_b = std::fs::read(runner_b.config().checkpoint_path()).unwrap();
    assert_eq!(
        ckpt_a, ckpt_b,
        "interruption pattern must not leak into the checkpoint"
    );

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn finished_run_reinvoked_is_a_noop() {
    let dir = temp_dir("noop");
    let runner = ExperimentRunner::new(smoke_config(dir.clone())).unwrap();

    let first = runner.run().unwrap();
    assert_eq!(first.sweep.executed, 4);
    assert!(first.wrote_bench);
    let bench_bytes = std::fs::read(&first.bench_path).unwrap();

    let second = runner.run().unwrap();
    assert_eq!(second.sweep.executed, 0, "no cell recomputed");
    assert_eq!(second.sweep.restored, 4);
    assert!(!second.wrote_bench, "valid trajectory file left untouched");
    assert_eq!(
        std::fs::read(&second.bench_path).unwrap(),
        bench_bytes,
        "trajectory bytes unchanged by the rerun"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_from_a_different_config_is_a_typed_mismatch() {
    let dir = temp_dir("foreign");
    let runner = ExperimentRunner::new(smoke_config(dir.clone())).unwrap();
    runner.sweep_up_to(1).unwrap();

    // Same name/out_dir (same checkpoint file), different master seed —
    // a different sweep. Must refuse, not resume.
    let mut foreign = smoke_config(dir.clone());
    foreign.apply("seed", "999").unwrap();
    let err = ExperimentRunner::new(foreign)
        .unwrap()
        .run_sweep()
        .unwrap_err();
    assert!(
        matches!(err, HarnessError::Codec(CodecError::Mismatch(_))),
        "expected a fingerprint mismatch, got {err:?}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
