//! Tier-1 perf-regression gate over the checked-in trajectory.
//!
//! For every host with at least two `results/BENCH_<host>_<pr>.json`
//! files, the two highest PR numbers are compared method by method: the
//! newer file's ingest `reports_per_sec` must not fall below 70% of the
//! older one's. Wall-clock numbers are machine-dependent, but files
//! sharing a host label were produced on comparable hardware — a >30%
//! drop is an actual regression (or a mislabeled host), not noise.

use ldp_harness::json::{parse, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Largest tolerated ingest throughput drop between consecutive
/// trajectory files, as a fraction of the older measurement.
const MAX_REGRESSION: f64 = 0.30;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// `(host, pr, parsed document)` for every checked-in trajectory file.
fn trajectories() -> Vec<(String, u32, Json)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(results_dir()).expect("results/ exists at the repo root") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(results_dir().join(&name)).unwrap();
        let doc = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let host = doc
            .get("host")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{name}: missing host"))
            .to_string();
        let pr = doc
            .get("pr")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{name}: missing pr")) as u32;
        out.push((host, pr, doc));
    }
    out
}

/// Method → ingest `reports_per_sec` for one trajectory document.
fn ingest_rates(doc: &Json) -> BTreeMap<String, f64> {
    doc.get("throughput")
        .and_then(Json::as_arr)
        .expect("throughput array")
        .iter()
        .map(|row| {
            let method = row
                .get("method")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            let rate = row
                .get("ingest")
                .and_then(|p| p.get("reports_per_sec"))
                .and_then(Json::as_f64)
                .expect("ingest.reports_per_sec");
            (method, rate)
        })
        .collect()
}

#[test]
fn ingest_throughput_does_not_regress_between_consecutive_prs() {
    let mut by_host: BTreeMap<String, Vec<(u32, Json)>> = BTreeMap::new();
    for (host, pr, doc) in trajectories() {
        by_host.entry(host).or_default().push((pr, doc));
    }

    let mut compared = 0usize;
    for (host, mut files) in by_host {
        if files.len() < 2 {
            continue;
        }
        files.sort_by_key(|(pr, _)| *pr);
        let (old_pr, old_doc) = &files[files.len() - 2];
        let (new_pr, new_doc) = &files[files.len() - 1];
        let old_rates = ingest_rates(old_doc);
        let new_rates = ingest_rates(new_doc);
        // Only methods measured in both files are comparable; a method
        // added or dropped between PRs is a config change, not a perf
        // signal.
        for (method, &old_rate) in &old_rates {
            let Some(&new_rate) = new_rates.get(method) else {
                continue;
            };
            let floor = old_rate * (1.0 - MAX_REGRESSION);
            assert!(
                new_rate >= floor,
                "{host}: {method} ingest throughput regressed >{}% \
                 between PR {old_pr} ({old_rate:.0} reports/s) and \
                 PR {new_pr} ({new_rate:.0} reports/s; floor {floor:.0})",
                (MAX_REGRESSION * 100.0) as u32,
            );
            compared += 1;
        }
    }
    assert!(
        compared > 0,
        "no host has two comparable trajectory files — the gate must \
         have at least one consecutive-PR pair to check"
    );
}
