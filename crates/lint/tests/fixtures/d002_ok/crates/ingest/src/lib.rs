//! D002 pass: checked conversion on the write side; widening casts from
//! a known-narrow source are fine on the read side.
pub fn encode_checkpoint(w: &mut CodecWriter, shards: &[Shard]) {
    w.put_u16(shards.version);
    w.put_u32(u32::try_from(shards.len()).expect("shard count fits u32"));
}

pub fn decode_checkpoint(r: &mut CodecReader) -> u64 {
    let v = r.get_u16()?;
    let n = r.get_u32()?;
    u64::from(v as u32) + u64::from(n)
}

/// Batch envelope: every narrowing to the u32 transport width is a
/// checked conversion carrying its invariant; reads widen back to usize.
pub fn encode_report_batch(w: &mut CodecWriter, indices: &[usize], ends: &[usize]) {
    w.put_u32(u32::try_from(indices.len()).expect("batch index count fits u32"));
    for &idx in indices {
        w.put_u32(u32::try_from(idx).expect("transport invariant: dim fits u32"));
    }
    for &end in ends {
        w.put_u32(u32::try_from(end).expect("transport invariant: batch offsets fit u32"));
    }
}

pub fn decode_report_batch(r: &mut CodecReader) -> Vec<usize> {
    let n = r.get_u32()?;
    (0..n).map(|_| r.get_u32().map(|i| i as usize)).collect()
}
