//! D002 pass: checked conversion on the write side; widening casts from
//! a known-narrow source are fine on the read side.
pub fn encode_checkpoint(w: &mut CodecWriter, shards: &[Shard]) {
    w.put_u16(shards.version);
    w.put_u32(u32::try_from(shards.len()).expect("shard count fits u32"));
}

pub fn decode_checkpoint(r: &mut CodecReader) -> u64 {
    let v = r.get_u16()?;
    let n = r.get_u32()?;
    u64::from(v as u32) + u64::from(n)
}
