//! P001 scope check: the simulator is not a privacy-bearing crate, so
//! ambient entropy here is out of the rule's jurisdiction.
pub fn jitter() -> u64 {
    thread_rng().next_u64()
}
