//! P001 pass: randomness comes from a seeded, derived stream.
pub fn roll(seed: u64, user: u64) -> u64 {
    let mut rng = derive_rng(seed, user);
    rng.next_u64()
}
