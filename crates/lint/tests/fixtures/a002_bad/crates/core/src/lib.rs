//! A002 trigger: a suppression that no longer suppresses anything.
pub fn roll(seed: u64) -> u64 {
    // ldp_lint::allow(P001): historical — the ambient source is long gone
    let mut rng = derive_rng(seed, 0);
    rng.next_u64()
}
