//! C002 trigger: the save fn writes a u64 the load fn never reads.
pub fn save_client(w: &mut CodecWriter, s: &State) {
    w.put_u32(s.g);
    w.put_u64(s.k);
}

pub fn load_client(r: &mut CodecReader) -> State {
    let g = r.get_u32()?;
    State { g }
}
