//! P004 trigger: report and memo state flowing into telemetry sinks —
//! directly (the report_into value parameter), and via a let binding
//! derived from memoized state.
impl ClientState for BadState {
    fn report_into(&mut self, value: u64, rng: &mut LdpRng, out: &mut ReportBuf) {
        self.sanitize_hist.record(value);
        out.push(self.report(value, rng) as usize);
    }
}

impl BadState {
    fn flush_metrics(&self) {
        let leaked = self.memo[0] as u64;
        self.cells.inc_by(leaked);
    }
}
