//! D002 trigger, wire flavor: truncating casts on the wire encode
//! path silently corrupt batches past the u32 transport width instead
//! of failing closed at the cap check.
pub fn encode_frame(w: &mut CodecWriter, indices: &[usize]) {
    w.put_u32(indices.len() as u32);
    for &idx in indices {
        w.put_u32(idx as u32);
    }
}

pub fn decode_frame(r: &mut CodecReader) -> Result<Vec<usize>, CodecError> {
    let count = r.get_u32()?;
    let mut indices = Vec::new();
    for _ in 0..count {
        let idx = r.get_u32()?;
        indices.push(idx as usize);
    }
    Ok(indices)
}
