//! P002 trigger: report_into derives its own stream instead of using
//! the per-user one it was handed.
impl ClientState for BadState {
    fn report_into(&mut self, value: u64, rng: &mut LdpRng, out: &mut ReportBuf) {
        let mut mine = derive_rng(self.seed, self.user);
        out.push(self.report(value, &mut mine) as usize);
    }
}
