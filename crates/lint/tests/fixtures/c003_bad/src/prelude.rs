//! C003 trigger: `Bar` is exported but missing from the snapshot.
pub use inner::{Bar, Foo};
