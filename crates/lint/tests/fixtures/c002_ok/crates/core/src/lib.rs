//! C002 pass: every width written is read back, including through a
//! same-file helper on each side.
pub fn save_client(w: &mut CodecWriter, s: &State) {
    w.put_u32(s.g);
    write_body(w, s);
}

fn write_body(w: &mut CodecWriter, s: &State) {
    w.put_u64(s.k);
}

pub fn load_client(r: &mut CodecReader) -> State {
    let g = r.get_u32()?;
    let k = body(r)?;
    State { g, k }
}

fn body(r: &mut CodecReader) -> Result<u64, CodecError> {
    r.get_u64()
}
