//! P002 pass: all randomness flows from the passed-in per-user stream.
impl ClientState for GoodState {
    fn report_into(&mut self, value: u64, rng: &mut LdpRng, out: &mut ReportBuf) {
        out.push(self.report(value, rng) as usize);
    }
}
