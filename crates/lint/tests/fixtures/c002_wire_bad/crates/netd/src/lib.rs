//! C002 trigger, wire flavor: the frame encoder writes a `reports`
//! u32 the decoder never reads back — silent wire-layout drift that
//! WIRE_FORMAT.md says must be a version bump instead.
pub fn encode_frame(w: &mut CodecWriter, f: &Frame) {
    w.put_u8(f.kind);
    w.put_u64(f.seq);
    w.put_u32(f.reports);
}

pub fn decode_frame(r: &mut CodecReader) -> Result<Frame, CodecError> {
    let kind = r.get_u8()?;
    let seq = r.get_u64()?;
    Ok(Frame { kind, seq })
}
