//! L001 pass: the decode path returns typed errors; defaulting
//! combinators (`unwrap_or`) are not panics.
pub fn decode_header(bytes: &[u8]) -> Result<u16, CodecError> {
    let magic = bytes.first().ok_or(CodecError::Truncated)?;
    let flags = bytes.get(1).copied().unwrap_or(0);
    Ok(u16::from_le_bytes([*magic, flags]))
}
