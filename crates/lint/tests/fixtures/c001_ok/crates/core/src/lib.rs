//! C001 pass: code and registry agree.
const MAGIC: &[u8; 4] = b"AAAA";
const VERSION: u16 = 2;
