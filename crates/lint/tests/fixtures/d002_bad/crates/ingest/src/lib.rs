//! D002 trigger: a truncating cast on the encode path silently corrupts
//! counts above u32::MAX instead of failing loudly.
pub fn encode_checkpoint(w: &mut CodecWriter, shards: &[Shard]) {
    w.put_u32(shards.len() as u32);
}

pub fn decode_checkpoint(r: &mut CodecReader) -> u32 {
    r.get_u32()?
}

/// Batch envelope: flat index buffer + per-report end offsets. Both
/// narrowings here truncate silently — a support index past u32::MAX or
/// an offset past the u32 boundary would corrupt the batch in flight.
pub fn encode_report_batch(w: &mut CodecWriter, indices: &[usize], ends: &[usize]) {
    w.put_u32(indices.len() as u32);
    for &idx in indices {
        w.put_u32(idx as u32);
    }
    for &end in ends {
        w.put_u32(end as u32);
    }
}
