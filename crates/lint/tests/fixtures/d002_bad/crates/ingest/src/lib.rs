//! D002 trigger: a truncating cast on the encode path silently corrupts
//! counts above u32::MAX instead of failing loudly.
pub fn encode_checkpoint(w: &mut CodecWriter, shards: &[Shard]) {
    w.put_u32(shards.len() as u32);
}

pub fn decode_checkpoint(r: &mut CodecReader) -> u32 {
    r.get_u32()?
}
