//! P003 scope check: registered sanitizer modules may touch the raw
//! value directly — that is where the perturbation itself lives.
impl ClientState for SanitizerState {
    fn report_into(&mut self, value: u64, rng: &mut LdpRng, out: &mut ReportBuf) {
        let perturbed = if rng.coin(self.p) { value } else { rng.uniform(self.k) };
        out.push(perturbed as usize);
    }
}
