//! P003 pass: the value only reaches the buffer through the sanitizer.
impl ClientState for GoodState {
    fn report_into(&mut self, value: u64, rng: &mut LdpRng, out: &mut ReportBuf) {
        out.push(self.report(value, rng) as usize);
    }
}
