//! Non-privacy crates are out of P004's scope: aggregation layers may
//! feed their instruments from whatever they already hold.
fn rollup(&self) {
    self.hist.record(self.memo_sizes[0]);
}
