//! P004 pass: instruments receive only operational quantities (counts,
//! durations), and protocol-internal `.observe(…)` bookkeeping on
//! tainted state is not a telemetry sink.
impl ClientState for OkState {
    fn report_into(&mut self, value: u64, rng: &mut LdpRng, out: &mut ReportBuf) {
        self.accountant.observe(self.bucket_of(value));
        out.push(self.report(value, rng) as usize);
        self.reports.inc();
    }
}

impl OkState {
    fn flush_metrics(&self, elapsed_ns: u64) {
        let population = self.users.len() as u64;
        self.dirty_gauge.set(population);
        self.sanitize_hist.record(elapsed_ns);
    }
}
