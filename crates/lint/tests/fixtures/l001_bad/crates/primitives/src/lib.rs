//! L001 trigger: a decode path that panics on untrusted bytes.
pub fn decode_header(bytes: &[u8]) -> u16 {
    let magic = bytes.first().unwrap();
    if *magic != 7 {
        panic!("bad magic");
    }
    u16::from(*magic)
}
