//! C002 pass, wire flavor: the frame encoder and decoder stay
//! op-symmetric, including the nested method-name frame and a
//! same-file payload helper on each side.
pub fn encode_frame(w: &mut CodecWriter, f: &Frame) {
    w.put_u8(f.kind);
    w.put_frame(f.method.as_bytes());
    write_payload(w, f);
}

fn write_payload(w: &mut CodecWriter, f: &Frame) {
    w.put_u64(f.seq);
    w.put_u32(f.reports);
}

pub fn decode_frame(r: &mut CodecReader) -> Result<Frame, CodecError> {
    let kind = r.get_u8()?;
    let method = r.get_frame()?;
    let (seq, reports) = payload(r)?;
    Ok(Frame { kind, method, seq, reports })
}

fn payload(r: &mut CodecReader) -> Result<(u64, u32), CodecError> {
    let seq = r.get_u64()?;
    let reports = r.get_u32()?;
    Ok((seq, reports))
}
