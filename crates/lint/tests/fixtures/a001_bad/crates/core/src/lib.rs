//! A001 trigger: a suppression with no reason string.
pub fn roll() -> u64 {
    // ldp_lint::allow(P001)
    let mut rng = thread_rng();
    rng.next_u64()
}
