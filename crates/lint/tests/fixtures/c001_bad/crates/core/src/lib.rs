//! C001 trigger: the code says version 2; the registry says version 3.
const MAGIC: &[u8; 4] = b"AAAA";
const VERSION: u16 = 2;
