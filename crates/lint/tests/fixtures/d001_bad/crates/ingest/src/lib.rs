//! D001 trigger: encoding iterates a HashMap, so the checkpoint bytes
//! depend on hash-seed accidents.
pub fn encode_checkpoint(w: &mut CodecWriter, counts: ()) {
    let m: HashMap<u64, u64> = build(counts);
    for (k, v) in m.iter() {
        w.put_u64(*k);
        w.put_u64(*v);
    }
}

pub fn decode_checkpoint(r: &mut CodecReader) -> (u64, u64) {
    (r.get_u64()?, r.get_u64()?)
}
