//! A reasoned suppression: the finding is counted, reported, and does
//! not fail the check.
pub fn reseed() -> u64 {
    // ldp_lint::allow(P001): fixture demonstrating a justified exception
    let mut rng = thread_rng();
    rng.next_u64()
}
