//! P003 trigger: the raw input value lands in the report buffer with no
//! sanitizer call around it.
impl ClientState for BadState {
    fn report_into(&mut self, value: u64, rng: &mut LdpRng, out: &mut ReportBuf) {
        out.push(value as usize);
    }
}
