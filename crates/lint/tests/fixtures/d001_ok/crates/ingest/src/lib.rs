//! D001 pass: a BTreeMap iterates in key order; a HashSet used only for
//! membership tests never leaks its ordering into the bytes.
pub fn encode_checkpoint(w: &mut CodecWriter, counts: ()) {
    let m: BTreeMap<u64, u64> = build(counts);
    let seen: HashSet<u64> = index(counts);
    for (k, v) in m.iter() {
        if seen.contains(k) {
            w.put_u64(*k);
            w.put_u64(*v);
        }
    }
}

pub fn decode_checkpoint(r: &mut CodecReader) -> (u64, u64) {
    (r.get_u64()?, r.get_u64()?)
}
