//! D002 pass, wire flavor: every narrowing onto the u32 wire width is
//! a checked conversion carrying its cap invariant; the read side only
//! widens, which the micro-inference proves safe.
pub fn encode_frame(w: &mut CodecWriter, indices: &[usize]) {
    let count = u32::try_from(indices.len()).expect("caller enforces MAX_WIRE_INDICES");
    w.put_u32(count);
    for &idx in indices {
        w.put_u32(u32::try_from(idx).expect("caller enforces MAX_WIRE_DIM"));
    }
}

pub fn decode_frame(r: &mut CodecReader) -> Result<Vec<usize>, CodecError> {
    let count = r.get_u32()?;
    let mut indices = Vec::new();
    for _ in 0..count {
        let idx = r.get_u32()?;
        indices.push(idx as usize);
    }
    Ok(indices)
}
