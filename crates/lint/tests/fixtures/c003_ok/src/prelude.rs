//! C003 pass: surface and snapshot agree.
pub use inner::{Bar, Foo};
