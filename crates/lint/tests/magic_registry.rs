//! Tier-1 doc-drift gate: the `docs/CHECKPOINT_FORMAT.md` §3 magic
//! registry and the in-code `*MAGIC`/`*VERSION` constants must agree —
//! in both directions, with matching current versions. This is rule
//! C001 run standalone, so the contract holds even for workflows that
//! run `cargo test` without the lint binary.

use ldp_lint::rules::compat::{code_magics, registry_entries, REGISTRY_DOC};
use std::collections::BTreeMap;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn magic_registry_matches_code_constants() {
    let root = workspace_root();
    let doc = std::fs::read_to_string(root.join(REGISTRY_DOC)).expect("registry doc exists");
    let registry: BTreeMap<String, u16> = registry_entries(&doc)
        .into_iter()
        .map(|e| (e.magic, e.version))
        .collect();

    let sources = ldp_lint::collect_sources(root).expect("workspace scans");
    let registered = ldp_lint::rules::suppressible_ids();
    let files: Vec<_> = sources
        .iter()
        .map(|(rel, text)| ldp_lint::scan::scan_source(rel, text, &registered))
        .collect();
    let magics = code_magics(&files);
    assert!(!magics.is_empty(), "no magic constants found in the tree");

    for m in &magics {
        let version = m.version.unwrap_or_else(|| {
            panic!(
                "{}: magic `{}` has no paired version constant",
                m.file, m.magic
            )
        });
        let registered = registry.get(&m.magic).unwrap_or_else(|| {
            panic!(
                "{}: magic `{}` missing from {REGISTRY_DOC}",
                m.file, m.magic
            )
        });
        assert_eq!(
            version, *registered,
            "{}: magic `{}` is v{version} in code, v{registered} in the registry",
            m.file, m.magic
        );
    }
    for magic in registry.keys() {
        assert!(
            magics.iter().any(|m| &m.magic == magic),
            "registry lists `{magic}` but no scanned source defines it"
        );
    }
}

#[test]
fn the_five_store_magics_are_pinned() {
    // The registry is a compatibility contract: entries are never
    // removed or renumbered, only added (with version bumps recorded in
    // the doc). Losing one of these rows would orphan existing files.
    let doc = std::fs::read_to_string(workspace_root().join(REGISTRY_DOC)).unwrap();
    let registry: BTreeMap<String, u16> = registry_entries(&doc)
        .into_iter()
        .map(|e| (e.magic, e.version))
        .collect();
    for (magic, at_least) in [
        ("LLHA", 2),
        ("LDPS", 2),
        ("LDCC", 2),
        ("LDCM", 1),
        ("LDCG", 1),
    ] {
        let v = registry
            .get(magic)
            .unwrap_or_else(|| panic!("magic `{magic}` vanished from the registry"));
        assert!(
            *v >= at_least,
            "magic `{magic}` regressed below its pinned floor (v{v} < v{at_least})"
        );
    }
}
