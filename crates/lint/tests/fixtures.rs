//! Fixture-backed positive/negative tests: every rule in docs/LINTS.md
//! has one minimal triggering tree and one minimal passing tree under
//! `tests/fixtures/`. Each tree is a miniature workspace root (the same
//! `crates/*/src` shape the real scan walks), so these tests exercise
//! the full engine — file collection, scanning, rules, and suppression
//! accounting — not rule functions in isolation.

use ldp_lint::{run_check, Report, Severity};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check(name: &str) -> Report {
    run_check(&fixture_root(name)).expect("fixture tree scans")
}

/// The triggering tree must produce at least one finding of `rule` —
/// and, for error-level rules, fail the check (non-zero exit).
fn assert_fires(name: &str, rule: &str, severity: Severity) {
    let r = check(name);
    let hits: Vec<_> = r.findings.iter().filter(|f| f.rule == rule).collect();
    assert!(
        !hits.is_empty(),
        "{name}: expected {rule} to fire, got {:?}",
        r.findings
    );
    for f in &hits {
        assert_eq!(f.severity, severity, "{name}: {rule} severity");
        assert!(f.line > 0, "{name}: finding must carry a line");
    }
    assert_eq!(
        r.failed(),
        severity == Severity::Error,
        "{name}: error-level findings (and only those) fail the check"
    );
}

/// The passing tree must be completely clean.
fn assert_clean(name: &str) {
    let r = check(name);
    assert!(r.findings.is_empty(), "{name}: {:?}", r.findings);
    assert!(!r.failed());
}

#[test]
fn p001_ambient_entropy() {
    assert_fires("p001_bad", "P001", Severity::Error);
    assert_clean("p001_ok"); // includes thread_rng in a non-privacy crate
}

#[test]
fn p002_self_made_rng_in_report_into() {
    assert_fires("p002_bad", "P002", Severity::Error);
    assert_clean("p002_ok");
}

#[test]
fn p003_raw_value_into_report_buffer() {
    assert_fires("p003_bad", "P003", Severity::Error);
    assert_clean("p003_ok"); // includes a registered sanitizer module
}

#[test]
fn p004_tainted_telemetry_sink_argument() {
    assert_fires("p004_bad", "P004", Severity::Error);
    assert_clean("p004_ok"); // observe() bookkeeping + non-privacy crates
}

#[test]
fn d001_unordered_iteration_in_encode_path() {
    assert_fires("d001_bad", "D001", Severity::Error);
    assert_clean("d001_ok"); // BTreeMap iteration + HashSet membership
}

#[test]
fn d002_truncating_cast_on_codec_path() {
    assert_fires("d002_bad", "D002", Severity::Error);
    assert_clean("d002_ok"); // try_from write side, widening read side
}

#[test]
fn d002_wire_encoder_narrowing_cast() {
    // Wire-flavored variants modeled on `ldp_netd::proto`: the same
    // rule that guards checkpoint codecs guards frame encoders.
    assert_fires("d002_wire_bad", "D002", Severity::Error);
    assert_clean("d002_wire_ok"); // u32::try_from at the cap, widening reads
}

#[test]
fn c001_magic_registry_drift() {
    assert_fires("c001_bad", "C001", Severity::Error);
    assert_clean("c001_ok");
}

#[test]
fn c002_asymmetric_save_load() {
    assert_fires("c002_bad", "C002", Severity::Error);
    assert_clean("c002_ok"); // symmetry through same-file helpers
}

#[test]
fn c002_wire_encoder_decoder_drift() {
    // encode_*/decode_* pairing, wire flavor: a field written but never
    // read back is exactly the drift WIRE_FORMAT.md §2 forbids without
    // a version bump.
    assert_fires("c002_wire_bad", "C002", Severity::Error);
    assert_clean("c002_wire_ok"); // nested method frame + payload helpers
}

#[test]
fn c003_prelude_surface_drift() {
    assert_fires("c003_bad", "C003", Severity::Error);
    assert_clean("c003_ok");
}

#[test]
fn l001_panic_on_decode_path() {
    // Warn level: reported, does not fail the gate by itself. The
    // workspace self-check still requires zero findings overall.
    assert_fires("l001_bad", "L001", Severity::Warn);
    assert_clean("l001_ok");
}

#[test]
fn a001_reasonless_suppression() {
    assert_fires("a001_bad", "A001", Severity::Error);
}

#[test]
fn a002_stale_suppression() {
    assert_fires("a002_bad", "A002", Severity::Warn);
}

#[test]
fn reasoned_suppression_is_counted_and_passes() {
    let r = check("allow_ok");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert!(!r.failed());
    assert_eq!(r.allows.len(), 1);
    assert_eq!(r.allows[0].rule, "P001");
    assert_eq!(r.allows[0].suppressed, 1);
    assert!(!r.allows[0].reason.is_empty());
}

#[test]
fn json_output_round_trips_the_fixture_findings() {
    let r = check("p001_bad");
    let json = r.render_json();
    assert!(json.contains("\"rule\": \"P001\""));
    assert!(json.contains("\"severity\": \"error\""));
    assert!(json.contains("crates/core/src/lib.rs"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn every_cataloged_rule_has_fixture_coverage() {
    // Keep this list in lockstep with docs/LINTS.md and rules::REGISTRY:
    // adding a rule without fixtures fails here, not in review.
    let fixture_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for meta in ldp_lint::rules::REGISTRY {
        let slug = meta.id.to_lowercase();
        let bad = fixture_dir.join(format!("{slug}_bad"));
        assert!(
            bad.is_dir(),
            "rule {} has no triggering fixture ({})",
            meta.id,
            bad.display()
        );
        // A-series passing behavior is covered by allow_ok; every other
        // rule carries its own `_ok` tree.
        if !meta.id.starts_with('A') {
            let ok = fixture_dir.join(format!("{slug}_ok"));
            assert!(
                ok.is_dir(),
                "rule {} has no passing fixture ({})",
                meta.id,
                ok.display()
            );
        }
    }
}
