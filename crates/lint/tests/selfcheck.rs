//! The workspace must be lint-clean: zero findings of any severity.
//! (Warn-level findings do not fail `ldp_lint check`'s exit code, but
//! they do fail this test — the tree itself holds a stricter line.)

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let report = ldp_lint::run_check(root).expect("workspace scans");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report.render_human()
    );
    // Suppressions must all carry reasons (A001 would have fired above,
    // but keep the invariant explicit).
    for a in &report.allows {
        assert!(
            !a.reason.is_empty(),
            "reasonless suppression at {}:{}",
            a.file,
            a.line
        );
    }
}
