//! Command-line entry point for `ldp_lint`.
//!
//! ```text
//! ldp_lint check [--root DIR] [--format human|json] [--json-out PATH]
//! ldp_lint snapshot-prelude [--root DIR]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` at least one
//! error-level finding, `2` usage or engine failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ldp_lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let mut root: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut json_out: Option<PathBuf> = None;
    let mut i = 1usize;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                root = Some(PathBuf::from(take_value(args, &mut i)?));
            }
            "--format" => {
                format = take_value(args, &mut i)?;
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (human|json)"));
                }
            }
            "--json-out" => {
                json_out = Some(PathBuf::from(take_value(args, &mut i)?));
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
        i += 1;
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            ldp_lint::discover_root(&cwd)
                .ok_or("no workspace Cargo.toml above the current directory; pass --root")?
        }
    };

    match cmd.as_str() {
        "check" => {
            let report = ldp_lint::run_check(&root).map_err(|e| e.to_string())?;
            if let Some(path) = &json_out {
                std::fs::write(path, report.render_json())
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
            match format.as_str() {
                "json" => print!("{}", report.render_json()),
                _ => print!("{}", report.render_human()),
            }
            Ok(if report.failed() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            })
        }
        "snapshot-prelude" => {
            let surface = ldp_lint::prelude_surface_of(&root).map_err(|e| e.to_string())?;
            if surface.is_empty() {
                return Err(format!(
                    "{} not found or exports nothing",
                    ldp_lint::rules::compat::PRELUDE_SRC
                ));
            }
            let path = root.join(ldp_lint::rules::compat::PRELUDE_SNAPSHOT);
            let mut text = String::from(
                "# The pinned public surface of `loloha_suite::prelude` (rule C003).\n\
                 # One re-exported name per line. Regenerate deliberately with\n\
                 # `cargo run -p ldp_lint -- snapshot-prelude` when the surface changes.\n",
            );
            for name in &surface {
                text.push_str(name);
                text.push('\n');
            }
            std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "pinned {} prelude names to {}",
                surface.len(),
                path.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn take_value(args: &[String], i: &mut usize) -> Result<String, String> {
    let flag = args[*i].clone();
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("`{flag}` needs a value"))
}

fn usage() -> String {
    "usage: ldp_lint <check|snapshot-prelude> [--root DIR] [--format human|json] \
     [--json-out PATH]"
        .to_string()
}
