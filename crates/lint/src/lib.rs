//! `ldp_lint` — the workspace privacy-invariant static analyzer.
//!
//! A self-contained pass over the workspace sources (hand-rolled lexer,
//! no external parser crates) that machine-checks the invariants the
//! LDP guarantee and the checkpoint compat story rest on. The rule
//! catalog lives in `docs/LINTS.md`; run it as
//! `cargo run -p ldp_lint --release -- check`.
//!
//! Findings can be suppressed inline with a reasoned annotation,
//! `// ldp_lint::allow(RULE_ID): reason`, placed on (or directly above)
//! the offending line. Reasonless or stale annotations are themselves
//! findings (`A001`/`A002`), so the allowlist can only drift loudly.

pub mod report;
pub mod rules;
pub mod scan;
pub mod tokenize;

pub use report::{AppliedAllow, Finding, Report, Severity};

use scan::SourceFile;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// An engine-level failure (I/O, bad root) — distinct from findings.
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Runs the full check over the workspace rooted at `root` and returns
/// the (sorted) report. The scan set is `src/**/*.rs` plus
/// `crates/*/src/**/*.rs`; tests, benches, examples, vendored crates,
/// and anything under a `fixtures` directory are out of scope.
pub fn run_check(root: &Path) -> Result<Report, LintError> {
    let registered = rules::suppressible_ids();
    let sources = collect_sources(root)?;
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, text)| scan::scan_source(rel, text, &registered))
        .collect();

    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        rules::privacy::p001(f, &mut findings);
        rules::privacy::p002(f, &mut findings);
        rules::privacy::p003(f, &mut findings);
        rules::privacy::p004(f, &mut findings);
        rules::determinism::d001(f, &mut findings);
        rules::determinism::d002(f, &mut findings);
        rules::compat::c002(f, &mut findings);
        rules::panics::l001(f, &mut findings);
    }

    let registry_doc = fs::read_to_string(root.join(rules::compat::REGISTRY_DOC)).ok();
    rules::compat::c001(&files, registry_doc.as_deref(), &mut findings);

    let prelude = files.iter().find(|f| f.rel == rules::compat::PRELUDE_SRC);
    let snapshot = fs::read_to_string(root.join(rules::compat::PRELUDE_SNAPSHOT)).ok();
    rules::compat::c003(prelude, snapshot.as_deref(), &mut findings);

    let mut report = apply_allows(&files, findings, &registered);
    report.files_scanned = files.len();
    report.sort();
    Ok(report)
}

/// Applies inline suppressions to the raw findings and emits the
/// A-series meta-findings (`A001` reasonless/unknown, `A002` stale).
fn apply_allows(files: &[SourceFile], findings: Vec<Finding>, registered: &[&str]) -> Report {
    let mut kept: Vec<Finding> = Vec::new();
    let mut applied: Vec<AppliedAllow> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();

    // Per-file: resolve each allow to its target line, then partition
    // findings into suppressed / kept.
    for file in files {
        // (rule, target line, allow line, reason, suppressed count)
        let mut slots: Vec<(String, Option<u32>, u32, String, usize)> = Vec::new();
        for a in &file.allows {
            if !registered.contains(&a.rule.as_str()) {
                meta.push(Finding {
                    rule: "A001",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: a.line,
                    message: format!(
                        "suppression names unknown rule `{}`; see docs/LINTS.md for the catalog",
                        a.rule
                    ),
                });
                continue;
            }
            if a.reason.is_empty() {
                meta.push(Finding {
                    rule: "A001",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: a.line,
                    message: format!(
                        "suppression of `{}` has no reason; write `: <why this is sound>`",
                        a.rule
                    ),
                });
            }
            slots.push((
                a.rule.clone(),
                file.allow_target(a.line),
                a.line,
                a.reason.clone(),
                0,
            ));
        }
        for f in findings.iter().filter(|f| f.file == file.rel) {
            let slot = slots.iter_mut().find(|(rule, target, aline, _, _)| {
                rule == f.rule && (*target == Some(f.line) || *aline == f.line)
            });
            match slot {
                Some(s) => s.4 += 1,
                None => kept.push(f.clone()),
            }
        }
        for (rule, _, line, reason, suppressed) in slots {
            if suppressed == 0 && !reason.is_empty() {
                meta.push(Finding {
                    rule: "A002",
                    severity: Severity::Warn,
                    file: file.rel.clone(),
                    line,
                    message: format!(
                        "stale suppression: `{rule}` no longer fires here — remove the annotation"
                    ),
                });
            }
            applied.push(AppliedAllow {
                rule,
                file: file.rel.clone(),
                line,
                reason,
                suppressed,
            });
        }
    }
    // Findings in files the scanner never saw (the registry doc) cannot
    // be suppressed; keep them as-is.
    let scanned: std::collections::BTreeSet<&str> = files.iter().map(|f| f.rel.as_str()).collect();
    for f in findings {
        if !scanned.contains(f.file.as_str()) {
            kept.push(f);
        }
    }
    kept.extend(meta);
    Report {
        findings: kept,
        allows: applied,
        files_scanned: 0,
    }
}

/// Collects `(relative path, contents)` for every in-scope source file,
/// sorted by path for deterministic output.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, LintError> {
    if !root.is_dir() {
        return Err(LintError(format!("not a directory: {}", root.display())));
    }
    let mut paths: Vec<PathBuf> = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        walk_rs(&facade, &mut paths)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| LintError(format!("{}: {e}", crates_dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut paths)?;
            }
        }
    }
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.split('/').any(|c| c == "fixtures") {
            continue;
        }
        let text =
            fs::read_to_string(&p).map_err(|e| LintError(format!("{}: {e}", p.display())))?;
        out.push((rel, text));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Recursively gathers `.rs` files under `dir` (sorted traversal).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| LintError(format!("{}: {e}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Computes the prelude surface of the workspace at `root` (for the
/// `snapshot-prelude` subcommand and the tier-1 drift test). Returns the
/// sorted leaf names, or an empty list when the workspace has no
/// `src/prelude.rs`.
pub fn prelude_surface_of(root: &Path) -> Result<Vec<String>, LintError> {
    let path = root.join(rules::compat::PRELUDE_SRC);
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text =
        fs::read_to_string(&path).map_err(|e| LintError(format!("{}: {e}", path.display())))?;
    let file = scan::scan_source(
        rules::compat::PRELUDE_SRC,
        &text,
        &rules::suppressible_ids(),
    );
    Ok(rules::compat::prelude_surface(&file)
        .into_iter()
        .map(|(n, _)| n)
        .collect())
}

/// Walks upward from `start` to the nearest directory containing a
/// `Cargo.toml` that declares `[workspace]` — the default scan root.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a throwaway tree under the target dir, runs the check, and
    /// cleans up. Integration-grade fixtures live in `tests/fixtures/`;
    /// these unit tests only cover the engine plumbing (allow
    /// application, A-series, scan-set boundaries).
    fn with_tree(name: &str, files: &[(&str, &str)], f: impl FnOnce(&Path)) {
        let dir = std::env::temp_dir().join(format!("ldp_lint_unit_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for (rel, text) in files {
            let p = dir.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, text).unwrap();
        }
        f(&dir);
        let _ = fs::remove_dir_all(&dir);
    }

    const ALLOW: &str = concat!("ldp_lint::", "allow");

    #[test]
    fn allow_suppresses_and_is_counted() {
        let src = format!(
            "// {ALLOW}(P001): fixture exercising suppression accounting\nfn f() {{ let r = thread_rng(); }}\n"
        );
        with_tree("allow", &[("crates/core/src/lib.rs", &src)], |root| {
            let r = run_check(root).unwrap();
            assert!(r.findings.is_empty(), "{:?}", r.findings);
            assert_eq!(r.allows.len(), 1);
            assert_eq!(r.allows[0].suppressed, 1);
            assert!(!r.failed());
        });
    }

    #[test]
    fn reasonless_allow_is_a001_and_stale_allow_is_a002() {
        let reasonless = format!("// {ALLOW}(P001)\nfn f() {{ let r = thread_rng(); }}\n");
        with_tree("a001", &[("crates/core/src/lib.rs", &reasonless)], |root| {
            let r = run_check(root).unwrap();
            assert!(r.findings.iter().any(|f| f.rule == "A001"));
            assert!(r.failed());
        });
        let stale = format!("// {ALLOW}(P001): nothing actually fires below\nfn f() {{}}\n");
        with_tree("a002", &[("crates/core/src/lib.rs", &stale)], |root| {
            let r = run_check(root).unwrap();
            assert!(r.findings.iter().any(|f| f.rule == "A002"));
            assert!(!r.failed(), "stale allows warn, not fail");
        });
    }

    #[test]
    fn tests_and_fixture_dirs_are_out_of_scope() {
        with_tree(
            "scope",
            &[
                ("crates/core/src/lib.rs", "fn ok() {}\n"),
                ("crates/core/tests/it.rs", "fn t() { thread_rng(); }\n"),
                (
                    "crates/core/src/fixtures/bad.rs",
                    "fn t() { thread_rng(); }\n",
                ),
            ],
            |root| {
                let r = run_check(root).unwrap();
                assert!(r.findings.is_empty(), "{:?}", r.findings);
                assert_eq!(r.files_scanned, 1);
            },
        );
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = format!("// {ALLOW}(Z999): no such rule\nfn f() {{}}\n");
        with_tree("unknown", &[("crates/core/src/lib.rs", &src)], |root| {
            let r = run_check(root).unwrap();
            assert_eq!(r.findings.len(), 1);
            assert_eq!(r.findings[0].rule, "A001");
            assert!(r.findings[0].message.contains("Z999"));
        });
    }

    #[test]
    fn discover_root_finds_workspace_manifest() {
        with_tree(
            "root",
            &[
                ("Cargo.toml", "[workspace]\nmembers = []\n"),
                ("crates/x/Cargo.toml", "[package]\nname = \"x\"\n"),
                ("crates/x/src/lib.rs", "fn f() {}\n"),
            ],
            |root| {
                let found = discover_root(&root.join("crates/x/src")).unwrap();
                assert_eq!(found.canonicalize().unwrap(), root.canonicalize().unwrap());
            },
        );
    }
}
