//! Findings, severities, suppression accounting, and output rendering.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Finding severity. `Error` findings fail the check; `Warn` findings
/// are reported but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One finding: rule, location, message.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    /// Path relative to the scan root, forward slashes.
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// One applied (or stale) suppression, for the allowlist-drift summary.
#[derive(Debug, Clone)]
pub struct AppliedAllow {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
    /// How many findings this annotation suppressed (0 = stale).
    pub suppressed: usize,
}

/// The result of one full check run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub allows: Vec<AppliedAllow>,
    /// Files scanned, for the summary line.
    pub files_scanned: usize,
}

impl Report {
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Whether the check should fail (any error-level finding).
    pub fn failed(&self) -> bool {
        self.error_count() > 0
    }

    /// Deterministic ordering: file, then line, then rule.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}: [{}] {}:{}: {}",
                f.severity.as_str(),
                f.rule,
                f.file,
                f.line,
                f.message
            );
        }
        let active: Vec<&AppliedAllow> = self.allows.iter().filter(|a| a.suppressed > 0).collect();
        if !active.is_empty() {
            let _ = writeln!(out, "\nsuppressions in effect ({}):", active.len());
            for a in &active {
                let _ = writeln!(
                    out,
                    "  [{}] {}:{} ({} finding{}): {}",
                    a.rule,
                    a.file,
                    a.line,
                    a.suppressed,
                    if a.suppressed == 1 { "" } else { "s" },
                    a.reason
                );
            }
        }
        let rules_hit: BTreeSet<&str> = self.findings.iter().map(|f| f.rule).collect();
        let _ = writeln!(
            out,
            "\n{} file{} scanned: {} error{}, {} warning{}{}",
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.warn_count(),
            if self.warn_count() == 1 { "" } else { "s" },
            if rules_hit.is_empty() {
                String::new()
            } else {
                format!(
                    " ({})",
                    rules_hit.into_iter().collect::<Vec<_>>().join(", ")
                )
            }
        );
        out
    }

    /// Machine-readable rendering: one JSON object, findings and
    /// suppressions as arrays. Hand-rolled serialization (no deps); every
    /// string passes through [`json_escape`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                f.rule,
                f.severity.as_str(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressions\": [");
        for (i, a) in self.allows.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}, \"reason\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                json_escape(&a.rule),
                json_escape(&a.file),
                a.line,
                a.suppressed,
                json_escape(&a.reason)
            );
        }
        if !self.allows.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files_scanned\": {},\n  \"errors\": {},\n  \"warnings\": {}\n}}\n",
            self.files_scanned,
            self.error_count(),
            self.warn_count()
        );
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: "P001",
                    severity: Severity::Error,
                    file: "crates/core/src/lib.rs".into(),
                    line: 10,
                    message: "ambient entropy: `thread_rng`".into(),
                },
                Finding {
                    rule: "L001",
                    severity: Severity::Warn,
                    file: "crates/a/src/lib.rs".into(),
                    line: 3,
                    message: "panic on decode path".into(),
                },
            ],
            allows: vec![AppliedAllow {
                rule: "D002".into(),
                file: "crates/client/src/state.rs".into(),
                line: 7,
                reason: "clamped".into(),
                suppressed: 1,
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn sort_orders_by_file_then_line() {
        let mut r = sample();
        r.sort();
        assert_eq!(r.findings[0].rule, "L001");
        assert_eq!(r.findings[1].rule, "P001");
    }

    #[test]
    fn counts_and_failure() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(r.failed());
        assert!(!Report::default().failed());
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = sample();
        r.findings[0].message = "quote \" and \\ back".into();
        let j = r.render_json();
        assert!(j.contains("quote \\\" and \\\\ back"));
        assert!(j.contains("\"errors\": 1"));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn human_output_lists_suppressions() {
        let h = sample().render_human();
        assert!(h.contains("error: [P001]"));
        assert!(h.contains("suppressions in effect (1):"));
        assert!(h.contains("clamped"));
    }
}
