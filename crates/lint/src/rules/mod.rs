//! The rule registry and the per-rule implementations.
//!
//! Every rule has a stable ID (`P…` privacy flow, `D…` determinism,
//! `C…` compat contracts, `L…` library hygiene, `A…` allowlist meta),
//! a severity, and a one-line summary. The catalog with rationale and
//! examples lives in `docs/LINTS.md`; fixtures under
//! `crates/lint/tests/fixtures/` pin each rule's trigger and pass cases.

pub mod compat;
pub mod determinism;
pub mod panics;
pub mod privacy;

use crate::report::Severity;

/// Registry entry for one rule.
pub struct RuleMeta {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// Every rule the engine knows, in catalog order. `A001`/`A002` are
/// meta-rules about suppressions themselves and cannot be suppressed.
pub const REGISTRY: &[RuleMeta] = &[
    RuleMeta {
        id: "P001",
        severity: Severity::Error,
        summary: "ambient entropy or wall-clock source in a privacy-bearing crate",
    },
    RuleMeta {
        id: "P002",
        severity: Severity::Error,
        summary: "report_into constructs its own RNG instead of using the per-user stream",
    },
    RuleMeta {
        id: "P003",
        severity: Severity::Error,
        summary: "raw input value written into the report buffer outside a sanitizer",
    },
    RuleMeta {
        id: "P004",
        severity: Severity::Error,
        summary: "telemetry sink argument tainted by report or memoized protocol state",
    },
    RuleMeta {
        id: "D001",
        severity: Severity::Error,
        summary: "HashMap/HashSet iteration in a checkpoint-encode or merge path",
    },
    RuleMeta {
        id: "D002",
        severity: Severity::Error,
        summary: "truncating `as` cast on a codec read/write path",
    },
    RuleMeta {
        id: "C001",
        severity: Severity::Error,
        summary: "magic constant drifted from the CHECKPOINT_FORMAT.md registry",
    },
    RuleMeta {
        id: "C002",
        severity: Severity::Error,
        summary: "save_*/encode_* writer sequence without a symmetric load_*/decode_* reader",
    },
    RuleMeta {
        id: "C003",
        severity: Severity::Error,
        summary: "prelude public surface drifted from the checked-in snapshot",
    },
    RuleMeta {
        id: "L001",
        severity: Severity::Warn,
        summary: "unwrap/expect/panic on a decode or parse path",
    },
    RuleMeta {
        id: "A001",
        severity: Severity::Error,
        summary: "suppression without a reason, or naming an unknown rule",
    },
    RuleMeta {
        id: "A002",
        severity: Severity::Warn,
        summary: "stale suppression: the annotation no longer suppresses anything",
    },
];

/// IDs that an inline allow may name (the A-series meta-rules excluded).
pub fn suppressible_ids() -> Vec<&'static str> {
    REGISTRY
        .iter()
        .filter(|r| !r.id.starts_with('A'))
        .map(|r| r.id)
        .collect()
}

/// Looks up a rule's severity (`None` for unknown IDs).
pub fn severity_of(id: &str) -> Option<Severity> {
    REGISTRY.iter().find(|r| r.id == id).map(|r| r.severity)
}

/// The crate a workspace-relative path belongs to (`crates/core/src/…`
/// → `core`); `None` for the facade's own `src/`.
pub fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    rest.split('/').next()
}
