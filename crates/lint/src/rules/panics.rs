//! L-series: library-hygiene rules (warn level).
//!
//! Decode and parse paths are reachable from untrusted bytes on disk; a
//! panic there turns a corrupt checkpoint into a crash instead of a
//! typed `CodecError`. L001 holds the line after the audit that
//! converted the reachable cases.

use crate::report::{Finding, Severity};
use crate::scan::{FnItem, SourceFile};

/// Fn-name prefixes that mark a body as a decode/parse path.
const DECODE_PREFIXES: &[&str] = &["load", "decode", "read_", "parse", "open", "sniff", "split"];

/// Impl types whose every method is a decode path.
const DECODE_TYPES: &[&str] = &["CodecReader"];

fn in_scope(f: &FnItem) -> bool {
    DECODE_PREFIXES.iter().any(|p| f.name.starts_with(p))
        || f.impl_type
            .as_deref()
            .is_some_and(|t| DECODE_TYPES.contains(&t))
}

/// L001: `.unwrap()` / `.expect(` / `panic!` / `unreachable!` on a
/// decode path. `unwrap_or`/`unwrap_or_else` and friends are distinct
/// identifiers and are never matched.
pub fn l001(file: &SourceFile, out: &mut Vec<Finding>) {
    for f in file.fns.iter().filter(|f| in_scope(f)) {
        let body = &file.tokens[f.body.0..f.body.1];
        for (i, t) in body.iter().enumerate() {
            let dot_before = i > 0 && body[i - 1].is_punct('.');
            let call_after = body.get(i + 1).is_some_and(|n| n.is_punct('('));
            let bang_after = body.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let hit: Option<&str> = if dot_before && call_after && t.is_ident("unwrap") {
                Some(".unwrap()")
            } else if dot_before && call_after && t.is_ident("expect") {
                Some(".expect(…)")
            } else if bang_after && t.is_ident("panic") {
                Some("panic!")
            } else if bang_after && t.is_ident("unreachable") {
                Some("unreachable!")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Finding {
                    rule: "L001",
                    severity: Severity::Warn,
                    file: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{what}` in `{}` can panic on untrusted input; return a typed error \
                         (or allow with an infallibility argument)",
                        f.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn run(src: &str) -> Vec<Finding> {
        let f = scan_source("crates/x/src/lib.rs", src, &["L001"]);
        let mut out = Vec::new();
        l001(&f, &mut out);
        out
    }

    #[test]
    fn flags_panics_on_decode_paths_only() {
        let bad = "
            fn load_client(bytes: &[u8]) -> State {
                let n = bytes.first().unwrap();
                let m = hdr.expect(\"header\");
                if n > 4 { panic!(\"bad\"); }
            }
        ";
        let ok_scope = "
            fn estimate(&self) -> f64 { self.cache.unwrap() }
        ";
        let ok_variants = "
            fn decode_body(r: &mut R) -> u64 {
                r.next().unwrap_or(0);
                r.next().unwrap_or_else(|| 0)
            }
        ";
        assert_eq!(run(bad).len(), 3);
        assert!(run(ok_scope).is_empty());
        assert!(run(ok_variants).is_empty());
    }

    #[test]
    fn codec_reader_methods_are_always_in_scope() {
        let src = "
            impl CodecReader {
                fn array(&mut self) -> [u8; 4] {
                    self.take(4).try_into().expect(\"exact\")
                }
            }
        ";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn finding_has_warn_severity() {
        let src = "fn parse_row(s: &str) { s.parse::<u64>().unwrap(); }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
    }
}
